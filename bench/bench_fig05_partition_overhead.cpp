/**
 * @file
 * Figure 5: per-iteration phase time of METIS-based online
 * partitioning vs. block generation vs. GPU compute.
 *
 * Shows the motivation for Buffalo: METIS-style partitioning of each
 * batch dwarfs the actual (simulated) GPU compute time, making online
 * partitioning infeasible for the baselines.
 */
#include "bench_common.h"

#include "graph/coo.h"
#include "partition/metis_like.h"
#include "sampling/block_generator.h"

using namespace buffalo;

namespace {

void
runDataset(graph::DatasetId id, std::size_t num_seeds,
           bench::Reporter &reporter)
{
    auto data = graph::loadDataset(id, 42);
    bench::banner("Figure 5: phase time of METIS-based per-iteration "
                  "partitioning",
                  data);

    util::Rng rng(5);
    sampling::NeighborSampler sampler({10, 25});
    auto sg = sampler.sample(data.graph(),
                             bench::seedBatch(data, num_seeds), rng);

    // Phase 1: METIS partitioning of the *whole sampled subgraph*
    // (the paper applies METIS-based partitioning to the batch
    // subgraph every iteration).
    util::StopWatch watch;
    partition::WeightedGraph wg;
    {
        const graph::NodeId n =
            static_cast<graph::NodeId>(sg.nodes().size());
        graph::CooBuilder builder(n);
        for (int layer = 0; layer < sg.numLayers(); ++layer) {
            const auto &adjacency = sg.layerAdjacency(layer);
            for (graph::NodeId u = 0; u < n; ++u)
                for (auto nbr : adjacency.neighbors(u))
                    builder.addUndirectedEdge(u, nbr);
        }
        wg = partition::WeightedGraph::fromUnweighted(
            builder.toCsr());
    }
    partition::MetisLike metis;
    auto full_assignment = metis.partition(wg, 8);
    // Project the node partition onto the output nodes.
    partition::Assignment assignment(sg.numSeeds());
    for (graph::NodeId seed = 0; seed < sg.numSeeds(); ++seed)
        assignment[seed] = full_assignment[seed];
    const double partition_seconds = watch.seconds();

    // Phase 2: block generation for the 8 micro-batches (baseline
    // generator, as the existing systems use).
    std::vector<graph::NodeList> parts(8);
    for (graph::NodeId seed = 0; seed < sg.numSeeds(); ++seed)
        parts[assignment[seed]].push_back(seed);

    watch.reset();
    sampling::BaselineBlockGenerator generator;
    std::vector<sampling::MicroBatch> batches;
    for (const auto &part : parts)
        if (!part.empty())
            batches.push_back(generator.generate(sg, part));
    const double blockgen_seconds = watch.seconds();

    // Phase 3: simulated GPU compute for all micro-batches.
    train::TrainerOptions options = bench::paperOptions(data);
    nn::MemoryModel model(options.model);
    device::Device dev("gpu", bench::scaledBudget(data, 24.0) * 16);
    double compute_seconds = 0.0;
    for (const auto &mb : batches) {
        compute_seconds += dev.costModel().kernelsSeconds(
            model.microBatchFlops(mb), 64);
        compute_seconds += dev.costModel().transferSeconds(
            model.transferBytes(mb));
    }

    util::Table table({"phase", "seconds", "% of iteration"});
    const double total =
        partition_seconds + blockgen_seconds + compute_seconds;
    auto row = [&](const char *phase, double seconds) {
        table.addRow({phase, util::formatSeconds(seconds),
                      util::formatPercent(seconds / total)});
    };
    row("METIS partitioning", partition_seconds);
    row("block generation", blockgen_seconds);
    row("GPU compute (simulated)", compute_seconds);
    table.print();
    reporter.metric(data.name() + ".micro_batches",
                    static_cast<double>(batches.size()), 0.0);
    reporter.info(data.name() + ".partition_seconds",
                  partition_seconds);
    reporter.info(data.name() + ".blockgen_seconds", blockgen_seconds);
    reporter.info(data.name() + ".compute_seconds", compute_seconds);
    std::printf("partitioning+preparation : compute ratio = %.1f : 1 "
                "(paper: partitioning dominates, e.g. 33.4s vs 3.4s "
                "on products)\n",
                (partition_seconds + blockgen_seconds) /
                    std::max(compute_seconds, 1e-12));
}

} // namespace

int
main()
{
    bench::Reporter reporter("fig05");
    runDataset(graph::DatasetId::Arxiv, 1024, reporter);
    runDataset(graph::DatasetId::Products, 2048, reporter);
    reporter.write();
    return 0;
}
