/**
 * @file
 * Table IV: training loss of DGL-style whole-batch training vs.
 * Buffalo micro-batch training, GraphSAGE and GAT, across datasets.
 *
 * Whole-batch runs under the scaled 24 GB budget and OOMs on the
 * large datasets (the paper's "OOM" cells); Buffalo trains everywhere
 * and its loss matches whole-batch wherever both run.
 */
#include "bench_common.h"

using namespace buffalo;

namespace {

struct Cell
{
    std::string text;
    double loss = -1.0;
};

Cell
runSystem(const graph::Dataset &data, train::ModelKind kind,
          bool buffalo, std::size_t batch_size, int epochs)
{
    train::TrainerOptions options;
    options.model_kind = kind;
    options.model.aggregator = kind == train::ModelKind::Sage
                                   ? nn::AggregatorKind::Lstm
                                   : nn::AggregatorKind::Mean;
    options.model.num_layers = 2;
    options.model.feature_dim = data.featureDim();
    options.model.hidden_dim = 16;
    options.model.num_classes = data.numClasses();
    options.fanouts = {5, 10};
    options.learning_rate = 5e-3;
    options.mode = train::ExecutionMode::Numeric;
    options.seed = 88;

    const std::uint64_t budget = bench::scaledBudget(data, 24.0);
    device::Device dev("gpu", std::max<std::uint64_t>(
                                  budget, util::mib(2)));
    util::Rng rng(51);
    try {
        std::unique_ptr<train::TrainerBase> trainer;
        if (buffalo) {
            trainer = std::make_unique<train::BuffaloTrainer>(options,
                                                              dev);
        } else {
            trainer = std::make_unique<train::WholeBatchTrainer>(
                options, dev);
        }
        auto curve = train::runTraining(*trainer, data, epochs,
                                        batch_size, rng);
        Cell cell;
        cell.loss = curve.back().mean_loss;
        cell.text = util::Table::num(cell.loss, 4);
        return cell;
    } catch (const device::DeviceOom &) {
        return {"OOM", -1.0};
    } catch (const Error &) {
        return {"infeasible", -1.0};
    }
}

} // namespace

int
main()
{
    bench::banner("Table IV: training loss, DGL(-like) vs. Buffalo "
                  "(numeric, scaled budget)");
    bench::Reporter reporter("table4");
    int matches = 0, differs = 0, buffalo_only = 0;
    util::Table table({"dataset", "model", "DGL-like / loss",
                       "Buffalo / loss", "parity"});
    for (auto id : graph::allDatasetIds()) {
        // GAT only on the small datasets, as in the paper's table.
        const bool small = id == graph::DatasetId::Cora ||
                           id == graph::DatasetId::Pubmed ||
                           id == graph::DatasetId::Arxiv;
        auto data = graph::loadDataset(id, 42, 0.25);
        for (auto kind : {train::ModelKind::Sage,
                          train::ModelKind::Gat}) {
            if (kind == train::ModelKind::Gat && !small)
                continue;
            const int epochs = 3;
            const std::size_t batch =
                std::min<std::size_t>(1024,
                                      data.trainNodes().size());
            Cell whole = runSystem(data, kind, false, batch, epochs);
            Cell buffalo = runSystem(data, kind, true, batch, epochs);
            std::string parity = "-";
            if (whole.loss >= 0 && buffalo.loss >= 0) {
                const bool match =
                    std::abs(whole.loss - buffalo.loss) <
                    5e-3 * std::max(1.0, whole.loss);
                parity = match ? "MATCH" : "DIFFERS";
                ++(match ? matches : differs);
            } else if (whole.loss < 0 && buffalo.loss >= 0) {
                parity = "Buffalo only";
                ++buffalo_only;
            }
            table.addRow({data.name(), modelKindName(kind),
                          whole.text, buffalo.text, parity});
        }
    }
    table.print();
    reporter.metric("matches", static_cast<double>(matches), 0.0)
        .metric("differs", static_cast<double>(differs), 0.0)
        .metric("buffalo_only", static_cast<double>(buffalo_only),
                0.0);
    reporter.write();
    std::printf("paper shape: wherever DGL fits, losses are "
                "statistically identical; on the large datasets DGL "
                "OOMs while Buffalo still trains\n");
    return 0;
}
