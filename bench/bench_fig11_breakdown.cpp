/**
 * @file
 * Figure 11: end-to-end execution time breakdown, Betty vs. Buffalo,
 * across all datasets — including OGBN-papers(-sim), where Betty fails
 * on zero-in-edge nodes ("no data" in the paper's figure).
 *
 * Phases: Buffalo scheduling, REG construction, METIS partition,
 * connection check, block construction, data loading, GPU compute.
 */
#include "bench_common.h"

#include "baselines/betty.h"
#include "obs/critical_path.h"

using namespace buffalo;

namespace {

/**
 * Routes the per-phase times through the same critical-path
 * decomposition buffalo_profile uses. A serial trainer is a
 * one-item chain, so each stage's CP self time equals its measured
 * phase time — the table stays identical while the accounting path
 * is shared with the analyzer instead of ad-hoc phase sums.
 */
obs::CriticalPathReport
printBreakdown(const std::string &system,
               const train::IterationStats &stats, util::Table &table)
{
    std::vector<std::string> order;
    std::vector<double> durations;
    for (const train::Phase phase : train::kAllPhases) {
        order.push_back(train::phaseName(phase));
        durations.push_back(
            stats.phases.get(train::phaseName(phase)));
    }
    const obs::CriticalPathReport cp =
        obs::analyzeModeledPipeline(order, {durations});
    std::vector<std::string> row{system};
    for (const obs::CpStageReport &stage : cp.stages)
        row.push_back(util::formatSeconds(stage.cp_self_us / 1e6));
    row.push_back(util::formatSeconds(stats.endToEndSeconds()));
    table.addRow(std::move(row));
    return cp;
}

void
runDataset(graph::DatasetId id, std::size_t num_seeds, int betty_k,
           bench::Reporter &reporter)
{
    auto data = graph::loadDataset(id, 42);
    bench::banner("Figure 11: execution breakdown", data);
    const auto seeds = bench::seedBatch(data, num_seeds);

    util::Table table({"system", "sampling", "scheduling", "REG",
                       "METIS", "conn check", "block constr",
                       "data load", "GPU compute", "total"});

    double betty_total = -1.0, buffalo_total = -1.0;

    // Betty.
    {
        train::TrainerOptions options = bench::paperOptions(data);
        device::Device dev("gpu", bench::scaledBudget(data, 24.0));
        util::Rng rng(13);
        try {
            train::BettyTrainer trainer(options, dev, betty_k);
            auto stats = trainer.trainIteration(data, seeds, rng);
            printBreakdown("Betty", stats, table);
            betty_total = stats.endToEndSeconds();
        } catch (const baselines::BettyUnsupported &e) {
            table.addRow({"Betty", "-", "-", "-", "-", "-", "-",
                          "-", "-",
                          "no data (zero-in-edge nodes)"});
        } catch (const device::DeviceOom &) {
            table.addRow({"Betty", "-", "-", "-", "-", "-", "-",
                          "-", "-", "OOM"});
        }
    }

    // Buffalo.
    {
        train::TrainerOptions options = bench::paperOptions(data);
        device::Device dev("gpu", bench::scaledBudget(data, 24.0));
        util::Rng rng(13);
        train::BuffaloTrainer trainer(options, dev);
        auto stats = trainer.trainIteration(data, seeds, rng);
        const obs::CriticalPathReport cp =
            printBreakdown("Buffalo", stats, table);
        buffalo_total = stats.endToEndSeconds();
        if (!cp.dominant_stage.empty()) {
            std::printf("Buffalo dominant stage: %s (%.1f%% of the "
                        "critical path)\n",
                        cp.dominant_stage.c_str(),
                        100.0 * cp.dominant_share);
            reporter.info(data.name() + ".buffalo_dominant_share",
                          cp.dominant_share);
        }
    }
    table.print();
    reporter.info(data.name() + ".buffalo_seconds", buffalo_total);
    if (betty_total > 0)
        reporter.info(data.name() + ".betty_seconds", betty_total);
    reporter.metric(data.name() + ".betty_ran",
                    betty_total > 0 ? 1.0 : 0.0, 0.0);
    if (betty_total > 0 && buffalo_total > 0) {
        std::printf("Buffalo end-to-end reduction vs Betty: %s "
                    "(paper average: 70.9%%)\n",
                    util::formatPercent(1.0 -
                                        buffalo_total / betty_total)
                        .c_str());
    }
}

} // namespace

int
main()
{
    bench::Reporter reporter("fig11");
    runDataset(graph::DatasetId::Cora, 512, 2, reporter);
    runDataset(graph::DatasetId::Pubmed, 512, 2, reporter);
    runDataset(graph::DatasetId::Reddit, 768, 4, reporter);
    runDataset(graph::DatasetId::Arxiv, 1024, 4, reporter);
    runDataset(graph::DatasetId::Products, 2048, 8, reporter);
    runDataset(graph::DatasetId::Papers, 2048, 8, reporter);
    reporter.write();
    std::printf("\npaper shape: Betty's REG+METIS dominates on large "
                "graphs (46.8%% of end-to-end on average); Buffalo "
                "replaces it with near-free bucket scheduling; Betty "
                "has no data on OGBN-papers\n");
    return 0;
}
