/**
 * @file
 * Figure 14: memory consumption of each micro-batch after Buffalo.
 *
 * The paper reports 4-6% spread across micro-batches (arxiv split 4
 * ways, products 12, papers 8). We schedule to approximately those
 * micro-batch counts by shrinking the budget, then report each
 * micro-batch's modeled memory and the spread.
 */
#include "bench_common.h"

#include <cmath>

#include "core/micro_batch_generator.h"
#include "core/scheduler.h"

using namespace buffalo;

namespace {

void
runDataset(graph::DatasetId id, std::size_t num_seeds,
           int target_micro_batches, bench::Reporter &reporter)
{
    auto data = graph::loadDataset(id, 42);
    bench::banner("Figure 14: per-micro-batch memory balance", data);

    train::TrainerOptions options = bench::paperOptions(data);
    nn::MemoryModel model(options.model);

    util::Rng rng(19);
    sampling::NeighborSampler sampler(options.fanouts);
    auto sg = sampler.sample(data.graph(),
                             bench::seedBatch(data, num_seeds), rng);

    // Find a budget that yields roughly the target micro-batch count
    // by bisection over raw bytes.
    core::ScheduleResult schedule;
    double lo = static_cast<double>(util::mib(8));
    double hi = static_cast<double>(util::gib(16));
    for (int iter = 0; iter < 30; ++iter) {
        const double mid = std::sqrt(lo * hi);
        core::SchedulerOptions sched;
        sched.mem_constraint = static_cast<std::uint64_t>(mid);
        core::BuffaloScheduler scheduler(
            model, data.spec().paper_avg_coefficient, sched);
        try {
            schedule = scheduler.schedule(sg);
        } catch (const Error &) {
            lo = mid;
            continue;
        }
        if (schedule.num_groups > target_micro_batches)
            lo = mid;
        else if (schedule.num_groups < target_micro_batches)
            hi = mid;
        else
            break;
    }

    core::MicroBatchGenerator generator;
    auto batches = generator.generate(sg, schedule.groups);

    util::Table table({"micro-batch", "modeled memory", "est (Eq. 2)",
                       "outputs", "inputs"});
    std::vector<double> costs;
    for (std::size_t i = 0; i < batches.size(); ++i) {
        const double bytes =
            static_cast<double>(model.microBatchBytes(batches[i]));
        costs.push_back(bytes);
        table.addRow(
            {std::to_string(i),
             util::formatBytes(static_cast<std::uint64_t>(bytes)),
             util::formatBytes(schedule.groups[i].est_bytes),
             util::Table::count(batches[i].outputNodes().size()),
             util::Table::count(batches[i].inputNodes().size())});
    }
    table.print();

    auto stats = util::SummaryStats::of(costs);
    reporter.metric(data.name() + ".micro_batches",
                    static_cast<double>(schedule.num_groups), 0.0);
    reporter.metric(data.name() + ".memory_spread",
                    (stats.max - stats.min) / stats.max, 0.1);
    std::printf("micro-batches: %d, memory spread (max-min)/max = %s "
                "(paper: 4-6%%)\n",
                schedule.num_groups,
                util::formatPercent((stats.max - stats.min) /
                                    stats.max)
                    .c_str());
}

} // namespace

int
main()
{
    bench::Reporter reporter("fig14");
    runDataset(graph::DatasetId::Arxiv, 1024, 4, reporter);
    runDataset(graph::DatasetId::Products, 2048, 12, reporter);
    runDataset(graph::DatasetId::Papers, 2048, 8, reporter);
    reporter.write();
    return 0;
}
