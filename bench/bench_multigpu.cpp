/**
 * @file
 * §V-G: multi-GPU data parallelism. Two simulated A100-class devices
 * vs. one, same per-device budgets as Fig. 15. The paper reports only
 * a 3-5% end-to-end gain because micro-batch generation (host side)
 * is unchanged and training is a small fraction of the iteration.
 */
#include "bench_common.h"

#include "obs/critical_path.h"

using namespace buffalo;

int
main()
{
    auto data = graph::loadDataset(graph::DatasetId::Products, 42);
    bench::banner("Multi-GPU data parallelism (paper section V-G)",
                  data);
    const auto seeds = bench::seedBatch(data, 2048);
    bench::Reporter reporter("multigpu");

    util::Table table({"budget (paper-GB)", "#micro-batches",
                       "1-GPU iter", "2-GPU iter", "reduction",
                       "2-GPU train share", "allreduce overhead",
                       "device overlap eff"});
    for (double paper_gb : {16.0, 24.0, 48.0, 80.0}) {
        train::TrainerOptions options =
            bench::paperOptions(data, nn::AggregatorKind::Lstm);
        const std::uint64_t budget =
            bench::scaledBudget(data, paper_gb);

        device::DeviceGroup one(1, budget);
        device::DeviceGroup two(2, budget);
        util::Rng rng1(59), rng2(59);
        auto single = train::runBuffaloDataParallel(data, options, one,
                                                    seeds, rng1);
        auto dual = train::runBuffaloDataParallel(data, options, two,
                                                  seeds, rng2);
        // The host-side work (sampling, scheduling, block generation)
        // is byte-identical in both runs; use one measurement for both
        // so wall-clock noise does not mask the small device-side gain.
        single.host_seconds = dual.host_seconds;
        single.iteration_seconds = single.host_seconds +
                                   single.device_seconds +
                                   single.allreduce_seconds;

        const std::string key = "gb" + std::to_string(
                                           static_cast<int>(paper_gb));
        reporter.metric(key + ".micro_batches",
                        static_cast<double>(dual.num_micro_batches),
                        0.0);
        reporter.info(key + ".reduction",
                      1.0 - dual.iteration_seconds /
                                single.iteration_seconds);
        // Device overlap efficiency via the shared critical-path
        // helper: serial device work over the two GPUs' aggregate
        // device-slot time — 1.0 means perfect 2-way scaling of the
        // device phase (host-side prep is unchanged by design).
        const double overlap_efficiency = obs::overlapEfficiency(
            single.device_seconds, 2.0 * dual.device_seconds);
        reporter.info(key + ".overlap_efficiency",
                      overlap_efficiency);
        table.addRow(
            {util::Table::num(paper_gb, 0),
             std::to_string(dual.num_micro_batches),
             util::formatSeconds(single.iteration_seconds),
             util::formatSeconds(dual.iteration_seconds),
             util::formatPercent(1.0 - dual.iteration_seconds /
                                           single.iteration_seconds),
             util::formatPercent(dual.device_seconds /
                                 dual.iteration_seconds),
             util::formatPercent(dual.allreduce_seconds /
                                 dual.iteration_seconds),
             util::Table::num(overlap_efficiency, 2)});
    }
    table.print();
    reporter.write();
    std::printf("paper shape: only a 3-5%% reduction — the host-side "
                "micro-batch generation doesn't parallelize and "
                "training is 9-12%% of the iteration; GPU-GPU "
                "communication adds ~1%%\n");
    return 0;
}
