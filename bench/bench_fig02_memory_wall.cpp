/**
 * @file
 * Figure 2: whole-batch GNN training hits the memory capacity wall.
 *
 * Sweeps (a) aggregator, (b) aggregation depth, (c) hidden size, and
 * (d) fanout for GraphSAGE over arxiv-sim and products-sim under a
 * 24 GB-equivalent budget (scaled, see bench_common.h), reporting the
 * peak memory or OOM exactly as the paper's bars do.
 */
#include "bench_common.h"

using namespace buffalo;

namespace {

/** One Fig. 2 configuration row. */
struct Config
{
    std::string label;
    nn::AggregatorKind aggregator;
    int depth;
    int hidden;
    int fanout;
};

void
runDataset(graph::DatasetId id, bench::Reporter &reporter)
{
    auto data = graph::loadDataset(id, 42);
    bench::banner("Figure 2: the memory wall (whole-batch, 24 GB "
                  "budget)",
                  data);

    const std::vector<Config> configs = {
        {"(a) aggregator=mean d=2 h=128 f=10", nn::AggregatorKind::Mean,
         2, 128, 10},
        {"(a) aggregator=pool d=2 h=128 f=10", nn::AggregatorKind::Pool,
         2, 128, 10},
        {"(a) aggregator=lstm d=2 h=128 f=10", nn::AggregatorKind::Lstm,
         2, 128, 10},
        {"(b) lstm depth=3", nn::AggregatorKind::Lstm, 3, 128, 10},
        {"(b) lstm depth=4", nn::AggregatorKind::Lstm, 4, 128, 10},
        {"(c) lstm hidden=256", nn::AggregatorKind::Lstm, 2, 256, 10},
        {"(c) lstm hidden=512", nn::AggregatorKind::Lstm, 2, 512, 10},
        {"(d) lstm fanout=15", nn::AggregatorKind::Lstm, 2, 128, 15},
        {"(d) lstm fanout=20", nn::AggregatorKind::Lstm, 2, 128, 20},
    };

    const std::uint64_t budget = bench::scaledBudget(data, 24.0);
    std::printf("scaled budget: %s (= 24 GB at paper scale)\n",
                util::formatBytes(budget).c_str());

    util::Table table(
        {"config", "peak memory", "% of budget", "status"});
    int oom_count = 0;
    for (const auto &config : configs) {
        train::TrainerOptions options = bench::paperOptions(
            data, config.aggregator, config.hidden, config.depth);
        options.fanouts.assign(config.depth, config.fanout);
        options.fanouts.back() = config.fanout * 2;

        device::Device dev("gpu", budget);
        auto seeds =
            id == graph::DatasetId::Products
                ? bench::nodeBatch(data, 8192)
                : bench::fullBatch(data);
        util::Rng rng(7);
        try {
            train::WholeBatchTrainer trainer(options, dev);
            auto stats = trainer.trainIteration(data, seeds, rng);
            table.addRow(
                {config.label,
                 util::formatBytes(stats.peak_device_bytes),
                 util::formatPercent(
                     static_cast<double>(stats.peak_device_bytes) /
                     budget),
                 "ok"});
        } catch (const device::DeviceOom &oom) {
            ++oom_count;
            table.addRow({config.label,
                          ">" + util::formatBytes(budget),
                          ">100%", "OOM"});
        }
    }
    table.print();
    reporter.metric(data.name() + ".oom_configs",
                    static_cast<double>(oom_count), 0.0);
    reporter.metric(data.name() + ".configs",
                    static_cast<double>(configs.size()), 0.0);
}

} // namespace

int
main()
{
    bench::Reporter reporter("fig02");
    runDataset(graph::DatasetId::Arxiv, reporter);
    runDataset(graph::DatasetId::Products, reporter);
    reporter.write();
    std::printf("\npaper shape: advancing any axis (aggregator, depth,"
                " hidden, fanout) crosses the capacity wall -> OOM\n");
    return 0;
}
