/**
 * @file
 * Serial vs pipelined epoch comparison (§V-G pipelining headroom).
 *
 * Part 1 (numeric): verifies the pipelined trainer reproduces the
 * serial per-epoch loss to 1e-12 while the feature cache serves hits.
 * Part 2 (cost model): sweeps prefetch depth and feature-cache size on
 * the synthetic power-law arxiv-sim graph, reporting modeled epoch
 * time with preparation overlapped behind device execution, transfer
 * bytes, bytes saved by the cache, and cache hit rate.
 * Part 3 (cost model): compares the cache policies at equal capacity —
 * pure LRU, degree ranking, and pre-sampling frequency ranking — and
 * gates that the presample policy's hit rate beats degree ranking.
 */
#include "bench_common.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "pipeline/pipeline_trainer.h"

using namespace buffalo;

namespace {

std::string
fmtDouble(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    return buf;
}

/** Serial reference epoch costs via the stock trainer. */
struct SerialEpoch
{
    double loss = 0.0;
    double seconds = 0.0;
    std::uint64_t transfer_bytes = 0;
};

std::vector<SerialEpoch>
runSerial(const graph::Dataset &data,
          const train::TrainerOptions &options, std::uint64_t budget,
          int epochs, std::size_t batch_size, std::uint64_t seed)
{
    device::Device dev("serial", budget);
    train::BuffaloTrainer trainer(options, dev);
    util::Rng rng(seed);
    std::vector<SerialEpoch> out;
    std::uint64_t last_transfer = 0;
    for (int e = 0; e < epochs; ++e) {
        const double before = dev.totalSeconds();
        const auto stats =
            train::runTraining(trainer, data, 1, batch_size, rng);
        SerialEpoch epoch;
        epoch.loss = stats.front().mean_loss;
        epoch.seconds = stats.front().epoch_seconds > 0.0
                            ? stats.front().epoch_seconds
                            : dev.totalSeconds() - before;
        epoch.transfer_bytes = dev.transferredBytes() - last_transfer;
        last_transfer = dev.transferredBytes();
        out.push_back(epoch);
    }
    return out;
}

/** Part 1: numeric loss parity + cache effectiveness. */
bool
numericParity()
{
    auto data = graph::loadDataset(graph::DatasetId::Arxiv, 42, 0.08);
    bench::banner("pipeline: numeric loss parity", data);

    train::TrainerOptions options;
    options.model.aggregator = nn::AggregatorKind::Mean;
    options.model.num_layers = 2;
    options.model.feature_dim = data.featureDim();
    options.model.hidden_dim = 16;
    options.model.num_classes = data.numClasses();
    options.fanouts = {5, 10};
    const std::uint64_t budget = util::gib(4);
    constexpr int kEpochs = 2;
    constexpr std::size_t kBatch = 64;
    constexpr std::uint64_t kSeed = 7;

    const auto serial =
        runSerial(data, options, budget, kEpochs, kBatch, kSeed);

    device::Device dev("pipelined", budget);
    train::TrainerOptions pipelined_options = options;
    pipelined_options.pipeline.prefetch_depth = 2;
    pipelined_options.pipeline.feature_cache_bytes = util::mib(8);
    pipelined_options.pipeline.pinned_hot_nodes = 64;
    pipeline::PipelineTrainer trainer(pipelined_options, dev);
    util::Rng rng(kSeed);

    util::Table table({"epoch", "serial loss", "pipelined loss",
                       "|diff|", "cache hit rate", "saved bytes"});
    bool ok = true;
    for (int e = 0; e < kEpochs; ++e) {
        const auto stats = trainer.trainEpoch(data, kBatch, rng);
        const double diff =
            std::abs(stats.mean_loss - serial[e].loss);
        ok = ok && diff <= 1e-12 && stats.cache.hits > 0 &&
             stats.transfer_saved_bytes > 0;
        table.addRow({std::to_string(e),
                      fmtDouble(serial[e].loss, 12),
                      fmtDouble(stats.mean_loss, 12),
                      fmtDouble(diff, 3),
                      util::formatPercent(stats.cache.hitRate()),
                      util::formatBytes(stats.transfer_saved_bytes)});
    }
    table.print();
    std::printf("numeric parity (<=1e-12) with cache hits: %s\n",
                ok ? "PASS" : "FAIL");
    return ok;
}

/** Part 2: cost-model sweep over depth and cache size. */
bool
costModelSweep()
{
    auto data = graph::loadDataset(graph::DatasetId::Arxiv, 42, 0.25);
    bench::banner("pipeline: overlap + cache sweep (cost model)",
                  data);

    train::TrainerOptions options = bench::paperOptions(data);
    const std::uint64_t budget = bench::scaledBudget(data, 24.0);
    constexpr std::size_t kBatch = 256;
    constexpr std::uint64_t kSeed = 11;

    const auto serial =
        runSerial(data, options, budget, 1, kBatch, kSeed);
    std::printf("serial epoch: %s, transfer %s\n",
                util::formatSeconds(serial[0].seconds).c_str(),
                util::formatBytes(serial[0].transfer_bytes).c_str());

    util::Table table({"depth", "cache", "pipelined", "vs serial",
                       "transfer", "saved", "hit rate"});
    bool overlap_ok = false;
    bool cache_ok = false;
    for (const int depth : {1, 2, 4}) {
        for (const double cache_mb : {0.0, 2.0, 8.0}) {
            device::Device dev("gpu", budget);
            train::TrainerOptions swept = options;
            swept.pipeline.prefetch_depth = depth;
            swept.pipeline.feature_cache_bytes = util::mib(cache_mb);
            swept.pipeline.pinned_hot_nodes = cache_mb > 0 ? 128 : 0;
            pipeline::PipelineTrainer trainer(swept, dev);
            util::Rng rng(kSeed);
            const auto stats = trainer.trainEpoch(data, kBatch, rng);

            if (depth >= 2 &&
                stats.pipelined_seconds < stats.serial_seconds)
                overlap_ok = true;
            if (cache_mb > 0 && stats.cache.hits > 0 &&
                stats.transfer_saved_bytes > 0)
                cache_ok = true;

            table.addRow(
                {std::to_string(depth),
                 cache_mb > 0 ? util::formatBytes(util::mib(cache_mb))
                              : "off",
                 util::formatSeconds(stats.pipelined_seconds),
                 util::formatPercent(1.0 - stats.overlapRatio()) +
                     " faster",
                 util::formatBytes(stats.transfer_bytes),
                 util::formatBytes(stats.transfer_saved_bytes),
                 cache_mb > 0
                     ? util::formatPercent(stats.cache.hitRate())
                     : "-"});
        }
    }
    table.print();
    std::printf("pipelined < serial at depth >= 2: %s\n",
                overlap_ok ? "PASS" : "FAIL");
    std::printf("cache hits reduce transfer bytes: %s\n",
                cache_ok ? "PASS" : "FAIL");
    return overlap_ok && cache_ok;
}

/**
 * Part 3: cache policies at equal capacity. The cache is small enough
 * that the pin-set choice matters, and `pinned_hot_nodes = 0` lets
 * each policy fill the whole capacity, so the hit rate isolates
 * ranking quality: degree ranking pins structurally hot nodes, the
 * presample pass pins the nodes the actual sampler visits.
 */
bool
policySweep(bench::Reporter &reporter)
{
    auto data = graph::loadDataset(graph::DatasetId::Arxiv, 42, 0.25);
    bench::banner("pipeline: cache-policy hit rates (equal capacity)",
                  data);

    train::TrainerOptions options = bench::paperOptions(data);
    // Shallow fanouts weight the per-epoch train-seed accesses (which
    // only the presample pass observes) against the hub-neighbor
    // accesses degree ranking already predicts.
    options.fanouts = {4, 4};
    const std::uint64_t budget = bench::scaledBudget(data, 24.0);
    constexpr std::size_t kBatch = 256;
    constexpr std::uint64_t kSeed = 11;

    util::Table table(
        {"policy", "hit rate", "hits", "misses", "pinned", "saved"});
    double degree_rate = 0.0;
    double presample_rate = 0.0;
    for (const train::CachePolicyKind kind :
         {train::CachePolicyKind::LruOnly,
          train::CachePolicyKind::Degree,
          train::CachePolicyKind::PresampleFrequency}) {
        device::Device dev("gpu", budget);
        train::TrainerOptions swept = options;
        swept.pipeline.prefetch_depth = 2;
        // Small enough that only ~1/8 of the nodes fit, so the hit
        // rate reflects which nodes the policy chose to pin.
        swept.pipeline.feature_cache_bytes = util::mib(0.25);
        swept.pipeline.pinned_hot_nodes = 0; // policy-chosen fill
        swept.pipeline.cache_policy = kind;
        swept.pipeline.presample_batches = 32;
        pipeline::PipelineTrainer trainer(swept, dev);
        util::Rng rng(kSeed);
        const auto stats = trainer.trainEpoch(data, kBatch, rng);

        const double rate = stats.cache.hitRate();
        if (kind == train::CachePolicyKind::Degree)
            degree_rate = rate;
        else if (kind == train::CachePolicyKind::PresampleFrequency)
            presample_rate = rate;
        // Sampling and the feature stage are seeded and
        // single-threaded under the cost model, so hit counts diff
        // exactly across runs.
        reporter.metric("policy_" + stats.cache.policy + "_hit_rate",
                        rate, 0.0);
        table.addRow({stats.cache.policy,
                      util::formatPercent(rate),
                      std::to_string(stats.cache.hits),
                      std::to_string(stats.cache.misses),
                      std::to_string(stats.cache.pinned_nodes),
                      util::formatBytes(stats.transfer_saved_bytes)});
    }
    table.print();
    const bool ok = presample_rate > degree_rate;
    std::printf("presample frequency beats degree ranking: %s "
                "(%.4f vs %.4f)\n",
                ok ? "PASS" : "FAIL", presample_rate, degree_rate);
    reporter.metric("presample_beats_degree", ok ? 1.0 : 0.0, 0.0);
    return ok;
}

} // namespace

int
main()
{
    const bool parity = numericParity();
    const bool sweep = costModelSweep();
    bench::Reporter reporter("pipeline");
    const bool policies = policySweep(reporter);
    reporter.metric("numeric_parity", parity ? 1.0 : 0.0, 0.0)
        .metric("overlap_and_cache", sweep ? 1.0 : 0.0, 0.0);
    reporter.write();
    std::printf("\npaper shape: §V-G identifies preparation/transfer "
                "as the residual bottleneck once bucketization fits "
                "memory; overlapping it behind device compute and "
                "deduplicating redundant feature transfers (Eq. 1-2 "
                "redundancy) recovers that time without changing the "
                "training computation\n");
    return parity && sweep && policies ? EXIT_SUCCESS : EXIT_FAILURE;
}
