/**
 * @file
 * Ablations of Buffalo's design choices (DESIGN.md per-experiment
 * index):
 *   1. redundancy-aware (Eq. 1-2) vs. linear memory estimation,
 *   2. largest-first balanced grouping vs. first-fit-decreasing,
 *   3. explosion-bucket splitting on vs. off.
 * Metric: micro-batch count K chosen and budget utilization (higher
 * utilization at equal safety = fewer, fuller micro-batches = less
 * preparation/loading overhead).
 */
#include "bench_common.h"

#include "core/micro_batch_generator.h"
#include "core/scheduler.h"

using namespace buffalo;

namespace {

struct Variant
{
    std::string name;
    std::string key;
    core::SchedulerOptions options;
};

void
runDataset(graph::DatasetId id, double paper_gb,
           std::size_t batch_size, bench::Reporter &reporter)
{
    auto data = graph::loadDataset(id, 42);
    bench::banner("Ablation: scheduler design choices", data);

    train::TrainerOptions topts = bench::paperOptions(data);
    nn::MemoryModel model(topts.model);
    const std::uint64_t budget = bench::scaledBudget(data, paper_gb);
    std::printf("budget: %s (%.0f GB at paper scale)\n",
                util::formatBytes(budget).c_str(), paper_gb);

    util::Rng rng(61);
    sampling::NeighborSampler sampler(topts.fanouts);
    // Large batches: Eq. 1's redundancy discount only engages when a
    // bucket's inputs saturate (I/(O*D) < C), which needs many seeds.
    auto sg = sampler.sample(data.graph(),
                             bench::nodeBatch(data, batch_size), rng);

    std::vector<Variant> variants;
    {
        Variant v{"Buffalo (full)", "full", {}};
        variants.push_back(v);
    }
    {
        Variant v{"linear estimator", "linear", {}};
        v.options.redundancy_aware = false;
        variants.push_back(v);
    }
    {
        Variant v{"first-fit grouping", "firstfit", {}};
        v.options.policy = core::GroupingPolicy::FirstFit;
        variants.push_back(v);
    }
    {
        Variant v{"no bucket splitting", "nosplit", {}};
        v.options.enable_split = false;
        variants.push_back(v);
    }

    util::Table table({"variant", "K", "max group est", "min group "
                       "est", "balance", "modeled peak",
                       "utilization"});
    for (auto &variant : variants) {
        variant.options.mem_constraint = budget;
        core::BuffaloScheduler scheduler(
            model, data.spec().paper_avg_coefficient,
            variant.options);
        try {
            auto schedule = scheduler.schedule(sg);
            std::uint64_t max_est = 0, min_est = UINT64_MAX;
            for (const auto &group : schedule.groups) {
                max_est = std::max(max_est, group.est_bytes);
                min_est = std::min(min_est, group.est_bytes);
            }
            // Modeled peak of the generated micro-batches.
            core::MicroBatchGenerator generator;
            std::uint64_t peak = 0;
            for (const auto &group : schedule.groups) {
                auto mb = generator.generateOne(sg, group);
                peak = std::max(peak, model.microBatchBytes(mb));
            }
            const std::string mkey =
                data.name() + "." + variant.key;
            reporter.metric(mkey + ".k",
                            static_cast<double>(schedule.num_groups),
                            0.0);
            reporter.metric(mkey + ".modeled_peak_bytes",
                            static_cast<double>(peak), 0.02);
            table.addRow(
                {variant.name, std::to_string(schedule.num_groups),
                 util::formatBytes(max_est),
                 util::formatBytes(min_est),
                 util::Table::num(
                     static_cast<double>(max_est) /
                         std::max<std::uint64_t>(min_est, 1),
                     2),
                 util::formatBytes(peak),
                 util::formatPercent(static_cast<double>(peak) /
                                     budget)});
        } catch (const Error &) {
            reporter.metric(data.name() + "." + variant.key +
                                ".infeasible",
                            1.0, 0.0);
            table.addRow({variant.name, "-", "-", "-", "-", "-",
                          "infeasible"});
        }
    }
    table.print();
}

} // namespace

int
main()
{
    bench::Reporter reporter("ablation");
    runDataset(graph::DatasetId::Reddit, 24.0, 4096, reporter);
    runDataset(graph::DatasetId::Products, 6.0, 8192, reporter);
    reporter.write();
    std::printf(
        "\ntakeaways: (1) bucket splitting is the load-bearing "
        "mechanism — without it the atomic cut-off bucket makes tight "
        "budgets infeasible on both datasets; (2) grouping balance "
        "stays within ~4%% across variants once pieces are uniform; "
        "(3) the redundancy-aware vs. linear estimator choice "
        "coincides at this reduced scale because per-piece cones do "
        "not saturate (Eq. 1 clamps to 1) — at paper scale the "
        "discount prices shared neighbors and is what keeps K small "
        "(see Table III)\n");
    return 0;
}
