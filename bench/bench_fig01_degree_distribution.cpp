/**
 * @file
 * Figure 1: degree frequency of all nodes in OGBN-products.
 *
 * Reproduces the long-tail (power-law) degree distribution that causes
 * bucket explosion: the log-binned histogram must fall roughly
 * linearly on a log-log scale, with a heavy tail far beyond the mean.
 */
#include "bench_common.h"

#include <cmath>

#include "graph/stats.h"

using namespace buffalo;

int
main()
{
    auto data = graph::loadDataset(graph::DatasetId::Products, 42);
    bench::banner("Figure 1: degree frequency, OGBN-products(-sim)",
                  data);

    const auto &g = data.graph();
    util::Histogram hist = util::Histogram::logarithmic(
        static_cast<double>(g.maxDegree()) + 1, 2.0);
    for (graph::NodeId u = 0; u < g.numNodes(); ++u)
        hist.add(static_cast<double>(g.degree(u)));

    util::Table table({"degree bin", "#nodes", "log10(#nodes)"});
    for (const auto &bin : hist.bins()) {
        if (bin.count == 0)
            continue;
        table.addRow({"[" + util::Table::num(bin.lo, 0) + ", " +
                          util::Table::num(bin.hi, 0) + ")",
                      util::Table::count(bin.count),
                      util::Table::num(
                          std::log10(static_cast<double>(bin.count)),
                          2)});
    }
    table.print();

    auto fit = graph::fitPowerLaw(g);
    bench::Reporter reporter("fig01");
    reporter.metric("nodes", static_cast<double>(g.numNodes()), 0.0)
        .metric("max_degree", static_cast<double>(g.maxDegree()), 0.0)
        .metric("avg_degree", graph::averageDegree(g), 0.01)
        .metric("power_law_alpha", fit.alpha, 0.05)
        .metric("is_power_law", fit.is_power_law ? 1.0 : 0.0, 0.0);
    reporter.write();
    std::printf("power-law tail: alpha=%.2f (paper: heavy-tailed), "
                "max degree %llu = %.0fx the mean %.1f\n",
                fit.alpha,
                static_cast<unsigned long long>(g.maxDegree()),
                static_cast<double>(g.maxDegree()) /
                    graph::averageDegree(g),
                graph::averageDegree(g));
    std::printf("verdict: %s (paper Fig. 1 shows the same long "
                "tail)\n",
                fit.is_power_law ? "LONG-TAILED" : "not long-tailed");
    return 0;
}
