/**
 * @file
 * Figure 13: Buffalo breaks the memory wall of Figure 2.
 *
 * The same configurations that OOM'd under whole-batch training now
 * run under the identical 24 GB-equivalent budget, with the scheduler
 * choosing the number of micro-batches (the paper annotates each bar
 * with that count, e.g. 15 micro-batches for LSTM).
 */
#include "bench_common.h"

using namespace buffalo;

namespace {

struct Config
{
    std::string label;
    nn::AggregatorKind aggregator;
    int depth;
    int hidden;
    int fanout;
    bool arxiv_only = false;
};

void
runDataset(graph::DatasetId id, bench::Reporter &reporter)
{
    auto data = graph::loadDataset(id, 42);
    bench::banner("Figure 13: Buffalo breaks the memory wall", data);

    const std::vector<Config> configs = {
        {"mean d=2 h=128 f=10", nn::AggregatorKind::Mean, 2, 128, 10},
        {"pool d=2 h=128 f=10", nn::AggregatorKind::Pool, 2, 128, 10},
        {"lstm d=2 h=128 f=10", nn::AggregatorKind::Lstm, 2, 128, 10},
        // The depth sweep runs on arxiv only: at products-sim's scale
        // a 3-4 hop cone covers nearly the whole graph, which blows
        // the single-core simulation budget (see DESIGN.md).
        {"lstm depth=3", nn::AggregatorKind::Lstm, 3, 128, 10, true},
        {"lstm depth=4", nn::AggregatorKind::Lstm, 4, 128, 10, true},
        {"lstm hidden=256", nn::AggregatorKind::Lstm, 2, 256, 10},
        {"lstm hidden=512", nn::AggregatorKind::Lstm, 2, 512, 10},
        {"lstm fanout=15", nn::AggregatorKind::Lstm, 2, 128, 15},
        {"lstm fanout=20", nn::AggregatorKind::Lstm, 2, 128, 20},
        // fanout=800 = effectively full neighborhoods (paper: "we
        // achieve this while also increasing the fanout to 20 and 800
        // using 2 and 13 micro-batches"). arxiv-only for tractability.
        {"lstm fanout=800 (full)", nn::AggregatorKind::Lstm, 2, 128,
         800, true},
    };

    const std::uint64_t budget = bench::scaledBudget(data, 24.0);
    std::printf("scaled budget: %s (= 24 GB at paper scale)\n",
                util::formatBytes(budget).c_str());

    util::Table table({"config", "#micro-batches", "peak memory",
                       "% of budget", "status"});
    int ran = 0, infeasible = 0;
    for (const auto &config : configs) {
        if (config.arxiv_only && id != graph::DatasetId::Arxiv)
            continue;
        train::TrainerOptions options = bench::paperOptions(
            data, config.aggregator, config.hidden, config.depth);
        options.fanouts.assign(config.depth, config.fanout);
        options.fanouts.back() = std::min(config.fanout * 2, 800);

        device::Device dev("gpu", budget);
        auto seeds =
            id == graph::DatasetId::Products
                ? bench::nodeBatch(data, 8192)
                : bench::fullBatch(data);
        util::Rng rng(7);
        try {
            train::BuffaloTrainer trainer(options, dev);
            auto stats = trainer.trainIteration(data, seeds, rng);
            ++ran;
            if (config.aggregator == nn::AggregatorKind::Lstm &&
                config.depth == 2 && config.hidden == 128 &&
                config.fanout == 10) {
                reporter.metric(
                    data.name() + ".lstm_micro_batches",
                    static_cast<double>(stats.num_micro_batches), 0.0);
                reporter.metric(
                    data.name() + ".lstm_peak_bytes",
                    static_cast<double>(stats.peak_device_bytes),
                    0.05);
            }
            table.addRow(
                {config.label,
                 std::to_string(stats.num_micro_batches),
                 util::formatBytes(stats.peak_device_bytes),
                 util::formatPercent(
                     static_cast<double>(stats.peak_device_bytes) /
                     budget),
                 "ok"});
        } catch (const Error &) {
            ++infeasible;
            table.addRow({config.label, "-", "-", "-", "infeasible"});
        }
    }
    table.print();
    reporter.metric(data.name() + ".configs_ok",
                    static_cast<double>(ran), 0.0);
    reporter.metric(data.name() + ".configs_infeasible",
                    static_cast<double>(infeasible), 0.0);
}

} // namespace

int
main()
{
    bench::Reporter reporter("fig13");
    runDataset(graph::DatasetId::Arxiv, reporter);
    runDataset(graph::DatasetId::Products, reporter);
    reporter.write();
    std::printf("\npaper shape: every Figure 2 OOM becomes 'ok' with "
                "a finite micro-batch count; heavier configs need "
                "more micro-batches\n");
    return 0;
}
