/**
 * @file
 * Compute-kernel bench (DESIGN.md, "Compute kernels"): tiled-GEMM
 * wall-clock scalar vs SIMD at 1 and 4 kernel threads, plus
 * exactly-gated per-op instrumentation counts.
 *
 * Counts (kernel calls, bytes, FLOPs, parallel-vs-serial dispatch
 * decisions) are a pure function of the workload and the grain
 * policy, so they gate at zero tolerance via tools/bench_diff. Raw
 * timings and the scalar-vs-SIMD speedup ratios gate with wide but
 * finite tolerances: wall-clock depends on the host (this simulator's
 * CI container exposes a single core, where the 4-thread run
 * degenerates to serial dispatch plus queue overhead), but the
 * speedups are in-run ratios — losing the SIMD path entirely drifts
 * them far outside the allowance.
 */
#include "bench_common.h"

#include <chrono>

#include "obs/metrics.h"
#include "obs/names.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"

using namespace buffalo;
namespace kernels = buffalo::tensor::kernels;
namespace ops = buffalo::tensor;
using tensor::Tensor;

namespace {

Tensor
randomTensor(std::size_t rows, std::size_t cols, util::Rng &rng)
{
    Tensor t = Tensor::zeros(rows, cols);
    ops::fillUniform(t, 1.0f, rng);
    return t;
}

/** Seconds for one matmul of the given square size under @p cfg. */
double
timeGemm(std::size_t dim, const kernels::KernelConfig &cfg,
         util::Rng &rng)
{
    kernels::setConfig(cfg);
    const Tensor a = randomTensor(dim, dim, rng);
    const Tensor b = randomTensor(dim, dim, rng);
    ops::matmul(a, b); // warm-up: page in A/B, spin up the pool
    const auto start = std::chrono::steady_clock::now();
    const Tensor c = ops::matmul(a, b);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    // Keep the result alive so the compute cannot be elided.
    return elapsed.count() + (c.data()[0] != c.data()[0] ? 1e9 : 0.0);
}

} // namespace

int
main()
{
    bench::banner("Compute kernels: tiled GEMM + instrumentation");

    util::Rng rng(42);
    kernels::KernelConfig scalar_serial;
    scalar_serial.threads = 1;
    scalar_serial.simd = kernels::SimdMode::Off;
    kernels::KernelConfig simd_serial;
    simd_serial.threads = 1;
    kernels::KernelConfig four;
    four.threads = 4; // SIMD at the build default (Auto)

    // --- Timing: tile-multiple 1024^2 GEMM, scalar vs wide --------
    // In-run comparisons: the speedups divide two measurements taken
    // seconds apart on the same host, so they gate meaningfully even
    // where absolute wall-clock cannot.
    const std::size_t kBig = 1024;
    const double serial_s = timeGemm(kBig, scalar_serial, rng);
    const double simd_s = timeGemm(kBig, simd_serial, rng);
    const double four_s = timeGemm(kBig, four, rng);
    // Single-thread micro-bucket shape: must not regress from the
    // parallel machinery (the grain policy keeps it inline).
    const double micro_s = timeGemm(16, four, rng);

    util::Table table({"case", "seconds", "gflop/s"});
    const double gflop = 2.0 * kBig * kBig * kBig / 1e9;
    table.addRow({"gemm 1024^3, 1 thread scalar",
                  util::formatSeconds(serial_s),
                  util::Table::count(
                      static_cast<std::uint64_t>(gflop / serial_s))});
    table.addRow({std::string("gemm 1024^3, 1 thread ") +
                      kernels::simdIsaName(),
                  util::formatSeconds(simd_s),
                  util::Table::count(
                      static_cast<std::uint64_t>(gflop / simd_s))});
    table.addRow({"gemm 1024^3, 4 threads",
                  util::formatSeconds(four_s),
                  util::Table::count(
                      static_cast<std::uint64_t>(gflop / four_s))});
    table.addRow(
        {"gemm 16^3 (micro)", util::formatSeconds(micro_s), "-"});
    table.print();
    std::printf("simd: %s (width %zu)\n", kernels::simdIsaName(),
                kernels::simdWidth());
    std::printf("speedup %s over scalar, 1 thread: %.2fx\n",
                kernels::simdIsaName(), serial_s / simd_s);
    std::printf("speedup at 4 threads over scalar serial: %.2fx\n",
                serial_s / four_s);

    // --- Exactly-gated instrumentation counts ---------------------
    using namespace obs::names;
    auto &gemm_calls = obs::metrics().counter(kCtrKernelsGemmCalls);
    auto &gemm_bytes = obs::metrics().counter(kCtrKernelsGemmBytes);
    auto &gemm_flops = obs::metrics().counter(kCtrKernelsGemmFlops);
    auto &ew_calls =
        obs::metrics().counter(kCtrKernelsElementwiseCalls);
    auto &gather_calls =
        obs::metrics().counter(kCtrKernelsGatherCalls);
    auto &parallel_ops =
        obs::metrics().counter(kCtrKernelsParallelOps);

    kernels::setConfig(four);
    const std::size_t m = 192, k = 256, n = 128;
    const Tensor a = randomTensor(m, k, rng);
    const Tensor b = randomTensor(k, n, rng);
    const Tensor at = randomTensor(k, m, rng);
    const Tensor bt = randomTensor(n, k, rng);

    const std::uint64_t calls0 = gemm_calls.value();
    const std::uint64_t bytes0 = gemm_bytes.value();
    const std::uint64_t flops0 = gemm_flops.value();
    const std::uint64_t ew0 = ew_calls.value();
    const std::uint64_t gather0 = gather_calls.value();
    ops::matmul(a, b);
    ops::matmulTransposeA(at, b);
    ops::matmulTransposeB(a, bt);
    const Tensor summed = ops::add(a, a);
    ops::relu(summed);
    const std::vector<std::uint32_t> idx(64, 3);
    const Tensor gathered = ops::gatherRows(a, idx);
    Tensor scatter_out = Tensor::zeros(m, k);
    ops::scatterAddRows(scatter_out, gathered, idx);

    const std::uint64_t workload_gemm_calls =
        gemm_calls.value() - calls0;
    const std::uint64_t workload_gemm_bytes =
        gemm_bytes.value() - bytes0;
    const std::uint64_t workload_gemm_flops =
        gemm_flops.value() - flops0;
    const std::uint64_t workload_ew_calls = ew_calls.value() - ew0;
    const std::uint64_t workload_gather_calls =
        gather_calls.value() - gather0;

    // Grain policy: a micro-bucket GEMM under the default
    // min_parallel_work must never dispatch in parallel.
    const Tensor ma = randomTensor(4, 8, rng);
    const Tensor mb = randomTensor(8, 4, rng);
    const std::uint64_t par0 = parallel_ops.value();
    ops::matmul(ma, mb);
    const std::uint64_t micro_parallel_dispatches =
        parallel_ops.value() - par0;

    // Timing tolerances are wide (the CI container is 1-core and
    // noisy) but finite: a vanished SIMD path or a parallel dispatch
    // regression moves these ratios far beyond the allowed drift,
    // while ordinary scheduling jitter stays well inside it.
    bench::Reporter reporter("kernels");
    reporter.metric("gemm_1024_serial_seconds", serial_s, 2.0)
        .metric("gemm_1024_simd_serial_seconds", simd_s, 2.0)
        .metric("gemm_1024_4threads_seconds", four_s, 2.0)
        .metric("gemm_speedup_simd", serial_s / simd_s, 0.8)
        .metric("gemm_speedup_4t", serial_s / four_s, 1.0)
        .metric("gemm_16_micro_seconds", micro_s, 10.0)
        .metric("workload_gemm_calls",
                static_cast<double>(workload_gemm_calls), 0.0)
        .metric("workload_gemm_bytes",
                static_cast<double>(workload_gemm_bytes), 0.0)
        .metric("workload_gemm_flops",
                static_cast<double>(workload_gemm_flops), 0.0)
        .metric("workload_elementwise_calls",
                static_cast<double>(workload_ew_calls), 0.0)
        .metric("workload_gather_calls",
                static_cast<double>(workload_gather_calls), 0.0)
        .metric("micro_parallel_dispatches",
                static_cast<double>(micro_parallel_dispatches), 0.0);
    reporter.write();
    return 0;
}
