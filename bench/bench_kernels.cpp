/**
 * @file
 * Compute-kernel bench (DESIGN.md, "Compute kernels"): tiled-GEMM
 * wall-clock at 1 vs 4 kernel threads, plus exactly-gated per-op
 * instrumentation counts.
 *
 * Timing metrics go through info() — wall-clock depends on the host
 * (this simulator's CI container exposes a single core, where the
 * 4-thread run degenerates to serial dispatch plus queue overhead) —
 * but every count (kernel calls, bytes, FLOPs, parallel-vs-serial
 * dispatch decisions) is a pure function of the workload and the grain
 * policy, so those gate at zero tolerance via tools/bench_diff.
 */
#include "bench_common.h"

#include <chrono>

#include "obs/metrics.h"
#include "obs/names.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"

using namespace buffalo;
namespace kernels = buffalo::tensor::kernels;
namespace ops = buffalo::tensor;
using tensor::Tensor;

namespace {

Tensor
randomTensor(std::size_t rows, std::size_t cols, util::Rng &rng)
{
    Tensor t = Tensor::zeros(rows, cols);
    ops::fillUniform(t, 1.0f, rng);
    return t;
}

/** Seconds for one matmul of the given square size under @p cfg. */
double
timeGemm(std::size_t dim, const kernels::KernelConfig &cfg,
         util::Rng &rng)
{
    kernels::setConfig(cfg);
    const Tensor a = randomTensor(dim, dim, rng);
    const Tensor b = randomTensor(dim, dim, rng);
    ops::matmul(a, b); // warm-up: page in A/B, spin up the pool
    const auto start = std::chrono::steady_clock::now();
    const Tensor c = ops::matmul(a, b);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    // Keep the result alive so the compute cannot be elided.
    return elapsed.count() + (c.data()[0] != c.data()[0] ? 1e9 : 0.0);
}

} // namespace

int
main()
{
    bench::banner("Compute kernels: tiled GEMM + instrumentation");

    util::Rng rng(42);
    kernels::KernelConfig serial;
    serial.threads = 1;
    kernels::KernelConfig four;
    four.threads = 4;

    // --- Timing (informative): tile-multiple 1024^2 GEMM ----------
    const std::size_t kBig = 1024;
    const double serial_s = timeGemm(kBig, serial, rng);
    const double four_s = timeGemm(kBig, four, rng);
    // Single-thread micro-bucket shape: must not regress from the
    // parallel machinery (the grain policy keeps it inline).
    const double micro_s = timeGemm(16, four, rng);

    util::Table table({"case", "seconds", "gflop/s"});
    const double gflop = 2.0 * kBig * kBig * kBig / 1e9;
    table.addRow({"gemm 1024^3, 1 thread",
                  util::formatSeconds(serial_s),
                  util::Table::count(
                      static_cast<std::uint64_t>(gflop / serial_s))});
    table.addRow({"gemm 1024^3, 4 threads",
                  util::formatSeconds(four_s),
                  util::Table::count(
                      static_cast<std::uint64_t>(gflop / four_s))});
    table.addRow(
        {"gemm 16^3 (micro)", util::formatSeconds(micro_s), "-"});
    table.print();
    std::printf("speedup at 4 threads: %.2fx\n", serial_s / four_s);

    // --- Exactly-gated instrumentation counts ---------------------
    using namespace obs::names;
    auto &gemm_calls = obs::metrics().counter(kCtrKernelsGemmCalls);
    auto &gemm_bytes = obs::metrics().counter(kCtrKernelsGemmBytes);
    auto &gemm_flops = obs::metrics().counter(kCtrKernelsGemmFlops);
    auto &ew_calls =
        obs::metrics().counter(kCtrKernelsElementwiseCalls);
    auto &gather_calls =
        obs::metrics().counter(kCtrKernelsGatherCalls);
    auto &parallel_ops =
        obs::metrics().counter(kCtrKernelsParallelOps);

    kernels::setConfig(four);
    const std::size_t m = 192, k = 256, n = 128;
    const Tensor a = randomTensor(m, k, rng);
    const Tensor b = randomTensor(k, n, rng);
    const Tensor at = randomTensor(k, m, rng);
    const Tensor bt = randomTensor(n, k, rng);

    const std::uint64_t calls0 = gemm_calls.value();
    const std::uint64_t bytes0 = gemm_bytes.value();
    const std::uint64_t flops0 = gemm_flops.value();
    const std::uint64_t ew0 = ew_calls.value();
    const std::uint64_t gather0 = gather_calls.value();
    ops::matmul(a, b);
    ops::matmulTransposeA(at, b);
    ops::matmulTransposeB(a, bt);
    const Tensor summed = ops::add(a, a);
    ops::relu(summed);
    const std::vector<std::uint32_t> idx(64, 3);
    const Tensor gathered = ops::gatherRows(a, idx);
    Tensor scatter_out = Tensor::zeros(m, k);
    ops::scatterAddRows(scatter_out, gathered, idx);

    const std::uint64_t workload_gemm_calls =
        gemm_calls.value() - calls0;
    const std::uint64_t workload_gemm_bytes =
        gemm_bytes.value() - bytes0;
    const std::uint64_t workload_gemm_flops =
        gemm_flops.value() - flops0;
    const std::uint64_t workload_ew_calls = ew_calls.value() - ew0;
    const std::uint64_t workload_gather_calls =
        gather_calls.value() - gather0;

    // Grain policy: a micro-bucket GEMM under the default
    // min_parallel_work must never dispatch in parallel.
    const Tensor ma = randomTensor(4, 8, rng);
    const Tensor mb = randomTensor(8, 4, rng);
    const std::uint64_t par0 = parallel_ops.value();
    ops::matmul(ma, mb);
    const std::uint64_t micro_parallel_dispatches =
        parallel_ops.value() - par0;

    bench::Reporter reporter("kernels");
    reporter.info("gemm_1024_serial_seconds", serial_s)
        .info("gemm_1024_4threads_seconds", four_s)
        .info("gemm_speedup_4t", serial_s / four_s)
        .info("gemm_16_micro_seconds", micro_s)
        .metric("workload_gemm_calls",
                static_cast<double>(workload_gemm_calls), 0.0)
        .metric("workload_gemm_bytes",
                static_cast<double>(workload_gemm_bytes), 0.0)
        .metric("workload_gemm_flops",
                static_cast<double>(workload_gemm_flops), 0.0)
        .metric("workload_elementwise_calls",
                static_cast<double>(workload_ew_calls), 0.0)
        .metric("workload_gather_calls",
                static_cast<double>(workload_gather_calls), 0.0)
        .metric("micro_parallel_dispatches",
                static_cast<double>(micro_parallel_dispatches), 0.0);
    reporter.write();
    return 0;
}
