/**
 * @file
 * Serving bench: closed-loop load generator sweeping offered QPS
 * against serve::Server, reporting latency percentiles, goodput and
 * shed rate per point (DESIGN.md, "Serving").
 *
 * Gated metrics are the deterministic ones: request accounting
 * (submitted/completed/shed/errors — the closed loop never overruns
 * the admission queue and the 500 ms deadline is far above the
 * sub-millisecond forward cost, so every request completes), the SLO
 * verdict (p99 under the deadline), and bitwise parity of
 * forwardInference against the training forward at 1 and 4 kernel
 * threads. Latency percentiles and goodput are wall-clock-derived,
 * so they ride along as info() for trend inspection.
 *
 * A final sequential loop (one worker, one prep thread, submit then
 * get) exercises the prep-path feature cache under each cache policy;
 * hit counts there are deterministic, so they diff exactly.
 */
#include <cstring>
#include <thread>

#include "bench_common.h"
#include "nn/sage_model.h"
#include "sampling/block_generator.h"
#include "sampling/sampled_subgraph.h"
#include "serve/serve_loop.h"
#include "tensor/kernels.h"
#include "train/feature_loader.h"
#include "util/rng.h"

using namespace buffalo;

namespace {

/** Bitwise parity of forwardInference vs forward at @p threads. */
bool
parityAtThreads(const graph::Dataset &data, std::size_t threads)
{
    tensor::kernels::KernelConfig cfg;
    cfg.threads = threads;
    tensor::kernels::setConfig(cfg);

    nn::ModelConfig config;
    config.num_layers = 2;
    config.feature_dim = data.featureDim();
    config.hidden_dim = 32;
    config.num_classes = data.numClasses();
    nn::SageModel model(config, /*seed=*/7);

    sampling::NeighborSampler sampler({4, 6});
    util::Rng rng(99);
    auto seeds = bench::seedBatch(data, 64);
    auto sg = sampler.sample(data.graph(), seeds, rng);
    graph::NodeList locals(seeds.size());
    for (std::size_t i = 0; i < locals.size(); ++i)
        locals[i] = static_cast<graph::NodeId>(i);
    sampling::FastBlockGenerator generator;
    auto mb = generator.generate(sg, locals);
    nn::Tensor feats = train::loadFeatures(data, mb.inputNodes());

    nn::SageModel::ForwardCache cache;
    nn::Tensor trained = model.forward(mb, feats, cache);
    nn::Tensor served = model.forwardInference(mb, feats);
    return trained.rows() == served.rows() &&
           trained.cols() == served.cols() &&
           std::memcmp(trained.data(), served.data(),
                       trained.size() * sizeof(float)) == 0;
}

} // namespace

int
main()
{
    graph::Dataset data = graph::loadDataset(graph::DatasetId::Cora);
    bench::banner("serve: closed-loop QPS sweep", data);
    bench::Reporter report("serve");

    // --- forward parity (the serving correctness contract) --------
    const bool parity_1 = parityAtThreads(data, 1);
    const bool parity_4 = parityAtThreads(data, 4);
    std::printf("forwardInference parity: threads=1 %s, threads=4 "
                "%s\n",
                parity_1 ? "bitwise" : "MISMATCH",
                parity_4 ? "bitwise" : "MISMATCH");
    report.metric("forward_parity_threads1", parity_1 ? 1.0 : 0.0,
                  0.0);
    report.metric("forward_parity_threads4", parity_4 ? 1.0 : 0.0,
                  0.0);

    // --- QPS sweep -------------------------------------------------
    const double kDeadlineMs = 500.0;
    const std::size_t kClients = 4;
    const std::size_t kRequestsPerClient = 32;
    util::Table table({"offered qps", "completed", "shed",
                       "goodput qps", "p50 ms", "p99 ms",
                       "mean batch"});

    for (const double qps : {64.0, 128.0, 256.0}) {
        serve::ServeOptions options;
        options.model_kind = train::ModelKind::Sage;
        options.model.num_layers = 2;
        options.model.feature_dim = data.featureDim();
        options.model.hidden_dim = 32;
        options.model.num_classes = data.numClasses();
        options.fanouts = {4, 6};
        options.max_batch = 16;
        options.byte_budget = util::mib(64);
        options.deadline_ms = kDeadlineMs;
        options.prep_threads = 2;
        options.workers = 2;
        options.seed = 7;
        tensor::kernels::setConfig(options.kernels);

        serve::Server server(options, data);
        std::vector<std::thread> clients;
        for (std::size_t c = 0; c < kClients; ++c) {
            // buffalo-lint: allow(escape-ref-capture) client threads
            // are joined below before the captured locals go away
            clients.emplace_back([&, c] {
                // Closed loop: wait for each response, pace to the
                // per-client share of the offered rate.
                const auto interval =
                    std::chrono::duration_cast<
                        serve::Clock::duration>(
                        std::chrono::duration<double>(
                            static_cast<double>(kClients) / qps));
                util::Rng rng(0xBE7C ^ c);
                auto next = serve::Clock::now();
                for (std::size_t r = 0; r < kRequestsPerClient;
                     ++r) {
                    std::this_thread::sleep_until(next);
                    next += interval;
                    const auto seed =
                        static_cast<graph::NodeId>(rng.nextBounded(
                            data.graph().numNodes()));
                    server.submit(seed).get();
                }
            });
        }
        for (std::thread &client : clients)
            client.join();
        server.shutdown();

        const serve::ServeSnapshot snap = server.stats();
        const std::string tag =
            "qps" + std::to_string(static_cast<int>(qps));
        table.addRow({util::Table::num(qps, 0),
                   util::Table::count(
                       static_cast<long long>(snap.completed)),
                   util::Table::count(
                       static_cast<long long>(snap.shed)),
                   util::Table::num(snap.goodput_qps, 1),
                   util::Table::num(snap.latency_p50_ms, 2),
                   util::Table::num(snap.latency_p99_ms, 2),
                   util::Table::num(snap.mean_batch_size, 2)});

        // Deterministic accounting: the closed loop can never
        // overflow the queue, and nothing may error.
        report.metric(tag + "_submitted",
                      static_cast<double>(snap.submitted), 0.0);
        report.metric(tag + "_completed",
                      static_cast<double>(snap.completed), 0.0);
        report.metric(tag + "_shed",
                      static_cast<double>(snap.shed), 0.0);
        report.metric(tag + "_errors",
                      static_cast<double>(snap.errors), 0.0);
        // SLO verdict: p99 within the deadline, shed rate < 1%.
        const bool slo_ok =
            snap.latency_p99_ms <= kDeadlineMs &&
            snap.shed_rate < 0.01;
        report.metric(tag + "_slo_ok", slo_ok ? 1.0 : 0.0, 0.0);
        report.info(tag + "_goodput_qps", snap.goodput_qps);
        report.info(tag + "_p50_ms", snap.latency_p50_ms);
        report.info(tag + "_p99_ms", snap.latency_p99_ms);
        report.info(tag + "_p999_ms", snap.latency_p999_ms);
        report.info(tag + "_mean_batch", snap.mean_batch_size);
    }
    table.print();

    // --- per-policy prep-path cache hit rates ----------------------
    // Sequential submit-then-get on a single-threaded server keeps
    // the plan-id sequence (and therefore every cache access) fully
    // deterministic, so hit counts are gated exactly; rates ride
    // along for readability.
    std::printf("\ncache policies (sequential loop):\n");
    util::Table cache_table(
        {"policy", "hits", "misses", "hit rate", "pinned"});
    const std::uint64_t row_bytes =
        static_cast<std::uint64_t>(data.featureDim()) * sizeof(float);
    double lru_rate = 0.0;
    double degree_rate = 0.0;
    double presample_rate = 0.0;
    for (const train::CachePolicyKind kind :
         {train::CachePolicyKind::LruOnly,
          train::CachePolicyKind::Degree,
          train::CachePolicyKind::PresampleFrequency}) {
        serve::ServeOptions options;
        options.model_kind = train::ModelKind::Sage;
        options.model.num_layers = 2;
        options.model.feature_dim = data.featureDim();
        options.model.hidden_dim = 32;
        options.model.num_classes = data.numClasses();
        options.fanouts = {4, 6};
        options.max_batch = 8;
        options.deadline_ms = 60000.0;
        options.prep_threads = 1;
        options.workers = 1;
        options.seed = 7;
        // An eighth of the node set fits, so the pin-set choice is
        // what separates the policies.
        options.feature_cache_bytes =
            row_bytes * (data.graph().numNodes() / 8);
        options.cache_policy = kind;
        options.presample_batches = 8;
        tensor::kernels::setConfig(options.kernels);

        serve::Server server(options, data);
        util::Rng rng(0xCAFE);
        for (std::size_t r = 0; r < 192; ++r)
            server
                .submit(static_cast<graph::NodeId>(
                    rng.nextBounded(data.graph().numNodes())))
                .get();
        server.shutdown();

        const pipeline::FeatureCacheStats cs =
            server.featureCache()->stats();
        const std::string policy(cs.policy);
        if (kind == train::CachePolicyKind::LruOnly)
            lru_rate = cs.hitRate();
        else if (kind == train::CachePolicyKind::Degree)
            degree_rate = cs.hitRate();
        else
            presample_rate = cs.hitRate();
        cache_table.addRow(
            {policy,
             util::Table::count(static_cast<long long>(cs.hits)),
             util::Table::count(static_cast<long long>(cs.misses)),
             util::formatPercent(cs.hitRate()),
             util::Table::count(
                 static_cast<long long>(cs.pinned_nodes))});
        report.metric("cache_" + policy + "_hits",
                      static_cast<double>(cs.hits), 0.0);
        report.metric("cache_" + policy + "_misses",
                      static_cast<double>(cs.misses), 0.0);
        report.info("cache_" + policy + "_hit_rate", cs.hitRate());
    }
    cache_table.print();
    const bool pinned_beats_lru =
        degree_rate > lru_rate && presample_rate > lru_rate;
    std::printf("policy-pinned caches beat pure LRU: %s\n",
                pinned_beats_lru ? "PASS" : "FAIL");
    report.metric("cache_pinned_beats_lru",
                  pinned_beats_lru ? 1.0 : 0.0, 0.0);

    report.write();
    return pinned_beats_lru ? 0 : 1;
}
