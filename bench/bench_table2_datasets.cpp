/**
 * @file
 * Table II: the simulated datasets' measured characteristics against
 * the published ones (node/edge counts are intentionally scaled; the
 * distribution family, average degree, clustering, and power-law
 * verdicts must track the paper).
 */
#include "bench_common.h"

#include "graph/stats.h"

using namespace buffalo;

int
main()
{
    bench::banner("Table II: dataset characteristics "
                  "(paper -> simulated)");
    util::Table table({"dataset", "nodes (paper)", "nodes (sim)",
                       "edges (sim)", "avg deg (paper)",
                       "avg deg (sim)", "avg coef (paper)",
                       "avg coef (sim)", "power law (paper)",
                       "power law (sim)"});
    bench::Reporter reporter("table2");
    bool all_verdicts_match = true;
    for (auto id : graph::allDatasetIds()) {
        auto data = graph::loadDataset(id, 42);
        const auto &spec = data.spec();
        const auto &g = data.graph();
        util::Rng rng(43);
        const double coef =
            graph::sampledClusteringCoefficient(g, 600, rng);
        auto fit = graph::fitPowerLaw(g);
        if (fit.is_power_law != spec.paper_power_law)
            all_verdicts_match = false;
        reporter.metric(data.name() + ".nodes",
                        static_cast<double>(g.numNodes()), 0.0);
        reporter.metric(data.name() + ".avg_degree",
                        graph::averageDegree(g), 0.01);
        reporter.metric(data.name() + ".clustering_coef", coef, 0.1);
        table.addRow(
            {data.name(),
             util::Table::count(
                 static_cast<long long>(spec.paper_nodes)),
             util::Table::count(g.numNodes()),
             util::Table::count(g.numEdges()),
             util::Table::num(spec.paper_avg_degree, 1),
             util::Table::num(graph::averageDegree(g), 1),
             util::Table::num(spec.paper_avg_coefficient, 3),
             util::Table::num(coef, 3),
             spec.paper_power_law ? "yes" : "no",
             fit.is_power_law ? "yes" : "no"});
    }
    table.print();
    reporter.metric("all_verdicts_match",
                    all_verdicts_match ? 1.0 : 0.0, 0.0);
    reporter.write();
    std::printf("power-law verdict reproduction: %s\n",
                all_verdicts_match ? "ALL MATCH" : "MISMATCH");
    std::printf("note: node counts are scaled down (see DESIGN.md); "
                "avg degree of the dense datasets (Reddit) is scaled "
                "with them; clustering-coefficient ordering follows "
                "the paper\n");
    return 0;
}
