/**
 * @file
 * Fast deterministic regression smoke bench (DESIGN.md, "Memory audit
 * & bench regression").
 *
 * One cost-model Buffalo epoch over arxiv-sim with fixed seeds: every
 * gated metric (group counts, byte watermarks, audit error) is a pure
 * function of the cost model, so any drift means the scheduler,
 * estimator, allocator accounting, or trainer changed behaviour.
 * ci.sh runs this against the committed baseline in bench/baselines/
 * via tools/bench_diff; refresh the baseline (and re-justify the
 * tolerances) when a change is intentional.
 */
#include "bench_common.h"

#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"

using namespace buffalo;

int
main()
{
    auto data = graph::loadDataset(graph::DatasetId::Arxiv, 42, 0.25);
    bench::banner("Regression smoke: one deterministic cost-model "
                  "epoch",
                  data);

    train::TrainerOptions options =
        bench::paperOptions(data, nn::AggregatorKind::Lstm);
    const std::uint64_t budget = bench::scaledBudget(data, 24.0);
    device::Device dev("gpu", budget);
    train::BuffaloTrainer trainer(options, dev);

    obs::memoryAudit().enable(true);
    util::Rng rng(42);
    const auto report = trainer.trainEpoch(data, 256, rng);

    util::Table table({"metric", "value"});
    table.addRow({"batches", std::to_string(report.num_batches)});
    table.addRow({"micro-batches",
                  std::to_string(report.num_micro_batches)});
    table.addRow({"peak device",
                  util::formatBytes(report.peak_device_bytes)});
    table.addRow({"transfer",
                  util::formatBytes(report.transfer_bytes)});
    table.addRow({"audit groups",
                  std::to_string(report.mem_audit.groups)});
    table.addRow({"audit mean |rel err|",
                  util::formatPercent(
                      report.mem_audit.meanAbsRelError())});
    table.print();

    bench::Reporter reporter("smoke");
    reporter
        .metric("batches", static_cast<double>(report.num_batches),
                0.0)
        .metric("micro_batches",
                static_cast<double>(report.num_micro_batches), 0.0)
        .metric("outputs", static_cast<double>(report.outputs), 0.0)
        .metric("peak_device_bytes",
                static_cast<double>(report.peak_device_bytes), 0.02)
        .metric("transfer_bytes",
                static_cast<double>(report.transfer_bytes), 0.02)
        .metric("audit_groups",
                static_cast<double>(report.mem_audit.groups), 0.0)
        // The estimator's error itself regresses loudly (a changed
        // Eq. 1/2 shifts it), but small schedule shifts move it too —
        // hence the looser band.
        .metric("audit_mean_abs_rel_error",
                report.mem_audit.meanAbsRelError(), 0.5)
        .info("epoch_seconds", report.effectiveSeconds());

    // The cost-model epoch never runs numeric kernels, so exercise
    // the kernel layer on a fixed shape here: byte/call counts are a
    // pure function of the shapes and gate exactly; nanos are
    // wall-clock and stay informative.
    {
        using namespace obs::names;
        auto &calls = obs::metrics().counter(kCtrKernelsGemmCalls);
        auto &bytes = obs::metrics().counter(kCtrKernelsGemmBytes);
        auto &nanos = obs::metrics().counter(kCtrKernelsGemmNanos);
        const std::uint64_t calls0 = calls.value();
        const std::uint64_t bytes0 = bytes.value();
        tensor::Tensor a = tensor::Tensor::zeros(96, 64);
        tensor::Tensor b = tensor::Tensor::zeros(64, 48);
        util::Rng krng(7);
        tensor::fillUniform(a, 1.0f, krng);
        tensor::fillUniform(b, 1.0f, krng);
        tensor::matmul(a, b);
        tensor::matmulTransposeB(a, tensor::Tensor::zeros(48, 64));
        reporter
            .metric("kernel_gemm_calls",
                    static_cast<double>(calls.value() - calls0), 0.0)
            .metric("kernel_gemm_bytes",
                    static_cast<double>(bytes.value() - bytes0), 0.0)
            .info("kernel_gemm_nanos",
                  static_cast<double>(nanos.value()));
    }
    reporter.write();
    return 0;
}
