/**
 * @file
 * Figure 15: bucket-group size vs. memory budget.
 *
 * GraphSAGE-LSTM (2 layers) on products-sim under 16/24/48/80 GB-
 * equivalent budgets (the paper's A100 sweep): more memory -> larger
 * bucket groups -> fewer micro-batches -> shorter end-to-end time.
 */
#include "bench_common.h"

using namespace buffalo;

int
main()
{
    auto data = graph::loadDataset(graph::DatasetId::Products, 42);
    bench::banner("Figure 15: bucket-group size vs. memory budget",
                  data);
    const auto seeds = bench::seedBatch(data, 2048);

    bench::Reporter reporter("fig15");
    util::Table table({"budget (paper-GB)", "scaled budget",
                       "#micro-batches", "avg group size (outputs)",
                       "peak memory", "iteration time",
                       "pipelined (ext)"});
    double previous_time = -1.0;
    bool monotone = true;
    for (double paper_gb : {16.0, 24.0, 48.0, 80.0}) {
        const std::uint64_t budget =
            bench::scaledBudget(data, paper_gb);
        train::TrainerOptions options =
            bench::paperOptions(data, nn::AggregatorKind::Lstm);
        device::Device dev("gpu", budget);
        util::Rng rng(23);
        train::BuffaloTrainer trainer(options, dev);
        auto stats = trainer.trainIteration(data, seeds, rng);
        table.addRow(
            {util::Table::num(paper_gb, 0),
             util::formatBytes(budget),
             std::to_string(stats.num_micro_batches),
             util::Table::count(static_cast<long long>(
                 seeds.size() / stats.num_micro_batches)),
             util::formatBytes(stats.peak_device_bytes),
             util::formatSeconds(stats.endToEndSeconds()),
             util::formatSeconds(stats.pipelined_seconds)});
        const std::string key = "gb" + std::to_string(
                                           static_cast<int>(paper_gb));
        reporter.metric(key + ".micro_batches",
                        static_cast<double>(stats.num_micro_batches),
                        0.0);
        reporter.metric(key + ".peak_bytes",
                        static_cast<double>(stats.peak_device_bytes),
                        0.05);
        reporter.info(key + ".iteration_seconds",
                      stats.endToEndSeconds());
        if (previous_time > 0 &&
            stats.endToEndSeconds() > previous_time * 1.05) {
            monotone = false;
        }
        previous_time = stats.endToEndSeconds();
    }
    table.print();
    reporter.metric("monotone", monotone ? 1.0 : 0.0, 0.0);
    reporter.write();
    std::printf("trend %s: larger budgets -> fewer micro-batches -> "
                "shorter iterations (paper: 80 GB runs in 9.37 s using "
                "76.65 GB)\n",
                monotone ? "holds" : "VIOLATED");
    return 0;
}
