/**
 * @file
 * Figure 17: convergence curves for batch vs. Buffalo micro-batch
 * training across three batch sizes (numeric execution, real losses).
 * The curves must coincide — micro-batch training with gradient
 * accumulation is mathematically equivalent.
 */
#include "bench_common.h"

using namespace buffalo;

int
main()
{
    auto data = graph::loadDataset(graph::DatasetId::Arxiv, 42, 0.25);
    bench::banner("Figure 17: convergence, batch vs. micro-batch "
                  "(numeric)",
                  data);

    bench::Reporter reporter("fig17");
    const int epochs = 8;
    for (std::size_t batch_size : {128, 256, 512}) {
        train::TrainerOptions options;
        options.model.aggregator = nn::AggregatorKind::Mean;
        options.model.num_layers = 2;
        options.model.feature_dim = data.featureDim();
        options.model.hidden_dim = 32;
        options.model.num_classes = data.numClasses();
        options.fanouts = {5, 10};
        options.learning_rate = 5e-3;
        options.mode = train::ExecutionMode::Numeric;
        options.seed = 77;

        device::Device whole_dev("gpu", util::gib(16));
        train::WholeBatchTrainer whole(options, whole_dev);
        util::Rng rng_a(41);
        auto whole_curve =
            train::runTraining(whole, data, epochs, batch_size, rng_a);

        device::Device buffalo_dev("gpu",
                                   whole.staticBytes() + util::mib(8));
        train::BuffaloTrainer buffalo(options, buffalo_dev);
        util::Rng rng_b(41);
        auto buffalo_curve = train::runTraining(buffalo, data, epochs,
                                                batch_size, rng_b);

        std::printf("\nbatch size %zu (Buffalo budget %s forces "
                    "micro-batching):\n",
                    batch_size,
                    util::formatBytes(buffalo_dev.allocator()
                                          .capacity())
                        .c_str());
        util::Table table({"epoch", "batch loss", "micro-batch loss",
                           "batch acc", "micro-batch acc"});
        double max_gap = 0.0;
        for (int epoch = 0; epoch < epochs; ++epoch) {
            table.addRow(
                {std::to_string(epoch),
                 util::Table::num(whole_curve[epoch].mean_loss, 4),
                 util::Table::num(buffalo_curve[epoch].mean_loss, 4),
                 util::Table::num(whole_curve[epoch].accuracy, 3),
                 util::Table::num(buffalo_curve[epoch].accuracy, 3)});
            max_gap = std::max(
                max_gap, std::abs(whole_curve[epoch].mean_loss -
                                  buffalo_curve[epoch].mean_loss));
        }
        table.print();
        const std::string key = "batch" + std::to_string(batch_size);
        reporter.metric(key + ".max_loss_gap", max_gap, 0.0);
        reporter.metric(
            key + ".final_loss",
            buffalo_curve[epochs - 1].mean_loss, 0.01);
        std::printf("max |loss gap| across epochs: %.6f "
                    "(paper: curves closely aligned)\n",
                    max_gap);
    }
    reporter.write();
    return 0;
}
