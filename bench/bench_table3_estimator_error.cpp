/**
 * @file
 * Table III: memory-estimation error of the redundancy-aware
 * estimator, for LSTM and mean aggregators across all datasets.
 *
 * Methodology mirrors the paper: the batch is grouped into the listed
 * number of micro-batches (cut-offs 10, 25), each group's Eq. 2
 * estimate is compared with the real measured training memory of that
 * micro-batch (numeric execution under the tracking allocator), and
 * the mean absolute error is reported.
 */
#include "bench_common.h"

#include "core/micro_batch_generator.h"
#include "core/scheduler.h"
#include "nn/loss.h"
#include "nn/sage_model.h"
#include "train/feature_loader.h"

using namespace buffalo;

namespace {

/** Real measured peak of numerically training one micro-batch. */
std::uint64_t
measurePeak(const graph::Dataset &data, const nn::ModelConfig &config,
            const sampling::MicroBatch &mb)
{
    device::Device dev("probe", util::gib(16));
    nn::SageModel model(config, 3, &dev.allocator());
    const std::uint64_t static_bytes = dev.allocator().bytesInUse();
    dev.allocator().resetPeak();
    nn::Tensor feats =
        train::loadFeatures(data, mb.inputNodes(), &dev.allocator());
    nn::SageModel::ForwardCache cache;
    nn::Tensor logits =
        model.forward(mb, feats, cache, &dev.allocator());
    auto labels = train::gatherLabels(data, mb.outputNodes());
    auto loss =
        nn::softmaxCrossEntropy(logits, labels, 0, &dev.allocator());
    model.backward(cache, loss.grad_logits, &dev.allocator());
    return dev.allocator().peakBytes() - static_bytes;
}

double
runCase(const graph::Dataset &data, nn::AggregatorKind kind,
        int num_batches, std::size_t num_seeds)
{
    nn::ModelConfig config;
    config.aggregator = kind;
    config.num_layers = 2;
    config.feature_dim = data.featureDim();
    config.hidden_dim = 16; // scaled-down hidden for numeric probing
    config.num_classes = data.numClasses();
    nn::MemoryModel model(config);

    util::Rng rng(47);
    sampling::NeighborSampler sampler({10, 25});
    auto sg = sampler.sample(data.graph(),
                             bench::seedBatch(data, num_seeds), rng);

    core::BucketMemEstimator bucket_estimator(model, sg);
    auto infos =
        bucket_estimator.estimate(sampling::bucketizeSeeds(sg));
    core::RedundancyAwareMemEstimator estimator(
        data.spec().paper_avg_coefficient);
    auto grouping = core::memBalancedGrouping(
        infos, num_batches, util::gib(1024), estimator);
    if (!grouping.success)
        return -1.0;

    core::MicroBatchGenerator generator;
    double total_error = 0.0;
    int count = 0;
    for (const auto &group : grouping.groups) {
        auto mb = generator.generateOne(sg, group);
        const std::uint64_t measured = measurePeak(data, config, mb);
        total_error +=
            std::abs(static_cast<double>(group.est_bytes) -
                     static_cast<double>(measured)) /
            static_cast<double>(measured);
        ++count;
    }
    return count == 0 ? -1.0 : total_error / count;
}

} // namespace

int
main()
{
    bench::banner("Table III: memory-estimation error "
                  "(cut-offs 10,25)");
    bench::Reporter reporter("table3");
    util::Table table({"dataset", "#batch (lstm)", "lstm error %",
                       "#batch (mean)", "mean error %"});
    for (auto id : graph::allDatasetIds()) {
        // Numeric probing at reduced scale keeps this bench tractable
        // on one CPU core; the error metric is scale-local.
        auto data = graph::loadDataset(id, 42, 0.3);
        const int lstm_batches =
            id == graph::DatasetId::Products ||
                    id == graph::DatasetId::Papers
                ? 16
                : 4;
        const int mean_batches =
            id == graph::DatasetId::Products ||
                    id == graph::DatasetId::Papers
                ? 8
                : 4;
        const std::size_t seeds =
            data.trainNodes().size() >= 512 ? 512
                                            : data.trainNodes().size();
        const double lstm_error =
            runCase(data, nn::AggregatorKind::Lstm, lstm_batches,
                    seeds);
        const double mean_error =
            runCase(data, nn::AggregatorKind::Mean, mean_batches,
                    seeds);
        if (lstm_error >= 0)
            reporter.metric(data.name() + ".lstm_error", lstm_error,
                            0.1);
        if (mean_error >= 0)
            reporter.metric(data.name() + ".mean_error", mean_error,
                            0.1);
        table.addRow({data.name(), std::to_string(lstm_batches),
                      lstm_error < 0
                          ? "-"
                          : util::Table::num(lstm_error * 100, 1),
                      std::to_string(mean_batches),
                      mean_error < 0
                          ? "-"
                          : util::Table::num(mean_error * 100, 1)});
    }
    table.print();
    reporter.write();
    std::printf("paper: error rate below 10.02%% in all cases at full "
                "scale; at this reduced simulation scale errors are "
                "larger because per-bucket cones overlap more "
                "(smaller batches saturate less), but the estimator "
                "stays conservative\n");
    return 0;
}
