/**
 * @file
 * Figure 12: block generation time, Buffalo's fast generator vs. the
 * Betty-style re-checking generator, for 2-32 micro-batches (paper
 * reports up to 8x; §IV-E claims 10x for the end-to-end preparation).
 *
 * Uses google-benchmark for the per-strategy timing, then prints the
 * figure's comparison table.
 */
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include <unordered_map>

#include "sampling/block_generator.h"
#include "util/thread_pool.h"

using namespace buffalo;

namespace {

struct Workload
{
    graph::Dataset data;
    sampling::SampledSubgraph sg;
    std::vector<graph::NodeList> parts;
};

Workload &
workload(graph::DatasetId id, std::size_t num_seeds, int parts)
{
    static std::map<std::pair<int, int>, std::unique_ptr<Workload>>
        cache;
    auto key = std::make_pair(static_cast<int>(id), parts);
    auto &slot = cache[key];
    if (!slot) {
        slot = std::make_unique<Workload>();
        slot->data = graph::loadDataset(id, 42);
        util::Rng rng(17);
        sampling::NeighborSampler sampler({10, 25});
        slot->sg = sampler.sample(
            slot->data.graph(),
            bench::seedBatch(slot->data, num_seeds), rng);
        // Range-split the seeds into the requested micro-batches.
        slot->parts.resize(parts);
        for (graph::NodeId seed = 0; seed < slot->sg.numSeeds();
             ++seed) {
            slot->parts[seed * parts / slot->sg.numSeeds()].push_back(
                seed);
        }
    }
    return *slot;
}

void
runGenerator(benchmark::State &state, graph::DatasetId id,
             std::size_t seeds, bool fast)
{
    const int parts = static_cast<int>(state.range(0));
    Workload &work = workload(id, seeds, parts);
    sampling::FastBlockGenerator fast_gen;
    sampling::BaselineBlockGenerator slow_gen;
    for (auto _ : state) {
        for (const auto &part : work.parts) {
            auto mb = fast ? fast_gen.generate(work.sg, part)
                           : slow_gen.generate(work.sg, part);
            benchmark::DoNotOptimize(mb.blocks.data());
        }
    }
}

void
BM_ArxivFast(benchmark::State &state)
{
    runGenerator(state, graph::DatasetId::Arxiv, 1024, true);
}

void
BM_ArxivBaseline(benchmark::State &state)
{
    runGenerator(state, graph::DatasetId::Arxiv, 1024, false);
}

void
BM_ProductsFast(benchmark::State &state)
{
    runGenerator(state, graph::DatasetId::Products, 1024, true);
}

void
BM_ProductsBaseline(benchmark::State &state)
{
    runGenerator(state, graph::DatasetId::Products, 1024, false);
}

BENCHMARK(BM_ArxivFast)->Arg(2)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_ArxivBaseline)->Arg(2)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_ProductsFast)->Arg(2)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_ProductsBaseline)->Arg(2)->Arg(8)->Arg(16)->Arg(32);

/**
 * The fast generator as it stood before the parallel rewrite: the
 * same single CSR-row read per destination, but hash-map first-seen
 * dedup and fully serial construction. Kept here as the in-run
 * reference for blockgen_speedup_4t — the committed gate that the
 * flat-table + chunked construction actually pays for itself.
 */
sampling::MicroBatch
referenceGenerate(const sampling::SampledSubgraph &sg,
                  const graph::NodeList &output_locals)
{
    using sampling::Block;
    using graph::NodeId;
    sampling::MicroBatch mb;
    mb.blocks.resize(sg.numLayers());
    graph::NodeList dst = output_locals;
    for (int layer = sg.numLayers() - 1; layer >= 0; --layer) {
        const graph::CsrGraph &adjacency = sg.layerAdjacency(layer);
        Block &block = mb.blocks[layer];
        block.num_dst = static_cast<NodeId>(dst.size());
        block.offsets.resize(dst.size() + 1, 0);
        for (std::size_t i = 0; i < dst.size(); ++i)
            block.offsets[i + 1] =
                block.offsets[i] + adjacency.degree(dst[i]);
        block.src_nodes = dst;
        std::unordered_map<NodeId, NodeId> to_block;
        to_block.reserve(dst.size() * 2);
        for (NodeId i = 0; i < dst.size(); ++i)
            to_block.emplace(dst[i], i);
        block.neighbors.reserve(block.offsets.back());
        for (std::size_t i = 0; i < dst.size(); ++i) {
            for (NodeId nbr : adjacency.neighbors(dst[i])) {
                auto [it, inserted] = to_block.emplace(
                    nbr,
                    static_cast<NodeId>(block.src_nodes.size()));
                if (inserted)
                    block.src_nodes.push_back(nbr);
                block.neighbors.push_back(it->second);
            }
        }
        dst = block.src_nodes;
    }
    for (Block &block : mb.blocks)
        for (NodeId &id : block.src_nodes)
            id = sg.globalId(id);
    return mb;
}

/**
 * Gated in-run comparison: the pre-rewrite reference above vs the
 * current generator driven by a 4-worker pool (grain lowered so the
 * parallel construction engages at this workload's size). Both run
 * back to back on the same host, so the ratio gates meaningfully
 * even where absolute wall-clock cannot; the products batch at 2
 * micro-batches has the largest per-batch destination sets.
 */
void
reportParallelSpeedup(bench::Reporter &reporter)
{
    Workload &work = workload(graph::DatasetId::Products, 1024, 2);
    util::ThreadPool pool(4);
    sampling::FastBlockGenerator::Grain grain;
    grain.parallel_dst_threshold = 512;
    grain.min_chunk = 512;
    sampling::FastBlockGenerator par_gen(&pool, grain);

    double ref = 1e30, par4 = 1e30;
    for (int rep = 0; rep < 3; ++rep) {
        util::StopWatch watch;
        for (const auto &part : work.parts)
            referenceGenerate(work.sg, part);
        ref = std::min(ref, watch.seconds());
        watch.reset();
        for (const auto &part : work.parts)
            par_gen.generate(work.sg, part);
        par4 = std::min(par4, watch.seconds());
    }

    bench::banner("Parallel block construction vs map-based "
                  "reference");
    std::printf("reference (hash-map, serial): %s\n",
                util::formatSeconds(ref).c_str());
    std::printf("current (flat-table, 4 workers): %s\n",
                util::formatSeconds(par4).c_str());
    std::printf("blockgen speedup at 4 threads: %.2fx\n",
                ref / par4);
    reporter.metric("blockgen_reference_seconds", ref, 2.0)
        .metric("blockgen_4threads_seconds", par4, 2.0)
        .metric("blockgen_speedup_4t", ref / par4, 0.8);
}

/** Prints the figure's summary table from direct measurements. */
void
printSummary()
{
    bench::Reporter reporter("fig12");
    util::Table table({"dataset", "#micro-batches", "Betty-style",
                       "Buffalo fast", "speedup"});
    for (auto id :
         {graph::DatasetId::Arxiv, graph::DatasetId::Products}) {
        for (int parts : {2, 8, 16, 32}) {
            Workload &work = workload(id, 1024, parts);
            sampling::FastBlockGenerator fast_gen;
            sampling::BaselineBlockGenerator slow_gen;

            double slow = 1e30, fast = 1e30;
            for (int rep = 0; rep < 3; ++rep) {
                util::StopWatch watch;
                for (const auto &part : work.parts)
                    slow_gen.generate(work.sg, part);
                slow = std::min(slow, watch.seconds());
                watch.reset();
                for (const auto &part : work.parts)
                    fast_gen.generate(work.sg, part);
                fast = std::min(fast, watch.seconds());
            }

            reporter.info(work.data.name() + ".k" +
                              std::to_string(parts) + ".speedup",
                          slow / fast);
            table.addRow({work.data.name(), std::to_string(parts),
                          util::formatSeconds(slow),
                          util::formatSeconds(fast),
                          util::Table::num(slow / fast, 1) + "x"});
        }
    }
    bench::banner("Figure 12: block generation time summary");
    table.print();
    reportParallelSpeedup(reporter);
    reporter.write();
    std::printf("paper shape: Buffalo is up to 8x faster (e.g. 0.70s "
                "vs 5.21s on arxiv at 16 micro-batches)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printSummary();
    return 0;
}
