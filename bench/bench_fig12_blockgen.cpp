/**
 * @file
 * Figure 12: block generation time, Buffalo's fast generator vs. the
 * Betty-style re-checking generator, for 2-32 micro-batches (paper
 * reports up to 8x; §IV-E claims 10x for the end-to-end preparation).
 *
 * Uses google-benchmark for the per-strategy timing, then prints the
 * figure's comparison table.
 */
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include "sampling/block_generator.h"

using namespace buffalo;

namespace {

struct Workload
{
    graph::Dataset data;
    sampling::SampledSubgraph sg;
    std::vector<graph::NodeList> parts;
};

Workload &
workload(graph::DatasetId id, std::size_t num_seeds, int parts)
{
    static std::map<std::pair<int, int>, std::unique_ptr<Workload>>
        cache;
    auto key = std::make_pair(static_cast<int>(id), parts);
    auto &slot = cache[key];
    if (!slot) {
        slot = std::make_unique<Workload>();
        slot->data = graph::loadDataset(id, 42);
        util::Rng rng(17);
        sampling::NeighborSampler sampler({10, 25});
        slot->sg = sampler.sample(
            slot->data.graph(),
            bench::seedBatch(slot->data, num_seeds), rng);
        // Range-split the seeds into the requested micro-batches.
        slot->parts.resize(parts);
        for (graph::NodeId seed = 0; seed < slot->sg.numSeeds();
             ++seed) {
            slot->parts[seed * parts / slot->sg.numSeeds()].push_back(
                seed);
        }
    }
    return *slot;
}

void
runGenerator(benchmark::State &state, graph::DatasetId id,
             std::size_t seeds, bool fast)
{
    const int parts = static_cast<int>(state.range(0));
    Workload &work = workload(id, seeds, parts);
    sampling::FastBlockGenerator fast_gen;
    sampling::BaselineBlockGenerator slow_gen;
    for (auto _ : state) {
        for (const auto &part : work.parts) {
            auto mb = fast ? fast_gen.generate(work.sg, part)
                           : slow_gen.generate(work.sg, part);
            benchmark::DoNotOptimize(mb.blocks.data());
        }
    }
}

void
BM_ArxivFast(benchmark::State &state)
{
    runGenerator(state, graph::DatasetId::Arxiv, 1024, true);
}

void
BM_ArxivBaseline(benchmark::State &state)
{
    runGenerator(state, graph::DatasetId::Arxiv, 1024, false);
}

void
BM_ProductsFast(benchmark::State &state)
{
    runGenerator(state, graph::DatasetId::Products, 1024, true);
}

void
BM_ProductsBaseline(benchmark::State &state)
{
    runGenerator(state, graph::DatasetId::Products, 1024, false);
}

BENCHMARK(BM_ArxivFast)->Arg(2)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_ArxivBaseline)->Arg(2)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_ProductsFast)->Arg(2)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_ProductsBaseline)->Arg(2)->Arg(8)->Arg(16)->Arg(32);

/** Prints the figure's summary table from direct measurements. */
void
printSummary()
{
    bench::Reporter reporter("fig12");
    util::Table table({"dataset", "#micro-batches", "Betty-style",
                       "Buffalo fast", "speedup"});
    for (auto id :
         {graph::DatasetId::Arxiv, graph::DatasetId::Products}) {
        for (int parts : {2, 8, 16, 32}) {
            Workload &work = workload(id, 1024, parts);
            sampling::FastBlockGenerator fast_gen;
            sampling::BaselineBlockGenerator slow_gen;

            double slow = 1e30, fast = 1e30;
            for (int rep = 0; rep < 3; ++rep) {
                util::StopWatch watch;
                for (const auto &part : work.parts)
                    slow_gen.generate(work.sg, part);
                slow = std::min(slow, watch.seconds());
                watch.reset();
                for (const auto &part : work.parts)
                    fast_gen.generate(work.sg, part);
                fast = std::min(fast, watch.seconds());
            }

            reporter.info(work.data.name() + ".k" +
                              std::to_string(parts) + ".speedup",
                          slow / fast);
            table.addRow({work.data.name(), std::to_string(parts),
                          util::formatSeconds(slow),
                          util::formatSeconds(fast),
                          util::Table::num(slow / fast, 1) + "x"});
        }
    }
    bench::banner("Figure 12: block generation time summary");
    table.print();
    reporter.write();
    std::printf("paper shape: Buffalo is up to 8x faster (e.g. 0.70s "
                "vs 5.21s on arxiv at 16 micro-batches)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printSummary();
    return 0;
}
