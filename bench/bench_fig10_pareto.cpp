/**
 * @file
 * Figure 10: training time and device memory vs. number of
 * micro-batches — the compute-vs-memory Pareto frontier.
 *
 * For each dataset: DGL-like and PyG-like whole-batch baselines (one
 * point; OOM on the large datasets under the 24 GB-equivalent budget),
 * Betty at K in {2,4,8,16}, and Buffalo under a descending budget
 * ladder. Time is end-to-end per iteration (host phases measured +
 * device phases simulated).
 */
#include "bench_common.h"

#include "baselines/betty.h"

using namespace buffalo;

namespace {

void
runDataset(graph::DatasetId id, std::size_t num_seeds,
           bench::Reporter &reporter)
{
    auto data = graph::loadDataset(id, 42);
    bench::banner("Figure 10: time/memory Pareto vs. #micro-batches",
                  data);
    const auto seeds = bench::seedBatch(data, num_seeds);
    const std::uint64_t gpu24 = bench::scaledBudget(data, 24.0);
    std::printf("budget: %s (24 GB at paper scale), batch %zu seeds\n",
                util::formatBytes(gpu24).c_str(), seeds.size());

    util::Table table({"system", "#micro-batches", "iteration time",
                       "peak memory", "status"});

    // DGL-like and PyG-like whole batch.
    for (bool padding : {false, true}) {
        const char *name = padding ? "PyG-like (padding)"
                                   : "DGL-like (bucketing)";
        train::TrainerOptions options = bench::paperOptions(data);
        device::Device dev("gpu", gpu24);
        util::Rng rng(11);
        try {
            train::WholeBatchTrainer trainer(options, dev, padding);
            auto stats = trainer.trainIteration(data, seeds, rng);
            table.addRow({name, "1",
                          util::formatSeconds(stats.endToEndSeconds()),
                          util::formatBytes(stats.peak_device_bytes),
                          "ok"});
        } catch (const device::DeviceOom &) {
            table.addRow({name, "1", "-", "-", "OOM"});
        }
    }

    // Betty at fixed K.
    for (int k : {2, 4, 8, 16}) {
        train::TrainerOptions options = bench::paperOptions(data);
        device::Device dev("gpu", gpu24);
        util::Rng rng(11);
        try {
            train::BettyTrainer trainer(options, dev, k);
            auto stats = trainer.trainIteration(data, seeds, rng);
            const bool fits = stats.peak_device_bytes <= gpu24;
            table.addRow({"Betty", std::to_string(k),
                          util::formatSeconds(stats.endToEndSeconds()),
                          util::formatBytes(stats.peak_device_bytes),
                          fits ? "ok" : "over budget"});
        } catch (const device::DeviceOom &) {
            table.addRow({"Betty", std::to_string(k), "-", "-",
                          "OOM"});
        } catch (const baselines::BettyUnsupported &) {
            table.addRow({"Betty", std::to_string(k), "-", "-",
                          "unsupported"});
        }
    }

    // Buffalo under a descending budget ladder.
    for (double paper_gb : {24.0, 12.0, 6.0, 3.0}) {
        train::TrainerOptions options = bench::paperOptions(data);
        const std::uint64_t budget =
            bench::scaledBudget(data, paper_gb);
        device::Device dev("gpu", budget);
        util::Rng rng(11);
        try {
            train::BuffaloTrainer trainer(options, dev);
            auto stats = trainer.trainIteration(data, seeds, rng);
            const std::string key =
                data.name() + ".buffalo_gb" +
                std::to_string(static_cast<int>(paper_gb));
            reporter.metric(
                key + ".micro_batches",
                static_cast<double>(stats.num_micro_batches), 0.0);
            reporter.metric(
                key + ".peak_bytes",
                static_cast<double>(stats.peak_device_bytes), 0.05);
            reporter.info(key + ".iteration_seconds",
                          stats.endToEndSeconds());
            table.addRow(
                {"Buffalo (" + util::Table::num(paper_gb, 0) +
                     " GB-eq)",
                 std::to_string(stats.num_micro_batches),
                 util::formatSeconds(stats.endToEndSeconds()),
                 util::formatBytes(stats.peak_device_bytes), "ok"});
        } catch (const Error &e) {
            table.addRow({"Buffalo (" + util::Table::num(paper_gb, 0) +
                              " GB-eq)",
                          "-", "-", "-", "infeasible"});
        }
    }
    table.print();
}

} // namespace

int
main()
{
    bench::Reporter reporter("fig10");
    runDataset(graph::DatasetId::Cora, 512, reporter);
    runDataset(graph::DatasetId::Arxiv, 1024, reporter);
    runDataset(graph::DatasetId::Products, 2048, reporter);
    reporter.write();
    std::printf("\npaper shape: DGL/PyG OOM on the large datasets; "
                "Betty fits but pays REG+METIS time; Buffalo attains "
                "the best time at every memory point (70.9%% faster "
                "than Betty on average in the paper)\n");
    return 0;
}
