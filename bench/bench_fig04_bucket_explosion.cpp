/**
 * @file
 * Figure 4: the bucket-volume distribution across degree buckets.
 *
 * (a) A small non-power-law batch (cora-sim) has balanced buckets;
 * (b) a power-law batch (arxiv-sim, F=10) explodes the cut-off bucket;
 * (c) Betty's batch-level partitioning still leaves every micro-batch
 *     with an exploded last bucket.
 */
#include "bench_common.h"

#include "baselines/betty.h"
#include "sampling/bucketing.h"

using namespace buffalo;

namespace {

void
printBuckets(const std::string &label,
             const sampling::BucketList &buckets, std::size_t total)
{
    std::printf("\n-- %s --\n", label.c_str());
    util::Table table({"degree", "volume", "% of nodes"});
    for (const auto &bucket : buckets) {
        table.addRow({std::to_string(bucket.degree),
                      util::Table::count(bucket.volume()),
                      util::formatPercent(
                          static_cast<double>(bucket.volume()) /
                          static_cast<double>(total))});
    }
    table.print();
    const int explosion = sampling::findExplosionBucket(buckets);
    if (explosion >= 0) {
        std::printf("bucket explosion DETECTED at degree %llu\n",
                    static_cast<unsigned long long>(
                        buckets[explosion].degree));
    } else {
        std::printf("no bucket explosion\n");
    }
}

sampling::SampledSubgraph
sampleFrom(const graph::Dataset &data, std::size_t seeds, int fanout,
           std::uint64_t seed)
{
    util::Rng rng(seed);
    sampling::NeighborSampler sampler({fanout, fanout});
    return sampler.sample(data.graph(),
                          bench::seedBatch(data, seeds), rng);
}

} // namespace

int
main()
{
    bench::Reporter reporter("fig04");

    // (a) Cora: balanced buckets.
    auto cora = graph::loadDataset(graph::DatasetId::Cora, 42);
    bench::banner("Figure 4a: bucket volumes, Cora(-sim)", cora);
    auto cora_sg = sampleFrom(cora, 512, 10, 3);
    const auto cora_buckets = sampling::bucketizeSeeds(cora_sg);
    printBuckets("cora-sim, F=10", cora_buckets, cora_sg.numSeeds());
    reporter.metric("cora.buckets",
                    static_cast<double>(cora_buckets.size()), 0.0);
    reporter.metric(
        "cora.explosion",
        sampling::findExplosionBucket(cora_buckets) >= 0 ? 1.0 : 0.0,
        0.0);

    // (b) Arxiv: the cut-off bucket explodes.
    auto arxiv = graph::loadDataset(graph::DatasetId::Arxiv, 42);
    bench::banner("Figure 4b: bucket volumes, OGBN-arxiv(-sim), F=10",
                  arxiv);
    auto arxiv_sg = sampleFrom(arxiv, 1024, 10, 3);
    const auto arxiv_buckets = sampling::bucketizeSeeds(arxiv_sg);
    printBuckets("arxiv-sim, F=10", arxiv_buckets,
                 arxiv_sg.numSeeds());
    reporter.metric("arxiv.buckets",
                    static_cast<double>(arxiv_buckets.size()), 0.0);
    reporter.metric(
        "arxiv.explosion",
        sampling::findExplosionBucket(arxiv_buckets) >= 0 ? 1.0 : 0.0,
        0.0);

    // (c) Betty's micro-batches still explode.
    bench::banner(
        "Figure 4c: bucket volumes after Betty 2-way partitioning");
    baselines::BettyPartitioner betty;
    auto parts = betty.partition(arxiv_sg, 2);
    const auto &top =
        arxiv_sg.layerAdjacency(arxiv_sg.numLayers() - 1);
    for (std::size_t p = 0; p < parts.size(); ++p) {
        sampling::BucketList buckets;
        {
            std::map<graph::EdgeIndex, graph::NodeList> by_degree;
            for (auto seed : parts[p])
                by_degree[top.degree(seed)].push_back(seed);
            for (auto &[degree, members] : by_degree)
                buckets.push_back({degree, std::move(members)});
        }
        printBuckets("Betty micro-batch " + std::to_string(p),
                     buckets, parts[p].size());
    }
    reporter.write();
    std::printf("\npaper shape: Betty mitigates but does not eliminate"
                " the explosion — each micro-batch's last bucket still"
                " dominates\n");
    return 0;
}
