/**
 * @file
 * Figure 4: the bucket-volume distribution across degree buckets.
 *
 * (a) A small non-power-law batch (cora-sim) has balanced buckets;
 * (b) a power-law batch (arxiv-sim, F=10) explodes the cut-off bucket;
 * (c) Betty's batch-level partitioning still leaves every micro-batch
 *     with an exploded last bucket.
 */
#include "bench_common.h"

#include "baselines/betty.h"
#include "sampling/bucketing.h"

using namespace buffalo;

namespace {

void
printBuckets(const std::string &label,
             const sampling::BucketList &buckets, std::size_t total)
{
    std::printf("\n-- %s --\n", label.c_str());
    util::Table table({"degree", "volume", "% of nodes"});
    for (const auto &bucket : buckets) {
        table.addRow({std::to_string(bucket.degree),
                      util::Table::count(bucket.volume()),
                      util::formatPercent(
                          static_cast<double>(bucket.volume()) /
                          static_cast<double>(total))});
    }
    table.print();
    const int explosion = sampling::findExplosionBucket(buckets);
    if (explosion >= 0) {
        std::printf("bucket explosion DETECTED at degree %llu\n",
                    static_cast<unsigned long long>(
                        buckets[explosion].degree));
    } else {
        std::printf("no bucket explosion\n");
    }
}

sampling::SampledSubgraph
sampleFrom(const graph::Dataset &data, std::size_t seeds, int fanout,
           std::uint64_t seed)
{
    util::Rng rng(seed);
    sampling::NeighborSampler sampler({fanout, fanout});
    return sampler.sample(data.graph(),
                          bench::seedBatch(data, seeds), rng);
}

} // namespace

int
main()
{
    // (a) Cora: balanced buckets.
    auto cora = graph::loadDataset(graph::DatasetId::Cora, 42);
    bench::banner("Figure 4a: bucket volumes, Cora(-sim)", cora);
    auto cora_sg = sampleFrom(cora, 512, 10, 3);
    printBuckets("cora-sim, F=10",
                 sampling::bucketizeSeeds(cora_sg),
                 cora_sg.numSeeds());

    // (b) Arxiv: the cut-off bucket explodes.
    auto arxiv = graph::loadDataset(graph::DatasetId::Arxiv, 42);
    bench::banner("Figure 4b: bucket volumes, OGBN-arxiv(-sim), F=10",
                  arxiv);
    auto arxiv_sg = sampleFrom(arxiv, 1024, 10, 3);
    printBuckets("arxiv-sim, F=10",
                 sampling::bucketizeSeeds(arxiv_sg),
                 arxiv_sg.numSeeds());

    // (c) Betty's micro-batches still explode.
    bench::banner(
        "Figure 4c: bucket volumes after Betty 2-way partitioning");
    baselines::BettyPartitioner betty;
    auto parts = betty.partition(arxiv_sg, 2);
    const auto &top =
        arxiv_sg.layerAdjacency(arxiv_sg.numLayers() - 1);
    for (std::size_t p = 0; p < parts.size(); ++p) {
        sampling::BucketList buckets;
        {
            std::map<graph::EdgeIndex, graph::NodeList> by_degree;
            for (auto seed : parts[p])
                by_degree[top.degree(seed)].push_back(seed);
            for (auto &[degree, members] : by_degree)
                buckets.push_back({degree, std::move(members)});
        }
        printBuckets("Betty micro-batch " + std::to_string(p),
                     buckets, parts[p].size());
    }
    std::printf("\npaper shape: Betty mitigates but does not eliminate"
                " the explosion — each micro-batch's last bucket still"
                " dominates\n");
    return 0;
}
