/**
 * @file
 * Figure 9: the schedule of degree buckets for the Figure 4 batch —
 * which buckets (and which micro-buckets of the split explosion
 * bucket) form each group, and the resulting per-micro-batch memory.
 *
 * The paper's example splits arxiv's degree-10 bucket into two
 * micro-buckets and forms two groups whose memory costs come out
 * nearly equal (Fig. 9b).
 */
#include "bench_common.h"

#include "core/micro_batch_generator.h"
#include "core/scheduler.h"

using namespace buffalo;

int
main()
{
    auto data = graph::loadDataset(graph::DatasetId::Arxiv, 42);
    bench::banner("Figure 9: bucket-group schedule for the Fig. 4 "
                  "batch",
                  data);

    train::TrainerOptions options =
        bench::paperOptions(data, nn::AggregatorKind::Lstm);
    options.fanouts = {10, 10}; // F = 10 as in Fig. 4b
    nn::MemoryModel model(options.model);

    util::Rng rng(3);
    sampling::NeighborSampler sampler(options.fanouts);
    auto sg = sampler.sample(data.graph(),
                             bench::seedBatch(data, 1024), rng);

    // Pick the largest budget that forces exactly two groups, like
    // the paper's example.
    core::ScheduleResult schedule;
    for (double gb = 48.0; gb >= 1.0; gb *= 0.9) {
        core::SchedulerOptions sched;
        sched.mem_constraint = bench::scaledBudget(data, gb);
        core::BuffaloScheduler scheduler(
            model, data.spec().paper_avg_coefficient, sched);
        schedule = scheduler.schedule(sg);
        if (schedule.num_groups >= 2)
            break;
    }

    std::printf("explosion bucket detected: %s; groups: %d\n",
                schedule.explosion_detected ? "yes" : "no",
                schedule.num_groups);

    bench::Reporter reporter("fig09");
    reporter
        .metric("num_groups", static_cast<double>(schedule.num_groups),
                0.0)
        .metric("explosion_detected",
                schedule.explosion_detected ? 1.0 : 0.0, 0.0);
    for (std::size_t g = 0; g < schedule.groups.size(); ++g)
        reporter.metric("group" + std::to_string(g) + ".est_bytes",
                        static_cast<double>(
                            schedule.groups[g].est_bytes),
                        0.02);
    reporter.write();

    core::MicroBatchGenerator generator;
    for (std::size_t g = 0; g < schedule.groups.size(); ++g) {
        const auto &group = schedule.groups[g];
        std::printf("\n-- group %zu (Eq. 2 estimate %s) --\n", g,
                    util::formatBytes(group.est_bytes).c_str());
        util::Table table({"bucket degree", "volume",
                           "standalone est", "grouping ratio"});
        core::RedundancyAwareMemEstimator estimator(
            data.spec().paper_avg_coefficient);
        for (const auto &info : group.buckets) {
            table.addRow(
                {std::to_string(
                     static_cast<unsigned long long>(info.degree)),
                 util::Table::count(info.outputs),
                 util::formatBytes(info.est_bytes),
                 util::Table::num(estimator.groupingRatio(info), 3)});
        }
        table.print();
        auto mb = generator.generateOne(sg, group);
        std::printf("micro-batch %zu: %zu outputs, %zu inputs, "
                    "modeled memory %s\n",
                    g, mb.outputNodes().size(), mb.inputNodes().size(),
                    util::formatBytes(model.microBatchBytes(mb))
                        .c_str());
    }
    std::printf("\npaper shape (Fig. 9): the cut-off bucket is split "
                "across the groups; the non-split buckets distribute "
                "so both micro-batches cost nearly the same memory\n");
    return 0;
}
