/**
 * @file
 * Figure 16: computation efficiency (total nodes across micro-batches
 * / end-to-end iteration time) of batch-level partitioning strategies:
 * Random, Range, METIS, Betty, and Buffalo.
 *
 * Random/Range/METIS partition the output nodes directly; Betty adds
 * REG construction; Buffalo uses bucket-level scheduling. The paper
 * reports Buffalo beating the best baseline by 36.4%.
 */
#include "bench_common.h"

#include "baselines/betty.h"
#include "core/micro_batch_generator.h"
#include "core/scheduler.h"
#include "graph/coo.h"
#include "partition/metis_like.h"
#include "partition/partitioner.h"

using namespace buffalo;

namespace {

struct Outcome
{
    std::uint64_t total_nodes = 0;
    double seconds = 0.0;
    int micro_batches = 0;
};

/** Time + node count of training the given seed partition. */
Outcome
runParts(const graph::Dataset &data,
         const sampling::SampledSubgraph &sg,
         const std::vector<graph::NodeList> &parts,
         double partition_seconds, bool baseline_generator)
{
    train::TrainerOptions options = bench::paperOptions(data);
    nn::MemoryModel model(options.model);
    device::Device dev("gpu", bench::scaledBudget(data, 240.0));

    Outcome outcome;
    outcome.seconds = partition_seconds;
    outcome.micro_batches = static_cast<int>(parts.size());

    sampling::FastBlockGenerator fast;
    sampling::BaselineBlockGenerator slow;
    util::StopWatch watch;
    std::vector<sampling::MicroBatch> batches;
    for (const auto &part : parts) {
        if (part.empty())
            continue;
        batches.push_back(baseline_generator
                              ? slow.generate(sg, part)
                              : fast.generate(sg, part));
    }
    outcome.seconds += watch.seconds();

    for (const auto &mb : batches) {
        outcome.total_nodes += mb.totalNodeCount();
        outcome.seconds += dev.costModel().transferSeconds(
            model.transferBytes(mb));
        outcome.seconds += dev.costModel().kernelsSeconds(
            model.microBatchFlops(mb), 64);
    }
    return outcome;
}

} // namespace

int
main()
{
    auto data = graph::loadDataset(graph::DatasetId::Products, 42);
    bench::banner("Figure 16: computation efficiency by partitioning "
                  "strategy",
                  data);
    const auto seeds = bench::seedBatch(data, 2048);
    const int parts_count = 14; // paper: Random/Range need 14

    util::Rng rng(29);
    train::TrainerOptions options = bench::paperOptions(data);
    sampling::NeighborSampler sampler(options.fanouts);
    auto sg = sampler.sample(data.graph(), seeds, rng);

    // Output-node graph for METIS.
    partition::WeightedGraph seed_graph;
    {
        const auto &top = sg.layerAdjacency(sg.numLayers() - 1);
        graph::CooBuilder builder(sg.numSeeds());
        for (graph::NodeId seed = 0; seed < sg.numSeeds(); ++seed)
            for (auto nbr : top.neighbors(seed))
                if (nbr < sg.numSeeds())
                    builder.addUndirectedEdge(seed, nbr);
        seed_graph = partition::WeightedGraph::fromUnweighted(
            builder.toCsr());
    }

    auto toParts = [&](const partition::Assignment &assignment,
                       int k) {
        std::vector<graph::NodeList> parts(k);
        for (graph::NodeId seed = 0; seed < sg.numSeeds(); ++seed)
            parts[assignment[seed]].push_back(seed);
        return parts;
    };

    util::Table table({"strategy", "#micro-batches", "total nodes",
                       "iteration time", "knodes/sec"});
    auto report = [&](const std::string &name,
                      const Outcome &outcome) {
        table.addRow({name, std::to_string(outcome.micro_batches),
                      util::Table::count(outcome.total_nodes),
                      util::formatSeconds(outcome.seconds),
                      util::Table::num(outcome.total_nodes / 1e3 /
                                           outcome.seconds,
                                       1)});
        return outcome.total_nodes / outcome.seconds;
    };

    double best_baseline = 0.0;

    // Random / Range.
    {
        partition::RandomPartitioner random(31);
        util::StopWatch watch;
        auto assignment = random.partition(seed_graph, parts_count);
        best_baseline = std::max(
            best_baseline,
            report("Random", runParts(data, sg,
                                      toParts(assignment, parts_count),
                                      watch.seconds(), true)));
    }
    {
        partition::RangePartitioner range;
        util::StopWatch watch;
        auto assignment = range.partition(seed_graph, parts_count);
        best_baseline = std::max(
            best_baseline,
            report("Range", runParts(data, sg,
                                     toParts(assignment, parts_count),
                                     watch.seconds(), true)));
    }
    // METIS.
    {
        partition::MetisLike metis;
        util::StopWatch watch;
        auto assignment = metis.partition(seed_graph, parts_count);
        best_baseline = std::max(
            best_baseline,
            report("METIS", runParts(data, sg,
                                     toParts(assignment, parts_count),
                                     watch.seconds(), true)));
    }
    // Betty.
    {
        baselines::BettyPartitioner betty;
        util::StopWatch watch;
        auto parts = betty.partition(sg, parts_count);
        best_baseline = std::max(
            best_baseline, report("Betty",
                                  runParts(data, sg, parts,
                                           watch.seconds(), true)));
    }
    // Buffalo (scheduler chooses ~12 micro-batches at this budget).
    double buffalo_eff = 0.0;
    {
        nn::MemoryModel model(options.model);
        core::SchedulerOptions sched;
        sched.mem_constraint = bench::scaledBudget(data, 24.0);
        core::BuffaloScheduler scheduler(
            model, data.spec().paper_avg_coefficient, sched);
        util::StopWatch watch;
        auto schedule = scheduler.schedule(sg);
        std::vector<graph::NodeList> parts;
        for (const auto &group : schedule.groups)
            parts.push_back(group.outputSeeds());
        buffalo_eff = report(
            "Buffalo", runParts(data, sg, parts, watch.seconds(),
                                false));
    }
    table.print();
    bench::Reporter reporter("fig16");
    reporter.info("buffalo_nodes_per_sec", buffalo_eff);
    reporter.info("best_baseline_nodes_per_sec", best_baseline);
    reporter.metric("buffalo_beats_best_baseline",
                    buffalo_eff > best_baseline ? 1.0 : 0.0, 0.0);
    reporter.write();
    std::printf("Buffalo vs best baseline: +%s (paper: +36.4%%)\n",
                util::formatPercent(buffalo_eff / best_baseline - 1.0)
                    .c_str());
    return 0;
}
