/**
 * @file
 * Shared helpers for the per-figure bench binaries.
 *
 * Scale convention: datasets are simulated at a reduced node count
 * (graph::DatasetSpec records the factor), so GPU memory budgets are
 * scaled by the same factor (times the feature-width ratio) to keep
 * the *ratio of memory demand to capacity* equal to the paper's
 * testbed. scaledBudget(data, 24.0) is therefore "the 24 GB RTX 6000
 * at this dataset's scale". Every bench prints the scale it ran at.
 */
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "graph/datasets.h"
#include "obs/json.h"
#include "train/experiment.h"
#include "train/trainer.h"
#include "util/format.h"
#include "util/histogram.h"
#include "util/table.h"

namespace buffalo::bench {

/**
 * Machine-readable bench reporting (DESIGN.md, "Memory audit & bench
 * regression"). Every bench binary owns one Reporter and emits
 * `BENCH_<name>.json` next to its ASCII table; `tools/bench_diff`
 * compares two such files and ci.sh gates the smoke bench against a
 * committed baseline.
 *
 * Each metric carries its own allowed relative drift, stored in the
 * JSON — a refreshed baseline re-states the tolerance policy next to
 * the numbers it governs. Deterministic quantities (byte counts,
 * group counts under the cost model with fixed seeds) get tight
 * tolerances via metric(); timing-derived quantities go through
 * info(), which records them for trend inspection but can never fail
 * a diff. Metric names must be unique within one report.
 */
class Reporter
{
  public:
    /** Tolerance used by info(): drift can never exceed it. */
    static constexpr double kInfoTolerance = 1e9;

    explicit Reporter(std::string name) : name_(std::move(name)) {}

    /** Records one gated metric allowing @p tolerance relative drift. */
    Reporter &
    metric(const std::string &metric_name, double value,
           double tolerance)
    {
        entries_.push_back({metric_name, value, tolerance});
        return *this;
    }

    /** Records an informational (never-gated) metric. */
    Reporter &
    info(const std::string &metric_name, double value)
    {
        return metric(metric_name, value, kInfoTolerance);
    }

    /** The bench-report JSON document. */
    std::string
    toJson() const
    {
        obs::JsonWriter w;
        w.beginObject();
        w.key("bench").value(name_);
        w.key("metrics").beginObject();
        for (const Entry &entry : entries_) {
            w.key(entry.name).beginObject();
            w.key("value").value(entry.value);
            w.key("tolerance").value(entry.tolerance);
            w.endObject();
        }
        w.endObject();
        w.endObject();
        return w.str();
    }

    /**
     * Writes `BENCH_<name>.json` into $BUFFALO_BENCH_DIR (falling
     * back to the working directory) and prints the path.
     */
    void
    write() const
    {
        const char *dir = std::getenv("BUFFALO_BENCH_DIR");
        const std::string path =
            std::string(dir != nullptr && *dir != '\0' ? dir : ".") +
            "/BENCH_" + name_ + ".json";
        obs::writeFileText(path, toJson());
        std::printf("bench report: %s\n", path.c_str());
    }

  private:
    struct Entry
    {
        std::string name;
        double value;
        double tolerance;
    };

    std::string name_;
    std::vector<Entry> entries_;
};

/** Memory-scale factor: node scale x feature-width scale. */
inline double
memoryScale(const graph::Dataset &data)
{
    const auto &spec = data.spec();
    return data.scaleFactor() *
           (static_cast<double>(spec.sim_feature_dim) /
            static_cast<double>(spec.paper_feature_dim));
}

/**
 * @p paper_gb of device memory, scaled to the dataset's size.
 *
 * The result is floored at 32 MB: per-seed working sets (the sampled
 * L-hop cone) do not shrink with graph scale, so extremely down-scaled
 * datasets (papers-sim at ~1/2000 of the paper) would otherwise get a
 * budget below the cost of even a one-seed micro-batch.
 */
inline std::uint64_t
scaledBudget(const graph::Dataset &data, double paper_gb)
{
    const double bytes = paper_gb * 1024.0 * 1024.0 * 1024.0 *
                         memoryScale(data);
    return std::max<std::uint64_t>(static_cast<std::uint64_t>(bytes),
                                   util::mib(32));
}

/** The paper's standard GraphSAGE config for @p data. */
inline train::TrainerOptions
paperOptions(const graph::Dataset &data,
             nn::AggregatorKind aggregator = nn::AggregatorKind::Lstm,
             int hidden = 128, int num_layers = 2)
{
    train::TrainerOptions options;
    options.model.aggregator = aggregator;
    options.model.num_layers = num_layers;
    options.model.feature_dim = data.featureDim();
    // Hidden widths scale with the feature-width reduction so compute
    // and memory shapes stay proportional.
    options.model.hidden_dim = std::max(8, hidden / 4);
    options.model.num_classes = data.numClasses();
    options.fanouts.assign(num_layers, 10);
    if (num_layers >= 2)
        options.fanouts.back() = 25;
    options.mode = train::ExecutionMode::CostModel;
    return options;
}

/**
 * A deterministic batch of up to @p count training seeds, strided
 * across the whole id space (so e.g. papers-sim's high-id isolated
 * nodes are represented, as they would be in a random batch).
 */
inline graph::NodeList
seedBatch(const graph::Dataset &data, std::size_t count)
{
    const auto &train = data.trainNodes();
    count = std::min(count, train.size());
    if (count == 0)
        return {};
    graph::NodeList seeds;
    seeds.reserve(count);
    const double stride =
        static_cast<double>(train.size()) / static_cast<double>(count);
    for (std::size_t i = 0; i < count; ++i)
        seeds.push_back(train[static_cast<std::size_t>(i * stride)]);
    return seeds;
}

/** Full-batch seeds: every node of the graph (paper Figs. 2/13). */
inline graph::NodeList
fullBatch(const graph::Dataset &data)
{
    graph::NodeList seeds(data.graph().numNodes());
    for (graph::NodeId u = 0; u < seeds.size(); ++u)
        seeds[u] = u;
    return seeds;
}

/**
 * Up to @p count seeds strided across *all* node ids (not just train
 * nodes) — a large batch that stays tractable on one simulator core.
 */
inline graph::NodeList
nodeBatch(const graph::Dataset &data, std::size_t count)
{
    const std::size_t n = data.graph().numNodes();
    count = std::min(count, n);
    graph::NodeList seeds;
    seeds.reserve(count);
    const double stride =
        static_cast<double>(n) / static_cast<double>(count);
    for (std::size_t i = 0; i < count; ++i)
        seeds.push_back(static_cast<graph::NodeId>(i * stride));
    return seeds;
}

/** Prints the standard bench banner with scale information. */
inline void
banner(const std::string &title, const graph::Dataset &data)
{
    std::printf("\n=== %s ===\n", title.c_str());
    std::printf("dataset %s: %s nodes (scale %.4g of paper), "
                "%s edges, memory scale %.4g\n",
                data.name().c_str(),
                util::Table::count(data.graph().numNodes()).c_str(),
                data.scaleFactor(),
                util::Table::count(data.graph().numEdges()).c_str(),
                memoryScale(data));
}

/** Prints a plain section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

} // namespace buffalo::bench
