/**
 * @file
 * Internal interface between the kernel dispatch layer
 * (tensor/kernels.cpp) and the wide-ISA translation unit
 * (tensor/kernels_simd.cpp). Only declarations live here: the
 * implementations are compiled with the target ISA flags (-mavx2 on
 * x86-64 when BUFFALO_SIMD is ON), so the vector types themselves
 * (tensor/simd.h) must never leak into baseline-flagged TUs — two
 * TUs including simd.h under different ISA flags would ODR-collide
 * on its inline definitions.
 *
 * Every function here is a *row-range* kernel with the same
 * semantics and bitwise-identical results as its scalar counterpart
 * in kernels.cpp: lanes map only to independent output elements,
 * multiplies and adds round separately (no FMA), and per-element
 * accumulation order is unchanged. kernels.cpp dispatches here when
 * KernelConfig::simd resolves active, and to its scalar bodies
 * otherwise; tests memcmp the two paths against each other.
 */
#pragma once

#include <cstddef>
#include <cstdint>

namespace buffalo::tensor::kernels::wide {

/** True when this build carries a wide ISA the host CPU supports. */
bool available();

/** Lane-group width of the wide path (1 in scalar-only builds). */
std::size_t width();

/** "avx2", "neon", or "scalar". */
const char *isaName();

/** Fixed-tree horizontal sum over @p n floats (see simd.h hsum). */
float hsumTree(const float *lanes, std::size_t n);

void gemmRows(const float *a, const float *b, float *c,
              std::size_t r0, std::size_t r1, std::size_t k,
              std::size_t n, std::size_t tile_k, std::size_t tile_n);

void gemmTransposeARows(const float *a, const float *b, float *c,
                        std::size_t r0, std::size_t r1, std::size_t k,
                        std::size_t m, std::size_t n,
                        std::size_t tile_k, std::size_t tile_n);

void gemmTransposeBRows(const float *a, const float *b, float *c,
                        std::size_t r0, std::size_t r1, std::size_t k,
                        std::size_t n);

void ewAdd(const float *a, const float *b, float *c, std::size_t lo,
           std::size_t hi);
void ewSubtract(const float *a, const float *b, float *c,
                std::size_t lo, std::size_t hi);
void ewMultiply(const float *a, const float *b, float *c,
                std::size_t lo, std::size_t hi);
void ewScale(const float *a, float s, float *c, std::size_t lo,
             std::size_t hi);
void ewAddInPlace(float *a, const float *b, std::size_t lo,
                  std::size_t hi);
void ewScaleInPlace(float *a, float s, std::size_t lo, std::size_t hi);
void ewRelu(const float *a, float *c, std::size_t lo, std::size_t hi);
void ewReluBackward(const float *grad, const float *pre, float *c,
                    std::size_t lo, std::size_t hi);
void ewAddRowBroadcast(const float *a, const float *bias, float *c,
                       std::size_t r0, std::size_t r1, std::size_t n);
void ewColumnSum(const float *a, float *c, std::size_t rows,
                 std::size_t n, std::size_t c0, std::size_t c1);

void fusedGatherSumScaleRows(const float *x,
                             const std::uint32_t *gather,
                             const std::uint32_t *out_rows,
                             std::size_t v0, std::size_t v1,
                             std::size_t d, std::size_t dim,
                             float norm, float *out);
void fusedGatherScaledAddRows(const float *x,
                              const std::uint32_t *gather,
                              const std::uint32_t *out_rows,
                              std::size_t v0, std::size_t v1,
                              std::size_t d, std::size_t dim,
                              float norm, float *out);
void fusedScatterScaledAddRows(const float *grad,
                               const std::uint32_t *out_rows,
                               const std::uint32_t *gather,
                               std::size_t n, std::size_t d,
                               std::size_t dim, float norm,
                               float *grad_x, std::size_t r0,
                               std::size_t r1);

} // namespace buffalo::tensor::kernels::wide
