#include "tensor/tensor.h"

#include <algorithm>
#include <cstring>

#include "util/errors.h"

namespace buffalo::tensor {

/** Owning float buffer that reports its lifetime to an observer. */
struct Tensor::Storage
{
    Storage(std::size_t count, AllocationObserver *obs)
        : bytes(count * sizeof(float)), observer(obs)
    {
        // Observer may throw (device OOM); allocate only if accepted.
        if (observer)
            observer->onAllocate(bytes);
        try {
            values.assign(count, 0.0f);
        } catch (...) {
            if (observer)
                observer->onFree(bytes);
            throw;
        }
    }

    ~Storage()
    {
        if (observer)
            observer->onFree(bytes);
    }

    Storage(const Storage &) = delete;
    Storage &operator=(const Storage &) = delete;

    std::vector<float> values;
    std::uint64_t bytes;
    AllocationObserver *observer;
};

Tensor::Tensor(std::size_t rows, std::size_t cols,
               std::shared_ptr<Storage> storage)
    : rows_(rows), cols_(cols), storage_(std::move(storage))
{
}

Tensor
Tensor::zeros(std::size_t rows, std::size_t cols,
              AllocationObserver *observer)
{
    auto storage = std::make_shared<Storage>(rows * cols, observer);
    return Tensor(rows, cols, std::move(storage));
}

Tensor
Tensor::full(std::size_t rows, std::size_t cols, float value,
             AllocationObserver *observer)
{
    Tensor t = zeros(rows, cols, observer);
    std::fill(t.data(), t.data() + t.size(), value);
    return t;
}

Tensor
Tensor::fromVector(const std::vector<float> &values,
                   AllocationObserver *observer)
{
    return fromValues(1, values.size(), values, observer);
}

Tensor
Tensor::fromValues(std::size_t rows, std::size_t cols,
                   const std::vector<float> &values,
                   AllocationObserver *observer)
{
    checkArgument(values.size() == rows * cols,
                  "Tensor::fromValues: value count must equal rows*cols");
    Tensor t = zeros(rows, cols, observer);
    if (!values.empty())
        std::memcpy(t.data(), values.data(),
                    values.size() * sizeof(float));
    return t;
}

float *
Tensor::data()
{
    return storage_ ? storage_->values.data() : nullptr;
}

const float *
Tensor::data() const
{
    return storage_ ? storage_->values.data() : nullptr;
}

std::span<float>
Tensor::row(std::size_t r)
{
    checkArgument(r < rows_, "Tensor::row: row index out of range");
    return {data() + r * cols_, cols_};
}

std::span<const float>
Tensor::row(std::size_t r) const
{
    checkArgument(r < rows_, "Tensor::row: row index out of range");
    return {data() + r * cols_, cols_};
}

Tensor
Tensor::clone(AllocationObserver *observer) const
{
    if (!storage_)
        return Tensor();
    if (!observer)
        observer = storage_->observer;
    Tensor copy = zeros(rows_, cols_, observer);
    std::memcpy(copy.data(), data(), size() * sizeof(float));
    return copy;
}

bool
Tensor::sharesStorageWith(const Tensor &other) const
{
    return storage_ && storage_ == other.storage_;
}

AllocationObserver *
Tensor::observer() const
{
    return storage_ ? storage_->observer : nullptr;
}

} // namespace buffalo::tensor
