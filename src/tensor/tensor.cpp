#include "tensor/tensor.h"

#include <algorithm>
#include <cstring>
#include <type_traits>

#include "util/errors.h"

namespace buffalo::tensor {

namespace {

/**
 * std::allocator whose value-less construct() default-initializes
 * instead of value-initializing: resize() on a float vector leaves
 * the new elements uninitialized (no zero-fill pass), while assign()
 * and friends still value-construct as usual.
 */
template <class T>
struct DefaultInitAllocator : std::allocator<T>
{
    template <class U>
    void
    construct(U *p) noexcept(std::is_nothrow_default_constructible_v<U>)
    {
        ::new (static_cast<void *>(p)) U;
    }

    template <class U, class... Args>
    void
    construct(U *p, Args &&...args)
    {
        ::new (static_cast<void *>(p)) U(std::forward<Args>(args)...);
    }
};

} // namespace

/** Owning float buffer that reports its lifetime to an observer. */
struct Tensor::Storage
{
    Storage(std::size_t count, AllocationObserver *obs, bool zero)
        : bytes(count * sizeof(float)), observer(obs)
    {
        // Observer may throw (device OOM); allocate only if accepted.
        if (observer)
            observer->onAllocate(bytes);
        try {
            if (zero)
                values.assign(count, 0.0f);
            else
                values.resize(count); // default-init: no zero pass
        } catch (...) {
            if (observer)
                observer->onFree(bytes);
            throw;
        }
    }

    ~Storage()
    {
        if (observer)
            observer->onFree(bytes);
    }

    Storage(const Storage &) = delete;
    Storage &operator=(const Storage &) = delete;

    std::vector<float, DefaultInitAllocator<float>> values;
    std::uint64_t bytes;
    AllocationObserver *observer;
};

Tensor::Tensor(std::size_t rows, std::size_t cols,
               std::shared_ptr<Storage> storage)
    : rows_(rows), cols_(cols), storage_(std::move(storage))
{
}

Tensor
Tensor::zeros(std::size_t rows, std::size_t cols,
              AllocationObserver *observer)
{
    auto storage =
        std::make_shared<Storage>(rows * cols, observer, true);
    return Tensor(rows, cols, std::move(storage));
}

Tensor
Tensor::uninitialized(std::size_t rows, std::size_t cols,
                      AllocationObserver *observer)
{
    auto storage =
        std::make_shared<Storage>(rows * cols, observer, false);
    return Tensor(rows, cols, std::move(storage));
}

Tensor
Tensor::full(std::size_t rows, std::size_t cols, float value,
             AllocationObserver *observer)
{
    Tensor t = uninitialized(rows, cols, observer);
    std::fill(t.data(), t.data() + t.size(), value);
    return t;
}

Tensor
Tensor::fromVector(const std::vector<float> &values,
                   AllocationObserver *observer)
{
    return fromValues(1, values.size(), values, observer);
}

Tensor
Tensor::fromValues(std::size_t rows, std::size_t cols,
                   const std::vector<float> &values,
                   AllocationObserver *observer)
{
    checkArgument(values.size() == rows * cols,
                  "Tensor::fromValues: value count must equal rows*cols");
    if (values.empty())
        return zeros(rows, cols, observer);
    Tensor t = uninitialized(rows, cols, observer);
    if (!values.empty())
        std::memcpy(t.data(), values.data(),
                    values.size() * sizeof(float));
    return t;
}

float *
Tensor::data()
{
    return storage_ ? storage_->values.data() : nullptr;
}

const float *
Tensor::data() const
{
    return storage_ ? storage_->values.data() : nullptr;
}

std::span<float>
Tensor::row(std::size_t r)
{
    checkArgument(r < rows_, "Tensor::row: row index out of range");
    return {data() + r * cols_, cols_};
}

std::span<const float>
Tensor::row(std::size_t r) const
{
    checkArgument(r < rows_, "Tensor::row: row index out of range");
    return {data() + r * cols_, cols_};
}

Tensor
Tensor::clone(AllocationObserver *observer) const
{
    if (!storage_)
        return Tensor();
    if (!observer)
        observer = storage_->observer;
    Tensor copy = uninitialized(rows_, cols_, observer);
    if (size() > 0)
        std::memcpy(copy.data(), data(), size() * sizeof(float));
    return copy;
}

bool
Tensor::sharesStorageWith(const Tensor &other) const
{
    return storage_ && storage_ == other.storage_;
}

AllocationObserver *
Tensor::observer() const
{
    return storage_ ? storage_->observer : nullptr;
}

} // namespace buffalo::tensor
