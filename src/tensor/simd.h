/**
 * @file
 * Portable SIMD lane-group wrappers for the kernel layer (DESIGN.md,
 * "Compute kernels"). One vector type, `VecF`, backed by AVX2
 * (8 lanes), NEON (4 lanes), or a plain scalar lane (width 1) when
 * the translation unit is built without a wide ISA.
 *
 * Determinism contract (the reason this wrapper exists instead of
 * compiler auto-vectorization): every lane performs exactly the
 * serial scalar operation sequence — an IEEE-754 single-precision
 * multiply followed by a separate add, never a fused multiply-add —
 * and lanes are only ever mapped to *independent* output elements.
 * Because no operation mixes lanes, results are bitwise identical at
 * any lane width, including width 1. The hot kernels (GEMM, the
 * elementwise ops, the fused aggregator chains) therefore need no
 * lane-reduction rules at all: each output element's contributions
 * accumulate k-ascending (t-ascending for aggregators) within its
 * own lane, exactly like the scalar reference.
 *
 * The one horizontal primitive, hsum(), reduces a lane group with a
 * *fixed pairwise tree* — (l0+l1)+(l2+l3)... halved repeatedly in
 * lane order — so any future kernel that does need a cross-lane
 * reduction has a single, width-documented order to standardize on.
 * No shipped kernel currently calls it on a hot path; it exists so
 * the reduction order is pinned by code (and tested) rather than
 * re-invented per call site.
 *
 * This header must only be included from translation units compiled
 * with the matching ISA flags (tensor/kernels_simd.cpp, which CMake
 * builds with -mavx2 -ffp-contract=off on x86-64 when BUFFALO_SIMD
 * is ON). Including it from differently-flagged TUs would create ODR
 * mismatches between inline definitions.
 */
#pragma once

#include <cstddef>

#if defined(BUFFALO_SIMD_ENABLED) && defined(__AVX2__)
#define BUFFALO_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(BUFFALO_SIMD_ENABLED) && defined(__ARM_NEON)
#define BUFFALO_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace buffalo::tensor::simd {

#if defined(BUFFALO_SIMD_AVX2)

/** One 8-lane single-precision group (AVX2). */
struct VecF
{
    __m256 v;
    static constexpr std::size_t kWidth = 8;
};

inline const char *
isaName()
{
    return "avx2";
}

inline VecF
load(const float *p)
{
    return {_mm256_loadu_ps(p)};
}

inline void
store(float *p, VecF x)
{
    _mm256_storeu_ps(p, x.v);
}

inline VecF
broadcast(float x)
{
    return {_mm256_set1_ps(x)};
}

inline VecF
zero()
{
    return {_mm256_setzero_ps()};
}

inline VecF
add(VecF a, VecF b)
{
    return {_mm256_add_ps(a.v, b.v)};
}

inline VecF
sub(VecF a, VecF b)
{
    return {_mm256_sub_ps(a.v, b.v)};
}

inline VecF
mul(VecF a, VecF b)
{
    return {_mm256_mul_ps(a.v, b.v)};
}

inline VecF
max(VecF a, VecF b)
{
    return {_mm256_max_ps(a.v, b.v)};
}

/**
 * acc + a*b as two separately-rounded IEEE operations (mul, then
 * add) — deliberately NOT _mm256_fmadd_ps, which rounds once and
 * would diverge from the scalar lane.
 */
inline VecF
mulAdd(VecF a, VecF b, VecF acc)
{
    return {_mm256_add_ps(acc.v, _mm256_mul_ps(a.v, b.v))};
}

/**
 * Lane-wise `c > 0 ? x : +0.0f` with exact scalar-ternary semantics:
 * an ordered compare, so NaN and -0.0 in c both select +0, matching
 * `std::max(0.0f, x)` / `pre > 0 ? g : 0` bit for bit.
 */
inline VecF
selectGtZero(VecF c, VecF x)
{
    const __m256 mask =
        _mm256_cmp_ps(c.v, _mm256_setzero_ps(), _CMP_GT_OQ);
    return {_mm256_and_ps(x.v, mask)};
}

#elif defined(BUFFALO_SIMD_NEON)

/** One 4-lane single-precision group (NEON). */
struct VecF
{
    float32x4_t v;
    static constexpr std::size_t kWidth = 4;
};

inline const char *
isaName()
{
    return "neon";
}

inline VecF
load(const float *p)
{
    return {vld1q_f32(p)};
}

inline void
store(float *p, VecF x)
{
    vst1q_f32(p, x.v);
}

inline VecF
broadcast(float x)
{
    return {vdupq_n_f32(x)};
}

inline VecF
zero()
{
    return {vdupq_n_f32(0.0f)};
}

inline VecF
add(VecF a, VecF b)
{
    return {vaddq_f32(a.v, b.v)};
}

inline VecF
sub(VecF a, VecF b)
{
    return {vsubq_f32(a.v, b.v)};
}

inline VecF
mul(VecF a, VecF b)
{
    return {vmulq_f32(a.v, b.v)};
}

inline VecF
max(VecF a, VecF b)
{
    return {vmaxq_f32(a.v, b.v)};
}

/** Separate mul + add (not vfmaq): matches the scalar lane exactly. */
inline VecF
mulAdd(VecF a, VecF b, VecF acc)
{
    return {vaddq_f32(acc.v, vmulq_f32(a.v, b.v))};
}

/** Lane-wise `c > 0 ? x : +0.0f` (vcgtq is false for NaN, like the
 *  scalar ordered compare). */
inline VecF
selectGtZero(VecF c, VecF x)
{
    const uint32x4_t mask = vcgtq_f32(c.v, vdupq_n_f32(0.0f));
    return {vbslq_f32(mask, x.v, vdupq_n_f32(0.0f))};
}

#else

/** Scalar fallback lane: the wide kernels compile everywhere. */
struct VecF
{
    float v;
    static constexpr std::size_t kWidth = 1;
};

inline const char *
isaName()
{
    return "scalar";
}

inline VecF
load(const float *p)
{
    return {*p};
}

inline void
store(float *p, VecF x)
{
    *p = x.v;
}

inline VecF
broadcast(float x)
{
    return {x};
}

inline VecF
zero()
{
    return {0.0f};
}

inline VecF
add(VecF a, VecF b)
{
    return {a.v + b.v};
}

inline VecF
sub(VecF a, VecF b)
{
    return {a.v - b.v};
}

inline VecF
mul(VecF a, VecF b)
{
    return {a.v * b.v};
}

inline VecF
max(VecF a, VecF b)
{
    return {a.v > b.v ? a.v : b.v};
}

inline VecF
mulAdd(VecF a, VecF b, VecF acc)
{
    // Two expressions so -ffp-contract cannot fuse them into an FMA.
    const float product = a.v * b.v;
    return {acc.v + product};
}

/** `c > 0 ? x : +0.0f` — the scalar ternary itself. */
inline VecF
selectGtZero(VecF c, VecF x)
{
    return {c.v > 0.0f ? x.v : 0.0f};
}

#endif

/** Active lane-group width for this translation unit. */
inline constexpr std::size_t kWidth = VecF::kWidth;

/**
 * Horizontal sum with the pinned pairwise lane-reduction tree:
 * lanes are halved in order — (l0+l1)+(l2+l3) ... — so the result
 * is a pure function of the lane values, never of the ISA's own
 * shuffle idioms. Width 1 returns the lane unchanged.
 */
inline float
hsum(VecF x)
{
    float lanes[VecF::kWidth];
    store(lanes, x);
    std::size_t n = VecF::kWidth;
    while (n > 1) {
        n /= 2;
        for (std::size_t i = 0; i < n; ++i)
            lanes[i] = lanes[i] + lanes[i + n];
    }
    return lanes[0];
}

} // namespace buffalo::tensor::simd
