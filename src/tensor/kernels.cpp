#include "tensor/kernels.h"

#include <algorithm>
#include <memory>

#include "obs/metrics.h"
#include "obs/names.h"
#include "tensor/kernels_wide.h"
#include "util/errors.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace buffalo::tensor::kernels {

namespace {

/**
 * The live configuration. Plain (unlocked) because the contract in
 * kernels.h restricts mutation to quiescent points; every dispatch
 * reads it without synchronization.
 */
KernelConfig g_config;

/**
 * Lazily (re)built dedicated pool for explicit thread counts. With
 * threads == 0 the global pool is used instead and this stays empty.
 */
class KernelPool
{
  public:
    util::ThreadPool &
    get(std::size_t threads)
    {
        util::MutexLock lock(mutex_);
        if (!pool_ || pool_threads_ != threads) {
            pool_.reset(); // join the old workers first
            pool_ = std::make_unique<util::ThreadPool>(threads);
            pool_threads_ = threads;
        }
        return *pool_;
    }

  private:
    util::Mutex mutex_;
    std::unique_ptr<util::ThreadPool> pool_ BUFFALO_GUARDED_BY(mutex_);
    std::size_t pool_threads_ BUFFALO_GUARDED_BY(mutex_) = 0;
};

KernelPool &
kernelPool()
{
    static KernelPool pool;
    return pool;
}

util::ThreadPool &
dispatchPool()
{
    if (g_config.threads == 0)
        return util::ThreadPool::global();
    return kernelPool().get(g_config.threads);
}

/** Counter handles for one op class, fetched once per process. */
struct OpCounters
{
    obs::Counter *calls;
    obs::Counter *nanos;
    obs::Counter *bytes;
};

const OpCounters &
countersFor(OpClass op_class)
{
    using namespace obs::names;
    static const OpCounters gemm{
        &obs::metrics().counter(kCtrKernelsGemmCalls),
        &obs::metrics().counter(kCtrKernelsGemmNanos),
        &obs::metrics().counter(kCtrKernelsGemmBytes)};
    static const OpCounters elementwise{
        &obs::metrics().counter(kCtrKernelsElementwiseCalls),
        &obs::metrics().counter(kCtrKernelsElementwiseNanos),
        &obs::metrics().counter(kCtrKernelsElementwiseBytes)};
    static const OpCounters gather{
        &obs::metrics().counter(kCtrKernelsGatherCalls),
        &obs::metrics().counter(kCtrKernelsGatherNanos),
        &obs::metrics().counter(kCtrKernelsGatherBytes)};
    static const OpCounters aggregate{
        &obs::metrics().counter(kCtrKernelsAggCalls),
        &obs::metrics().counter(kCtrKernelsAggNanos),
        &obs::metrics().counter(kCtrKernelsAggBytes)};
    switch (op_class) {
      case OpClass::Gemm: return gemm;
      case OpClass::Elementwise: return elementwise;
      case OpClass::Gather: return gather;
      case OpClass::Aggregate: return aggregate;
    }
    return elementwise;
}

obs::Counter &
flopsCounter()
{
    static obs::Counter &counter =
        obs::metrics().counter(obs::names::kCtrKernelsGemmFlops);
    return counter;
}

obs::Counter &
dispatchCounter(bool parallel)
{
    static obs::Counter &parallel_ops =
        obs::metrics().counter(obs::names::kCtrKernelsParallelOps);
    static obs::Counter &serial_ops =
        obs::metrics().counter(obs::names::kCtrKernelsSerialOps);
    return parallel ? parallel_ops : serial_ops;
}

/** True when the current config dispatches to the wide kernels. */
bool
simdActive()
{
    return g_config.simd != SimdMode::Off && wide::available();
}

} // namespace

const KernelConfig &
config()
{
    return g_config;
}

void
setConfig(const KernelConfig &cfg)
{
    checkArgument(cfg.simd != SimdMode::On || wide::available(),
                  "KernelConfig: simd=on requires a BUFFALO_SIMD build "
                  "on a CPU with the target ISA");
    KernelConfig sanitized = cfg;
    sanitized.tile_n = std::max<std::size_t>(1, sanitized.tile_n);
    sanitized.tile_k = std::max<std::size_t>(1, sanitized.tile_k);
    sanitized.min_rows_per_task =
        std::max<std::size_t>(1, sanitized.min_rows_per_task);
    g_config = sanitized;
}

std::size_t
effectiveThreads()
{
    if (g_config.threads != 0)
        return g_config.threads;
    return util::ThreadPool::global().size();
}

bool
simdAvailable()
{
    return wide::available();
}

std::size_t
simdWidth()
{
    return simdActive() ? wide::width() : 1;
}

const char *
simdIsaName()
{
    return wide::isaName();
}

SimdMode
simdModeFromName(const std::string &name)
{
    if (name == "auto")
        return SimdMode::Auto;
    if (name == "off")
        return SimdMode::Off;
    if (name == "on")
        return SimdMode::On;
    throw InvalidArgument("simdModeFromName: unknown SIMD mode '" +
                          name + "' (want auto|off|on)");
}

const char *
simdModeName(SimdMode mode)
{
    switch (mode) {
      case SimdMode::Auto: return "auto";
      case SimdMode::Off: return "off";
      case SimdMode::On: return "on";
    }
    return "?";
}

bool
parallelRows(std::size_t rows, std::uint64_t work,
             const std::function<void(std::size_t, std::size_t)> &body)
{
    const KernelConfig &cfg = g_config;
    std::size_t tasks = std::min(effectiveThreads(), rows);
    if (tasks > 1)
        tasks = std::min(
            tasks, std::max<std::size_t>(
                       1, rows / cfg.min_rows_per_task));
    if (tasks <= 1 || work < cfg.min_parallel_work ||
        util::ThreadPool::inPoolTask()) {
        dispatchCounter(false).add();
        body(0, rows);
        return false;
    }
    dispatchCounter(true).add();
    // Balanced contiguous partition: task t owns rows
    // [t*q + min(t, r), ...) where q = rows / tasks, r = rows % tasks.
    // Each output row has exactly one owner, so the per-row (and thus
    // per-element) arithmetic is independent of the task count.
    const std::size_t q = rows / tasks;
    const std::size_t r = rows % tasks;
    util::ParallelForOptions options;
    options.grain = 1;
    options.max_chunks = tasks;
    dispatchPool().parallelFor(
        0, tasks, options, [&](std::size_t t) {
            const std::size_t r0 = t * q + std::min(t, r);
            const std::size_t r1 = r0 + q + (t < r ? 1 : 0);
            body(r0, r1);
        });
    return true;
}

void
gemmRows(const float *a, const float *b, float *c, std::size_t r0,
         std::size_t r1, std::size_t k, std::size_t n)
{
    if (simdActive()) {
        wide::gemmRows(a, b, c, r0, r1, k, n, g_config.tile_k,
                       g_config.tile_n);
        return;
    }
    for (std::size_t i = r0; i < r1; ++i)
        std::fill(c + i * n, c + (i + 1) * n, 0.0f);
    if (k == 0 || n == 0)
        return;
    const std::size_t tile_k = g_config.tile_k;
    const std::size_t tile_n = g_config.tile_n;
    // k-panel outer, j-tile, then all owned rows: the B sub-panel
    // (tile_k x tile_n) stays cache-resident across the row sweep.
    // Every C element accumulates k-ascending (panels ascend, kk
    // ascends within a panel) — the serial order, for any tiling.
    for (std::size_t kp = 0; kp < k; kp += tile_k) {
        const std::size_t kend = std::min(k, kp + tile_k);
        for (std::size_t jp = 0; jp < n; jp += tile_n) {
            const std::size_t jend = std::min(n, jp + tile_n);
            std::size_t i = r0;
            // 4-row micro-kernel: one B load feeds four C rows.
            for (; i + 4 <= r1; i += 4) {
                const float *a0 = a + (i + 0) * k;
                const float *a1 = a + (i + 1) * k;
                const float *a2 = a + (i + 2) * k;
                const float *a3 = a + (i + 3) * k;
                float *c0 = c + (i + 0) * n;
                float *c1 = c + (i + 1) * n;
                float *c2 = c + (i + 2) * n;
                float *c3 = c + (i + 3) * n;
                for (std::size_t kk = kp; kk < kend; ++kk) {
                    const float v0 = a0[kk];
                    const float v1 = a1[kk];
                    const float v2 = a2[kk];
                    const float v3 = a3[kk];
                    const float *brow = b + kk * n;
                    for (std::size_t j = jp; j < jend; ++j) {
                        const float bv = brow[j];
                        c0[j] += v0 * bv;
                        c1[j] += v1 * bv;
                        c2[j] += v2 * bv;
                        c3[j] += v3 * bv;
                    }
                }
            }
            for (; i < r1; ++i) {
                const float *arow = a + i * k;
                float *crow = c + i * n;
                for (std::size_t kk = kp; kk < kend; ++kk) {
                    const float av = arow[kk];
                    const float *brow = b + kk * n;
                    for (std::size_t j = jp; j < jend; ++j)
                        crow[j] += av * brow[j];
                }
            }
        }
    }
}

void
gemmTransposeARows(const float *a, const float *b, float *c,
                   std::size_t r0, std::size_t r1, std::size_t k,
                   std::size_t m, std::size_t n)
{
    if (simdActive()) {
        wide::gemmTransposeARows(a, b, c, r0, r1, k, m, n,
                                 g_config.tile_k, g_config.tile_n);
        return;
    }
    for (std::size_t i = r0; i < r1; ++i)
        std::fill(c + i * n, c + (i + 1) * n, 0.0f);
    if (k == 0 || n == 0)
        return;
    const std::size_t tile_k = g_config.tile_k;
    const std::size_t tile_n = g_config.tile_n;
    for (std::size_t kp = 0; kp < k; kp += tile_k) {
        const std::size_t kend = std::min(k, kp + tile_k);
        for (std::size_t jp = 0; jp < n; jp += tile_n) {
            const std::size_t jend = std::min(n, jp + tile_n);
            std::size_t i = r0;
            // Four consecutive C rows = four consecutive A columns;
            // a[kk*m + i .. i+3] is one contiguous load.
            for (; i + 4 <= r1; i += 4) {
                float *c0 = c + (i + 0) * n;
                float *c1 = c + (i + 1) * n;
                float *c2 = c + (i + 2) * n;
                float *c3 = c + (i + 3) * n;
                for (std::size_t kk = kp; kk < kend; ++kk) {
                    const float *acol = a + kk * m + i;
                    const float v0 = acol[0];
                    const float v1 = acol[1];
                    const float v2 = acol[2];
                    const float v3 = acol[3];
                    const float *brow = b + kk * n;
                    for (std::size_t j = jp; j < jend; ++j) {
                        const float bv = brow[j];
                        c0[j] += v0 * bv;
                        c1[j] += v1 * bv;
                        c2[j] += v2 * bv;
                        c3[j] += v3 * bv;
                    }
                }
            }
            for (; i < r1; ++i) {
                float *crow = c + i * n;
                for (std::size_t kk = kp; kk < kend; ++kk) {
                    const float av = a[kk * m + i];
                    const float *brow = b + kk * n;
                    for (std::size_t j = jp; j < jend; ++j)
                        crow[j] += av * brow[j];
                }
            }
        }
    }
}

void
gemmTransposeBRows(const float *a, const float *b, float *c,
                   std::size_t r0, std::size_t r1, std::size_t k,
                   std::size_t n)
{
    if (simdActive()) {
        wide::gemmTransposeBRows(a, b, c, r0, r1, k, n);
        return;
    }
    for (std::size_t i = r0; i < r1; ++i) {
        const float *arow = a + i * k;
        float *crow = c + i * n;
        std::size_t j = 0;
        // Four dot products share each arow load; every accumulator
        // still sums k-ascending, so blocking is bitwise-neutral.
        for (; j + 4 <= n; j += 4) {
            const float *b0 = b + (j + 0) * k;
            const float *b1 = b + (j + 1) * k;
            const float *b2 = b + (j + 2) * k;
            const float *b3 = b + (j + 3) * k;
            float d0 = 0.0f, d1 = 0.0f, d2 = 0.0f, d3 = 0.0f;
            for (std::size_t kk = 0; kk < k; ++kk) {
                const float av = arow[kk];
                d0 += av * b0[kk];
                d1 += av * b1[kk];
                d2 += av * b2[kk];
                d3 += av * b3[kk];
            }
            crow[j + 0] = d0;
            crow[j + 1] = d1;
            crow[j + 2] = d2;
            crow[j + 3] = d3;
        }
        for (; j < n; ++j) {
            const float *brow = b + j * k;
            float dot = 0.0f;
            for (std::size_t kk = 0; kk < k; ++kk)
                dot += arow[kk] * brow[kk];
            crow[j] = dot;
        }
    }
}

void
ewAdd(const float *a, const float *b, float *c, std::size_t lo,
      std::size_t hi)
{
    if (simdActive()) {
        wide::ewAdd(a, b, c, lo, hi);
        return;
    }
    for (std::size_t i = lo; i < hi; ++i)
        c[i] = a[i] + b[i];
}

void
ewSubtract(const float *a, const float *b, float *c, std::size_t lo,
           std::size_t hi)
{
    if (simdActive()) {
        wide::ewSubtract(a, b, c, lo, hi);
        return;
    }
    for (std::size_t i = lo; i < hi; ++i)
        c[i] = a[i] - b[i];
}

void
ewMultiply(const float *a, const float *b, float *c, std::size_t lo,
           std::size_t hi)
{
    if (simdActive()) {
        wide::ewMultiply(a, b, c, lo, hi);
        return;
    }
    for (std::size_t i = lo; i < hi; ++i)
        c[i] = a[i] * b[i];
}

void
ewScale(const float *a, float s, float *c, std::size_t lo,
        std::size_t hi)
{
    if (simdActive()) {
        wide::ewScale(a, s, c, lo, hi);
        return;
    }
    for (std::size_t i = lo; i < hi; ++i)
        c[i] = a[i] * s;
}

void
ewAddInPlace(float *a, const float *b, std::size_t lo, std::size_t hi)
{
    if (simdActive()) {
        wide::ewAddInPlace(a, b, lo, hi);
        return;
    }
    for (std::size_t i = lo; i < hi; ++i)
        a[i] += b[i];
}

void
ewScaleInPlace(float *a, float s, std::size_t lo, std::size_t hi)
{
    if (simdActive()) {
        wide::ewScaleInPlace(a, s, lo, hi);
        return;
    }
    for (std::size_t i = lo; i < hi; ++i)
        a[i] *= s;
}

void
ewRelu(const float *a, float *c, std::size_t lo, std::size_t hi)
{
    if (simdActive()) {
        wide::ewRelu(a, c, lo, hi);
        return;
    }
    for (std::size_t i = lo; i < hi; ++i)
        c[i] = std::max(0.0f, a[i]);
}

void
ewReluBackward(const float *grad, const float *pre, float *c,
               std::size_t lo, std::size_t hi)
{
    if (simdActive()) {
        wide::ewReluBackward(grad, pre, c, lo, hi);
        return;
    }
    for (std::size_t i = lo; i < hi; ++i)
        c[i] = pre[i] > 0.0f ? grad[i] : 0.0f;
}

void
ewAddRowBroadcast(const float *a, const float *bias, float *c,
                  std::size_t r0, std::size_t r1, std::size_t n)
{
    if (simdActive()) {
        wide::ewAddRowBroadcast(a, bias, c, r0, r1, n);
        return;
    }
    for (std::size_t i = r0; i < r1; ++i) {
        const float *arow = a + i * n;
        float *crow = c + i * n;
        for (std::size_t j = 0; j < n; ++j)
            crow[j] = arow[j] + bias[j];
    }
}

void
ewColumnSum(const float *a, float *c, std::size_t rows, std::size_t n,
            std::size_t c0, std::size_t c1)
{
    if (simdActive()) {
        wide::ewColumnSum(a, c, rows, n, c0, c1);
        return;
    }
    std::fill(c + c0, c + c1, 0.0f);
    for (std::size_t i = 0; i < rows; ++i) {
        const float *arow = a + i * n;
        for (std::size_t j = c0; j < c1; ++j)
            c[j] += arow[j];
    }
}

namespace {

/** Scalar bodies for the fused aggregator chains (see kernels.h for
 *  the contracts; the wide TU mirrors these element for element). */
void
scalarGatherSumScaleRows(const float *x, const std::uint32_t *gather,
                         const std::uint32_t *out_rows, std::size_t v0,
                         std::size_t v1, std::size_t d, std::size_t dim,
                         float norm, float *out)
{
    for (std::size_t v = v0; v < v1; ++v) {
        float *dst = out + static_cast<std::size_t>(out_rows[v]) * dim;
        std::fill(dst, dst + dim, 0.0f);
        for (std::size_t t = 0; t < d; ++t) {
            const float *src =
                x + static_cast<std::size_t>(gather[v * d + t]) * dim;
            for (std::size_t j = 0; j < dim; ++j)
                dst[j] += src[j];
        }
        for (std::size_t j = 0; j < dim; ++j)
            dst[j] *= norm;
    }
}

void
scalarGatherScaledAddRows(const float *x, const std::uint32_t *gather,
                          const std::uint32_t *out_rows, std::size_t v0,
                          std::size_t v1, std::size_t d,
                          std::size_t dim, float norm, float *out)
{
    for (std::size_t v = v0; v < v1; ++v) {
        float *dst = out + static_cast<std::size_t>(out_rows[v]) * dim;
        for (std::size_t t = 0; t < d; ++t) {
            const float *src =
                x + static_cast<std::size_t>(gather[v * d + t]) * dim;
            for (std::size_t j = 0; j < dim; ++j)
                dst[j] += src[j] * norm;
        }
    }
}

void
scalarScatterScaledAddRows(const float *grad,
                           const std::uint32_t *out_rows,
                           const std::uint32_t *gather, std::size_t n,
                           std::size_t d, std::size_t dim, float norm,
                           float *grad_x, std::size_t r0,
                           std::size_t r1)
{
    for (std::size_t i = 0; i < n; ++i) {
        const float *src =
            grad + static_cast<std::size_t>(out_rows[i]) * dim;
        for (std::size_t t = 0; t < d; ++t) {
            const std::size_t row = gather[i * d + t];
            if (row < r0 || row >= r1)
                continue;
            float *dst = grad_x + row * dim;
            for (std::size_t j = 0; j < dim; ++j) {
                const float g = src[j] * norm;
                dst[j] += g;
            }
        }
    }
}

} // namespace

void
fusedGatherSumScale(const float *x, const std::uint32_t *gather,
                    const std::uint32_t *out_rows, std::size_t n,
                    std::size_t d, std::size_t dim, float norm,
                    float *out)
{
    OpTimer timer(OpClass::Aggregate,
                  (n * d * dim + 2 * n * dim) * sizeof(float));
    const bool use_simd = simdActive();
    parallelRows(n, n * d * dim,
                 [&](std::size_t v0, std::size_t v1) {
                     if (use_simd)
                         wide::fusedGatherSumScaleRows(
                             x, gather, out_rows, v0, v1, d, dim, norm,
                             out);
                     else
                         scalarGatherSumScaleRows(x, gather, out_rows,
                                                  v0, v1, d, dim, norm,
                                                  out);
                 });
}

void
fusedGatherScaledAdd(const float *x, const std::uint32_t *gather,
                     const std::uint32_t *out_rows, std::size_t n,
                     std::size_t d, std::size_t dim, float norm,
                     float *out)
{
    OpTimer timer(OpClass::Aggregate,
                  (n * d * dim + 2 * n * dim) * sizeof(float));
    const bool use_simd = simdActive();
    parallelRows(n, n * d * dim,
                 [&](std::size_t v0, std::size_t v1) {
                     if (use_simd)
                         wide::fusedGatherScaledAddRows(
                             x, gather, out_rows, v0, v1, d, dim, norm,
                             out);
                     else
                         scalarGatherScaledAddRows(x, gather, out_rows,
                                                   v0, v1, d, dim,
                                                   norm, out);
                 });
}

void
fusedScatterScaledAdd(const float *grad, const std::uint32_t *out_rows,
                      const std::uint32_t *gather, std::size_t n,
                      std::size_t d, std::size_t dim, float norm,
                      float *grad_x, std::size_t grad_x_rows)
{
    OpTimer timer(OpClass::Aggregate,
                  3 * n * d * dim * sizeof(float));
    const bool use_simd = simdActive();
    // Owner-partitioned over grad_x rows; every task scans the whole
    // gather list (like ops::scatterAddRows), so the work estimate
    // includes the scan itself.
    parallelRows(grad_x_rows, n * d * (dim + 1),
                 [&](std::size_t r0, std::size_t r1) {
                     if (use_simd)
                         wide::fusedScatterScaledAddRows(
                             grad, out_rows, gather, n, d, dim, norm,
                             grad_x, r0, r1);
                     else
                         scalarScatterScaledAddRows(grad, out_rows,
                                                    gather, n, d, dim,
                                                    norm, grad_x, r0,
                                                    r1);
                 });
}

OpTimer::OpTimer(OpClass op_class, std::uint64_t bytes,
                 std::uint64_t flops)
    : op_class_(op_class), start_(std::chrono::steady_clock::now())
{
    const OpCounters &counters = countersFor(op_class_);
    counters.calls->add();
    counters.bytes->add(bytes);
    if (flops != 0)
        flopsCounter().add(flops);
}

OpTimer::~OpTimer()
{
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    countersFor(op_class_).nanos->add(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
}

} // namespace buffalo::tensor::kernels
