/**
 * @file
 * Dense linear-algebra kernels over Tensor. All outputs are allocated
 * under @p observer so the simulated device can account for them — these
 * are the "CUDA kernels" of the reproduction.
 */
#pragma once

#include "tensor/tensor.h"
#include "util/rng.h"

namespace buffalo::tensor {

/** C = A * B. A is m x k, B is k x n. */
Tensor matmul(const Tensor &a, const Tensor &b,
              AllocationObserver *observer = nullptr);

/** C = A^T * B. A is k x m, B is k x n -> C is m x n. */
Tensor matmulTransposeA(const Tensor &a, const Tensor &b,
                        AllocationObserver *observer = nullptr);

/** C = A * B^T. A is m x k, B is n x k -> C is m x n. */
Tensor matmulTransposeB(const Tensor &a, const Tensor &b,
                        AllocationObserver *observer = nullptr);

/** C = A + B (same shape). */
Tensor add(const Tensor &a, const Tensor &b,
           AllocationObserver *observer = nullptr);

/** C = A - B (same shape). */
Tensor subtract(const Tensor &a, const Tensor &b,
                AllocationObserver *observer = nullptr);

/** C = A ⊙ B, elementwise product (same shape). */
Tensor multiply(const Tensor &a, const Tensor &b,
                AllocationObserver *observer = nullptr);

/** C = s * A. */
Tensor scale(const Tensor &a, float s,
             AllocationObserver *observer = nullptr);

/** In place: a += b (same shape). */
void addInPlace(Tensor &a, const Tensor &b);

/** In place: a *= s. */
void scaleInPlace(Tensor &a, float s);

/** In place: sets every element to @p value. */
void fill(Tensor &a, float value);

/** C = A with bias (1 x cols) added to each row. */
Tensor addRowBroadcast(const Tensor &a, const Tensor &bias,
                       AllocationObserver *observer = nullptr);

/** Column-wise sum -> 1 x cols. */
Tensor columnSum(const Tensor &a, AllocationObserver *observer = nullptr);

/** ReLU forward. */
Tensor relu(const Tensor &a, AllocationObserver *observer = nullptr);

/** ReLU backward: grad ⊙ (pre > 0). */
Tensor reluBackward(const Tensor &grad, const Tensor &pre_activation,
                    AllocationObserver *observer = nullptr);

/** Elementwise logistic sigmoid. */
Tensor sigmoid(const Tensor &a, AllocationObserver *observer = nullptr);

/** Elementwise tanh. */
Tensor tanh(const Tensor &a, AllocationObserver *observer = nullptr);

/** Concatenates two tensors with equal row counts along columns. */
Tensor concatColumns(const Tensor &a, const Tensor &b,
                     AllocationObserver *observer = nullptr);

/** Splits columns [begin, end) into a new tensor. */
Tensor sliceColumns(const Tensor &a, std::size_t begin, std::size_t end,
                    AllocationObserver *observer = nullptr);

/** Gathers rows of @p a by @p indices into a new tensor. */
Tensor gatherRows(const Tensor &a,
                  const std::vector<std::uint32_t> &indices,
                  AllocationObserver *observer = nullptr);

/** Scatter-add: out.row(indices[i]) += a.row(i). Modifies @p out. */
void scatterAddRows(Tensor &out, const Tensor &a,
                    const std::vector<std::uint32_t> &indices);

/** Fills with uniform values in [-range, range]. */
void fillUniform(Tensor &a, float range, util::Rng &rng);

/** Glorot/Xavier uniform initialization for a fan_in x fan_out weight. */
void fillXavier(Tensor &a, util::Rng &rng);

/** Sum of all elements. */
double sum(const Tensor &a);

/** Max absolute difference between two same-shaped tensors. */
double maxAbsDiff(const Tensor &a, const Tensor &b);

/** Frobenius norm. */
double frobeniusNorm(const Tensor &a);

} // namespace buffalo::tensor
