#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/kernels.h"
#include "util/errors.h"

namespace buffalo::tensor {

namespace {

using kernels::OpClass;
using kernels::OpTimer;

void
checkSameShape(const Tensor &a, const Tensor &b, const char *op)
{
    checkArgument(a.rows() == b.rows() && a.cols() == b.cols(),
                  std::string(op) + ": shape mismatch");
}

} // namespace

Tensor
matmul(const Tensor &a, const Tensor &b, AllocationObserver *observer)
{
    checkArgument(a.cols() == b.rows(), "matmul: inner dims must match");
    const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
    Tensor c = Tensor::uninitialized(m, n, observer);
    OpTimer timer(OpClass::Gemm,
                  (m * k + k * n + m * n) * sizeof(float),
                  2ull * m * n * k);
    kernels::parallelRows(m, m * n * k,
                          [&](std::size_t r0, std::size_t r1) {
                              kernels::gemmRows(a.data(), b.data(),
                                                c.data(), r0, r1, k, n);
                          });
    return c;
}

Tensor
matmulTransposeA(const Tensor &a, const Tensor &b,
                 AllocationObserver *observer)
{
    checkArgument(a.rows() == b.rows(),
                  "matmulTransposeA: row counts must match");
    const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
    Tensor c = Tensor::uninitialized(m, n, observer);
    OpTimer timer(OpClass::Gemm,
                  (m * k + k * n + m * n) * sizeof(float),
                  2ull * m * n * k);
    kernels::parallelRows(
        m, m * n * k, [&](std::size_t r0, std::size_t r1) {
            kernels::gemmTransposeARows(a.data(), b.data(), c.data(),
                                        r0, r1, k, m, n);
        });
    return c;
}

Tensor
matmulTransposeB(const Tensor &a, const Tensor &b,
                 AllocationObserver *observer)
{
    checkArgument(a.cols() == b.cols(),
                  "matmulTransposeB: col counts must match");
    const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
    Tensor c = Tensor::uninitialized(m, n, observer);
    OpTimer timer(OpClass::Gemm,
                  (m * k + k * n + m * n) * sizeof(float),
                  2ull * m * n * k);
    kernels::parallelRows(
        m, m * n * k, [&](std::size_t r0, std::size_t r1) {
            kernels::gemmTransposeBRows(a.data(), b.data(), c.data(),
                                        r0, r1, k, n);
        });
    return c;
}

Tensor
add(const Tensor &a, const Tensor &b, AllocationObserver *observer)
{
    checkSameShape(a, b, "add");
    Tensor c = Tensor::uninitialized(a.rows(), a.cols(), observer);
    OpTimer timer(OpClass::Elementwise, 3 * a.bytes());
    const float *pa = a.data(), *pb = b.data();
    float *pc = c.data();
    kernels::parallelRows(a.size(), a.size(),
                          [&](std::size_t lo, std::size_t hi) {
                              kernels::ewAdd(pa, pb, pc, lo, hi);
                          });
    return c;
}

Tensor
subtract(const Tensor &a, const Tensor &b, AllocationObserver *observer)
{
    checkSameShape(a, b, "subtract");
    Tensor c = Tensor::uninitialized(a.rows(), a.cols(), observer);
    OpTimer timer(OpClass::Elementwise, 3 * a.bytes());
    const float *pa = a.data(), *pb = b.data();
    float *pc = c.data();
    kernels::parallelRows(a.size(), a.size(),
                          [&](std::size_t lo, std::size_t hi) {
                              kernels::ewSubtract(pa, pb, pc, lo, hi);
                          });
    return c;
}

Tensor
multiply(const Tensor &a, const Tensor &b, AllocationObserver *observer)
{
    checkSameShape(a, b, "multiply");
    Tensor c = Tensor::uninitialized(a.rows(), a.cols(), observer);
    OpTimer timer(OpClass::Elementwise, 3 * a.bytes());
    const float *pa = a.data(), *pb = b.data();
    float *pc = c.data();
    kernels::parallelRows(a.size(), a.size(),
                          [&](std::size_t lo, std::size_t hi) {
                              kernels::ewMultiply(pa, pb, pc, lo, hi);
                          });
    return c;
}

Tensor
scale(const Tensor &a, float s, AllocationObserver *observer)
{
    Tensor c = Tensor::uninitialized(a.rows(), a.cols(), observer);
    OpTimer timer(OpClass::Elementwise, 2 * a.bytes());
    const float *pa = a.data();
    float *pc = c.data();
    kernels::parallelRows(a.size(), a.size(),
                          [&](std::size_t lo, std::size_t hi) {
                              kernels::ewScale(pa, s, pc, lo, hi);
                          });
    return c;
}

void
addInPlace(Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "addInPlace");
    OpTimer timer(OpClass::Elementwise, 3 * a.bytes());
    float *pa = a.data();
    const float *pb = b.data();
    kernels::parallelRows(a.size(), a.size(),
                          [&](std::size_t lo, std::size_t hi) {
                              kernels::ewAddInPlace(pa, pb, lo, hi);
                          });
}

void
scaleInPlace(Tensor &a, float s)
{
    OpTimer timer(OpClass::Elementwise, 2 * a.bytes());
    float *pa = a.data();
    kernels::parallelRows(a.size(), a.size(),
                          [&](std::size_t lo, std::size_t hi) {
                              kernels::ewScaleInPlace(pa, s, lo, hi);
                          });
}

void
fill(Tensor &a, float value)
{
    std::fill(a.data(), a.data() + a.size(), value);
}

Tensor
addRowBroadcast(const Tensor &a, const Tensor &bias,
                AllocationObserver *observer)
{
    checkArgument(bias.rows() == 1 && bias.cols() == a.cols(),
                  "addRowBroadcast: bias must be 1 x cols");
    const std::size_t n = a.cols();
    Tensor c = Tensor::uninitialized(a.rows(), n, observer);
    OpTimer timer(OpClass::Elementwise, 2 * a.bytes() + bias.bytes());
    const float *pa = a.data(), *pbias = bias.data();
    float *pc = c.data();
    kernels::parallelRows(
        a.rows(), a.size(), [&](std::size_t r0, std::size_t r1) {
            kernels::ewAddRowBroadcast(pa, pbias, pc, r0, r1, n);
        });
    return c;
}

Tensor
columnSum(const Tensor &a, AllocationObserver *observer)
{
    const std::size_t rows = a.rows(), n = a.cols();
    Tensor c = Tensor::uninitialized(1, n, observer);
    OpTimer timer(OpClass::Elementwise, a.bytes() + c.bytes());
    const float *pa = a.data();
    float *pc = c.data();
    // Parallel over disjoint column ranges; each column accumulates
    // row-ascending exactly like the serial i-j loop.
    kernels::parallelRows(
        n, a.size(), [&](std::size_t c0, std::size_t c1) {
            kernels::ewColumnSum(pa, pc, rows, n, c0, c1);
        });
    return c;
}

Tensor
relu(const Tensor &a, AllocationObserver *observer)
{
    Tensor c = Tensor::uninitialized(a.rows(), a.cols(), observer);
    OpTimer timer(OpClass::Elementwise, 2 * a.bytes());
    const float *pa = a.data();
    float *pc = c.data();
    kernels::parallelRows(
        a.size(), a.size(), [&](std::size_t lo, std::size_t hi) {
            kernels::ewRelu(pa, pc, lo, hi);
        });
    return c;
}

Tensor
reluBackward(const Tensor &grad, const Tensor &pre_activation,
             AllocationObserver *observer)
{
    checkSameShape(grad, pre_activation, "reluBackward");
    Tensor c = Tensor::uninitialized(grad.rows(), grad.cols(), observer);
    OpTimer timer(OpClass::Elementwise, 3 * grad.bytes());
    const float *pg = grad.data(), *pp = pre_activation.data();
    float *pc = c.data();
    kernels::parallelRows(
        grad.size(), grad.size(), [&](std::size_t lo, std::size_t hi) {
            kernels::ewReluBackward(pg, pp, pc, lo, hi);
        });
    return c;
}

Tensor
sigmoid(const Tensor &a, AllocationObserver *observer)
{
    Tensor c = Tensor::uninitialized(a.rows(), a.cols(), observer);
    OpTimer timer(OpClass::Elementwise, 2 * a.bytes());
    const float *pa = a.data();
    float *pc = c.data();
    // Transcendental cost per element is ~20 flops; weight the work
    // estimate accordingly so mid-sized activations still fan out.
    kernels::parallelRows(
        a.size(), 20 * a.size(), [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i)
                pc[i] = 1.0f / (1.0f + std::exp(-pa[i]));
        });
    return c;
}

Tensor
tanh(const Tensor &a, AllocationObserver *observer)
{
    Tensor c = Tensor::uninitialized(a.rows(), a.cols(), observer);
    OpTimer timer(OpClass::Elementwise, 2 * a.bytes());
    const float *pa = a.data();
    float *pc = c.data();
    kernels::parallelRows(
        a.size(), 20 * a.size(), [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i)
                pc[i] = std::tanh(pa[i]);
        });
    return c;
}

Tensor
concatColumns(const Tensor &a, const Tensor &b,
              AllocationObserver *observer)
{
    checkArgument(a.rows() == b.rows(),
                  "concatColumns: row counts must match");
    Tensor c =
        Tensor::uninitialized(a.rows(), a.cols() + b.cols(), observer);
    OpTimer timer(OpClass::Gather, a.bytes() + b.bytes() + c.bytes());
    kernels::parallelRows(
        a.rows(), c.size(), [&](std::size_t r0, std::size_t r1) {
            for (std::size_t i = r0; i < r1; ++i) {
                std::memcpy(c.data() + i * c.cols(),
                            a.data() + i * a.cols(),
                            a.cols() * sizeof(float));
                std::memcpy(c.data() + i * c.cols() + a.cols(),
                            b.data() + i * b.cols(),
                            b.cols() * sizeof(float));
            }
        });
    return c;
}

Tensor
sliceColumns(const Tensor &a, std::size_t begin, std::size_t end,
             AllocationObserver *observer)
{
    checkArgument(begin <= end && end <= a.cols(),
                  "sliceColumns: invalid column range");
    Tensor c = Tensor::uninitialized(a.rows(), end - begin, observer);
    OpTimer timer(OpClass::Gather, 2 * c.bytes());
    kernels::parallelRows(
        a.rows(), c.size(), [&](std::size_t r0, std::size_t r1) {
            for (std::size_t i = r0; i < r1; ++i)
                std::memcpy(c.data() + i * c.cols(),
                            a.data() + i * a.cols() + begin,
                            c.cols() * sizeof(float));
        });
    return c;
}

Tensor
gatherRows(const Tensor &a, const std::vector<std::uint32_t> &indices,
           AllocationObserver *observer)
{
    for (std::size_t i = 0; i < indices.size(); ++i)
        checkArgument(indices[i] < a.rows(),
                      "gatherRows: index out of range");
    Tensor c = Tensor::uninitialized(indices.size(), a.cols(), observer);
    OpTimer timer(OpClass::Gather, 2 * c.bytes());
    kernels::parallelRows(
        indices.size(), c.size(), [&](std::size_t r0, std::size_t r1) {
            for (std::size_t i = r0; i < r1; ++i)
                std::memcpy(c.data() + i * c.cols(),
                            a.data() + indices[i] * a.cols(),
                            a.cols() * sizeof(float));
        });
    return c;
}

void
scatterAddRows(Tensor &out, const Tensor &a,
               const std::vector<std::uint32_t> &indices)
{
    checkArgument(indices.size() == a.rows(),
                  "scatterAddRows: need one index per input row");
    checkArgument(out.cols() == a.cols(),
                  "scatterAddRows: column counts must match");
    for (std::size_t i = 0; i < indices.size(); ++i)
        checkArgument(indices[i] < out.rows(),
                      "scatterAddRows: index out of range");
    OpTimer timer(OpClass::Gather, 3 * a.bytes());
    const std::size_t cols = a.cols();
    // Owner-partitioned over *output* rows: every task scans the whole
    // index list but only touches rows it owns, so duplicate indices
    // accumulate input-ascending exactly like the serial loop — for
    // any thread count.
    kernels::parallelRows(
        out.rows(), a.size() + indices.size(),
        [&](std::size_t r0, std::size_t r1) {
            for (std::size_t i = 0; i < indices.size(); ++i) {
                const std::size_t row = indices[i];
                if (row < r0 || row >= r1)
                    continue;
                float *dst = out.data() + row * cols;
                const float *src = a.data() + i * cols;
                for (std::size_t j = 0; j < cols; ++j)
                    dst[j] += src[j];
            }
        });
}

void
fillUniform(Tensor &a, float range, util::Rng &rng)
{
    for (std::size_t i = 0; i < a.size(); ++i)
        a.data()[i] =
            static_cast<float>((rng.nextDouble() * 2.0 - 1.0) * range);
}

void
fillXavier(Tensor &a, util::Rng &rng)
{
    const double fan_in = static_cast<double>(a.rows());
    const double fan_out = static_cast<double>(a.cols());
    const float range =
        static_cast<float>(std::sqrt(6.0 / (fan_in + fan_out)));
    fillUniform(a, range, rng);
}

double
sum(const Tensor &a)
{
    double total = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        total += a.data()[i];
    return total;
}

double
maxAbsDiff(const Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "maxAbsDiff");
    double best = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        best = std::max(
            best, std::abs(static_cast<double>(a.data()[i]) -
                           static_cast<double>(b.data()[i])));
    return best;
}

double
frobeniusNorm(const Tensor &a)
{
    double total = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        total += static_cast<double>(a.data()[i]) *
                 static_cast<double>(a.data()[i]);
    return std::sqrt(total);
}

} // namespace buffalo::tensor
