#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/errors.h"

namespace buffalo::tensor {

namespace {

void
checkSameShape(const Tensor &a, const Tensor &b, const char *op)
{
    checkArgument(a.rows() == b.rows() && a.cols() == b.cols(),
                  std::string(op) + ": shape mismatch");
}

} // namespace

Tensor
matmul(const Tensor &a, const Tensor &b, AllocationObserver *observer)
{
    checkArgument(a.cols() == b.rows(), "matmul: inner dims must match");
    Tensor c = Tensor::zeros(a.rows(), b.cols(), observer);
    const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
    // i-k-j loop order keeps the inner loop contiguous in B and C.
    for (std::size_t i = 0; i < m; ++i) {
        float *crow = c.data() + i * n;
        const float *arow = a.data() + i * k;
        for (std::size_t kk = 0; kk < k; ++kk) {
            const float av = arow[kk];
            if (av == 0.0f)
                continue;
            const float *brow = b.data() + kk * n;
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
    return c;
}

Tensor
matmulTransposeA(const Tensor &a, const Tensor &b,
                 AllocationObserver *observer)
{
    checkArgument(a.rows() == b.rows(),
                  "matmulTransposeA: row counts must match");
    Tensor c = Tensor::zeros(a.cols(), b.cols(), observer);
    const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
    for (std::size_t kk = 0; kk < k; ++kk) {
        const float *arow = a.data() + kk * m;
        const float *brow = b.data() + kk * n;
        for (std::size_t i = 0; i < m; ++i) {
            const float av = arow[i];
            if (av == 0.0f)
                continue;
            float *crow = c.data() + i * n;
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
    return c;
}

Tensor
matmulTransposeB(const Tensor &a, const Tensor &b,
                 AllocationObserver *observer)
{
    checkArgument(a.cols() == b.cols(),
                  "matmulTransposeB: col counts must match");
    Tensor c = Tensor::zeros(a.rows(), b.rows(), observer);
    const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
    for (std::size_t i = 0; i < m; ++i) {
        const float *arow = a.data() + i * k;
        float *crow = c.data() + i * n;
        for (std::size_t j = 0; j < n; ++j) {
            const float *brow = b.data() + j * k;
            float dot = 0.0f;
            for (std::size_t kk = 0; kk < k; ++kk)
                dot += arow[kk] * brow[kk];
            crow[j] = dot;
        }
    }
    return c;
}

Tensor
add(const Tensor &a, const Tensor &b, AllocationObserver *observer)
{
    checkSameShape(a, b, "add");
    Tensor c = Tensor::zeros(a.rows(), a.cols(), observer);
    for (std::size_t i = 0; i < a.size(); ++i)
        c.data()[i] = a.data()[i] + b.data()[i];
    return c;
}

Tensor
subtract(const Tensor &a, const Tensor &b, AllocationObserver *observer)
{
    checkSameShape(a, b, "subtract");
    Tensor c = Tensor::zeros(a.rows(), a.cols(), observer);
    for (std::size_t i = 0; i < a.size(); ++i)
        c.data()[i] = a.data()[i] - b.data()[i];
    return c;
}

Tensor
multiply(const Tensor &a, const Tensor &b, AllocationObserver *observer)
{
    checkSameShape(a, b, "multiply");
    Tensor c = Tensor::zeros(a.rows(), a.cols(), observer);
    for (std::size_t i = 0; i < a.size(); ++i)
        c.data()[i] = a.data()[i] * b.data()[i];
    return c;
}

Tensor
scale(const Tensor &a, float s, AllocationObserver *observer)
{
    Tensor c = Tensor::zeros(a.rows(), a.cols(), observer);
    for (std::size_t i = 0; i < a.size(); ++i)
        c.data()[i] = a.data()[i] * s;
    return c;
}

void
addInPlace(Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "addInPlace");
    for (std::size_t i = 0; i < a.size(); ++i)
        a.data()[i] += b.data()[i];
}

void
scaleInPlace(Tensor &a, float s)
{
    for (std::size_t i = 0; i < a.size(); ++i)
        a.data()[i] *= s;
}

void
fill(Tensor &a, float value)
{
    std::fill(a.data(), a.data() + a.size(), value);
}

Tensor
addRowBroadcast(const Tensor &a, const Tensor &bias,
                AllocationObserver *observer)
{
    checkArgument(bias.rows() == 1 && bias.cols() == a.cols(),
                  "addRowBroadcast: bias must be 1 x cols");
    Tensor c = Tensor::zeros(a.rows(), a.cols(), observer);
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            c.at(i, j) = a.at(i, j) + bias.at(0, j);
    return c;
}

Tensor
columnSum(const Tensor &a, AllocationObserver *observer)
{
    Tensor c = Tensor::zeros(1, a.cols(), observer);
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            c.at(0, j) += a.at(i, j);
    return c;
}

Tensor
relu(const Tensor &a, AllocationObserver *observer)
{
    Tensor c = Tensor::zeros(a.rows(), a.cols(), observer);
    for (std::size_t i = 0; i < a.size(); ++i)
        c.data()[i] = std::max(0.0f, a.data()[i]);
    return c;
}

Tensor
reluBackward(const Tensor &grad, const Tensor &pre_activation,
             AllocationObserver *observer)
{
    checkSameShape(grad, pre_activation, "reluBackward");
    Tensor c = Tensor::zeros(grad.rows(), grad.cols(), observer);
    for (std::size_t i = 0; i < grad.size(); ++i)
        c.data()[i] =
            pre_activation.data()[i] > 0.0f ? grad.data()[i] : 0.0f;
    return c;
}

Tensor
sigmoid(const Tensor &a, AllocationObserver *observer)
{
    Tensor c = Tensor::zeros(a.rows(), a.cols(), observer);
    for (std::size_t i = 0; i < a.size(); ++i)
        c.data()[i] = 1.0f / (1.0f + std::exp(-a.data()[i]));
    return c;
}

Tensor
tanh(const Tensor &a, AllocationObserver *observer)
{
    Tensor c = Tensor::zeros(a.rows(), a.cols(), observer);
    for (std::size_t i = 0; i < a.size(); ++i)
        c.data()[i] = std::tanh(a.data()[i]);
    return c;
}

Tensor
concatColumns(const Tensor &a, const Tensor &b,
              AllocationObserver *observer)
{
    checkArgument(a.rows() == b.rows(),
                  "concatColumns: row counts must match");
    Tensor c = Tensor::zeros(a.rows(), a.cols() + b.cols(), observer);
    for (std::size_t i = 0; i < a.rows(); ++i) {
        std::memcpy(c.data() + i * c.cols(), a.data() + i * a.cols(),
                    a.cols() * sizeof(float));
        std::memcpy(c.data() + i * c.cols() + a.cols(),
                    b.data() + i * b.cols(), b.cols() * sizeof(float));
    }
    return c;
}

Tensor
sliceColumns(const Tensor &a, std::size_t begin, std::size_t end,
             AllocationObserver *observer)
{
    checkArgument(begin <= end && end <= a.cols(),
                  "sliceColumns: invalid column range");
    Tensor c = Tensor::zeros(a.rows(), end - begin, observer);
    for (std::size_t i = 0; i < a.rows(); ++i)
        std::memcpy(c.data() + i * c.cols(),
                    a.data() + i * a.cols() + begin,
                    c.cols() * sizeof(float));
    return c;
}

Tensor
gatherRows(const Tensor &a, const std::vector<std::uint32_t> &indices,
           AllocationObserver *observer)
{
    Tensor c = Tensor::zeros(indices.size(), a.cols(), observer);
    for (std::size_t i = 0; i < indices.size(); ++i) {
        checkArgument(indices[i] < a.rows(),
                      "gatherRows: index out of range");
        std::memcpy(c.data() + i * c.cols(),
                    a.data() + indices[i] * a.cols(),
                    a.cols() * sizeof(float));
    }
    return c;
}

void
scatterAddRows(Tensor &out, const Tensor &a,
               const std::vector<std::uint32_t> &indices)
{
    checkArgument(indices.size() == a.rows(),
                  "scatterAddRows: need one index per input row");
    checkArgument(out.cols() == a.cols(),
                  "scatterAddRows: column counts must match");
    for (std::size_t i = 0; i < indices.size(); ++i) {
        checkArgument(indices[i] < out.rows(),
                      "scatterAddRows: index out of range");
        float *dst = out.data() + indices[i] * out.cols();
        const float *src = a.data() + i * a.cols();
        for (std::size_t j = 0; j < a.cols(); ++j)
            dst[j] += src[j];
    }
}

void
fillUniform(Tensor &a, float range, util::Rng &rng)
{
    for (std::size_t i = 0; i < a.size(); ++i)
        a.data()[i] =
            static_cast<float>((rng.nextDouble() * 2.0 - 1.0) * range);
}

void
fillXavier(Tensor &a, util::Rng &rng)
{
    const double fan_in = static_cast<double>(a.rows());
    const double fan_out = static_cast<double>(a.cols());
    const float range =
        static_cast<float>(std::sqrt(6.0 / (fan_in + fan_out)));
    fillUniform(a, range, rng);
}

double
sum(const Tensor &a)
{
    double total = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        total += a.data()[i];
    return total;
}

double
maxAbsDiff(const Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "maxAbsDiff");
    double best = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        best = std::max(
            best, std::abs(static_cast<double>(a.data()[i]) -
                           static_cast<double>(b.data()[i])));
    return best;
}

double
frobeniusNorm(const Tensor &a)
{
    double total = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        total += static_cast<double>(a.data()[i]) *
                 static_cast<double>(a.data()[i]);
    return std::sqrt(total);
}

} // namespace buffalo::tensor
