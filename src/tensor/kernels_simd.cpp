/**
 * @file
 * Wide-ISA implementations of the kernel layer (declared in
 * tensor/kernels_wide.h). This is the ONLY translation unit allowed
 * to include tensor/simd.h: CMake compiles it with the target ISA
 * flags (-mavx2 -ffp-contract=off on x86-64 when BUFFALO_SIMD=ON),
 * and without BUFFALO_SIMD_ENABLED it degrades to the scalar VecF
 * lane so the symbols always exist.
 *
 * Bitwise contract with the scalar kernels in kernels.cpp: lanes map
 * only to independent output elements (GEMM j-columns, elementwise
 * indices, aggregator feature columns); each element's contributions
 * accumulate in the serial order (k-ascending, t-ascending); every
 * multiply-accumulate rounds the multiply and the add separately
 * (simd.h mulAdd — never an FMA). The kernels_test.cpp memcmp sweeps
 * compare this path against the scalar path at every width × thread
 * count.
 *
 * GEMM additionally packs the current B tile into a contiguous panel
 * (tile_k x tile_n floats, thread_local storage) so the micro-kernel
 * streams unit-stride vector loads regardless of n; packing copies
 * bits untouched, so it cannot perturb results.
 */
#include "tensor/kernels_wide.h"

#include <algorithm>
#include <vector>

#include "tensor/simd.h"

namespace buffalo::tensor::kernels::wide {

namespace {

namespace s = buffalo::tensor::simd;

constexpr std::size_t W = s::kWidth;

/** Per-thread panel storage: parallelRows tasks never share threads'
 *  packing buffers, and serial callers reuse one allocation. */
std::vector<float> &
packBuffer()
{
    thread_local std::vector<float> buffer;
    return buffer;
}

/**
 * Packs B rows [kp, kend) x columns [jp, jend) into a contiguous
 * (kend-kp) x (jend-jp) panel.
 */
float *
packPanel(const float *b, std::size_t n, std::size_t kp,
          std::size_t kend, std::size_t jp, std::size_t jend)
{
    std::vector<float> &store = packBuffer();
    const std::size_t tw = jend - jp;
    store.resize((kend - kp) * tw);
    float *panel = store.data();
    for (std::size_t kk = kp; kk < kend; ++kk)
        std::copy(b + kk * n + jp, b + kk * n + jend,
                  panel + (kk - kp) * tw);
    return panel;
}

/**
 * The shared A*B tile micro-kernel: rows [r0, r1) of C against the
 * packed panel. @p arow_of maps (row, kk) to the A element so the
 * same body serves gemmRows (A row-major) and gemmTransposeARows
 * (A column-major). Four C rows share every panel load; each C
 * element is loaded once per tile, accumulated in a register over
 * the panel's kk (k-ascending), and stored — the serial per-element
 * order for any tiling.
 */
template <typename ARowAt>
void
tileMicroKernel(ARowAt arow_at, const float *panel, float *c,
                std::size_t r0, std::size_t r1, std::size_t n,
                std::size_t kp, std::size_t kend, std::size_t jp,
                std::size_t jend)
{
    const std::size_t tw = jend - jp;
    const std::size_t kd = kend - kp;
    std::size_t i = r0;
    for (; i + 4 <= r1; i += 4) {
        float *c0 = c + (i + 0) * n + jp;
        float *c1 = c + (i + 1) * n + jp;
        float *c2 = c + (i + 2) * n + jp;
        float *c3 = c + (i + 3) * n + jp;
        std::size_t j = 0;
        for (; j + W <= tw; j += W) {
            s::VecF acc0 = s::load(c0 + j);
            s::VecF acc1 = s::load(c1 + j);
            s::VecF acc2 = s::load(c2 + j);
            s::VecF acc3 = s::load(c3 + j);
            for (std::size_t kk = 0; kk < kd; ++kk) {
                const s::VecF bv = s::load(panel + kk * tw + j);
                acc0 = s::mulAdd(
                    s::broadcast(arow_at(i + 0, kp + kk)), bv, acc0);
                acc1 = s::mulAdd(
                    s::broadcast(arow_at(i + 1, kp + kk)), bv, acc1);
                acc2 = s::mulAdd(
                    s::broadcast(arow_at(i + 2, kp + kk)), bv, acc2);
                acc3 = s::mulAdd(
                    s::broadcast(arow_at(i + 3, kp + kk)), bv, acc3);
            }
            s::store(c0 + j, acc0);
            s::store(c1 + j, acc1);
            s::store(c2 + j, acc2);
            s::store(c3 + j, acc3);
        }
        for (; j < tw; ++j) {
            float s0 = c0[j], s1 = c1[j], s2 = c2[j], s3 = c3[j];
            for (std::size_t kk = 0; kk < kd; ++kk) {
                const float bv = panel[kk * tw + j];
                s0 += arow_at(i + 0, kp + kk) * bv;
                s1 += arow_at(i + 1, kp + kk) * bv;
                s2 += arow_at(i + 2, kp + kk) * bv;
                s3 += arow_at(i + 3, kp + kk) * bv;
            }
            c0[j] = s0;
            c1[j] = s1;
            c2[j] = s2;
            c3[j] = s3;
        }
    }
    for (; i < r1; ++i) {
        float *crow = c + i * n + jp;
        std::size_t j = 0;
        for (; j + W <= tw; j += W) {
            s::VecF acc = s::load(crow + j);
            for (std::size_t kk = 0; kk < kd; ++kk)
                acc = s::mulAdd(s::broadcast(arow_at(i, kp + kk)),
                                s::load(panel + kk * tw + j), acc);
            s::store(crow + j, acc);
        }
        for (; j < tw; ++j) {
            float sum = crow[j];
            for (std::size_t kk = 0; kk < kd; ++kk)
                sum += arow_at(i, kp + kk) * panel[kk * tw + j];
            crow[j] = sum;
        }
    }
}

} // namespace

bool
available()
{
#if defined(BUFFALO_SIMD_AVX2)
    static const bool supported = __builtin_cpu_supports("avx2") != 0;
    return supported;
#elif defined(BUFFALO_SIMD_NEON)
    return true;
#else
    return false;
#endif
}

std::size_t
width()
{
    return W;
}

const char *
isaName()
{
    return s::isaName();
}

float
hsumTree(const float *lanes, std::size_t n)
{
    float scratch[64];
    std::copy(lanes, lanes + n, scratch);
    while (n > 1) {
        n /= 2;
        for (std::size_t i = 0; i < n; ++i)
            scratch[i] = scratch[i] + scratch[i + n];
    }
    return scratch[0];
}

void
gemmRows(const float *a, const float *b, float *c, std::size_t r0,
         std::size_t r1, std::size_t k, std::size_t n,
         std::size_t tile_k, std::size_t tile_n)
{
    for (std::size_t i = r0; i < r1; ++i)
        std::fill(c + i * n, c + (i + 1) * n, 0.0f);
    if (k == 0 || n == 0)
        return;
    for (std::size_t kp = 0; kp < k; kp += tile_k) {
        const std::size_t kend = std::min(k, kp + tile_k);
        for (std::size_t jp = 0; jp < n; jp += tile_n) {
            const std::size_t jend = std::min(n, jp + tile_n);
            const float *panel = packPanel(b, n, kp, kend, jp, jend);
            tileMicroKernel(
                [a, k](std::size_t row, std::size_t kk) {
                    return a[row * k + kk];
                },
                panel, c, r0, r1, n, kp, kend, jp, jend);
        }
    }
}

void
gemmTransposeARows(const float *a, const float *b, float *c,
                   std::size_t r0, std::size_t r1, std::size_t k,
                   std::size_t m, std::size_t n, std::size_t tile_k,
                   std::size_t tile_n)
{
    for (std::size_t i = r0; i < r1; ++i)
        std::fill(c + i * n, c + (i + 1) * n, 0.0f);
    if (k == 0 || n == 0)
        return;
    for (std::size_t kp = 0; kp < k; kp += tile_k) {
        const std::size_t kend = std::min(k, kp + tile_k);
        for (std::size_t jp = 0; jp < n; jp += tile_n) {
            const std::size_t jend = std::min(n, jp + tile_n);
            const float *panel = packPanel(b, n, kp, kend, jp, jend);
            // C row i is A column i: a[kk*m + i].
            tileMicroKernel(
                [a, m](std::size_t row, std::size_t kk) {
                    return a[kk * m + row];
                },
                panel, c, r0, r1, n, kp, kend, jp, jend);
        }
    }
}

void
gemmTransposeBRows(const float *a, const float *b, float *c,
                   std::size_t r0, std::size_t r1, std::size_t k,
                   std::size_t n)
{
    // W dot products run in W lanes: pack the W B rows transposed
    // (panel[kk*W + l] = b[(j+l)*k + kk]) so each kk step is one
    // unit-stride load, broadcast a[i][kk], and accumulate — every
    // lane's dot still sums k-ascending in its own register, exactly
    // like the scalar four-wide blocking.
    std::vector<float> &store = packBuffer();
    const std::size_t j_wide = (W > 1) ? n - n % W : 0;
    for (std::size_t j = 0; j < j_wide; j += W) {
        store.resize(k * W);
        float *panel = store.data();
        for (std::size_t l = 0; l < W; ++l) {
            const float *brow = b + (j + l) * k;
            for (std::size_t kk = 0; kk < k; ++kk)
                panel[kk * W + l] = brow[kk];
        }
        for (std::size_t i = r0; i < r1; ++i) {
            const float *arow = a + i * k;
            s::VecF acc = s::zero();
            for (std::size_t kk = 0; kk < k; ++kk)
                acc = s::mulAdd(s::broadcast(arow[kk]),
                                s::load(panel + kk * W), acc);
            s::store(c + i * n + j, acc);
        }
    }
    for (std::size_t i = r0; i < r1; ++i) {
        const float *arow = a + i * k;
        float *crow = c + i * n;
        for (std::size_t j = j_wide; j < n; ++j) {
            const float *brow = b + j * k;
            float dot = 0.0f;
            for (std::size_t kk = 0; kk < k; ++kk)
                dot += arow[kk] * brow[kk];
            crow[j] = dot;
        }
    }
}

void
ewAdd(const float *a, const float *b, float *c, std::size_t lo,
      std::size_t hi)
{
    std::size_t i = lo;
    for (; i + W <= hi; i += W)
        s::store(c + i, s::add(s::load(a + i), s::load(b + i)));
    for (; i < hi; ++i)
        c[i] = a[i] + b[i];
}

void
ewSubtract(const float *a, const float *b, float *c, std::size_t lo,
           std::size_t hi)
{
    std::size_t i = lo;
    for (; i + W <= hi; i += W)
        s::store(c + i, s::sub(s::load(a + i), s::load(b + i)));
    for (; i < hi; ++i)
        c[i] = a[i] - b[i];
}

void
ewMultiply(const float *a, const float *b, float *c, std::size_t lo,
           std::size_t hi)
{
    std::size_t i = lo;
    for (; i + W <= hi; i += W)
        s::store(c + i, s::mul(s::load(a + i), s::load(b + i)));
    for (; i < hi; ++i)
        c[i] = a[i] * b[i];
}

void
ewScale(const float *a, float sc, float *c, std::size_t lo,
        std::size_t hi)
{
    const s::VecF sv = s::broadcast(sc);
    std::size_t i = lo;
    for (; i + W <= hi; i += W)
        s::store(c + i, s::mul(s::load(a + i), sv));
    for (; i < hi; ++i)
        c[i] = a[i] * sc;
}

void
ewAddInPlace(float *a, const float *b, std::size_t lo, std::size_t hi)
{
    std::size_t i = lo;
    for (; i + W <= hi; i += W)
        s::store(a + i, s::add(s::load(a + i), s::load(b + i)));
    for (; i < hi; ++i)
        a[i] += b[i];
}

void
ewScaleInPlace(float *a, float sc, std::size_t lo, std::size_t hi)
{
    const s::VecF sv = s::broadcast(sc);
    std::size_t i = lo;
    for (; i + W <= hi; i += W)
        s::store(a + i, s::mul(s::load(a + i), sv));
    for (; i < hi; ++i)
        a[i] *= sc;
}

void
ewRelu(const float *a, float *c, std::size_t lo, std::size_t hi)
{
    std::size_t i = lo;
    for (; i + W <= hi; i += W) {
        const s::VecF x = s::load(a + i);
        s::store(c + i, s::selectGtZero(x, x));
    }
    for (; i < hi; ++i)
        c[i] = a[i] > 0.0f ? a[i] : 0.0f;
}

void
ewReluBackward(const float *grad, const float *pre, float *c,
               std::size_t lo, std::size_t hi)
{
    std::size_t i = lo;
    for (; i + W <= hi; i += W)
        s::store(c + i,
                 s::selectGtZero(s::load(pre + i), s::load(grad + i)));
    for (; i < hi; ++i)
        c[i] = pre[i] > 0.0f ? grad[i] : 0.0f;
}

void
ewAddRowBroadcast(const float *a, const float *bias, float *c,
                  std::size_t r0, std::size_t r1, std::size_t n)
{
    for (std::size_t i = r0; i < r1; ++i) {
        const float *arow = a + i * n;
        float *crow = c + i * n;
        std::size_t j = 0;
        for (; j + W <= n; j += W)
            s::store(crow + j,
                     s::add(s::load(arow + j), s::load(bias + j)));
        for (; j < n; ++j)
            crow[j] = arow[j] + bias[j];
    }
}

void
ewColumnSum(const float *a, float *c, std::size_t rows, std::size_t n,
            std::size_t c0, std::size_t c1)
{
    // Columns are independent; each accumulates row-ascending in its
    // own lane, like the serial i-j loop.
    std::size_t j = c0;
    for (; j + W <= c1; j += W) {
        s::VecF acc = s::zero();
        for (std::size_t i = 0; i < rows; ++i)
            acc = s::add(acc, s::load(a + i * n + j));
        s::store(c + j, acc);
    }
    for (; j < c1; ++j) {
        float sum = 0.0f;
        for (std::size_t i = 0; i < rows; ++i)
            sum += a[i * n + j];
        c[j] = sum;
    }
}

void
fusedGatherSumScaleRows(const float *x, const std::uint32_t *gather,
                        const std::uint32_t *out_rows, std::size_t v0,
                        std::size_t v1, std::size_t d, std::size_t dim,
                        float norm, float *out)
{
    const s::VecF nv = s::broadcast(norm);
    for (std::size_t v = v0; v < v1; ++v) {
        float *dst = out + static_cast<std::size_t>(out_rows[v]) * dim;
        std::fill(dst, dst + dim, 0.0f);
        for (std::size_t t = 0; t < d; ++t) {
            const float *src =
                x + static_cast<std::size_t>(gather[v * d + t]) * dim;
            std::size_t j = 0;
            for (; j + W <= dim; j += W)
                s::store(dst + j,
                         s::add(s::load(dst + j), s::load(src + j)));
            for (; j < dim; ++j)
                dst[j] += src[j];
        }
        std::size_t j = 0;
        for (; j + W <= dim; j += W)
            s::store(dst + j, s::mul(s::load(dst + j), nv));
        for (; j < dim; ++j)
            dst[j] *= norm;
    }
}

void
fusedGatherScaledAddRows(const float *x, const std::uint32_t *gather,
                         const std::uint32_t *out_rows, std::size_t v0,
                         std::size_t v1, std::size_t d, std::size_t dim,
                         float norm, float *out)
{
    const s::VecF nv = s::broadcast(norm);
    for (std::size_t v = v0; v < v1; ++v) {
        float *dst = out + static_cast<std::size_t>(out_rows[v]) * dim;
        for (std::size_t t = 0; t < d; ++t) {
            const float *src =
                x + static_cast<std::size_t>(gather[v * d + t]) * dim;
            std::size_t j = 0;
            for (; j + W <= dim; j += W)
                s::store(dst + j, s::mulAdd(s::load(src + j), nv,
                                            s::load(dst + j)));
            for (; j < dim; ++j) {
                const float g = src[j] * norm;
                dst[j] += g;
            }
        }
    }
}

void
fusedScatterScaledAddRows(const float *grad,
                          const std::uint32_t *out_rows,
                          const std::uint32_t *gather, std::size_t n,
                          std::size_t d, std::size_t dim, float norm,
                          float *grad_x, std::size_t r0, std::size_t r1)
{
    // Owner-partitioned over grad_x rows: scan every (i, t) ascending
    // and touch only owned rows, so duplicate destinations accumulate
    // input-ascending — the serial scatterAddRows order — at any
    // thread count.
    const s::VecF nv = s::broadcast(norm);
    for (std::size_t i = 0; i < n; ++i) {
        const float *src =
            grad + static_cast<std::size_t>(out_rows[i]) * dim;
        for (std::size_t t = 0; t < d; ++t) {
            const std::size_t row = gather[i * d + t];
            if (row < r0 || row >= r1)
                continue;
            float *dst = grad_x + row * dim;
            std::size_t j = 0;
            for (; j + W <= dim; j += W)
                s::store(dst + j, s::mulAdd(s::load(src + j), nv,
                                            s::load(dst + j)));
            for (; j < dim; ++j) {
                const float g = src[j] * norm;
                dst[j] += g;
            }
        }
    }
}

} // namespace buffalo::tensor::kernels::wide
