/**
 * @file
 * The parallel compute-kernel layer under tensor/ops (DESIGN.md,
 * "Compute kernels"). Dense GEMM is cache-tiled (B-panel reuse, a
 * register-blocked 4-row micro-kernel) and every hot kernel fans out
 * row ranges over a thread pool.
 *
 * Determinism contract: parallel execution is **bitwise identical**
 * to the serial kernel. Work is partitioned so each output row is
 * owned by exactly one task, and every per-element floating-point
 * accumulation runs in the same order as the serial reference (k
 * ascending for GEMM, input-row ascending for scatter-adds). Tile
 * sizes and thread counts therefore never change results — only
 * wall-clock.
 *
 * Grain policy: ops whose total scalar work falls below
 * KernelConfig::min_parallel_work run serially inline, so the tiny
 * micro-buckets SplitExplosionBucket emits never pay dispatch
 * overhead. Kernels invoked from inside a thread-pool task (e.g. the
 * prefetcher's feature stage) also stay serial so compute parallelism
 * composes with the pipeline instead of oversubscribing it.
 */
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace buffalo::tensor::kernels {

/**
 * SIMD dispatch policy (KernelConfig::simd, CLI --kernel-simd).
 * Auto uses the wide path when the build carries one (BUFFALO_SIMD)
 * and the CPU supports it; Off forces the scalar kernels; On demands
 * the wide path and setConfig() rejects it when unavailable. The two
 * paths are bitwise identical, so the mode never changes numerics.
 */
enum class SimdMode { Auto, Off, On };

/** Tunables for the kernel layer (TrainerOptions::kernels, CLI
 *  --kernel-threads / --kernel-tile-n / --kernel-tile-k /
 *  --kernel-simd). Changing values never changes numerics. */
struct KernelConfig
{
    /** Worker threads for kernel fan-out; 0 = hardware concurrency
     *  (the process-global pool). 1 forces serial execution. */
    std::size_t threads = 0;
    /** GEMM B-panel width (columns per tile). */
    std::size_t tile_n = 64;
    /** GEMM k-panel depth (rows of B per tile). */
    std::size_t tile_k = 128;
    /** Scalar-op count below which an op runs serially inline. */
    std::size_t min_parallel_work = 1u << 15;
    /** Minimum output rows (or elements) per parallel task. */
    std::size_t min_rows_per_task = 8;
    /** SIMD dispatch policy (see SimdMode). */
    SimdMode simd = SimdMode::Auto;
};

/**
 * The process-wide kernel configuration. Read on every op dispatch;
 * mutate only via setConfig(), and only while no kernels are running
 * (trainer construction, test setup).
 */
const KernelConfig &config();

/** Installs @p cfg (sanitizing zero tile sizes) process-wide. */
void setConfig(const KernelConfig &cfg);

/** Threads a parallel dispatch would use under the current config. */
std::size_t effectiveThreads();

/** True when this build carries a wide ISA the host CPU supports
 *  (independent of the configured SimdMode). */
bool simdAvailable();

/** Lane-group width the current config dispatches at: the build's
 *  wide width when the SIMD path is active, 1 when it is off or
 *  unavailable. */
std::size_t simdWidth();

/** ISA of the wide path compiled into this binary: "avx2", "neon",
 *  or "scalar" (BUFFALO_SIMD=OFF builds). */
const char *simdIsaName();

/** Parses "auto" / "off" / "on"; throws InvalidArgument otherwise. */
SimdMode simdModeFromName(const std::string &name);

/** Inverse of simdModeFromName. */
const char *simdModeName(SimdMode mode);

/**
 * Partitions [0, rows) into contiguous ranges — each row owned by
 * exactly one task — and runs body(begin, end) for every range.
 * Runs body(0, rows) serially inline when @p work (total scalar ops)
 * is below the configured grain, only one thread is available, or the
 * caller is already inside a pool task. @return true if the op was
 * dispatched in parallel. Records the kernels.parallel_ops /
 * kernels.serial_ops counters either way.
 */
bool parallelRows(std::size_t rows, std::uint64_t work,
                  const std::function<void(std::size_t, std::size_t)>
                      &body);

/**
 * C = A * B over rows [r0, r1) of C. A is m x k, B is k x n, all
 * row-major. Zero-fills the owned C rows first (outputs may come from
 * Tensor::uninitialized), then accumulates k-ascending — bitwise
 * equal to the serial i-k-j loop for any tiling or row partition.
 */
void gemmRows(const float *a, const float *b, float *c, std::size_t r0,
              std::size_t r1, std::size_t k, std::size_t n);

/**
 * C = A^T * B over rows [r0, r1) of C. A is k x m, B is k x n,
 * C is m x n. Same zero-fill + k-ascending contract as gemmRows.
 */
void gemmTransposeARows(const float *a, const float *b, float *c,
                        std::size_t r0, std::size_t r1, std::size_t k,
                        std::size_t m, std::size_t n);

/**
 * C = A * B^T over rows [r0, r1) of C. A is m x k, B is n x k,
 * C is m x n. Each element is one sequential k-ascending dot product.
 */
void gemmTransposeBRows(const float *a, const float *b, float *c,
                        std::size_t r0, std::size_t r1, std::size_t k,
                        std::size_t n);

/**
 * Elementwise range kernels over flat index ranges [lo, hi) (row
 * ranges [r0, r1) for the row-shaped ones). Callers partition the
 * range (ops.cpp does it via parallelRows); each call dispatches to
 * the scalar or SIMD body under the current config — both bitwise
 * identical, element i depends only on input element i.
 */
void ewAdd(const float *a, const float *b, float *c, std::size_t lo,
           std::size_t hi);
void ewSubtract(const float *a, const float *b, float *c,
                std::size_t lo, std::size_t hi);
void ewMultiply(const float *a, const float *b, float *c,
                std::size_t lo, std::size_t hi);
void ewScale(const float *a, float s, float *c, std::size_t lo,
             std::size_t hi);
void ewAddInPlace(float *a, const float *b, std::size_t lo,
                  std::size_t hi);
void ewScaleInPlace(float *a, float s, std::size_t lo, std::size_t hi);
void ewRelu(const float *a, float *c, std::size_t lo, std::size_t hi);
void ewReluBackward(const float *grad, const float *pre, float *c,
                    std::size_t lo, std::size_t hi);
void ewAddRowBroadcast(const float *a, const float *bias, float *c,
                       std::size_t r0, std::size_t r1, std::size_t n);
/** Column range [c0, c1) of the 1 x n column-sum of a (rows x n);
 *  each column accumulates row-ascending. */
void ewColumnSum(const float *a, float *c, std::size_t rows,
                 std::size_t n, std::size_t c0, std::size_t c1);

/**
 * Fused aggregator chains (full ops: they record Aggregate counters
 * and fan out over the kernel pool internally). All three replace a
 * materialized gatherRows round-trip with direct indexed reads, with
 * rounding sequences bit-identical to the unfused path.
 *
 * fusedGatherSumScale: for each v in [0, n),
 *   out[out_rows[v]] = (sum_t x[gather[v*d + t]]) * norm
 * — zero-fill, t-ascending sum, then scale: the MeanAggregator
 * forward order. Each v owns its output row (out_rows must be
 * duplicate-free), so work is partitioned over v.
 */
void fusedGatherSumScale(const float *x, const std::uint32_t *gather,
                         const std::uint32_t *out_rows, std::size_t n,
                         std::size_t d, std::size_t dim, float norm,
                         float *out);

/**
 * fusedGatherScaledAdd: for each v, t ascending,
 *   out[out_rows[v]] += x[gather[v*d + t]] * norm
 * (separately rounded mul then add) — the GCN inline mean order.
 * out_rows must be duplicate-free; out rows arrive pre-zeroed.
 */
void fusedGatherScaledAdd(const float *x, const std::uint32_t *gather,
                          const std::uint32_t *out_rows, std::size_t n,
                          std::size_t d, std::size_t dim, float norm,
                          float *out);

/**
 * fusedScatterScaledAdd: for each (i, t) ascending,
 *   grad_x[gather[i*d + t]] += grad[out_rows[i]] * norm
 * — the broadcast-then-scatterAddRows order (two roundings per
 * element). Owner-partitioned over grad_x rows [0, grad_x_rows):
 * duplicate gather targets accumulate input-ascending at any thread
 * count, exactly like ops::scatterAddRows.
 */
void fusedScatterScaledAdd(const float *grad,
                           const std::uint32_t *out_rows,
                           const std::uint32_t *gather, std::size_t n,
                           std::size_t d, std::size_t dim, float norm,
                           float *grad_x, std::size_t grad_x_rows);

/** Instrumented op classes (obs counters kernels.<class>_*). */
enum class OpClass { Gemm, Elementwise, Gather, Aggregate };

/**
 * RAII per-op instrumentation: records one call and @p bytes moved at
 * construction, elapsed nanoseconds at destruction, into the metrics
 * registry (names.h kernels.* counters). Cheap: four relaxed atomic
 * adds and two steady_clock reads per op.
 */
class OpTimer
{
  public:
    OpTimer(OpClass op_class, std::uint64_t bytes,
            std::uint64_t flops = 0);
    ~OpTimer();

    OpTimer(const OpTimer &) = delete;
    OpTimer &operator=(const OpTimer &) = delete;

  private:
    OpClass op_class_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace buffalo::tensor::kernels
