/**
 * @file
 * The parallel compute-kernel layer under tensor/ops (DESIGN.md,
 * "Compute kernels"). Dense GEMM is cache-tiled (B-panel reuse, a
 * register-blocked 4-row micro-kernel) and every hot kernel fans out
 * row ranges over a thread pool.
 *
 * Determinism contract: parallel execution is **bitwise identical**
 * to the serial kernel. Work is partitioned so each output row is
 * owned by exactly one task, and every per-element floating-point
 * accumulation runs in the same order as the serial reference (k
 * ascending for GEMM, input-row ascending for scatter-adds). Tile
 * sizes and thread counts therefore never change results — only
 * wall-clock.
 *
 * Grain policy: ops whose total scalar work falls below
 * KernelConfig::min_parallel_work run serially inline, so the tiny
 * micro-buckets SplitExplosionBucket emits never pay dispatch
 * overhead. Kernels invoked from inside a thread-pool task (e.g. the
 * prefetcher's feature stage) also stay serial so compute parallelism
 * composes with the pipeline instead of oversubscribing it.
 */
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>

namespace buffalo::tensor::kernels {

/** Tunables for the kernel layer (TrainerOptions::kernels, CLI
 *  --kernel-threads). Changing values never changes numerics. */
struct KernelConfig
{
    /** Worker threads for kernel fan-out; 0 = hardware concurrency
     *  (the process-global pool). 1 forces serial execution. */
    std::size_t threads = 0;
    /** GEMM B-panel width (columns per tile). */
    std::size_t tile_n = 64;
    /** GEMM k-panel depth (rows of B per tile). */
    std::size_t tile_k = 128;
    /** Scalar-op count below which an op runs serially inline. */
    std::size_t min_parallel_work = 1u << 15;
    /** Minimum output rows (or elements) per parallel task. */
    std::size_t min_rows_per_task = 8;
};

/**
 * The process-wide kernel configuration. Read on every op dispatch;
 * mutate only via setConfig(), and only while no kernels are running
 * (trainer construction, test setup).
 */
const KernelConfig &config();

/** Installs @p cfg (sanitizing zero tile sizes) process-wide. */
void setConfig(const KernelConfig &cfg);

/** Threads a parallel dispatch would use under the current config. */
std::size_t effectiveThreads();

/**
 * Partitions [0, rows) into contiguous ranges — each row owned by
 * exactly one task — and runs body(begin, end) for every range.
 * Runs body(0, rows) serially inline when @p work (total scalar ops)
 * is below the configured grain, only one thread is available, or the
 * caller is already inside a pool task. @return true if the op was
 * dispatched in parallel. Records the kernels.parallel_ops /
 * kernels.serial_ops counters either way.
 */
bool parallelRows(std::size_t rows, std::uint64_t work,
                  const std::function<void(std::size_t, std::size_t)>
                      &body);

/**
 * C = A * B over rows [r0, r1) of C. A is m x k, B is k x n, all
 * row-major. Zero-fills the owned C rows first (outputs may come from
 * Tensor::uninitialized), then accumulates k-ascending — bitwise
 * equal to the serial i-k-j loop for any tiling or row partition.
 */
void gemmRows(const float *a, const float *b, float *c, std::size_t r0,
              std::size_t r1, std::size_t k, std::size_t n);

/**
 * C = A^T * B over rows [r0, r1) of C. A is k x m, B is k x n,
 * C is m x n. Same zero-fill + k-ascending contract as gemmRows.
 */
void gemmTransposeARows(const float *a, const float *b, float *c,
                        std::size_t r0, std::size_t r1, std::size_t k,
                        std::size_t m, std::size_t n);

/**
 * C = A * B^T over rows [r0, r1) of C. A is m x k, B is n x k,
 * C is m x n. Each element is one sequential k-ascending dot product.
 */
void gemmTransposeBRows(const float *a, const float *b, float *c,
                        std::size_t r0, std::size_t r1, std::size_t k,
                        std::size_t n);

/** Instrumented op classes (obs counters kernels.<class>_*). */
enum class OpClass { Gemm, Elementwise, Gather, Aggregate };

/**
 * RAII per-op instrumentation: records one call and @p bytes moved at
 * construction, elapsed nanoseconds at destruction, into the metrics
 * registry (names.h kernels.* counters). Cheap: four relaxed atomic
 * adds and two steady_clock reads per op.
 */
class OpTimer
{
  public:
    OpTimer(OpClass op_class, std::uint64_t bytes,
            std::uint64_t flops = 0);
    ~OpTimer();

    OpTimer(const OpTimer &) = delete;
    OpTimer &operator=(const OpTimer &) = delete;

  private:
    OpClass op_class_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace buffalo::tensor::kernels
