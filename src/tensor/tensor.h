/**
 * @file
 * Dense float32 matrix type with pluggable allocation observation.
 *
 * Every tensor allocation/free can be observed by an AllocationObserver.
 * The simulated device (src/device) installs an observer that enforces a
 * GPU-style memory capacity and raises OOM — this is how the whole-batch
 * baselines reproduce the paper's OOM columns without real CUDA memory.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace buffalo::tensor {

/** Receives allocation events; implementations may throw to refuse. */
class AllocationObserver
{
  public:
    virtual ~AllocationObserver() = default;

    /**
     * Called before @p bytes become live. May throw (e.g. device OOM),
     * in which case the allocation does not happen.
     */
    virtual void onAllocate(std::uint64_t bytes) = 0;

    /** Called when @p bytes previously allocated are released. */
    virtual void onFree(std::uint64_t bytes) = 0;
};

/**
 * A 2-D row-major float tensor. Copies share storage (shallow); use
 * clone() for a deep copy. A 1-D vector is a 1 x n tensor.
 */
class Tensor
{
  public:
    /** An empty 0 x 0 tensor. */
    Tensor() = default;

    /** Allocates rows x cols zero-initialized floats. */
    static Tensor zeros(std::size_t rows, std::size_t cols,
                        AllocationObserver *observer = nullptr);

    /**
     * Allocates rows x cols floats *without* initializing them —
     * element values are indeterminate until written. For kernel
     * outputs that are fully overwritten, this skips the page-touching
     * zero pass zeros() pays (accumulation targets must keep zeros()).
     */
    static Tensor uninitialized(std::size_t rows, std::size_t cols,
                                AllocationObserver *observer = nullptr);

    /** Allocates and fills with @p value. */
    static Tensor full(std::size_t rows, std::size_t cols, float value,
                       AllocationObserver *observer = nullptr);

    /** Builds a 1 x values.size() tensor from @p values. */
    static Tensor fromVector(const std::vector<float> &values,
                             AllocationObserver *observer = nullptr);

    /** Builds rows x cols from row-major @p values. */
    static Tensor fromValues(std::size_t rows, std::size_t cols,
                             const std::vector<float> &values,
                             AllocationObserver *observer = nullptr);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return rows_ * cols_; }
    bool empty() const { return size() == 0; }

    /** Bytes of float storage this tensor holds. */
    std::uint64_t bytes() const { return size() * sizeof(float); }

    /** Element access (row, col); bounds-checked in debug builds. */
    float &
    at(std::size_t r, std::size_t c)
    {
        return data()[r * cols_ + c];
    }
    float
    at(std::size_t r, std::size_t c) const
    {
        return data()[r * cols_ + c];
    }

    /** Raw row-major data pointer (null when empty). */
    float *data();
    const float *data() const;

    /** Row @p r as a span of cols() floats. */
    std::span<float> row(std::size_t r);
    std::span<const float> row(std::size_t r) const;

    /** Deep copy, allocated under @p observer (or this one's). */
    Tensor clone(AllocationObserver *observer = nullptr) const;

    /** True if both tensors share the same storage. */
    bool sharesStorageWith(const Tensor &other) const;

    /** The observer this tensor's storage is charged to (may be null). */
    AllocationObserver *observer() const;

  private:
    struct Storage;

    Tensor(std::size_t rows, std::size_t cols,
           std::shared_ptr<Storage> storage);

    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::shared_ptr<Storage> storage_;
};

} // namespace buffalo::tensor
