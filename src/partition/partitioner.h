/**
 * @file
 * Batch-level partitioning strategies compared in paper Fig. 16:
 * Random and Range split the 1-D space of output nodes; MetisLike (see
 * metis_like.h) partitions the graph structure. Buffalo's bucket-level
 * partitioning lives in src/core and is not a Partitioner — that
 * asymmetry is the point of the paper.
 */
#pragma once

#include <string>

#include "partition/weighted_graph.h"
#include "util/rng.h"

namespace buffalo::partition {

/** Strategy interface: split a weighted graph into K parts. */
class Partitioner
{
  public:
    virtual ~Partitioner() = default;

    /** Returns a part id in [0, num_parts) for every node. */
    virtual Assignment partition(const WeightedGraph &wg,
                                 int num_parts) = 0;

    /** Strategy name for reports. */
    virtual std::string name() const = 0;
};

/** Evenly-sized random assignment (paper Fig. 16 "Random"). */
class RandomPartitioner : public Partitioner
{
  public:
    explicit RandomPartitioner(std::uint64_t seed) : rng_(seed) {}

    Assignment partition(const WeightedGraph &wg,
                         int num_parts) override;

    std::string name() const override { return "random"; }

  private:
    util::Rng rng_;
};

/** Contiguous index-range assignment (paper Fig. 16 "Range"). */
class RangePartitioner : public Partitioner
{
  public:
    Assignment partition(const WeightedGraph &wg,
                         int num_parts) override;

    std::string name() const override { return "range"; }
};

} // namespace buffalo::partition
