/**
 * @file
 * From-scratch multilevel K-way partitioner in the style of METIS
 * (Karypis & Kumar): heavy-edge-matching coarsening, greedy region-
 * growing initial partition, and boundary Kernighan–Lin refinement at
 * every uncoarsening level.
 *
 * This substitutes for the METIS dependency of DGL/PyG/Betty (see
 * DESIGN.md): it reproduces both the *cost shape* (iterative coarsen/
 * refine passes that dominate per-iteration time in paper Figs. 5/11)
 * and the *quality shape* (low edge cut) that the baselines rely on.
 */
#pragma once

#include "partition/partitioner.h"

namespace buffalo::partition {

/** Tuning knobs for MetisLike. */
struct MetisLikeOptions
{
    /** Stop coarsening below this many nodes. */
    NodeId coarsen_target = 128;
    /** Maximum coarsening levels. */
    int max_levels = 30;
    /** KL/FM refinement passes per level. */
    int refine_passes = 4;
    /** Allowed imbalance: max part weight <= factor * ideal. */
    double balance_factor = 1.05;
    /** RNG seed for matching tie-breaks and region-growing seeds. */
    std::uint64_t seed = 1;
};

/** Multilevel K-way graph partitioner. */
class MetisLike : public Partitioner
{
  public:
    explicit MetisLike(const MetisLikeOptions &options = {})
        : options_(options) {}

    Assignment partition(const WeightedGraph &wg,
                         int num_parts) override;

    std::string name() const override { return "metis-like"; }

    /** Statistics of the most recent partition() call. */
    struct Stats
    {
        int levels = 0;
        std::uint64_t edge_cut = 0;
        double balance = 1.0;
    };

    const Stats &lastStats() const { return stats_; }

  private:
    MetisLikeOptions options_;
    Stats stats_;
};

} // namespace buffalo::partition
