#include "partition/partitioner.h"

#include "util/errors.h"

namespace buffalo::partition {

Assignment
RandomPartitioner::partition(const WeightedGraph &wg, int num_parts)
{
    checkArgument(num_parts >= 1,
                  "RandomPartitioner: need >= 1 part");
    const NodeId n = wg.numNodes();
    // Evenly random: shuffle node ids, deal them round-robin.
    std::vector<NodeId> order(n);
    for (NodeId u = 0; u < n; ++u)
        order[u] = u;
    rng_.shuffle(order);
    Assignment assignment(n, 0);
    for (NodeId i = 0; i < n; ++i)
        assignment[order[i]] = static_cast<int>(i % num_parts);
    return assignment;
}

Assignment
RangePartitioner::partition(const WeightedGraph &wg, int num_parts)
{
    checkArgument(num_parts >= 1, "RangePartitioner: need >= 1 part");
    const NodeId n = wg.numNodes();
    Assignment assignment(n, 0);
    if (n == 0)
        return assignment;
    const NodeId chunk = (n + num_parts - 1) / num_parts;
    for (NodeId u = 0; u < n; ++u)
        assignment[u] = static_cast<int>(u / chunk);
    return assignment;
}

} // namespace buffalo::partition
