/**
 * @file
 * Node- and edge-weighted graph used by the multilevel partitioner and
 * by Betty's redundancy-embedded graph (REG).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"

namespace buffalo::partition {

using graph::CsrGraph;
using graph::EdgeIndex;
using graph::NodeId;

/** CSR graph with integer node weights and edge weights. */
struct WeightedGraph
{
    CsrGraph graph;
    /** One weight per node; defaults to 1. */
    std::vector<std::uint32_t> node_weights;
    /** One weight per CSR edge (aligned with graph.targets()). */
    std::vector<std::uint32_t> edge_weights;

    /** Wraps an unweighted graph with unit weights. */
    static WeightedGraph fromUnweighted(CsrGraph graph);

    NodeId numNodes() const { return graph.numNodes(); }
    EdgeIndex numEdges() const { return graph.numEdges(); }

    /** Sum of all node weights. */
    std::uint64_t totalNodeWeight() const;

    /** Throws if weight array sizes disagree with the graph. */
    void validate() const;
};

/** A K-way assignment: part id per node. */
using Assignment = std::vector<int>;

/** Sum of edge weights crossing parts (each undirected edge once if the
 *  graph is symmetric, since both directions are counted and halved). */
std::uint64_t edgeCutWeight(const WeightedGraph &wg,
                            const Assignment &assignment);

/** max part weight / ideal part weight; 1.0 is perfectly balanced. */
double balanceFactor(const WeightedGraph &wg,
                     const Assignment &assignment, int num_parts);

} // namespace buffalo::partition
