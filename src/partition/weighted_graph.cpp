#include "partition/weighted_graph.h"

#include <algorithm>

#include "util/errors.h"

namespace buffalo::partition {

WeightedGraph
WeightedGraph::fromUnweighted(CsrGraph graph)
{
    WeightedGraph wg;
    wg.node_weights.assign(graph.numNodes(), 1);
    wg.edge_weights.assign(graph.numEdges(), 1);
    wg.graph = std::move(graph);
    return wg;
}

std::uint64_t
WeightedGraph::totalNodeWeight() const
{
    std::uint64_t total = 0;
    for (auto w : node_weights)
        total += w;
    return total;
}

void
WeightedGraph::validate() const
{
    checkArgument(node_weights.size() == graph.numNodes(),
                  "WeightedGraph: node weight count mismatch");
    checkArgument(edge_weights.size() == graph.numEdges(),
                  "WeightedGraph: edge weight count mismatch");
}

std::uint64_t
edgeCutWeight(const WeightedGraph &wg, const Assignment &assignment)
{
    checkArgument(assignment.size() == wg.numNodes(),
                  "edgeCutWeight: assignment size mismatch");
    std::uint64_t cut = 0;
    const NodeId n = wg.numNodes();
    for (NodeId u = 0; u < n; ++u) {
        const auto &offsets = wg.graph.offsets();
        for (EdgeIndex e = offsets[u]; e < offsets[u + 1]; ++e) {
            const NodeId v = wg.graph.targets()[e];
            if (assignment[u] != assignment[v])
                cut += wg.edge_weights[e];
        }
    }
    // Symmetric graphs count each crossing twice.
    return cut / 2;
}

double
balanceFactor(const WeightedGraph &wg, const Assignment &assignment,
              int num_parts)
{
    checkArgument(num_parts >= 1, "balanceFactor: need >= 1 part");
    std::vector<std::uint64_t> part_weight(num_parts, 0);
    for (NodeId u = 0; u < wg.numNodes(); ++u)
        part_weight[assignment[u]] += wg.node_weights[u];
    const std::uint64_t max_weight =
        *std::max_element(part_weight.begin(), part_weight.end());
    const double ideal = static_cast<double>(wg.totalNodeWeight()) /
                         static_cast<double>(num_parts);
    return ideal == 0.0 ? 1.0
                        : static_cast<double>(max_weight) / ideal;
}

} // namespace buffalo::partition
