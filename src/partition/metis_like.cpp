#include "partition/metis_like.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "util/errors.h"
#include "util/logging.h"
#include "util/rng.h"

namespace buffalo::partition {

namespace {

/** One coarsening level: the coarse graph + fine->coarse projection. */
struct Level
{
    WeightedGraph wg;
    /** For the *finer* graph: fine node -> coarse node id. */
    std::vector<NodeId> coarse_of;
};

/**
 * Heavy-edge matching: each unmatched node pairs with its unmatched
 * neighbor of maximum edge weight. Returns fine->coarse map and the
 * number of coarse nodes.
 */
std::pair<std::vector<NodeId>, NodeId>
heavyEdgeMatching(const WeightedGraph &wg, util::Rng &rng)
{
    const NodeId n = wg.numNodes();
    std::vector<NodeId> order(n);
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);

    constexpr NodeId kUnmatched = static_cast<NodeId>(-1);
    std::vector<NodeId> match(n, kUnmatched);
    for (NodeId u : order) {
        if (match[u] != kUnmatched)
            continue;
        NodeId best = kUnmatched;
        std::uint32_t best_weight = 0;
        const auto &offsets = wg.graph.offsets();
        for (EdgeIndex e = offsets[u]; e < offsets[u + 1]; ++e) {
            const NodeId v = wg.graph.targets()[e];
            if (v == u || match[v] != kUnmatched)
                continue;
            if (wg.edge_weights[e] > best_weight) {
                best_weight = wg.edge_weights[e];
                best = v;
            }
        }
        if (best == kUnmatched) {
            match[u] = u;
        } else {
            match[u] = best;
            match[best] = u;
        }
    }

    std::vector<NodeId> coarse_of(n, kUnmatched);
    NodeId next = 0;
    for (NodeId u = 0; u < n; ++u) {
        if (coarse_of[u] != kUnmatched)
            continue;
        coarse_of[u] = next;
        if (match[u] != u)
            coarse_of[match[u]] = next;
        ++next;
    }
    return {std::move(coarse_of), next};
}

/** Builds the coarse weighted graph under @p coarse_of. */
WeightedGraph
buildCoarseGraph(const WeightedGraph &fine,
                 const std::vector<NodeId> &coarse_of,
                 NodeId coarse_count)
{
    WeightedGraph coarse;
    coarse.node_weights.assign(coarse_count, 0);
    for (NodeId u = 0; u < fine.numNodes(); ++u)
        coarse.node_weights[coarse_of[u]] += fine.node_weights[u];

    // Accumulate merged edges per coarse row.
    std::vector<std::unordered_map<NodeId, std::uint32_t>> rows(
        coarse_count);
    const auto &offsets = fine.graph.offsets();
    for (NodeId u = 0; u < fine.numNodes(); ++u) {
        const NodeId cu = coarse_of[u];
        for (EdgeIndex e = offsets[u]; e < offsets[u + 1]; ++e) {
            const NodeId cv = coarse_of[fine.graph.targets()[e]];
            if (cu == cv)
                continue;
            rows[cu][cv] += fine.edge_weights[e];
        }
    }

    std::vector<EdgeIndex> coarse_offsets(
        static_cast<std::size_t>(coarse_count) + 1, 0);
    std::vector<NodeId> targets;
    for (NodeId cu = 0; cu < coarse_count; ++cu) {
        for (const auto &[cv, w] : rows[cu]) {
            targets.push_back(cv);
            coarse.edge_weights.push_back(w);
        }
        coarse_offsets[cu + 1] = targets.size();
    }
    coarse.graph =
        CsrGraph(std::move(coarse_offsets), std::move(targets));
    return coarse;
}

/** Greedy region-growing initial K-way partition. */
Assignment
initialPartition(const WeightedGraph &wg, int num_parts,
                 util::Rng &rng)
{
    const NodeId n = wg.numNodes();
    Assignment assignment(n, -1);
    if (num_parts == 1) {
        std::fill(assignment.begin(), assignment.end(), 0);
        return assignment;
    }
    const double ideal = static_cast<double>(wg.totalNodeWeight()) /
                         num_parts;

    std::vector<NodeId> order(n);
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);
    std::size_t seed_cursor = 0;

    std::vector<NodeId> frontier;
    for (int part = 0; part < num_parts - 1; ++part) {
        double weight = 0.0;
        frontier.clear();
        while (weight < ideal) {
            NodeId next = static_cast<NodeId>(-1);
            if (!frontier.empty()) {
                next = frontier.back();
                frontier.pop_back();
                if (assignment[next] != -1)
                    continue;
            } else {
                while (seed_cursor < order.size() &&
                       assignment[order[seed_cursor]] != -1) {
                    ++seed_cursor;
                }
                if (seed_cursor >= order.size())
                    break;
                next = order[seed_cursor];
            }
            assignment[next] = part;
            weight += wg.node_weights[next];
            for (NodeId v : wg.graph.neighbors(next))
                if (assignment[v] == -1)
                    frontier.push_back(v);
        }
    }
    for (NodeId u = 0; u < n; ++u)
        if (assignment[u] == -1)
            assignment[u] = num_parts - 1;
    return assignment;
}

/** One boundary KL/FM refinement pass; returns number of moves. */
std::size_t
refinePass(const WeightedGraph &wg, Assignment &assignment,
           int num_parts, double max_part_weight,
           std::vector<double> &part_weight, util::Rng &rng)
{
    const NodeId n = wg.numNodes();
    std::vector<NodeId> order(n);
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);

    std::vector<double> link(num_parts, 0.0);
    std::size_t moves = 0;
    const auto &offsets = wg.graph.offsets();
    for (NodeId u : order) {
        const int from = assignment[u];
        std::fill(link.begin(), link.end(), 0.0);
        bool boundary = false;
        for (EdgeIndex e = offsets[u]; e < offsets[u + 1]; ++e) {
            const NodeId v = wg.graph.targets()[e];
            link[assignment[v]] += wg.edge_weights[e];
            if (assignment[v] != from)
                boundary = true;
        }
        if (!boundary)
            continue;
        int best = from;
        double best_gain = 0.0;
        for (int part = 0; part < num_parts; ++part) {
            if (part == from)
                continue;
            if (part_weight[part] + wg.node_weights[u] >
                max_part_weight) {
                continue;
            }
            const double gain = link[part] - link[from];
            if (gain > best_gain) {
                best_gain = gain;
                best = part;
            }
        }
        if (best != from) {
            assignment[u] = best;
            part_weight[from] -= wg.node_weights[u];
            part_weight[best] += wg.node_weights[u];
            ++moves;
        }
    }
    return moves;
}

void
refine(const WeightedGraph &wg, Assignment &assignment, int num_parts,
       const MetisLikeOptions &options, util::Rng &rng)
{
    const double ideal = static_cast<double>(wg.totalNodeWeight()) /
                         num_parts;
    const double max_part_weight = ideal * options.balance_factor + 1.0;
    std::vector<double> part_weight(num_parts, 0.0);
    for (NodeId u = 0; u < wg.numNodes(); ++u)
        part_weight[assignment[u]] += wg.node_weights[u];

    for (int pass = 0; pass < options.refine_passes; ++pass) {
        if (refinePass(wg, assignment, num_parts, max_part_weight,
                       part_weight, rng) == 0) {
            break;
        }
    }
}

} // namespace

Assignment
MetisLike::partition(const WeightedGraph &wg, int num_parts)
{
    checkArgument(num_parts >= 1, "MetisLike: need >= 1 part");
    wg.validate();
    stats_ = Stats{};
    util::Rng rng(options_.seed);

    if (wg.numNodes() == 0)
        return {};
    if (num_parts == 1)
        return Assignment(wg.numNodes(), 0);

    // Phase 1: coarsen.
    std::vector<Level> levels;
    const WeightedGraph *current = &wg;
    for (int depth = 0; depth < options_.max_levels &&
                        current->numNodes() > options_.coarsen_target;
         ++depth) {
        auto [coarse_of, coarse_count] =
            heavyEdgeMatching(*current, rng);
        // Stalled coarsening (e.g. star graphs) -> stop.
        if (coarse_count >= current->numNodes() * 0.95)
            break;
        Level level;
        level.coarse_of = std::move(coarse_of);
        level.wg =
            buildCoarseGraph(*current, level.coarse_of, coarse_count);
        levels.push_back(std::move(level));
        current = &levels.back().wg;
    }
    stats_.levels = static_cast<int>(levels.size());

    // Phase 2: initial partition of the coarsest graph.
    Assignment assignment = initialPartition(*current, num_parts, rng);
    refine(*current, assignment, num_parts, options_, rng);

    // Phase 3: uncoarsen + refine.
    for (std::size_t depth = levels.size(); depth-- > 0;) {
        const WeightedGraph &finer =
            depth == 0 ? wg : levels[depth - 1].wg;
        Assignment fine_assignment(finer.numNodes());
        for (NodeId u = 0; u < finer.numNodes(); ++u)
            fine_assignment[u] = assignment[levels[depth].coarse_of[u]];
        assignment = std::move(fine_assignment);
        refine(finer, assignment, num_parts, options_, rng);
    }

    stats_.edge_cut = edgeCutWeight(wg, assignment);
    stats_.balance = balanceFactor(wg, assignment, num_parts);
    BUFFALO_LOG_DEBUG("metis-like")
        << "k=" << num_parts << " levels=" << stats_.levels
        << " cut=" << stats_.edge_cut << " balance=" << stats_.balance;
    return assignment;
}

} // namespace buffalo::partition
