/**
 * @file
 * Model configuration shared by the GNN models, the device cost model,
 * and Buffalo's memory estimator.
 */
#pragma once

#include <string>
#include <vector>

#include "util/errors.h"

namespace buffalo::nn {

/** Neighborhood aggregation operator (paper Fig. 2's x-axis). */
enum class AggregatorKind
{
    Mean, ///< elementwise mean of neighbor features
    Pool, ///< max-pool over per-neighbor linear + ReLU
    Lstm, ///< LSTM over the neighbor sequence (memory-intensive)
    Gcn,  ///< mean including the node itself
};

/** Printable name of @p kind. */
const char *aggregatorName(AggregatorKind kind);

/** Model architecture (determines update-weight shapes). */
enum class ModelArch
{
    Sage, ///< GraphSAGE: update over concat(self, aggregated)
    Gcn,  ///< plain GCN: single weight over the mean incl. self
    Gat,  ///< graph attention: per-head weight + attention vectors
};

/** Printable name of @p arch. */
const char *modelArchName(ModelArch arch);

/** Parses an aggregator name ("mean", "pool", "lstm", "gcn"). */
AggregatorKind aggregatorFromName(const std::string &name);

/** Hyperparameters of a GNN model. */
struct ModelConfig
{
    /** Architecture; set by the model constructors / trainers. */
    ModelArch arch = ModelArch::Sage;
    AggregatorKind aggregator = AggregatorKind::Mean;
    /** Aggregation depth L (number of message-passing layers). */
    int num_layers = 2;
    /** Raw input feature width. */
    int feature_dim = 64;
    /** Hidden width of every intermediate layer (and LSTM state). */
    int hidden_dim = 128;
    /** Output width (number of classes). */
    int num_classes = 16;
    /** Attention heads (GAT only). */
    int num_heads = 1;

    /** Input feature width of layer @p layer (0-based, input first). */
    int
    layerInDim(int layer) const
    {
        return layer == 0 ? feature_dim : hidden_dim;
    }

    /** Output width of layer @p layer. */
    int
    layerOutDim(int layer) const
    {
        return layer == num_layers - 1 ? num_classes : hidden_dim;
    }

    /** Throws InvalidArgument if any field is out of range. */
    void
    validate() const
    {
        checkArgument(num_layers >= 1, "ModelConfig: num_layers >= 1");
        checkArgument(feature_dim >= 1, "ModelConfig: feature_dim >= 1");
        checkArgument(hidden_dim >= 1, "ModelConfig: hidden_dim >= 1");
        checkArgument(num_classes >= 2, "ModelConfig: num_classes >= 2");
        checkArgument(num_heads >= 1, "ModelConfig: num_heads >= 1");
    }
};

} // namespace buffalo::nn
