#include "nn/optimizer.h"

#include <cmath>

namespace buffalo::nn {

Sgd::Sgd(std::vector<Parameter *> params, double learning_rate,
         double momentum, AllocationObserver *observer)
    : Optimizer(std::move(params)), lr_(learning_rate),
      momentum_(momentum)
{
    if (momentum_ != 0.0) {
        velocity_.reserve(params_.size());
        for (Parameter *param : params_)
            velocity_.push_back(Tensor::zeros(param->value().rows(),
                                              param->value().cols(),
                                              observer));
    }
}

void
Sgd::step()
{
    for (std::size_t p = 0; p < params_.size(); ++p) {
        Tensor &value = params_[p]->value();
        Tensor &grad = params_[p]->grad();
        if (momentum_ != 0.0) {
            Tensor &vel = velocity_[p];
            for (std::size_t k = 0; k < value.size(); ++k) {
                vel.data()[k] = static_cast<float>(
                    momentum_ * vel.data()[k] + grad.data()[k]);
                value.data()[k] -=
                    static_cast<float>(lr_) * vel.data()[k];
            }
        } else {
            for (std::size_t k = 0; k < value.size(); ++k)
                value.data()[k] -=
                    static_cast<float>(lr_) * grad.data()[k];
        }
        params_[p]->zeroGrad();
    }
}

std::uint64_t
Sgd::stateBytes() const
{
    std::uint64_t total = 0;
    for (const Tensor &vel : velocity_)
        total += vel.bytes();
    return total;
}

Adam::Adam(std::vector<Parameter *> params, double learning_rate,
           double beta1, double beta2, double eps,
           AllocationObserver *observer)
    : Optimizer(std::move(params)), lr_(learning_rate), beta1_(beta1),
      beta2_(beta2), eps_(eps)
{
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (Parameter *param : params_) {
        m_.push_back(Tensor::zeros(param->value().rows(),
                                   param->value().cols(), observer));
        v_.push_back(Tensor::zeros(param->value().rows(),
                                   param->value().cols(), observer));
    }
}

void
Adam::step()
{
    ++step_count_;
    const double bc1 = 1.0 - std::pow(beta1_, step_count_);
    const double bc2 = 1.0 - std::pow(beta2_, step_count_);
    for (std::size_t p = 0; p < params_.size(); ++p) {
        Tensor &value = params_[p]->value();
        Tensor &grad = params_[p]->grad();
        Tensor &m = m_[p];
        Tensor &v = v_[p];
        for (std::size_t k = 0; k < value.size(); ++k) {
            const double g = grad.data()[k];
            m.data()[k] = static_cast<float>(
                beta1_ * m.data()[k] + (1.0 - beta1_) * g);
            v.data()[k] = static_cast<float>(
                beta2_ * v.data()[k] + (1.0 - beta2_) * g * g);
            const double m_hat = m.data()[k] / bc1;
            const double v_hat = v.data()[k] / bc2;
            value.data()[k] -= static_cast<float>(
                lr_ * m_hat / (std::sqrt(v_hat) + eps_));
        }
        params_[p]->zeroGrad();
    }
}

std::uint64_t
Adam::stateBytes() const
{
    std::uint64_t total = 0;
    for (std::size_t p = 0; p < m_.size(); ++p)
        total += m_[p].bytes() + v_[p].bytes();
    return total;
}

} // namespace buffalo::nn
