#include "nn/parameter.h"

#include "tensor/ops.h"

namespace buffalo::nn {

Parameter::Parameter(std::string name, std::size_t rows,
                     std::size_t cols, AllocationObserver *observer)
    : name_(std::move(name)),
      value_(Tensor::zeros(rows, cols, observer)),
      grad_(Tensor::zeros(rows, cols, observer))
{
}

void
Parameter::accumulateGrad(const Tensor &delta)
{
    tensor::addInPlace(grad_, delta);
}

void
Parameter::zeroGrad()
{
    tensor::fill(grad_, 0.0f);
}

std::uint64_t
Parameter::bytes() const
{
    return value_.bytes() + grad_.bytes();
}

void
Module::zeroGrad()
{
    for (Parameter *param : parameters())
        param->zeroGrad();
}

std::uint64_t
Module::parameterBytes()
{
    std::uint64_t total = 0;
    for (Parameter *param : parameters())
        total += param->bytes();
    return total;
}

} // namespace buffalo::nn
