#include "nn/checkpoint.h"

#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <set>

#include "util/errors.h"

namespace buffalo::nn {

namespace {

constexpr char kMagic[4] = {'B', 'U', 'F', 'C'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void
writePod(std::ostream &out, const T &value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
T
readPod(std::istream &in)
{
    T value{};
    in.read(reinterpret_cast<char *>(&value), sizeof(T));
    checkArgument(static_cast<bool>(in), "checkpoint: truncated");
    return value;
}

} // namespace

void
saveCheckpoint(std::ostream &out, Module &module)
{
    const auto params = module.parameters();
    out.write(kMagic, sizeof(kMagic));
    writePod(out, kVersion);
    writePod<std::uint64_t>(out, params.size());
    for (Parameter *param : params) {
        const std::string &name = param->name();
        writePod<std::uint64_t>(out, name.size());
        out.write(name.data(),
                  static_cast<std::streamsize>(name.size()));
        writePod<std::uint64_t>(out, param->value().rows());
        writePod<std::uint64_t>(out, param->value().cols());
        out.write(reinterpret_cast<const char *>(
                      param->value().data()),
                  static_cast<std::streamsize>(
                      param->value().size() * sizeof(float)));
    }
    checkArgument(static_cast<bool>(out),
                  "saveCheckpoint: stream write failed");
}

void
saveCheckpointFile(const std::string &path, Module &module)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw Error("saveCheckpointFile: cannot open '" + path + "'");
    saveCheckpoint(out, module);
}

void
loadCheckpoint(std::istream &in, Module &module)
{
    char magic[4];
    in.read(magic, sizeof(magic));
    checkArgument(static_cast<bool>(in) && magic[0] == 'B' &&
                      magic[1] == 'U' && magic[2] == 'F' &&
                      magic[3] == 'C',
                  "checkpoint: bad magic");
    const auto version = readPod<std::uint32_t>(in);
    checkArgument(version == kVersion,
                  "checkpoint: unsupported version");
    const auto count = readPod<std::uint64_t>(in);

    struct Entry
    {
        std::uint64_t rows, cols;
        std::vector<float> values;
    };
    std::map<std::string, Entry> entries;
    for (std::uint64_t i = 0; i < count; ++i) {
        const auto name_size = readPod<std::uint64_t>(in);
        checkArgument(name_size < 4096,
                      "checkpoint: implausible name length");
        std::string name(name_size, '\0');
        in.read(name.data(),
                static_cast<std::streamsize>(name_size));
        Entry entry;
        entry.rows = readPod<std::uint64_t>(in);
        entry.cols = readPod<std::uint64_t>(in);
        checkArgument(entry.rows * entry.cols < (1ull << 32),
                      "checkpoint: implausible tensor size");
        entry.values.resize(entry.rows * entry.cols);
        in.read(reinterpret_cast<char *>(entry.values.data()),
                static_cast<std::streamsize>(entry.values.size() *
                                             sizeof(float)));
        checkArgument(static_cast<bool>(in),
                      "checkpoint: truncated tensor");
        const bool inserted =
            entries.emplace(std::move(name), std::move(entry)).second;
        checkArgument(inserted, "checkpoint: duplicate parameter");
    }

    // Validate the full checkpoint/model correspondence BEFORE
    // touching any parameter, so a mismatched checkpoint never leaves
    // the module half-loaded.
    const auto params = module.parameters();
    std::size_t matched = 0;
    for (Parameter *param : params) {
        auto it = entries.find(param->name());
        if (it == entries.end())
            throw InvalidArgument(
                "checkpoint: model parameter '" + param->name() +
                "' not present in checkpoint (" +
                std::to_string(entries.size()) +
                " entries) — was the checkpoint written by a "
                "different architecture or layer count?");
        const Entry &entry = it->second;
        if (entry.rows != param->value().rows() ||
            entry.cols != param->value().cols())
            throw InvalidArgument(
                "checkpoint: shape mismatch for '" + param->name() +
                "': checkpoint has " + std::to_string(entry.rows) +
                "x" + std::to_string(entry.cols) +
                ", model expects " +
                std::to_string(param->value().rows()) + "x" +
                std::to_string(param->value().cols()) +
                " — check hidden_dim/feature_dim/num_classes");
        ++matched;
    }
    if (matched != entries.size()) {
        // Name the first orphan so the error is actionable.
        std::string orphan;
        std::set<std::string> known;
        for (Parameter *param : params)
            known.insert(param->name());
        for (const auto &[name, entry] : entries) {
            if (known.find(name) == known.end()) {
                orphan = name;
                break;
            }
        }
        throw InvalidArgument(
            "checkpoint: " +
            std::to_string(entries.size() - matched) +
            " checkpoint entr" +
            (entries.size() - matched == 1 ? "y has" : "ies have") +
            " no matching model parameter (first: '" + orphan +
            "') — the checkpoint was written by a larger or "
            "different model");
    }

    for (Parameter *param : params)
        std::copy(entries[param->name()].values.begin(),
                  entries[param->name()].values.end(),
                  param->value().data());
}

void
loadCheckpointFile(const std::string &path, Module &module)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw NotFound("loadCheckpointFile: cannot open '" + path +
                       "'");
    loadCheckpoint(in, module);
}

} // namespace buffalo::nn
