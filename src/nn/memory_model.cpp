#include "nn/memory_model.h"

#include "nn/aggregators.h"

namespace buffalo::nn {

namespace {

constexpr double kBytesPerFloat = 4.0;

} // namespace

MemoryModel::MemoryModel(const ModelConfig &config) : config_(config)
{
    config_.validate();
}

std::uint64_t
MemoryModel::bucketActivationBytes(int layer, std::uint64_t n,
                                   std::uint64_t d) const
{
    // Without dedup information, sources are bounded by n + n*d.
    return layerActivationBytesFromCounts(layer, n, n * d, n + n * d);
}

std::uint64_t
MemoryModel::layerActivationBytesFromCounts(int layer, std::uint64_t dst,
                                            std::uint64_t edges,
                                            std::uint64_t src) const
{
    const double in = config_.layerInDim(layer);
    const double out = config_.layerOutDim(layer);

    // Gathered neighbor features + aggregator internal caches.
    const double agg_floats =
        static_cast<double>(edges) *
        aggregatorCacheFloatsPerEdge(config_.aggregator,
                                     static_cast<std::size_t>(in));
    // Forward: aggregated output + concat(self, agg) + pre/post
    // activation. Backward: the concat gradient (2*in per dst).
    const double update_floats =
        static_cast<double>(dst) * (5.0 * in + 2.0 * out);
    // Backward: the input-gradient buffer spans the layer's sources.
    const double grad_floats = static_cast<double>(src) * in;
    return static_cast<std::uint64_t>(
        (agg_floats + update_floats + grad_floats) * kBytesPerFloat);
}

std::uint64_t
MemoryModel::blockActivationBytes(const sampling::Block &block,
                                  int layer) const
{
    std::uint64_t total = 0;
    std::uint64_t dst_total = 0, edge_total = 0;
    for (const auto &bucket : sampling::bucketizeBlock(block)) {
        dst_total += bucket.volume();
        edge_total += bucket.volume() * bucket.degree;
    }
    total += layerActivationBytesFromCounts(layer, dst_total,
                                            edge_total,
                                            block.numSrc());
    return total;
}

std::uint64_t
MemoryModel::inputFeatureBytes(std::uint64_t num_inputs) const
{
    return static_cast<std::uint64_t>(
        static_cast<double>(num_inputs) * config_.feature_dim *
        kBytesPerFloat);
}

std::uint64_t
MemoryModel::microBatchBytes(const sampling::MicroBatch &mb) const
{
    std::uint64_t total =
        inputFeatureBytes(mb.inputNodes().size());
    for (int layer = 0; layer < mb.numLayers(); ++layer)
        total += blockActivationBytes(mb.blocks[layer], layer);
    // Output gradients (logits + dlogits).
    const auto &top = mb.blocks.back();
    total += static_cast<std::uint64_t>(
        2.0 * top.numDst() * config_.num_classes * kBytesPerFloat);
    return total;
}

double
MemoryModel::parameterFloats() const
{
    double total = 0.0;
    for (int layer = 0; layer < config_.num_layers; ++layer) {
        const double in = config_.layerInDim(layer);
        const double out = config_.layerOutDim(layer);
        switch (config_.arch) {
          case ModelArch::Sage:
            // Update weight over concat(self, agg) + bias.
            total += 2.0 * in * out + out;
            switch (config_.aggregator) {
              case AggregatorKind::Pool:
                total += in * in + in;
                break;
              case AggregatorKind::Lstm:
                total += 8.0 * in * in + 4.0 * in;
                break;
              default:
                break;
            }
            break;
          case ModelArch::Gcn:
            // Single weight over the mean (incl. self) + bias.
            total += in * out + out;
            break;
          case ModelArch::Gat:
            // Per head: W (in x out/heads) + a_src + a_dst.
            total += in * out + 2.0 * out;
            break;
        }
    }
    return total;
}

std::uint64_t
MemoryModel::weightBytes() const
{
    // Values + gradients.
    return static_cast<std::uint64_t>(2.0 * parameterFloats() *
                                      kBytesPerFloat);
}

std::uint64_t
MemoryModel::optimizerBytes() const
{
    return static_cast<std::uint64_t>(2.0 * parameterFloats() *
                                      kBytesPerFloat);
}

double
MemoryModel::bucketFlops(int layer, std::uint64_t n,
                         std::uint64_t d) const
{
    const double in = config_.layerInDim(layer);
    const double out = config_.layerOutDim(layer);
    const double nn = static_cast<double>(n);
    const double edges = nn * static_cast<double>(d);

    double agg = 0.0;
    switch (config_.aggregator) {
      case AggregatorKind::Mean:
      case AggregatorKind::Gcn:
        agg = 2.0 * edges * in;
        break;
      case AggregatorKind::Pool:
        agg = 6.0 * edges * in * in + 4.0 * edges * in;
        break;
      case AggregatorKind::Lstm:
        agg = 48.0 * edges * in * in;
        break;
    }
    // Update: concat(self, agg) [n x 2in] times W [2in x out],
    // forward + two backward matmuls.
    const double update = 6.0 * nn * 2.0 * in * out;
    return agg + update;
}

double
MemoryModel::microBatchFlops(const sampling::MicroBatch &mb) const
{
    double total = 0.0;
    for (int layer = 0; layer < mb.numLayers(); ++layer) {
        for (const auto &bucket :
             sampling::bucketizeBlock(mb.blocks[layer])) {
            total += bucketFlops(layer, bucket.volume(), bucket.degree);
        }
    }
    return total;
}

std::uint64_t
MemoryModel::transferBytes(const sampling::MicroBatch &mb) const
{
    return mb.structureBytes() +
           inputFeatureBytes(mb.inputNodes().size()) +
           mb.outputNodes().size() * sizeof(std::int32_t);
}

} // namespace buffalo::nn
