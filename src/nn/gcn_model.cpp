#include "nn/gcn_model.h"

#include <cstring>

#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "util/errors.h"

namespace buffalo::nn {

namespace ops = buffalo::tensor;
namespace kernels = buffalo::tensor::kernels;

GcnModel::GcnModel(const ModelConfig &config, std::uint64_t seed,
                   AllocationObserver *param_observer)
    : config_([&] {
          ModelConfig fixed = config;
          fixed.arch = ModelArch::Gcn;
          return fixed;
      }()),
      memory_model_(config_)
{
    config_.validate();
    util::Rng rng(seed);
    for (int layer = 0; layer < config_.num_layers; ++layer) {
        updates_.push_back(std::make_unique<Linear>(
            "gcn." + std::to_string(layer) + ".update",
            config_.layerInDim(layer), config_.layerOutDim(layer),
            rng, param_observer));
    }
}

Tensor
GcnModel::forward(const sampling::MicroBatch &mb,
                  const Tensor &input_features, ForwardCache &cache,
                  AllocationObserver *observer)
{
    return forwardImpl(mb, input_features, &cache, observer);
}

Tensor
GcnModel::forwardInference(const sampling::MicroBatch &mb,
                           const Tensor &input_features,
                           AllocationObserver *observer)
{
    return forwardImpl(mb, input_features, nullptr, observer);
}

Tensor
GcnModel::forwardImpl(const sampling::MicroBatch &mb,
                      const Tensor &input_features, ForwardCache *cache,
                      AllocationObserver *observer)
{
    checkArgument(mb.numLayers() == config_.num_layers,
                  "GcnModel::forward: block count != num_layers");
    if (cache != nullptr) {
        cache->layers.clear();
        cache->layers.resize(config_.num_layers);
    }

    Tensor x = input_features;
    for (int layer = 0; layer < config_.num_layers; ++layer) {
        const sampling::Block &block = mb.blocks[layer];
        checkArgument(x.rows() == block.numSrc(),
                      "GcnModel::forward: feature/block row mismatch");
        ForwardCache::LayerState *state =
            cache != nullptr ? &cache->layers[layer] : nullptr;
        if (state != nullptr)
            state->input = x;

        const std::size_t in = config_.layerInDim(layer);
        Tensor aggregated =
            Tensor::zeros(block.numDst(), in, observer);

        for (auto &bucket : sampling::bucketizeBlock(block)) {
            // Built locally either way; without a cache the gather
            // indices die with this iteration.
            ForwardCache::BucketState bucket_state;
            bucket_state.bucket = bucket;
            const std::size_t n = bucket.members.size();
            const std::size_t width = bucket.degree + 1; // + self
            auto &indices = bucket_state.gather_indices;
            indices.reserve(n * width);
            for (sampling::NodeId dst : bucket.members) {
                indices.push_back(dst); // self (dst prefix of srcs)
                for (sampling::NodeId src : block.neighborList(dst))
                    indices.push_back(src);
            }
            // Mean over the (d+1)-row groups, fused: accumulate
            // straight from x via the gather indices — no gathered
            // tensor, same t-ascending per-element order.
            const float norm = 1.0f / static_cast<float>(width);
            kernels::fusedGatherScaledAdd(
                x.data(), indices.data(), bucket.members.data(), n,
                width, in, norm, aggregated.data());
            if (state != nullptr)
                state->buckets.push_back(std::move(bucket_state));
        }

        Linear::Cache scratch_linear;
        Tensor out = updates_[layer]->forward(
            aggregated,
            state != nullptr ? state->linear_cache : scratch_linear,
            observer);
        if (layer + 1 < config_.num_layers) {
            if (state != nullptr)
                state->pre_activation = out;
            x = ops::relu(out, observer);
        } else {
            x = out;
        }
    }
    return x;
}

void
GcnModel::backward(const ForwardCache &cache, const Tensor &grad_logits,
                   AllocationObserver *observer)
{
    checkArgument(cache.layers.size() ==
                      static_cast<std::size_t>(config_.num_layers),
                  "GcnModel::backward: stale cache");
    Tensor grad = grad_logits;
    for (int layer = config_.num_layers - 1; layer >= 0; --layer) {
        const auto &state = cache.layers[layer];
        const std::size_t in = config_.layerInDim(layer);

        if (layer + 1 < config_.num_layers)
            grad = ops::reluBackward(grad, state.pre_activation,
                                     observer);

        Tensor grad_agg = updates_[layer]->backward(
            state.linear_cache, grad, observer);

        Tensor grad_x =
            Tensor::zeros(state.input.rows(), in, observer);
        for (const auto &bucket_state : state.buckets) {
            const auto &bucket = bucket_state.bucket;
            const std::size_t n = bucket.members.size();
            const std::size_t width = bucket.degree + 1;
            const float norm = 1.0f / static_cast<float>(width);
            // Distribute each member's gradient over its (d+1)
            // gather targets in place — the fused form of broadcast
            // + scatterAddRows, same input-ascending accumulation.
            kernels::fusedScatterScaledAdd(
                grad_agg.data(), bucket.members.data(),
                bucket_state.gather_indices.data(), n, width, in,
                norm, grad_x.data(), grad_x.rows());
        }
        grad = std::move(grad_x);
    }
}

std::vector<Parameter *>
GcnModel::parameters()
{
    std::vector<Parameter *> params;
    for (auto &update : updates_)
        for (Parameter *p : update->parameters())
            params.push_back(p);
    return params;
}

} // namespace buffalo::nn
