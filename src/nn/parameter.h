/**
 * @file
 * Trainable parameters with accumulating gradients.
 *
 * Gradient accumulation across micro-batches is the mechanism that makes
 * Buffalo's micro-batch training mathematically identical to whole-batch
 * training (paper Algorithm 2, line 12): each micro-batch's backward
 * pass adds into Parameter::grad and the optimizer steps once per batch.
 */
#pragma once

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace buffalo::nn {

using tensor::AllocationObserver;
using tensor::Tensor;

/** One trainable tensor and its accumulated gradient. */
class Parameter
{
  public:
    Parameter() = default;

    /** Creates a named parameter of rows x cols, gradient zeroed. */
    Parameter(std::string name, std::size_t rows, std::size_t cols,
              AllocationObserver *observer = nullptr);

    const std::string &name() const { return name_; }

    Tensor &value() { return value_; }
    const Tensor &value() const { return value_; }

    Tensor &grad() { return grad_; }
    const Tensor &grad() const { return grad_; }

    /** Adds @p delta into the accumulated gradient. */
    void accumulateGrad(const Tensor &delta);

    /** Zeroes the accumulated gradient. */
    void zeroGrad();

    /** Bytes held by value + grad. */
    std::uint64_t bytes() const;

  private:
    std::string name_;
    Tensor value_;
    Tensor grad_;
};

/** Anything owning parameters (layers, aggregators, models). */
class Module
{
  public:
    virtual ~Module() = default;

    /** All trainable parameters, in a stable order. */
    virtual std::vector<Parameter *> parameters() = 0;

    /** Zeroes every parameter gradient. */
    void zeroGrad();

    /** Total bytes of values + grads. */
    std::uint64_t parameterBytes();
};

} // namespace buffalo::nn
