/**
 * @file
 * GraphSAGE with degree-bucketed execution (paper Algorithm 1 lines
 * 4-8: BlockGenerate -> Bucketing -> per-bucket Aggregate + Update).
 *
 * Layer update: h_dst = act( [x_dst || AGG(x_neighbors)] W + b ), with
 * ReLU between layers and raw logits at the output. Aggregators are the
 * bucketed strategies of nn/aggregators.h.
 */
#pragma once

#include <memory>
#include <vector>

#include "nn/aggregators.h"
#include "nn/config.h"
#include "nn/linear.h"
#include "nn/memory_model.h"
#include "sampling/block.h"
#include "sampling/bucketing.h"

namespace buffalo::nn {

/** Multi-layer GraphSAGE over micro-batch blocks. */
class SageModel : public Module
{
  public:
    /**
     * Builds the model. Weights are initialized deterministically from
     * @p seed and allocated under @p param_observer.
     */
    SageModel(const ModelConfig &config, std::uint64_t seed,
              AllocationObserver *param_observer = nullptr);

    /** Per-forward activation state kept until backward. */
    struct ForwardCache
    {
        struct BucketState
        {
            sampling::DegreeBucket bucket;
            std::vector<std::uint32_t> gather_indices;
            std::unique_ptr<AggregatorCache> agg_cache;
        };
        struct LayerState
        {
            Tensor input;          ///< numSrc x in_dim
            std::vector<BucketState> buckets;
            Linear::Cache linear_cache;
            Tensor pre_activation; ///< numDst x out_dim (hidden layers)
        };
        std::vector<LayerState> layers;

        /** Activation bytes pinned by this cache. */
        std::uint64_t bytes() const;
    };

    /**
     * Forward pass over @p mb with raw input features
     * @p input_features (mb.inputNodes().size() x feature_dim).
     * @return logits, numOutput x num_classes.
     */
    Tensor forward(const sampling::MicroBatch &mb,
                   const Tensor &input_features, ForwardCache &cache,
                   AllocationObserver *observer = nullptr);

    /**
     * Inference-mode forward: identical arithmetic (and therefore
     * bitwise-identical logits) to forward(), but no activation state
     * is stashed for a backward pass — per-bucket aggregator caches
     * and layer inputs are dropped as soon as the layer is done, so
     * peak memory is bounded by one layer's working set. No backward()
     * may follow.
     */
    Tensor forwardInference(const sampling::MicroBatch &mb,
                            const Tensor &input_features,
                            AllocationObserver *observer = nullptr);

    /**
     * Backward pass; accumulates parameter gradients. The gradient
     * w.r.t. the raw inputs is discarded (features are not trained).
     */
    void backward(const ForwardCache &cache, const Tensor &grad_logits,
                  AllocationObserver *observer = nullptr);

    const ModelConfig &config() const { return config_; }

    /** Shared analytic cost model for this configuration. */
    const MemoryModel &memoryModel() const { return memory_model_; }

    std::vector<Parameter *> parameters() override;

  private:
    /** Shared body of forward()/forwardInference(); @p cache may be
     *  null, in which case no state survives the call. */
    Tensor forwardImpl(const sampling::MicroBatch &mb,
                       const Tensor &input_features, ForwardCache *cache,
                       AllocationObserver *observer);

    ModelConfig config_;
    MemoryModel memory_model_;
    std::vector<std::unique_ptr<Aggregator>> aggregators_;
    std::vector<std::unique_ptr<Linear>> updates_;
};

} // namespace buffalo::nn
