/**
 * @file
 * Closed-form memory and FLOP model of GNN training.
 *
 * This is the single source of truth shared by (a) the cost-model
 * execution mode, which charges the simulated device without running
 * numeric kernels, and (b) Buffalo's BucketMemEstimator (core), whose
 * per-bucket estimates feed MemBalancedGrouping. Keeping both on one
 * formula is what makes Table III's estimation error come from the
 * *redundancy* approximation, not from kernel bookkeeping mismatches.
 */
#pragma once

#include "nn/config.h"
#include "sampling/block.h"
#include "sampling/bucketing.h"

namespace buffalo::nn {

/** Analytic memory/FLOP accounting for one ModelConfig. */
class MemoryModel
{
  public:
    explicit MemoryModel(const ModelConfig &config);

    const ModelConfig &config() const { return config_; }

    /**
     * Activation bytes pinned by one degree bucket at layer @p layer:
     * gathered neighbor features, aggregator caches, and the bucket's
     * share of the update (concat + pre-activation) state.
     * @param n bucket volume (number of destination nodes).
     * @param d bucket degree.
     */
    std::uint64_t bucketActivationBytes(int layer, std::uint64_t n,
                                        std::uint64_t d) const;

    /**
     * Same accounting from raw per-layer counts: @p dst destination
     * nodes receiving @p edges total messages from @p src input nodes
     * (src covers the backward pass's input-gradient buffer). Used by
     * Buffalo's analytical estimator, which knows cone-level counts
     * rather than per-degree buckets.
     */
    std::uint64_t layerActivationBytesFromCounts(
        int layer, std::uint64_t dst, std::uint64_t edges,
        std::uint64_t src) const;

    /** Activation bytes of a whole block (all of its buckets). */
    std::uint64_t blockActivationBytes(const sampling::Block &block,
                                       int layer) const;

    /**
     * Peak training bytes of a micro-batch: input features + per-layer
     * activations held for backward + output-layer gradients.
     */
    std::uint64_t microBatchBytes(const sampling::MicroBatch &mb) const;

    /** Bytes of raw input features for @p num_inputs nodes. */
    std::uint64_t inputFeatureBytes(std::uint64_t num_inputs) const;

    /** Model weights + gradients, bytes. */
    std::uint64_t weightBytes() const;

    /** Adam optimizer state bytes (2x weights). */
    std::uint64_t optimizerBytes() const;

    /** Forward+backward FLOPs for one bucket at @p layer. */
    double bucketFlops(int layer, std::uint64_t n, std::uint64_t d) const;

    /** Forward+backward FLOPs for a whole micro-batch. */
    double microBatchFlops(const sampling::MicroBatch &mb) const;

    /**
     * Host->device transfer bytes for a micro-batch: block structure +
     * input features + labels.
     */
    std::uint64_t transferBytes(const sampling::MicroBatch &mb) const;

  private:
    /** Trainable floats in the model (weights only). */
    double parameterFloats() const;

    ModelConfig config_;
};

} // namespace buffalo::nn
