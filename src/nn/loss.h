/**
 * @file
 * Softmax cross-entropy loss for node classification.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace buffalo::nn {

using tensor::AllocationObserver;
using tensor::Tensor;

/** Output of a loss evaluation. */
struct LossResult
{
    /** Mean (or sum, see below) cross-entropy over the rows. */
    double loss = 0.0;
    /** Gradient w.r.t. the logits, same shape. */
    Tensor grad_logits;
    /** Rows whose argmax matched the label. */
    std::size_t correct = 0;
};

/**
 * Softmax cross-entropy.
 *
 * @param logits     n x num_classes.
 * @param labels     n labels in [0, num_classes).
 * @param denominator The gradient (and reported loss) are divided by
 *        this count instead of n. Micro-batch training passes the
 *        *whole batch* size here so that accumulated micro-batch
 *        gradients sum to exactly the whole-batch gradient (Algorithm 2
 *        equivalence). Pass 0 to use n.
 */
LossResult softmaxCrossEntropy(const Tensor &logits,
                               const std::vector<std::int32_t> &labels,
                               std::size_t denominator = 0,
                               AllocationObserver *observer = nullptr);

} // namespace buffalo::nn
