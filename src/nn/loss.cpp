#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "util/errors.h"

namespace buffalo::nn {

LossResult
softmaxCrossEntropy(const Tensor &logits,
                    const std::vector<std::int32_t> &labels,
                    std::size_t denominator,
                    AllocationObserver *observer)
{
    checkArgument(labels.size() == logits.rows(),
                  "softmaxCrossEntropy: one label per row required");
    const std::size_t n = logits.rows();
    const std::size_t k = logits.cols();
    const double denom =
        denominator == 0 ? static_cast<double>(n)
                         : static_cast<double>(denominator);
    checkArgument(denom > 0, "softmaxCrossEntropy: empty input");

    LossResult result;
    result.grad_logits = Tensor::zeros(n, k, observer);

    double total = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
        const std::int32_t label = labels[r];
        checkArgument(label >= 0 &&
                          static_cast<std::size_t>(label) < k,
                      "softmaxCrossEntropy: label out of range");
        const float *row = logits.data() + r * k;

        float row_max = row[0];
        std::size_t argmax = 0;
        for (std::size_t j = 1; j < k; ++j) {
            if (row[j] > row_max) {
                row_max = row[j];
                argmax = j;
            }
        }
        if (argmax == static_cast<std::size_t>(label))
            ++result.correct;

        double z = 0.0;
        for (std::size_t j = 0; j < k; ++j)
            z += std::exp(static_cast<double>(row[j] - row_max));
        const double log_z = std::log(z) + row_max;
        total -= static_cast<double>(row[label]) - log_z;

        float *grad = result.grad_logits.data() + r * k;
        for (std::size_t j = 0; j < k; ++j) {
            const double p =
                std::exp(static_cast<double>(row[j]) - log_z);
            grad[j] = static_cast<float>(p / denom);
        }
        grad[label] -= static_cast<float>(1.0 / denom);
    }
    result.loss = total / denom;
    return result;
}

} // namespace buffalo::nn
