#include "nn/sage_model.h"

#include <cstring>

#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "util/errors.h"

namespace buffalo::nn {

namespace ops = buffalo::tensor;
namespace kernels = buffalo::tensor::kernels;

SageModel::SageModel(const ModelConfig &config, std::uint64_t seed,
                     AllocationObserver *param_observer)
    : config_([&] {
          ModelConfig fixed = config;
          fixed.arch = ModelArch::Sage;
          return fixed;
      }()),
      memory_model_(config_)
{
    config_.validate();
    util::Rng rng(seed);
    for (int layer = 0; layer < config_.num_layers; ++layer) {
        const std::size_t in = config_.layerInDim(layer);
        const std::size_t out = config_.layerOutDim(layer);
        const std::string tag = "sage." + std::to_string(layer);
        aggregators_.push_back(makeAggregator(
            config_.aggregator, tag, in, rng, param_observer));
        // Update weight consumes concat(self, aggregated): 2*in wide.
        updates_.push_back(std::make_unique<Linear>(
            tag + ".update", 2 * in, out, rng, param_observer));
    }
}

std::uint64_t
SageModel::ForwardCache::bytes() const
{
    std::uint64_t total = 0;
    for (const auto &layer : layers) {
        total += layer.input.bytes() + layer.pre_activation.bytes();
        for (const auto &bucket : layer.buckets) {
            total += bucket.gather_indices.size() * sizeof(std::uint32_t);
            if (bucket.agg_cache)
                total += bucket.agg_cache->bytes();
        }
    }
    return total;
}

Tensor
SageModel::forward(const sampling::MicroBatch &mb,
                   const Tensor &input_features, ForwardCache &cache,
                   AllocationObserver *observer)
{
    return forwardImpl(mb, input_features, &cache, observer);
}

Tensor
SageModel::forwardInference(const sampling::MicroBatch &mb,
                            const Tensor &input_features,
                            AllocationObserver *observer)
{
    return forwardImpl(mb, input_features, nullptr, observer);
}

Tensor
SageModel::forwardImpl(const sampling::MicroBatch &mb,
                       const Tensor &input_features, ForwardCache *cache,
                       AllocationObserver *observer)
{
    checkArgument(mb.numLayers() == config_.num_layers,
                  "SageModel::forward: block count != num_layers");
    checkArgument(input_features.rows() == mb.inputNodes().size() &&
                      input_features.cols() ==
                          static_cast<std::size_t>(config_.feature_dim),
                  "SageModel::forward: bad input feature shape");

    if (cache != nullptr) {
        cache->layers.clear();
        cache->layers.resize(config_.num_layers);
    }

    Tensor x = input_features;
    for (int layer = 0; layer < config_.num_layers; ++layer) {
        const sampling::Block &block = mb.blocks[layer];
        checkArgument(x.rows() == block.numSrc(),
                      "SageModel::forward: feature/block row mismatch");
        ForwardCache::LayerState *state =
            cache != nullptr ? &cache->layers[layer] : nullptr;
        if (state != nullptr)
            state->input = x;

        const std::size_t in = config_.layerInDim(layer);
        Tensor aggregated =
            Tensor::zeros(block.numDst(), in, observer);

        for (auto &bucket : sampling::bucketizeBlock(block)) {
            // Built locally either way; without a cache it (and the
            // aggregator's activation stash) dies with this iteration.
            ForwardCache::BucketState bucket_state;
            bucket_state.bucket = bucket;
            const std::size_t n = bucket.members.size();
            const std::size_t d = bucket.degree;
            if (d > 0) {
                auto &indices = bucket_state.gather_indices;
                indices.reserve(n * d);
                for (sampling::NodeId dst : bucket.members)
                    for (sampling::NodeId src : block.neighborList(dst))
                        indices.push_back(src);
                // Fused path: aggregate straight from x into the
                // destination rows, skipping the gathered round-trip.
                const bool fused = aggregators_[layer]->forwardFused(
                    x, indices.data(), bucket.members.data(), n, d,
                    bucket_state.agg_cache, aggregated.data(),
                    observer);
                if (!fused) {
                    Tensor gathered =
                        ops::gatherRows(x, indices, observer);
                    Tensor agg_out = aggregators_[layer]->forward(
                        gathered, n, d, bucket_state.agg_cache,
                        observer);
                    // Scatter bucket rows to their destinations.
                    for (std::size_t i = 0; i < n; ++i) {
                        std::memcpy(
                            aggregated.data() + bucket.members[i] * in,
                            agg_out.data() + i * in,
                            in * sizeof(float));
                    }
                }
            }
            if (state != nullptr)
                state->buckets.push_back(std::move(bucket_state));
        }

        // Self features: destinations are the src prefix of x.
        Tensor self_prefix = Tensor::zeros(block.numDst(), in, observer);
        std::memcpy(self_prefix.data(), x.data(),
                    static_cast<std::size_t>(block.numDst()) * in *
                        sizeof(float));

        Tensor concat =
            ops::concatColumns(self_prefix, aggregated, observer);
        Linear::Cache scratch_linear;
        Tensor out = updates_[layer]->forward(
            concat,
            state != nullptr ? state->linear_cache : scratch_linear,
            observer);
        if (layer + 1 < config_.num_layers) {
            if (state != nullptr)
                state->pre_activation = out;
            x = ops::relu(out, observer);
        } else {
            x = out;
        }
    }
    return x;
}

void
SageModel::backward(const ForwardCache &cache, const Tensor &grad_logits,
                    AllocationObserver *observer)
{
    checkArgument(cache.layers.size() ==
                      static_cast<std::size_t>(config_.num_layers),
                  "SageModel::backward: stale cache");
    Tensor grad = grad_logits;
    for (int layer = config_.num_layers - 1; layer >= 0; --layer) {
        const auto &state = cache.layers[layer];
        const std::size_t in = config_.layerInDim(layer);

        if (layer + 1 < config_.num_layers)
            grad = ops::reluBackward(grad, state.pre_activation,
                                     observer);

        Tensor grad_concat = updates_[layer]->backward(
            state.linear_cache, grad, observer);
        Tensor grad_self =
            ops::sliceColumns(grad_concat, 0, in, observer);
        Tensor grad_agg =
            ops::sliceColumns(grad_concat, in, 2 * in, observer);

        Tensor grad_x =
            Tensor::zeros(state.input.rows(), in, observer);
        // Self path: destinations are the src prefix (a flat
        // element-range add over the owned slab).
        {
            kernels::OpTimer timer(kernels::OpClass::Elementwise,
                                   3 * grad_self.bytes());
            float *px = grad_x.data();
            const float *ps = grad_self.data();
            const std::size_t elems = grad_self.size();
            kernels::parallelRows(
                elems, elems, [&](std::size_t lo, std::size_t hi) {
                    kernels::ewAddInPlace(px, ps, lo, hi);
                });
        }
        // Aggregation path, bucket by bucket.
        for (const auto &bucket_state : state.buckets) {
            const auto &bucket = bucket_state.bucket;
            const std::size_t n = bucket.members.size();
            if (bucket.degree == 0)
                continue;
            const bool fused = aggregators_[layer]->backwardFused(
                *bucket_state.agg_cache, grad_agg,
                bucket.members.data(),
                bucket_state.gather_indices.data(), grad_x.data(),
                grad_x.rows(), observer);
            if (fused)
                continue;
            std::vector<std::uint32_t> member_rows(
                bucket.members.begin(), bucket.members.end());
            Tensor grad_bucket =
                ops::gatherRows(grad_agg, member_rows, observer);
            Tensor grad_gathered = aggregators_[layer]->backward(
                *bucket_state.agg_cache, grad_bucket, observer);
            ops::scatterAddRows(grad_x, grad_gathered,
                                bucket_state.gather_indices);
            (void)n;
        }
        grad = std::move(grad_x);
    }
}

std::vector<Parameter *>
SageModel::parameters()
{
    std::vector<Parameter *> params;
    for (int layer = 0; layer < config_.num_layers; ++layer) {
        for (Parameter *p : aggregators_[layer]->parameters())
            params.push_back(p);
        for (Parameter *p : updates_[layer]->parameters())
            params.push_back(p);
    }
    return params;
}

} // namespace buffalo::nn
