#include "nn/aggregators.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "util/errors.h"

namespace buffalo::nn {

namespace ops = buffalo::tensor;
namespace kernels = buffalo::tensor::kernels;

namespace {

void
checkBucketShape(const Tensor &neighbor_feats, std::size_t n,
                 std::size_t d, std::size_t dim)
{
    checkArgument(d >= 1, "Aggregator: bucket degree must be >= 1");
    checkArgument(neighbor_feats.rows() == n * d &&
                      neighbor_feats.cols() == dim,
                  "Aggregator: neighbor features must be (n*d) x dim");
}

/** Mean (and sqrt-normalized GCN-style) aggregation. */
class MeanAggregator : public Aggregator
{
  public:
    MeanAggregator(std::size_t dim, bool sqrt_norm)
        : dim_(dim), sqrt_norm_(sqrt_norm) {}

    struct Cache : AggregatorCache
    {
        std::size_t n = 0, d = 0;
        float norm = 1.0f;
        std::uint64_t bytes() const override { return 0; }
    };

    std::size_t dim() const override { return dim_; }

    Tensor
    forward(const Tensor &neighbor_feats, std::size_t n, std::size_t d,
            std::unique_ptr<AggregatorCache> &cache,
            AllocationObserver *observer) override
    {
        checkBucketShape(neighbor_feats, n, d, dim_);
        auto c = std::make_unique<Cache>();
        c->n = n;
        c->d = d;
        c->norm = sqrt_norm_
                      ? 1.0f / std::sqrt(static_cast<float>(d))
                      : 1.0f / static_cast<float>(d);
        Tensor out = Tensor::uninitialized(n, dim_, observer);
        kernels::OpTimer timer(kernels::OpClass::Aggregate,
                               neighbor_feats.bytes() + out.bytes());
        const float *feats = neighbor_feats.data();
        float *po = out.data();
        const float norm = c->norm;
        const std::size_t dim = dim_;
        // Node v owns output row v; the t-ascending accumulation is
        // the serial order for any node partition.
        kernels::parallelRows(
            n, n * d * dim, [&](std::size_t v0, std::size_t v1) {
                for (std::size_t v = v0; v < v1; ++v) {
                    float *dst = po + v * dim;
                    std::fill(dst, dst + dim, 0.0f);
                    for (std::size_t t = 0; t < d; ++t) {
                        const float *src = feats + (v * d + t) * dim;
                        for (std::size_t j = 0; j < dim; ++j)
                            dst[j] += src[j];
                    }
                    for (std::size_t j = 0; j < dim; ++j)
                        dst[j] *= norm;
                }
            });
        cache = std::move(c);
        return out;
    }

    Tensor
    backward(const AggregatorCache &cache_base, const Tensor &grad_output,
             AllocationObserver *observer) override
    {
        const auto &cache = static_cast<const Cache &>(cache_base);
        Tensor grad_in =
            Tensor::uninitialized(cache.n * cache.d, dim_, observer);
        kernels::OpTimer timer(kernels::OpClass::Aggregate,
                               grad_output.bytes() + grad_in.bytes());
        const float *pg = grad_output.data();
        float *pi = grad_in.data();
        const float norm = cache.norm;
        const std::size_t d = cache.d, dim = dim_;
        kernels::parallelRows(
            cache.n, cache.n * d * dim,
            [&](std::size_t v0, std::size_t v1) {
                for (std::size_t v = v0; v < v1; ++v) {
                    const float *src = pg + v * dim;
                    for (std::size_t t = 0; t < d; ++t) {
                        float *dst = pi + (v * d + t) * dim;
                        for (std::size_t j = 0; j < dim; ++j)
                            dst[j] = src[j] * norm;
                    }
                }
            });
        return grad_in;
    }

    bool
    forwardFused(const Tensor &x, const std::uint32_t *gather,
                 const std::uint32_t *out_rows, std::size_t n,
                 std::size_t d,
                 std::unique_ptr<AggregatorCache> &cache, float *out,
                 AllocationObserver *observer) override
    {
        (void)observer;
        checkArgument(x.cols() == dim_,
                      "MeanAggregator: input width != dim");
        checkArgument(d >= 1,
                      "MeanAggregator: bucket degree must be >= 1");
        auto c = std::make_unique<Cache>();
        c->n = n;
        c->d = d;
        c->norm = sqrt_norm_
                      ? 1.0f / std::sqrt(static_cast<float>(d))
                      : 1.0f / static_cast<float>(d);
        kernels::fusedGatherSumScale(x.data(), gather, out_rows, n, d,
                                     dim_, c->norm, out);
        cache = std::move(c);
        return true;
    }

    bool
    backwardFused(const AggregatorCache &cache_base,
                  const Tensor &grad_out, const std::uint32_t *out_rows,
                  const std::uint32_t *gather, float *grad_x,
                  std::size_t grad_x_rows,
                  AllocationObserver *observer) override
    {
        (void)observer;
        const auto &cache = static_cast<const Cache &>(cache_base);
        kernels::fusedScatterScaledAdd(grad_out.data(), out_rows,
                                       gather, cache.n, cache.d, dim_,
                                       cache.norm, grad_x, grad_x_rows);
        return true;
    }

    double
    flops(std::size_t n, std::size_t d) const override
    {
        // forward sum + backward broadcast.
        return 2.0 * static_cast<double>(n) * static_cast<double>(d) *
               static_cast<double>(dim_);
    }

    AggregatorKind
    kind() const override
    {
        return sqrt_norm_ ? AggregatorKind::Gcn : AggregatorKind::Mean;
    }

    std::vector<Parameter *> parameters() override { return {}; }

  private:
    std::size_t dim_;
    bool sqrt_norm_;
};

/** Max-pool over per-neighbor Linear + ReLU (GraphSAGE-pool). */
class PoolAggregator : public Aggregator
{
  public:
    PoolAggregator(const std::string &name, std::size_t dim,
                   util::Rng &rng, AllocationObserver *observer)
        : dim_(dim), linear_(name + ".pool", dim, dim, rng, observer) {}

    struct Cache : AggregatorCache
    {
        std::size_t n = 0, d = 0;
        Linear::Cache linear_cache;
        Tensor pre_activation; ///< (n*d) x dim, pre-ReLU
        Tensor activated;      ///< (n*d) x dim, post-ReLU
        std::vector<std::uint32_t> argmax; ///< n*dim winning row ids

        std::uint64_t
        bytes() const override
        {
            return pre_activation.bytes() + activated.bytes() +
                   argmax.size() * sizeof(std::uint32_t);
        }
    };

    std::size_t dim() const override { return dim_; }

    Tensor
    forward(const Tensor &neighbor_feats, std::size_t n, std::size_t d,
            std::unique_ptr<AggregatorCache> &cache,
            AllocationObserver *observer) override
    {
        checkBucketShape(neighbor_feats, n, d, dim_);
        auto c = std::make_unique<Cache>();
        c->n = n;
        c->d = d;
        c->pre_activation =
            linear_.forward(neighbor_feats, c->linear_cache, observer);
        c->activated = ops::relu(c->pre_activation, observer);
        c->argmax.assign(n * dim_, 0);

        Tensor out = Tensor::uninitialized(n, dim_, observer);
        kernels::OpTimer timer(kernels::OpClass::Aggregate,
                               c->activated.bytes() + out.bytes());
        const float *act = c->activated.data();
        float *po = out.data();
        std::uint32_t *argmax = c->argmax.data();
        const std::size_t dim = dim_;
        // Node v owns out row v and argmax[v*dim .. ); the max scan is
        // t-ascending per element, so ties resolve like the serial loop.
        kernels::parallelRows(
            n, n * d * dim, [&](std::size_t v0, std::size_t v1) {
                for (std::size_t v = v0; v < v1; ++v) {
                    float *dst = po + v * dim;
                    std::fill(
                        dst, dst + dim,
                        -std::numeric_limits<float>::infinity());
                    for (std::size_t t = 0; t < d; ++t) {
                        const std::size_t row = v * d + t;
                        const float *src = act + row * dim;
                        for (std::size_t j = 0; j < dim; ++j) {
                            if (src[j] > dst[j]) {
                                dst[j] = src[j];
                                argmax[v * dim + j] =
                                    static_cast<std::uint32_t>(row);
                            }
                        }
                    }
                }
            });
        cache = std::move(c);
        return out;
    }

    Tensor
    backward(const AggregatorCache &cache_base, const Tensor &grad_output,
             AllocationObserver *observer) override
    {
        const auto &cache = static_cast<const Cache &>(cache_base);
        Tensor grad_act =
            Tensor::zeros(cache.n * cache.d, dim_, observer);
        {
            kernels::OpTimer timer(kernels::OpClass::Aggregate,
                                   grad_output.bytes() +
                                       grad_act.bytes());
            const float *pg = grad_output.data();
            float *pa = grad_act.data();
            const std::uint32_t *argmax = cache.argmax.data();
            const std::size_t dim = dim_;
            // argmax rows for node v lie inside v's own block
            // [v*d, (v+1)*d), so a node partition owns disjoint
            // grad_act rows.
            kernels::parallelRows(
                cache.n, cache.n * dim,
                [&](std::size_t v0, std::size_t v1) {
                    for (std::size_t v = v0; v < v1; ++v) {
                        const float *src = pg + v * dim;
                        for (std::size_t j = 0; j < dim; ++j) {
                            const std::uint32_t row =
                                argmax[v * dim + j];
                            pa[row * dim + j] += src[j];
                        }
                    }
                });
        }
        Tensor grad_pre =
            ops::reluBackward(grad_act, cache.pre_activation, observer);
        return linear_.backward(cache.linear_cache, grad_pre, observer);
    }

    double
    flops(std::size_t n, std::size_t d) const override
    {
        const double nd = static_cast<double>(n * d);
        const double f = static_cast<double>(dim_);
        // linear fwd+bwd (3 matmuls) + relu + max.
        return 6.0 * nd * f * f + 4.0 * nd * f;
    }

    AggregatorKind kind() const override { return AggregatorKind::Pool; }

    std::vector<Parameter *>
    parameters() override
    {
        return linear_.parameters();
    }

  private:
    std::size_t dim_;
    Linear linear_;
};

/** LSTM over the neighbor sequence (GraphSAGE-LSTM). */
class LstmAggregator : public Aggregator
{
  public:
    LstmAggregator(const std::string &name, std::size_t dim,
                   util::Rng &rng, AllocationObserver *observer)
        : dim_(dim), cell_(name + ".lstm", dim, dim, rng, observer) {}

    struct Cache : AggregatorCache
    {
        std::size_t n = 0, d = 0;
        std::vector<LstmCell::StepCache> steps;

        std::uint64_t
        bytes() const override
        {
            std::uint64_t total = 0;
            for (const auto &step : steps)
                total += step.bytes();
            return total;
        }
    };

    std::size_t dim() const override { return dim_; }

    Tensor
    forward(const Tensor &neighbor_feats, std::size_t n, std::size_t d,
            std::unique_ptr<AggregatorCache> &cache,
            AllocationObserver *observer) override
    {
        checkBucketShape(neighbor_feats, n, d, dim_);
        auto c = std::make_unique<Cache>();
        c->n = n;
        c->d = d;
        c->steps.resize(d);

        Tensor h = Tensor::zeros(n, dim_, observer);
        Tensor state = Tensor::zeros(n, dim_, observer);
        const float *feats = neighbor_feats.data();
        const std::size_t dim = dim_;
        for (std::size_t t = 0; t < d; ++t) {
            // x_t: row v*d + t of the node-major layout, for each v.
            Tensor x_t = Tensor::uninitialized(n, dim_, observer);
            {
                float *px = x_t.data();
                kernels::OpTimer timer(kernels::OpClass::Aggregate,
                                       2 * x_t.bytes());
                kernels::parallelRows(
                    n, n * dim, [&](std::size_t v0, std::size_t v1) {
                        for (std::size_t v = v0; v < v1; ++v) {
                            const float *src =
                                feats + (v * d + t) * dim;
                            std::copy(src, src + dim, px + v * dim);
                        }
                    });
            }
            auto [h_next, c_next] =
                cell_.step(x_t, h, state, c->steps[t], observer);
            h = std::move(h_next);
            state = std::move(c_next);
        }
        cache = std::move(c);
        return h;
    }

    Tensor
    backward(const AggregatorCache &cache_base, const Tensor &grad_output,
             AllocationObserver *observer) override
    {
        const auto &cache = static_cast<const Cache &>(cache_base);
        // Every row (v*d + t) is overwritten exactly once across the
        // step loop below, so the buffer can start uninitialized.
        Tensor grad_in =
            Tensor::uninitialized(cache.n * cache.d, dim_, observer);
        Tensor dh = grad_output.clone(observer);
        Tensor dc =
            Tensor::zeros(grad_output.rows(), dim_, observer);
        const std::size_t d = cache.d, dim = dim_;
        float *pi = grad_in.data();
        for (std::size_t t = cache.d; t-- > 0;) {
            auto grads =
                cell_.stepBackward(cache.steps[t], dh, dc, observer);
            const float *px = grads.dx.data();
            kernels::OpTimer timer(kernels::OpClass::Aggregate,
                                   2 * grads.dx.bytes());
            kernels::parallelRows(
                cache.n, cache.n * dim,
                [&](std::size_t v0, std::size_t v1) {
                    for (std::size_t v = v0; v < v1; ++v) {
                        const float *src = px + v * dim;
                        std::copy(src, src + dim,
                                  pi + (v * d + t) * dim);
                    }
                });
            dh = std::move(grads.dh_prev);
            dc = std::move(grads.dc_prev);
        }
        return grad_in;
    }

    double
    flops(std::size_t n, std::size_t d) const override
    {
        const double f = static_cast<double>(dim_);
        // Per step: fwd 2 matmuls (f x 4f) = 16 n f^2; bwd ~2x.
        return 48.0 * static_cast<double>(n) * static_cast<double>(d) *
               f * f;
    }

    AggregatorKind kind() const override { return AggregatorKind::Lstm; }

    std::vector<Parameter *>
    parameters() override
    {
        return cell_.parameters();
    }

  private:
    std::size_t dim_;
    LstmCell cell_;
};

} // namespace

const char *
modelArchName(ModelArch arch)
{
    switch (arch) {
      case ModelArch::Sage: return "sage";
      case ModelArch::Gcn: return "gcn";
      case ModelArch::Gat: return "gat";
    }
    return "?";
}

const char *
aggregatorName(AggregatorKind kind)
{
    switch (kind) {
      case AggregatorKind::Mean: return "mean";
      case AggregatorKind::Pool: return "pool";
      case AggregatorKind::Lstm: return "lstm";
      case AggregatorKind::Gcn: return "gcn";
    }
    return "?";
}

AggregatorKind
aggregatorFromName(const std::string &name)
{
    if (name == "mean")
        return AggregatorKind::Mean;
    if (name == "pool")
        return AggregatorKind::Pool;
    if (name == "lstm")
        return AggregatorKind::Lstm;
    if (name == "gcn")
        return AggregatorKind::Gcn;
    throw InvalidArgument("aggregatorFromName: unknown aggregator '" +
                          name + "'");
}

std::unique_ptr<Aggregator>
makeAggregator(AggregatorKind kind, const std::string &name,
               std::size_t dim, util::Rng &rng,
               AllocationObserver *observer)
{
    switch (kind) {
      case AggregatorKind::Mean:
        return std::make_unique<MeanAggregator>(dim, false);
      case AggregatorKind::Gcn:
        return std::make_unique<MeanAggregator>(dim, true);
      case AggregatorKind::Pool:
        return std::make_unique<PoolAggregator>(name, dim, rng,
                                                observer);
      case AggregatorKind::Lstm:
        return std::make_unique<LstmAggregator>(name, dim, rng,
                                                observer);
    }
    throw InvalidArgument("makeAggregator: unknown aggregator kind");
}

double
aggregatorCacheFloatsPerEdge(AggregatorKind kind, std::size_t dim)
{
    const double f = static_cast<double>(dim);
    switch (kind) {
      case AggregatorKind::Mean:
      case AggregatorKind::Gcn:
        // The fused gather→sum→scale forward reads the layer input in
        // place and the fused backward scatter accumulates in place
        // (kernels::fusedGatherSumScale / fusedScatterScaledAdd), so
        // no per-edge feature transient exists any more; the only
        // per-edge state is the cached gather index (one uint32 =
        // one float-equivalent).
        return 1.0;
      case AggregatorKind::Pool:
        // gathered feats (transient) + pre-activation +
        // post-activation (cached) + backward transients (activation
        // gradient, pre-activation gradient, linear input gradient).
        return 5.0 * f;
      case AggregatorKind::Lstm:
        // gathered feats + per-step cache: x, h_prev, c_prev, 4 gates,
        // c, tanh_c -> 9 state tensors of width f per edge.
        return 10.0 * f;
    }
    return f;
}

} // namespace buffalo::nn
