/**
 * @file
 * Optimizers over a parameter set: SGD (with momentum) and Adam.
 *
 * Optimizer state lives under the same allocation observer as the
 * parameters, so the device memory model accounts for it exactly the
 * way real GPU training does (Adam doubles the weight footprint).
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/parameter.h"

namespace buffalo::nn {

/** Base optimizer over an externally-owned parameter list. */
class Optimizer
{
  public:
    explicit Optimizer(std::vector<Parameter *> params)
        : params_(std::move(params)) {}

    virtual ~Optimizer() = default;

    /** Applies one update from the accumulated grads, then zeroes them. */
    virtual void step() = 0;

    /** Bytes of optimizer state (momenta etc.). */
    virtual std::uint64_t stateBytes() const = 0;

    /** The parameters being optimized. */
    const std::vector<Parameter *> &parameters() const { return params_; }

  protected:
    std::vector<Parameter *> params_;
};

/** Plain SGD with optional momentum. */
class Sgd : public Optimizer
{
  public:
    Sgd(std::vector<Parameter *> params, double learning_rate,
        double momentum = 0.0, AllocationObserver *observer = nullptr);

    void step() override;
    std::uint64_t stateBytes() const override;

  private:
    double lr_;
    double momentum_;
    std::vector<Tensor> velocity_;
};

/** Adam (Kingma & Ba) with bias correction. */
class Adam : public Optimizer
{
  public:
    Adam(std::vector<Parameter *> params, double learning_rate,
         double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8,
         AllocationObserver *observer = nullptr);

    void step() override;
    std::uint64_t stateBytes() const override;

  private:
    double lr_, beta1_, beta2_, eps_;
    long step_count_ = 0;
    std::vector<Tensor> m_;
    std::vector<Tensor> v_;
};

} // namespace buffalo::nn
