#include "nn/linear.h"

#include "tensor/ops.h"
#include "util/errors.h"

namespace buffalo::nn {

Linear::Linear(std::string name, std::size_t in_dim, std::size_t out_dim,
               util::Rng &rng, AllocationObserver *observer)
    : weight_(name + ".weight", in_dim, out_dim, observer),
      bias_(name + ".bias", 1, out_dim, observer)
{
    tensor::fillXavier(weight_.value(), rng);
}

Tensor
Linear::forward(const Tensor &input, Cache &cache,
                AllocationObserver *observer) const
{
    checkArgument(input.cols() == inDim(),
                  "Linear::forward: input width mismatch");
    cache.input = input; // shares storage; no copy
    Tensor out = tensor::matmul(input, weight_.value(), observer);
    return tensor::addRowBroadcast(out, bias_.value(), observer);
}

Tensor
Linear::backward(const Cache &cache, const Tensor &grad_output,
                 AllocationObserver *observer)
{
    checkArgument(grad_output.cols() == outDim(),
                  "Linear::backward: grad width mismatch");
    // dW = X^T * dY ; db = column-sum(dY) ; dX = dY * W^T.
    Tensor grad_w =
        tensor::matmulTransposeA(cache.input, grad_output, observer);
    weight_.accumulateGrad(grad_w);
    Tensor grad_b = tensor::columnSum(grad_output, observer);
    bias_.accumulateGrad(grad_b);
    return tensor::matmulTransposeB(grad_output, weight_.value(),
                                    observer);
}

std::vector<Parameter *>
Linear::parameters()
{
    return {&weight_, &bias_};
}

} // namespace buffalo::nn
