/**
 * @file
 * Parameter checkpointing: save/restore every parameter of a Module to
 * a versioned binary stream, keyed by parameter name so checkpoints
 * survive reorderings but reject shape or architecture mismatches.
 */
#pragma once

#include <iosfwd>
#include <string>

#include "nn/parameter.h"

namespace buffalo::nn {

/** Writes all of @p module's parameters (values only) to @p out. */
void saveCheckpoint(std::ostream &out, Module &module);

/** saveCheckpoint to a file path. */
void saveCheckpointFile(const std::string &path, Module &module);

/**
 * Restores parameters saved by saveCheckpoint into @p module.
 * Parameters are matched by name; every parameter of @p module must be
 * present with identical shape.
 * @throws InvalidArgument on magic/version/name/shape mismatch.
 */
void loadCheckpoint(std::istream &in, Module &module);

/** loadCheckpoint from a file path; throws NotFound if missing. */
void loadCheckpointFile(const std::string &path, Module &module);

} // namespace buffalo::nn
