/**
 * @file
 * Graph Attention Network (GAT) with degree-bucketed attention.
 *
 * Per layer and head: e_{vu} = LeakyReLU(a_dst . Wh_v + a_src . Wh_u)
 * over the sampled neighbors u of v plus v itself (self edge), softmax
 * over that set, output = sum of attention-weighted Wh_u. Heads are
 * concatenated. Degree bucketing keeps the attention matrices dense
 * (n x (d+1)) with no padding.
 */
#pragma once

#include <memory>
#include <vector>

#include "nn/config.h"
#include "nn/memory_model.h"
#include "nn/parameter.h"
#include "sampling/block.h"
#include "sampling/bucketing.h"
#include "util/rng.h"

namespace buffalo::nn {

/** Multi-layer, multi-head GAT over micro-batch blocks. */
class GatModel : public Module
{
  public:
    GatModel(const ModelConfig &config, std::uint64_t seed,
             AllocationObserver *param_observer = nullptr);

    /** Per-forward activation state. */
    struct ForwardCache
    {
        struct HeadBucketState
        {
            Tensor alpha;     ///< n x (d+1) attention weights
            Tensor pre_lrelu; ///< n x (d+1) scores before LeakyReLU
        };
        struct LayerState
        {
            /** The block this layer ran over (owned by the caller's
             *  MicroBatch, which must outlive the cache). */
            const sampling::Block *block = nullptr;
            Tensor input; ///< numSrc x in_dim
            std::vector<Tensor> hw; ///< per head: numSrc x head_dim
            sampling::BucketList buckets;
            /** [bucket][head]. */
            std::vector<std::vector<HeadBucketState>> head_states;
            Tensor pre_activation; ///< hidden layers only
        };
        std::vector<LayerState> layers;

        std::uint64_t bytes() const;
    };

    /** Forward pass; returns logits (numOutput x num_classes). */
    Tensor forward(const sampling::MicroBatch &mb,
                   const Tensor &input_features, ForwardCache &cache,
                   AllocationObserver *observer = nullptr);

    /**
     * Inference-mode forward: bitwise-identical logits to forward(),
     * but attention/activation state is dropped per layer instead of
     * being retained for backward(), bounding peak memory.
     */
    Tensor forwardInference(const sampling::MicroBatch &mb,
                            const Tensor &input_features,
                            AllocationObserver *observer = nullptr);

    /** Backward pass; accumulates parameter gradients. */
    void backward(const ForwardCache &cache, const Tensor &grad_logits,
                  AllocationObserver *observer = nullptr);

    const ModelConfig &config() const { return config_; }
    const MemoryModel &memoryModel() const { return memory_model_; }

    std::vector<Parameter *> parameters() override;

  private:
    /** Shared body of forward()/forwardInference(); null @p cache
     *  means layer state lives only for the layer iteration. */
    Tensor forwardImpl(const sampling::MicroBatch &mb,
                       const Tensor &input_features, ForwardCache *cache,
                       AllocationObserver *observer);

    /** Width of one head's output at @p layer. */
    std::size_t headDim(int layer) const;

    ModelConfig config_;
    MemoryModel memory_model_;
    /** [layer][head] weight in_dim x head_dim. */
    std::vector<std::vector<Parameter>> w_;
    /** [layer][head] attention vectors, 1 x head_dim each. */
    std::vector<std::vector<Parameter>> a_src_;
    std::vector<std::vector<Parameter>> a_dst_;

    static constexpr float kLeakySlope = 0.2f;
};

} // namespace buffalo::nn
