/**
 * @file
 * A single-layer LSTM cell with explicit per-step caches for BPTT.
 *
 * The LSTM aggregator runs this cell across a node's neighbor sequence;
 * the per-step caches are what make the LSTM aggregator the most
 * memory-hungry configuration in the paper's Fig. 2.
 */
#pragma once

#include <utility>

#include "nn/parameter.h"
#include "util/rng.h"

namespace buffalo::nn {

/** LSTM cell: gates ordered (input, forget, cell, output). */
class LstmCell : public Module
{
  public:
    LstmCell(std::string name, std::size_t input_dim,
             std::size_t hidden_dim, util::Rng &rng,
             AllocationObserver *observer = nullptr);

    std::size_t inputDim() const { return wx_.value().rows(); }
    std::size_t hiddenDim() const { return wh_.value().rows(); }

    /** Everything the backward step needs, kept per timestep. */
    struct StepCache
    {
        Tensor x;      ///< step input, n x input_dim
        Tensor h_prev; ///< previous hidden, n x hidden_dim
        Tensor c_prev; ///< previous cell, n x hidden_dim
        Tensor i;      ///< input gate (post-sigmoid)
        Tensor f;      ///< forget gate (post-sigmoid)
        Tensor g;      ///< candidate (post-tanh)
        Tensor o;      ///< output gate (post-sigmoid)
        Tensor c;      ///< new cell state
        Tensor tanh_c; ///< tanh(c)

        /** Bytes of activation state this cache pins. */
        std::uint64_t bytes() const;
    };

    /** Gradients flowing out of one backward step. */
    struct StepGrads
    {
        Tensor dx;
        Tensor dh_prev;
        Tensor dc_prev;
    };

    /**
     * One forward step over a batch of n sequences.
     * @return (h, c), both n x hidden_dim.
     */
    std::pair<Tensor, Tensor> step(const Tensor &x, const Tensor &h_prev,
                                   const Tensor &c_prev, StepCache &cache,
                                   AllocationObserver *observer =
                                       nullptr) const;

    /**
     * One backward step. @p dh and @p dc are the gradients w.r.t. this
     * step's h and c outputs (dc already includes any contribution from
     * the following step). Accumulates weight gradients.
     */
    StepGrads stepBackward(const StepCache &cache, const Tensor &dh,
                           const Tensor &dc,
                           AllocationObserver *observer = nullptr);

    std::vector<Parameter *> parameters() override;

  private:
    Parameter wx_; ///< input_dim x 4*hidden
    Parameter wh_; ///< hidden x 4*hidden
    Parameter b_;  ///< 1 x 4*hidden
};

} // namespace buffalo::nn
