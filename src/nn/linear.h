/**
 * @file
 * Fully-connected layer with explicit forward caches so several
 * micro-batch forward/backward pairs can be in flight before one
 * optimizer step (gradient accumulation).
 */
#pragma once

#include "nn/parameter.h"
#include "util/rng.h"

namespace buffalo::nn {

/** y = x W + b, with Xavier-initialized W. */
class Linear : public Module
{
  public:
    /**
     * @param observer Allocation observer the weights live under
     *                 (typically the device allocator).
     */
    Linear(std::string name, std::size_t in_dim, std::size_t out_dim,
           util::Rng &rng, AllocationObserver *observer = nullptr);

    /** Activations cached for the backward pass. */
    struct Cache
    {
        Tensor input; ///< the forward input (shared storage)
    };

    /**
     * Forward pass; activations go under @p observer.
     * @param input n x in_dim.
     * @return n x out_dim.
     */
    Tensor forward(const Tensor &input, Cache &cache,
                   AllocationObserver *observer = nullptr) const;

    /**
     * Backward pass: accumulates dW, db and returns dInput.
     * @param grad_output n x out_dim.
     */
    Tensor backward(const Cache &cache, const Tensor &grad_output,
                    AllocationObserver *observer = nullptr);

    std::size_t inDim() const { return weight_.value().rows(); }
    std::size_t outDim() const { return weight_.value().cols(); }

    Parameter &weight() { return weight_; }
    Parameter &bias() { return bias_; }

    std::vector<Parameter *> parameters() override;

  private:
    Parameter weight_; ///< in_dim x out_dim
    Parameter bias_;   ///< 1 x out_dim
};

} // namespace buffalo::nn
