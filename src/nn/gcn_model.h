/**
 * @file
 * Plain GCN (Kipf & Welling style) with degree-bucketed execution:
 * h'_v = act( W . mean(h_u : u in N(v) U {v}) + b ). The mean over
 * the node and its sampled neighbors approximates the normalized
 * adjacency; degree bucketing keeps the mean kernels fixed-shape.
 */
#pragma once

#include <memory>
#include <vector>

#include "nn/config.h"
#include "nn/linear.h"
#include "nn/memory_model.h"
#include "sampling/block.h"
#include "sampling/bucketing.h"

namespace buffalo::nn {

/** Multi-layer GCN over micro-batch blocks. */
class GcnModel : public Module
{
  public:
    GcnModel(const ModelConfig &config, std::uint64_t seed,
             AllocationObserver *param_observer = nullptr);

    /** Per-forward activation state. */
    struct ForwardCache
    {
        struct BucketState
        {
            sampling::DegreeBucket bucket;
            /** Gather indices: per member, self followed by its
             *  neighbors ((d+1) rows each). */
            std::vector<std::uint32_t> gather_indices;
        };
        struct LayerState
        {
            Tensor input;
            std::vector<BucketState> buckets;
            Linear::Cache linear_cache;
            Tensor pre_activation;
        };
        std::vector<LayerState> layers;
    };

    /** Forward pass; returns logits (numOutput x num_classes). */
    Tensor forward(const sampling::MicroBatch &mb,
                   const Tensor &input_features, ForwardCache &cache,
                   AllocationObserver *observer = nullptr);

    /**
     * Inference-mode forward: bitwise-identical logits to forward(),
     * but no activation state is retained (no backward() may follow),
     * so memory stays bounded by one layer's working set.
     */
    Tensor forwardInference(const sampling::MicroBatch &mb,
                            const Tensor &input_features,
                            AllocationObserver *observer = nullptr);

    /** Backward pass; accumulates parameter gradients. */
    void backward(const ForwardCache &cache, const Tensor &grad_logits,
                  AllocationObserver *observer = nullptr);

    const ModelConfig &config() const { return config_; }
    const MemoryModel &memoryModel() const { return memory_model_; }

    std::vector<Parameter *> parameters() override;

  private:
    /** Shared body of forward()/forwardInference(); null @p cache
     *  means "stash nothing". */
    Tensor forwardImpl(const sampling::MicroBatch &mb,
                       const Tensor &input_features, ForwardCache *cache,
                       AllocationObserver *observer);

    ModelConfig config_;
    MemoryModel memory_model_;
    std::vector<std::unique_ptr<Linear>> updates_;
};

} // namespace buffalo::nn
