#include "nn/lstm.h"

#include "tensor/ops.h"
#include "util/errors.h"

namespace buffalo::nn {

namespace ops = buffalo::tensor;

LstmCell::LstmCell(std::string name, std::size_t input_dim,
                   std::size_t hidden_dim, util::Rng &rng,
                   AllocationObserver *observer)
    : wx_(name + ".wx", input_dim, 4 * hidden_dim, observer),
      wh_(name + ".wh", hidden_dim, 4 * hidden_dim, observer),
      b_(name + ".b", 1, 4 * hidden_dim, observer)
{
    ops::fillXavier(wx_.value(), rng);
    ops::fillXavier(wh_.value(), rng);
    // Forget-gate bias of 1.0 (standard trick for gradient flow).
    for (std::size_t j = hidden_dim; j < 2 * hidden_dim; ++j)
        b_.value().at(0, j) = 1.0f;
}

std::uint64_t
LstmCell::StepCache::bytes() const
{
    return x.bytes() + h_prev.bytes() + c_prev.bytes() + i.bytes() +
           f.bytes() + g.bytes() + o.bytes() + c.bytes() +
           tanh_c.bytes();
}

std::pair<Tensor, Tensor>
LstmCell::step(const Tensor &x, const Tensor &h_prev,
               const Tensor &c_prev, StepCache &cache,
               AllocationObserver *observer) const
{
    checkArgument(x.cols() == inputDim(),
                  "LstmCell::step: input width mismatch");
    const std::size_t h = hiddenDim();

    Tensor z = ops::matmul(x, wx_.value(), observer);
    ops::addInPlace(z, ops::matmul(h_prev, wh_.value(), observer));
    z = ops::addRowBroadcast(z, b_.value(), observer);

    cache.x = x;
    cache.h_prev = h_prev;
    cache.c_prev = c_prev;
    cache.i = ops::sigmoid(ops::sliceColumns(z, 0, h, observer),
                           observer);
    cache.f = ops::sigmoid(ops::sliceColumns(z, h, 2 * h, observer),
                           observer);
    cache.g =
        ops::tanh(ops::sliceColumns(z, 2 * h, 3 * h, observer), observer);
    cache.o = ops::sigmoid(ops::sliceColumns(z, 3 * h, 4 * h, observer),
                           observer);

    cache.c = ops::add(ops::multiply(cache.f, c_prev, observer),
                       ops::multiply(cache.i, cache.g, observer),
                       observer);
    cache.tanh_c = ops::tanh(cache.c, observer);
    Tensor h_out = ops::multiply(cache.o, cache.tanh_c, observer);
    return {std::move(h_out), cache.c};
}

LstmCell::StepGrads
LstmCell::stepBackward(const StepCache &cache, const Tensor &dh,
                       const Tensor &dc_in, AllocationObserver *observer)
{
    const std::size_t n = dh.rows();
    const std::size_t h = hiddenDim();

    // dh -> output gate and tanh(c) paths.
    Tensor d_o = ops::multiply(dh, cache.tanh_c, observer);
    Tensor d_tanh_c = ops::multiply(dh, cache.o, observer);

    // dc = dc_in + d_tanh_c * (1 - tanh(c)^2)
    Tensor one_minus_t2 = Tensor::zeros(n, h, observer);
    for (std::size_t k = 0; k < one_minus_t2.size(); ++k) {
        const float t = cache.tanh_c.data()[k];
        one_minus_t2.data()[k] = 1.0f - t * t;
    }
    Tensor dc = ops::add(
        dc_in, ops::multiply(d_tanh_c, one_minus_t2, observer), observer);

    Tensor d_f = ops::multiply(dc, cache.c_prev, observer);
    Tensor d_i = ops::multiply(dc, cache.g, observer);
    Tensor d_g = ops::multiply(dc, cache.i, observer);
    Tensor dc_prev = ops::multiply(dc, cache.f, observer);

    // Gate pre-activation gradients.
    auto sigmoid_back = [&](const Tensor &gate, const Tensor &grad) {
        Tensor out = Tensor::zeros(n, h, observer);
        for (std::size_t k = 0; k < out.size(); ++k) {
            const float s = gate.data()[k];
            out.data()[k] = grad.data()[k] * s * (1.0f - s);
        }
        return out;
    };
    Tensor dz_i = sigmoid_back(cache.i, d_i);
    Tensor dz_f = sigmoid_back(cache.f, d_f);
    Tensor dz_o = sigmoid_back(cache.o, d_o);
    Tensor dz_g = Tensor::zeros(n, h, observer);
    for (std::size_t k = 0; k < dz_g.size(); ++k) {
        const float g = cache.g.data()[k];
        dz_g.data()[k] = d_g.data()[k] * (1.0f - g * g);
    }

    // Assemble dz in forward gate order (i, f, g, o).
    Tensor dz = ops::concatColumns(
        ops::concatColumns(dz_i, dz_f, observer),
        ops::concatColumns(dz_g, dz_o, observer), observer);

    wx_.accumulateGrad(ops::matmulTransposeA(cache.x, dz, observer));
    wh_.accumulateGrad(
        ops::matmulTransposeA(cache.h_prev, dz, observer));
    b_.accumulateGrad(ops::columnSum(dz, observer));

    StepGrads grads;
    grads.dx = ops::matmulTransposeB(dz, wx_.value(), observer);
    grads.dh_prev = ops::matmulTransposeB(dz, wh_.value(), observer);
    grads.dc_prev = std::move(dc_prev);
    return grads;
}

std::vector<Parameter *>
LstmCell::parameters()
{
    return {&wx_, &wh_, &b_};
}

} // namespace buffalo::nn
