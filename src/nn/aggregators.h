/**
 * @file
 * Degree-bucketed neighborhood aggregators.
 *
 * An aggregator consumes the gathered neighbor features of one degree
 * bucket — n nodes of identical sampled degree d, laid out as an
 * (n*d) x in_dim tensor with each node's d neighbor rows consecutive —
 * and produces one n x in_dim embedding. Fixed d per call is exactly
 * what degree bucketing buys: no zero padding, dense kernels.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "nn/config.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/parameter.h"

namespace buffalo::nn {

/** Opaque per-call activation cache (concrete type per aggregator). */
struct AggregatorCache
{
    virtual ~AggregatorCache() = default;

    /** Activation bytes this cache pins until backward. */
    virtual std::uint64_t bytes() const = 0;
};

/** Strategy interface; one instance per GNN layer. */
class Aggregator : public Module
{
  public:
    /** Input (and output) feature width. */
    virtual std::size_t dim() const = 0;

    /**
     * Aggregates one degree bucket.
     * @param neighbor_feats (n*d) x dim(), node-major.
     * @param n number of nodes in the bucket.
     * @param d the bucket degree (>= 1).
     * @return n x dim() aggregated embeddings; @p cache receives the
     *         state backward() needs.
     */
    virtual Tensor forward(const Tensor &neighbor_feats, std::size_t n,
                           std::size_t d,
                           std::unique_ptr<AggregatorCache> &cache,
                           AllocationObserver *observer = nullptr) = 0;

    /**
     * Backward for one bucket: returns the gradient w.r.t.
     * neighbor_feats ((n*d) x dim()); accumulates parameter grads.
     */
    virtual Tensor backward(const AggregatorCache &cache,
                            const Tensor &grad_output,
                            AllocationObserver *observer = nullptr) = 0;

    /**
     * Fused forward: aggregate straight out of the layer input @p x
     * (num_src x dim()) via @p gather (n*d source-row ids, node-major)
     * and write node v's embedding to row out_rows[v] of @p out
     * (pre-zeroed, num_dst x dim()), skipping the materialized
     * gatherRows round-trip. Returns false when the aggregator has no
     * fused path (caller falls back to gather + forward) and true on
     * success, with @p cache filled exactly as forward() would.
     * Fused and unfused paths are bitwise identical.
     */
    virtual bool
    forwardFused(const Tensor &x, const std::uint32_t *gather,
                 const std::uint32_t *out_rows, std::size_t n,
                 std::size_t d, std::unique_ptr<AggregatorCache> &cache,
                 float *out, AllocationObserver *observer = nullptr)
    {
        (void)x;
        (void)gather;
        (void)out_rows;
        (void)n;
        (void)d;
        (void)cache;
        (void)out;
        (void)observer;
        return false;
    }

    /**
     * Fused backward: scatter-accumulate this bucket's input gradient
     * into @p grad_x (num_src x dim()) directly — reading node v's
     * output gradient from row out_rows[v] of @p grad_out and
     * distributing over its gather targets — instead of materializing
     * the (n*d) x dim() gradient and scatterAddRows'ing it. Returns
     * false when unfused (caller falls back); bitwise identical to
     * the unfused path, at any thread count.
     */
    virtual bool
    backwardFused(const AggregatorCache &cache, const Tensor &grad_out,
                  const std::uint32_t *out_rows,
                  const std::uint32_t *gather, float *grad_x,
                  std::size_t grad_x_rows,
                  AllocationObserver *observer = nullptr)
    {
        (void)cache;
        (void)grad_out;
        (void)out_rows;
        (void)gather;
        (void)grad_x;
        (void)grad_x_rows;
        (void)observer;
        return false;
    }

    /** Forward+backward FLOPs for a bucket of n nodes, degree d. */
    virtual double flops(std::size_t n, std::size_t d) const = 0;

    /** The aggregator family. */
    virtual AggregatorKind kind() const = 0;
};

/**
 * Creates an aggregator of @p kind over @p dim features. LSTM state and
 * pool width equal @p dim (matching DGL's SAGEConv conventions).
 */
std::unique_ptr<Aggregator> makeAggregator(
    AggregatorKind kind, const std::string &name, std::size_t dim,
    util::Rng &rng, AllocationObserver *observer = nullptr);

/**
 * Activation floats cached per message edge during the forward pass of
 * an aggregator of @p kind over @p dim features. The shared constant
 * behind both the device-side memory charging and Buffalo's
 * BucketMemEstimator (see nn/memory_model.h).
 */
double aggregatorCacheFloatsPerEdge(AggregatorKind kind,
                                    std::size_t dim);

} // namespace buffalo::nn
