#include "nn/gat_model.h"

#include <cmath>
#include <cstring>

#include "tensor/ops.h"
#include "util/errors.h"

namespace buffalo::nn {

namespace ops = buffalo::tensor;

GatModel::GatModel(const ModelConfig &config, std::uint64_t seed,
                   AllocationObserver *param_observer)
    : config_([&] {
          ModelConfig fixed = config;
          fixed.arch = ModelArch::Gat;
          return fixed;
      }()),
      memory_model_(config_)
{
    config_.validate();
    checkArgument(config_.hidden_dim % config_.num_heads == 0,
                  "GatModel: hidden_dim must divide num_heads");
    checkArgument(config_.num_classes % config_.num_heads == 0 ||
                      config_.num_heads == 1,
                  "GatModel: num_classes must divide num_heads");

    util::Rng rng(seed);
    w_.resize(config_.num_layers);
    a_src_.resize(config_.num_layers);
    a_dst_.resize(config_.num_layers);
    for (int layer = 0; layer < config_.num_layers; ++layer) {
        const std::size_t in = config_.layerInDim(layer);
        const std::size_t hd = headDim(layer);
        for (int head = 0; head < config_.num_heads; ++head) {
            const std::string tag = "gat." + std::to_string(layer) +
                                    ".h" + std::to_string(head);
            w_[layer].emplace_back(tag + ".w", in, hd, param_observer);
            ops::fillXavier(w_[layer].back().value(), rng);
            a_src_[layer].emplace_back(tag + ".a_src", 1, hd,
                                       param_observer);
            ops::fillUniform(a_src_[layer].back().value(), 0.1f, rng);
            a_dst_[layer].emplace_back(tag + ".a_dst", 1, hd,
                                       param_observer);
            ops::fillUniform(a_dst_[layer].back().value(), 0.1f, rng);
        }
    }
}

std::size_t
GatModel::headDim(int layer) const
{
    return static_cast<std::size_t>(config_.layerOutDim(layer)) /
           config_.num_heads;
}

std::uint64_t
GatModel::ForwardCache::bytes() const
{
    std::uint64_t total = 0;
    for (const auto &layer : layers) {
        total += layer.input.bytes() + layer.pre_activation.bytes();
        for (const auto &hw : layer.hw)
            total += hw.bytes();
        for (const auto &bucket : layer.head_states)
            for (const auto &head : bucket)
                total += head.alpha.bytes() + head.pre_lrelu.bytes();
    }
    return total;
}

Tensor
GatModel::forward(const sampling::MicroBatch &mb,
                  const Tensor &input_features, ForwardCache &cache,
                  AllocationObserver *observer)
{
    return forwardImpl(mb, input_features, &cache, observer);
}

Tensor
GatModel::forwardInference(const sampling::MicroBatch &mb,
                           const Tensor &input_features,
                           AllocationObserver *observer)
{
    return forwardImpl(mb, input_features, nullptr, observer);
}

Tensor
GatModel::forwardImpl(const sampling::MicroBatch &mb,
                      const Tensor &input_features, ForwardCache *cache,
                      AllocationObserver *observer)
{
    checkArgument(mb.numLayers() == config_.num_layers,
                  "GatModel::forward: block count != num_layers");
    if (cache != nullptr) {
        cache->layers.clear();
        cache->layers.resize(config_.num_layers);
    }

    Tensor x = input_features;
    for (int layer = 0; layer < config_.num_layers; ++layer) {
        const sampling::Block &block = mb.blocks[layer];
        checkArgument(x.rows() == block.numSrc(),
                      "GatModel::forward: feature/block row mismatch");
        // hw/buckets/head_states are working storage for the layer
        // either way; without a cache they live in `scratch` and die
        // at the end of this iteration.
        ForwardCache::LayerState scratch;
        auto &state =
            cache != nullptr ? cache->layers[layer] : scratch;
        state.block = &block;
        if (cache != nullptr)
            state.input = x;
        state.buckets = sampling::bucketizeBlock(block);

        const std::size_t hd = headDim(layer);
        const std::size_t out = config_.layerOutDim(layer);
        Tensor output = Tensor::zeros(block.numDst(), out, observer);

        for (int head = 0; head < config_.num_heads; ++head)
            state.hw.push_back(ops::matmul(
                x, w_[layer][head].value(), observer));

        state.head_states.resize(state.buckets.size());
        for (std::size_t b = 0; b < state.buckets.size(); ++b) {
            const auto &bucket = state.buckets[b];
            const std::size_t n = bucket.members.size();
            const std::size_t d = bucket.degree;
            auto &head_states = state.head_states[b];
            head_states.resize(config_.num_heads);

            for (int head = 0; head < config_.num_heads; ++head) {
                const Tensor &hw = state.hw[head];
                const float *asv = a_src_[layer][head].value().data();
                const float *adv = a_dst_[layer][head].value().data();
                auto &hs = head_states[head];
                hs.pre_lrelu = Tensor::zeros(n, d + 1, observer);
                hs.alpha = Tensor::zeros(n, d + 1, observer);

                for (std::size_t i = 0; i < n; ++i) {
                    const sampling::NodeId v = bucket.members[i];
                    auto nbrs = block.neighborList(v);
                    // Participant t: self at t = d, neighbors at 0..d-1.
                    float dst_score = 0.0f;
                    const float *hv = hw.data() + v * hd;
                    for (std::size_t j = 0; j < hd; ++j)
                        dst_score += adv[j] * hv[j];

                    float *pre = hs.pre_lrelu.data() + i * (d + 1);
                    for (std::size_t t = 0; t <= d; ++t) {
                        const sampling::NodeId u =
                            t < d ? nbrs[t] : v;
                        const float *hu = hw.data() + u * hd;
                        float src_score = 0.0f;
                        for (std::size_t j = 0; j < hd; ++j)
                            src_score += asv[j] * hu[j];
                        pre[t] = dst_score + src_score;
                    }
                    // LeakyReLU + softmax over the d+1 participants.
                    float *alpha = hs.alpha.data() + i * (d + 1);
                    float row_max =
                        -std::numeric_limits<float>::infinity();
                    for (std::size_t t = 0; t <= d; ++t) {
                        const float e = pre[t] > 0
                                            ? pre[t]
                                            : kLeakySlope * pre[t];
                        alpha[t] = e;
                        row_max = std::max(row_max, e);
                    }
                    float z = 0.0f;
                    for (std::size_t t = 0; t <= d; ++t) {
                        alpha[t] = std::exp(alpha[t] - row_max);
                        z += alpha[t];
                    }
                    for (std::size_t t = 0; t <= d; ++t)
                        alpha[t] /= z;

                    // Weighted sum into the head's column slice.
                    float *dst = output.data() + v * out + head * hd;
                    for (std::size_t t = 0; t <= d; ++t) {
                        const sampling::NodeId u =
                            t < d ? nbrs[t] : v;
                        const float *hu = hw.data() + u * hd;
                        for (std::size_t j = 0; j < hd; ++j)
                            dst[j] += alpha[t] * hu[j];
                    }
                }
            }
        }

        if (layer + 1 < config_.num_layers) {
            if (cache != nullptr)
                state.pre_activation = output;
            x = ops::relu(output, observer);
        } else {
            x = output;
        }
    }
    return x;
}

void
GatModel::backward(const ForwardCache &cache, const Tensor &grad_logits,
                   AllocationObserver *observer)
{
    Tensor grad = grad_logits;
    for (int layer = config_.num_layers - 1; layer >= 0; --layer) {
        const auto &state = cache.layers[layer];
        const std::size_t hd = headDim(layer);
        const std::size_t out = config_.layerOutDim(layer);
        const std::size_t num_src = state.input.rows();

        if (layer + 1 < config_.num_layers)
            grad = ops::reluBackward(grad, state.pre_activation,
                                     observer);

        // Accumulate per-head dHW, then push through W to dX.
        Tensor grad_x = Tensor::zeros(num_src,
                                      config_.layerInDim(layer),
                                      observer);
        for (int head = 0; head < config_.num_heads; ++head) {
            const Tensor &hw = state.hw[head];
            Tensor dhw = Tensor::zeros(num_src, hd, observer);
            float *das =
                a_src_[layer][head].grad().data();
            float *dad =
                a_dst_[layer][head].grad().data();
            const float *asv = a_src_[layer][head].value().data();
            const float *adv = a_dst_[layer][head].value().data();

            for (std::size_t b = 0; b < state.buckets.size(); ++b) {
                const auto &bucket = state.buckets[b];
                const auto &hs = state.head_states[b][head];
                const std::size_t n = bucket.members.size();
                const std::size_t d = bucket.degree;

                for (std::size_t i = 0; i < n; ++i) {
                    const sampling::NodeId v = bucket.members[i];
                    auto nbrs = state.block->neighborList(v);
                    const float *gout =
                        grad.data() + v * out + head * hd;
                    const float *alpha =
                        hs.alpha.data() + i * (d + 1);
                    const float *pre =
                        hs.pre_lrelu.data() + i * (d + 1);

                    // dalpha_t = gout . hw_u ; dhw_u += alpha_t * gout
                    std::vector<float> dalpha(d + 1, 0.0f);
                    for (std::size_t t = 0; t <= d; ++t) {
                        const sampling::NodeId u =
                            t < d ? nbrs[t] : v;
                        const float *hu = hw.data() + u * hd;
                        float *du = dhw.data() + u * hd;
                        float dot = 0.0f;
                        for (std::size_t j = 0; j < hd; ++j) {
                            dot += gout[j] * hu[j];
                            du[j] += alpha[t] * gout[j];
                        }
                        dalpha[t] = dot;
                    }
                    // Softmax backward.
                    float inner = 0.0f;
                    for (std::size_t t = 0; t <= d; ++t)
                        inner += alpha[t] * dalpha[t];
                    for (std::size_t t = 0; t <= d; ++t) {
                        float de =
                            alpha[t] * (dalpha[t] - inner);
                        // LeakyReLU backward.
                        if (pre[t] <= 0.0f)
                            de *= kLeakySlope;
                        // e = a_dst.hw_v + a_src.hw_u
                        const sampling::NodeId u =
                            t < d ? nbrs[t] : v;
                        const float *hv = hw.data() + v * hd;
                        const float *hu = hw.data() + u * hd;
                        float *dv = dhw.data() + v * hd;
                        float *du = dhw.data() + u * hd;
                        for (std::size_t j = 0; j < hd; ++j) {
                            dad[j] += de * hv[j];
                            dv[j] += de * adv[j];
                            das[j] += de * hu[j];
                            du[j] += de * asv[j];
                        }
                    }
                }
            }
            // dW += X^T dHW ; dX += dHW W^T.
            w_[layer][head].accumulateGrad(
                ops::matmulTransposeA(state.input, dhw, observer));
            ops::addInPlace(
                grad_x, ops::matmulTransposeB(
                            dhw, w_[layer][head].value(), observer));
        }
        grad = std::move(grad_x);
    }
}

std::vector<Parameter *>
GatModel::parameters()
{
    std::vector<Parameter *> params;
    for (int layer = 0; layer < config_.num_layers; ++layer) {
        for (int head = 0; head < config_.num_heads; ++head) {
            params.push_back(&w_[layer][head]);
            params.push_back(&a_src_[layer][head]);
            params.push_back(&a_dst_[layer][head]);
        }
    }
    return params;
}

} // namespace buffalo::nn
