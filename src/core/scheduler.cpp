#include "core/scheduler.h"

#include <algorithm>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/names.h"
#include "util/errors.h"
#include "util/logging.h"
#include "util/timer.h"

namespace buffalo::core {

BuffaloScheduler::BuffaloScheduler(const nn::MemoryModel &model,
                                   double clustering_coefficient,
                                   const SchedulerOptions &options)
    : model_(model), redundancy_estimator_(clustering_coefficient),
      // A vanishing C drives every grouping ratio to 1, i.e. plain
      // linear summation (the ablation baseline).
      linear_estimator_(0.0), options_(options)
{
    checkArgument(options_.mem_constraint > 0,
                  "BuffaloScheduler: mem_constraint must be set");
    checkArgument(options_.max_groups >= 1,
                  "BuffaloScheduler: max_groups must be >= 1");
    checkArgument(options_.safety_factor > 0.0 &&
                      options_.safety_factor <= 1.0,
                  "BuffaloScheduler: safety_factor must be in (0, 1]");
}

ScheduleResult
BuffaloScheduler::schedule(const SampledSubgraph &sg) const
{
    obs::Span span(obs::names::kSpanSchedulerSchedule);
    util::StopWatch watch;
    const RedundancyAwareMemEstimator &estimator =
        options_.redundancy_aware ? redundancy_estimator_
                                  : linear_estimator_;

    // Line 1: degree-bucket the output layer.
    BucketList buckets = sampling::bucketizeSeeds(sg);
    BucketMemEstimator bucket_estimator(model_, sg);
    std::vector<BucketMemInfo> base_infos =
        bucket_estimator.estimate(buckets);

    // Explosion detection happens once on the un-split bucket list.
    int explosion_index = sampling::findExplosionBucket(
        buckets, options_.explosion_threshold);
    if (explosion_index < 0 && options_.enable_split) {
        // Memory-driven fallback: when the heaviest bucket alone
        // cannot fit the budget, it must be split regardless of the
        // volume distribution (e.g. when the graph's average degree
        // exceeds the fanout, *all* seeds collapse into the single
        // cut-off bucket).
        std::size_t heaviest = 0;
        for (std::size_t b = 1; b < base_infos.size(); ++b)
            if (base_infos[b].est_bytes >
                base_infos[heaviest].est_bytes)
                heaviest = b;
        if (!base_infos.empty() &&
            base_infos[heaviest].est_bytes + options_.reserved_bytes >
                options_.mem_constraint) {
            explosion_index = static_cast<int>(heaviest);
        }
    }

    ScheduleResult result;
    result.explosion_detected =
        options_.enable_split && explosion_index >= 0;

    // The scheduler packs against a slightly reduced budget so
    // estimation error and allocator transients cannot push execution
    // over the real capacity.
    const std::uint64_t activation_budget =
        options_.mem_constraint > options_.reserved_bytes
            ? static_cast<std::uint64_t>(
                  (options_.mem_constraint - options_.reserved_bytes) *
                  options_.safety_factor)
            : 0;

    // Algorithm 3 increments K by one per failed attempt. Re-pricing
    // the split micro-buckets costs a cone walk per attempt, so we
    // jump-start at a lower bound no feasible plan can beat: the sum
    // of redundancy-discounted bucket estimates divided by the
    // activation budget (perfect packing of discounted items). The
    // loop then proceeds K, K+1, ... exactly as in the paper.
    int k_start = 1;
    if (activation_budget > 0) {
        double discounted_total = 0.0;
        for (const auto &info : base_infos) {
            discounted_total += static_cast<double>(info.est_bytes) *
                                estimator.groupingRatio(info);
        }
        k_start = std::max(
            1, static_cast<int>(discounted_total /
                                static_cast<double>(
                                    activation_budget)));
    }

    for (int k = k_start; k <= options_.max_groups; ++k) {
        // Lines 4-5: split the explosion bucket into K micro-buckets.
        std::vector<BucketMemInfo> infos;
        if (result.explosion_detected && k > 1) {
            infos.reserve(base_infos.size() + k - 1);
            for (std::size_t b = 0; b < base_infos.size(); ++b) {
                if (static_cast<int>(b) == explosion_index)
                    continue;
                infos.push_back(base_infos[b]);
            }
            for (const DegreeBucket &micro : splitExplosionBucket(
                     buckets[explosion_index], k)) {
                infos.push_back(
                    bucket_estimator.estimateBucket(micro));
            }
        } else {
            infos = base_infos;
        }

        // Generalized split (extension beyond Algorithm 3, see
        // DESIGN.md): any *other* bucket whose standalone estimate
        // exceeds the budget is atomic and would make every K fail,
        // so it is split into just enough micro-buckets to fit. This
        // matters at small scales/budgets where non-cut-off buckets
        // can individually outgrow the device.
        if (options_.enable_split && activation_budget > 0) {
            std::vector<BucketMemInfo> expanded;
            expanded.reserve(infos.size());
            for (auto &info : infos) {
                if (info.est_bytes <= activation_budget ||
                    info.bucket.volume() <= 1) {
                    expanded.push_back(std::move(info));
                    continue;
                }
                std::vector<DegreeBucket> pending = {info.bucket};
                for (int round = 0;
                     round < 8 && !pending.empty(); ++round) {
                    std::vector<DegreeBucket> next;
                    for (const auto &piece : pending) {
                        BucketMemInfo piece_info =
                            bucket_estimator.estimateBucket(piece);
                        if (piece_info.est_bytes <=
                                activation_budget ||
                            piece.volume() <= 1) {
                            expanded.push_back(
                                std::move(piece_info));
                            continue;
                        }
                        const int pieces = std::min<std::uint64_t>(
                            piece.volume(),
                            piece_info.est_bytes /
                                    std::max<std::uint64_t>(
                                        activation_budget / 2, 1) +
                                2);
                        for (auto &micro :
                             splitExplosionBucket(piece, pieces))
                            next.push_back(std::move(micro));
                    }
                    pending = std::move(next);
                }
                for (const auto &piece : pending)
                    expanded.push_back(
                        bucket_estimator.estimateBucket(piece));
            }
            infos = std::move(expanded);
        }

        // Line 6: memory-balanced grouping.
        GroupingResult grouping = memBalancedGrouping(
            infos, k, options_.reserved_bytes + activation_budget,
            estimator, options_.reserved_bytes, options_.policy);
        if (grouping.success) {
            result.num_groups =
                static_cast<int>(grouping.groups.size());
            result.groups = std::move(grouping.groups);
            result.single_group = k == 1;
            result.schedule_seconds = watch.seconds();

            obs::MetricsRegistry &m = obs::metrics();
            m.counter(obs::names::kCtrSchedulerSchedules).add();
            m.counter(obs::names::kCtrSchedulerKAttempts)
                .add(static_cast<std::uint64_t>(k - k_start + 1));
            if (result.explosion_detected)
                m.counter(obs::names::kCtrSchedulerExplosionSplits).add();
            m.histogram(obs::names::kHistSchedulerNumGroups)
                .add(static_cast<double>(result.num_groups));
            m.histogram(obs::names::kHistSchedulerScheduleSeconds)
                .add(result.schedule_seconds);

            if (obs::eventLog().enabled()) {
                std::uint64_t max_est = 0;
                for (const BucketGroup &group : result.groups)
                    max_est = std::max(max_est, group.est_bytes);
                obs::eventLog()
                    .event(obs::names::kEvSchedulerSchedule)
                    .field("k", result.num_groups)
                    .field("k_attempts", k - k_start + 1)
                    .field("buckets",
                           std::uint64_t(base_infos.size()))
                    .field("explosion", result.explosion_detected)
                    .field("activation_budget", activation_budget)
                    .field("max_group_est_bytes", max_est)
                    .field("seconds", result.schedule_seconds);
                if (result.explosion_detected) {
                    obs::eventLog()
                        .event(
                            obs::names::kEvSchedulerExplosionSplit)
                        .field("bucket_index", explosion_index)
                        .field("pieces", std::max(k, 1))
                        .field(
                            "volume",
                            std::uint64_t(
                                buckets[static_cast<std::size_t>(
                                            explosion_index)]
                                    .members.size()));
                }
            }

            BUFFALO_LOG_INFO("scheduler")
                << "K=" << result.num_groups << " groups (explosion="
                << result.explosion_detected << ") in "
                << result.schedule_seconds << "s";
            return result;
        }
    }
    throw InvalidArgument(
        "BuffaloScheduler: batch cannot satisfy the memory constraint "
        "even with max_groups micro-batches");
}

} // namespace buffalo::core
