#include "core/grouping.h"

#include <algorithm>
#include <numeric>

#include "util/errors.h"

namespace buffalo::core {

NodeList
BucketGroup::outputSeeds() const
{
    NodeList seeds;
    for (const auto &info : buckets)
        seeds.insert(seeds.end(), info.bucket.members.begin(),
                     info.bucket.members.end());
    return seeds;
}

std::uint64_t
BucketGroup::outputCount() const
{
    std::uint64_t total = 0;
    for (const auto &info : buckets)
        total += info.outputs;
    return total;
}

std::vector<DegreeBucket>
splitExplosionBucket(const DegreeBucket &bucket, int pieces)
{
    checkArgument(pieces >= 1,
                  "splitExplosionBucket: need >= 1 piece");
    const std::size_t volume = bucket.members.size();
    const std::size_t count =
        std::min<std::size_t>(pieces, std::max<std::size_t>(volume, 1));

    std::vector<DegreeBucket> micro(count);
    for (std::size_t p = 0; p < count; ++p) {
        micro[p].degree = bucket.degree;
        micro[p].members.reserve(volume / count + 1);
    }
    // Deal members round-robin: node ids correlate with degree and
    // neighborhood size in real graphs, so contiguous ranges would
    // concentrate the heavy seeds in one micro-bucket. Dealing keeps
    // both the output counts and the memory footprints even (the
    // 4-6% balance of paper Fig. 14).
    for (std::size_t i = 0; i < volume; ++i)
        micro[i % count].members.push_back(bucket.members[i]);
    return micro;
}

GroupingResult
memBalancedGrouping(const std::vector<BucketMemInfo> &infos,
                    int num_groups, std::uint64_t mem_constraint,
                    const RedundancyAwareMemEstimator &estimator,
                    std::uint64_t reserved_bytes, GroupingPolicy policy)
{
    checkArgument(num_groups >= 1,
                  "memBalancedGrouping: need >= 1 group");
    GroupingResult result;
    result.groups.resize(num_groups);

    const std::uint64_t budget =
        mem_constraint > reserved_bytes
            ? mem_constraint - reserved_bytes
            : 0;

    // Sort items by descending standalone estimate (largest first).
    std::vector<std::size_t> order(infos.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return infos[a].est_bytes > infos[b].est_bytes;
              });

    std::vector<std::vector<const BucketMemInfo *>> members(num_groups);
    std::vector<std::uint64_t> estimates(num_groups, 0);

    for (std::size_t idx : order) {
        const BucketMemInfo &item = infos[idx];
        int chosen = -1;
        if (policy == GroupingPolicy::LargestFirstBalanced) {
            // Paper's heuristic: the group with the lowest current
            // redundancy-aware estimate receives the item.
            chosen = static_cast<int>(
                std::min_element(estimates.begin(), estimates.end()) -
                estimates.begin());
        } else {
            // First-fit-decreasing (ablation baseline).
            for (int g = 0; g < num_groups; ++g) {
                members[g].push_back(&item);
                const std::uint64_t with_item =
                    estimator.estimateGroup(members[g]);
                members[g].pop_back();
                if (with_item <= budget) {
                    chosen = g;
                    break;
                }
            }
            if (chosen < 0)
                chosen = static_cast<int>(
                    std::min_element(estimates.begin(),
                                     estimates.end()) -
                    estimates.begin());
        }
        members[chosen].push_back(&item);
        estimates[chosen] = estimator.estimateGroup(members[chosen]);
    }

    std::uint64_t max_bytes = 0;
    for (int g = 0; g < num_groups; ++g)
        max_bytes = std::max(max_bytes, estimates[g]);
    result.max_group_bytes = max_bytes;

    if (max_bytes > budget) {
        result.success = false;
        return result;
    }

    for (int g = 0; g < num_groups; ++g) {
        result.groups[g].est_bytes = estimates[g];
        std::uint64_t standalone = 0;
        for (const BucketMemInfo *info : members[g]) {
            result.groups[g].buckets.push_back(*info);
            standalone += info->est_bytes;
        }
        result.groups[g].mean_grouping_ratio =
            standalone == 0 ? 1.0
                            : static_cast<double>(estimates[g]) /
                                  static_cast<double>(standalone);
    }
    // Drop empty groups (possible when there are fewer buckets than K).
    std::erase_if(result.groups, [](const BucketGroup &group) {
        return group.buckets.empty();
    });
    result.success = true;
    return result;
}

} // namespace buffalo::core
