/**
 * @file
 * The Buffalo Scheduler (paper Algorithm 3).
 *
 * Given a sampled batch, the aggregation depth (implied by the batch),
 * and a device memory constraint, the scheduler:
 *   1. degree-buckets the output layer,
 *   2. detects bucket explosion,
 *   3. for K = 1, 2, ...: splits the explosion bucket into K
 *      micro-buckets and runs MemBalancedGrouping,
 *   4. stops at the first K whose groups all fit the constraint,
 *   5. hands the groups to the MicroBatchGenerator.
 *
 * Partitioning happens at the *output layer* (paper §IV-B): output
 * nodes are disjoint across groups, so gradient accumulation across
 * micro-batches is exact and activations are released per group.
 */
#pragma once

#include <vector>

#include "core/grouping.h"
#include "core/mem_estimator.h"

namespace buffalo::core {

/** Scheduler knobs. */
struct SchedulerOptions
{
    /** Hard device memory constraint M_ctr, bytes. */
    std::uint64_t mem_constraint = 0;
    /** Bytes reserved for weights/grads/optimizer before activations. */
    std::uint64_t reserved_bytes = 0;
    /** Give up past this many groups. */
    int max_groups = 4096;
    /** Explosion detection threshold (see findExplosionBucket). */
    double explosion_threshold = 2.0;
    /** Grouping heuristic (ablation hook). */
    GroupingPolicy policy = GroupingPolicy::LargestFirstBalanced;
    /** Disable the split step entirely (ablation hook). */
    bool enable_split = true;
    /** Use the redundancy-aware estimator; false sums linearly
     *  (ablation hook; the paper's estimator is redundancy-aware). */
    bool redundancy_aware = true;
    /** Fraction of the activation budget the scheduler actually packs
     *  against; the rest is headroom for estimation error and
     *  allocator transients (analogous to CUDA allocator slack). */
    double safety_factor = 0.82;
};

/** Scheduler output: a valid K-way bucket-group plan. */
struct ScheduleResult
{
    /** Number of micro-batches K. */
    int num_groups = 0;
    std::vector<BucketGroup> groups;
    /** True if the whole batch fit as one group (no partitioning). */
    bool single_group = false;
    /** True if an explosion bucket was detected and split. */
    bool explosion_detected = false;
    /** Wall-clock seconds the scheduling took. */
    double schedule_seconds = 0.0;
};

/** Algorithm 3: turns a batch into memory-safe bucket groups. */
class BuffaloScheduler
{
  public:
    /**
     * @param model The analytic memory model for the GNN config.
     * @param clustering_coefficient Average clustering coefficient of
     *        the input graph (offline statistic, paper §IV-D).
     */
    BuffaloScheduler(const nn::MemoryModel &model,
                     double clustering_coefficient,
                     const SchedulerOptions &options);

    /**
     * Schedules @p sg into bucket groups. Throws DeviceOom-agnostic
     * InvalidArgument when even max_groups groups cannot satisfy the
     * constraint.
     */
    ScheduleResult schedule(const SampledSubgraph &sg) const;

    const SchedulerOptions &options() const { return options_; }

  private:
    const nn::MemoryModel &model_;
    RedundancyAwareMemEstimator redundancy_estimator_;
    RedundancyAwareMemEstimator linear_estimator_;
    SchedulerOptions options_;
};

} // namespace buffalo::core
