#include "core/mem_estimator.h"

#include <algorithm>

#include "util/errors.h"

namespace buffalo::core {

BucketMemEstimator::BucketMemEstimator(const nn::MemoryModel &model,
                                       const SampledSubgraph &sg)
    : model_(model), sg_(sg)
{
    checkArgument(model.config().num_layers == sg.numLayers(),
                  "BucketMemEstimator: model depth != sampled depth");
}

BucketMemInfo
BucketMemEstimator::estimateBucket(const DegreeBucket &bucket) const
{
    BucketMemInfo info;
    info.bucket = bucket;
    info.outputs = bucket.volume();
    info.degree = static_cast<double>(bucket.degree);

    // Walk the bucket's dependency cone top-down over the sampled
    // adjacency, counting destinations and message edges per layer.
    const int num_layers = sg_.numLayers();
    std::vector<char> seen(sg_.nodes().size(), 0);
    NodeList frontier = bucket.members;
    for (sampling::NodeId v : frontier)
        seen[v] = 1;

    std::uint64_t est = 0;
    for (int layer = num_layers - 1; layer >= 0; --layer) {
        const auto &adjacency = sg_.layerAdjacency(layer);
        std::uint64_t edges = 0;
        NodeList next = frontier;
        for (sampling::NodeId v : frontier) {
            auto nbrs = adjacency.neighbors(v);
            edges += nbrs.size();
            for (sampling::NodeId u : nbrs) {
                if (!seen[u]) {
                    seen[u] = 1;
                    next.push_back(u);
                }
            }
        }
        est += model_.layerActivationBytesFromCounts(
            layer, frontier.size(), edges, next.size());
        frontier = std::move(next);
    }
    info.inputs = frontier.size();
    est += model_.inputFeatureBytes(info.inputs);
    // Output logits + their gradient.
    est += static_cast<std::uint64_t>(
        2.0 * static_cast<double>(info.outputs) *
        model_.config().num_classes * 4.0);
    info.est_bytes = est;
    return info;
}

std::vector<BucketMemInfo>
BucketMemEstimator::estimate(const BucketList &buckets) const
{
    std::vector<BucketMemInfo> infos;
    infos.reserve(buckets.size());
    for (const auto &bucket : buckets)
        infos.push_back(estimateBucket(bucket));
    return infos;
}

RedundancyAwareMemEstimator::RedundancyAwareMemEstimator(
    double clustering_coefficient)
    : c_(std::max(clustering_coefficient, 1e-3))
{
}

double
RedundancyAwareMemEstimator::groupingRatio(
    const BucketMemInfo &info) const
{
    if (info.outputs == 0 || info.degree <= 0.0)
        return 1.0;
    const double ratio =
        static_cast<double>(info.inputs) /
        (static_cast<double>(info.outputs) * info.degree * c_);
    return std::min(1.0, ratio);
}

std::uint64_t
RedundancyAwareMemEstimator::estimateGroup(
    const std::vector<const BucketMemInfo *> &group) const
{
    double total = 0.0;
    std::uint64_t largest = 0;
    for (const BucketMemInfo *info : group) {
        total += static_cast<double>(info->est_bytes) *
                 groupingRatio(*info);
        largest = std::max(largest, info->est_bytes);
    }
    // Eq. 2 discounts each member for cross-member redundancy, but
    // per-bucket estimates are already deduplicated within their own
    // cone — a group can never cost less than its heaviest member.
    return std::max(static_cast<std::uint64_t>(total), largest);
}

} // namespace buffalo::core
