#include "core/micro_batch_generator.h"

namespace buffalo::core {

MicroBatchGenerator::MicroBatchGenerator(
    std::unique_ptr<sampling::BlockGenerator> generator)
    : generator_(std::move(generator))
{
    if (!generator_)
        generator_ = std::make_unique<sampling::FastBlockGenerator>();
}

sampling::MicroBatch
MicroBatchGenerator::generateOne(const SampledSubgraph &sg,
                                 const BucketGroup &group,
                                 util::PhaseTimer *timer) const
{
    return generator_->generate(sg, group.outputSeeds(), timer);
}

std::vector<sampling::MicroBatch>
MicroBatchGenerator::generate(
    const SampledSubgraph &sg,
    const std::vector<BucketGroup> &groups,
    util::PhaseTimer *timer) const
{
    std::vector<sampling::MicroBatch> batches;
    batches.reserve(groups.size());
    for (const auto &group : groups)
        batches.push_back(generateOne(sg, group, timer));
    return batches;
}

} // namespace buffalo::core
