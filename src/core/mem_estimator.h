/**
 * @file
 * Buffalo's analytical memory estimation (paper §IV-D).
 *
 * BucketMemEstimator computes, once per batch, each output-layer
 * bucket's standalone memory estimate M_est[i] together with the
 * quantities Eq. 1 needs (I_i input nodes, O_i output nodes, D_i
 * degree). RedundancyAwareMemEstimator then prices any *group* of
 * buckets with the redundancy-aware grouping ratio
 *
 *     R_group[i] = min(1, I_i / (O_i * D_i * C))          (Eq. 1)
 *     M_group    = sum_i M_est[i] * R_group[i]            (Eq. 2)
 *
 * where C is the graph's average clustering coefficient. The group
 * estimator is O(|group|) per call, which is what keeps the greedy
 * grouping loop of Algorithm 4 cheap.
 */
#pragma once

#include <vector>

#include "nn/memory_model.h"
#include "sampling/bucketing.h"
#include "sampling/sampled_subgraph.h"

namespace buffalo::core {

using sampling::BucketList;
using sampling::DegreeBucket;
using sampling::NodeList;
using sampling::SampledSubgraph;

/** Per-bucket quantities produced during bucketing (paper §IV-D). */
struct BucketMemInfo
{
    DegreeBucket bucket;
    /** I_i: unique input-layer nodes in the bucket's L-hop cone. */
    std::uint64_t inputs = 0;
    /** O_i: bucket volume (output nodes). */
    std::uint64_t outputs = 0;
    /** D_i: the bucket's output-layer degree. */
    double degree = 0.0;
    /** M_est[i]: standalone training bytes of this bucket's cone. */
    std::uint64_t est_bytes = 0;
};

/** Computes per-bucket standalone memory estimates. */
class BucketMemEstimator
{
  public:
    /**
     * @param model The shared analytic model (see nn/memory_model.h).
     * @param sg The batch subgraph (provides the sampled adjacency the
     *           cone walk runs over).
     */
    BucketMemEstimator(const nn::MemoryModel &model,
                       const SampledSubgraph &sg);

    /**
     * Prices every bucket in @p buckets. The cone walk touches each
     * sampled edge at most once per bucket, so the total cost is the
     * same order as one block generation — no tensor work.
     */
    std::vector<BucketMemInfo> estimate(const BucketList &buckets) const;

    /** Prices one bucket. */
    BucketMemInfo estimateBucket(const DegreeBucket &bucket) const;

  private:
    const nn::MemoryModel &model_;
    const SampledSubgraph &sg_;
};

/** Redundancy-aware group pricing (Eq. 1 + Eq. 2). */
class RedundancyAwareMemEstimator
{
  public:
    /**
     * @param clustering_coefficient The graph's average clustering
     *        coefficient C; clamped away from zero.
     */
    explicit RedundancyAwareMemEstimator(double clustering_coefficient);

    /** R_group[i] of Eq. 1 for one bucket. */
    double groupingRatio(const BucketMemInfo &info) const;

    /** Eq. 2 over a group of buckets. */
    std::uint64_t estimateGroup(
        const std::vector<const BucketMemInfo *> &group) const;

    /** The clamped C in use. */
    double clusteringCoefficient() const { return c_; }

  private:
    double c_;
};

} // namespace buffalo::core
