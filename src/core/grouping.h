/**
 * @file
 * Bucket split and memory-balanced grouping (paper §IV-C, Algorithm 4).
 *
 * SplitExplosionBucket evenly splits the explosion (cut-off) bucket into
 * micro-buckets. MemBalancedGrouping treats each (micro-)bucket as a
 * bin-packing item whose weight is its memory estimate, and greedily
 * packs items largest-first into the currently lightest of K groups
 * under the redundancy-aware group estimator, failing if any group
 * exceeds the memory constraint.
 */
#pragma once

#include <vector>

#include "core/mem_estimator.h"

namespace buffalo::core {

/** One bucket group: members plus its redundancy-aware estimate. */
struct BucketGroup
{
    std::vector<BucketMemInfo> buckets;
    std::uint64_t est_bytes = 0;
    /**
     * Effective R_group discount the estimator applied to the group:
     * est_bytes / sum of the members' standalone M_est[i] (Eq. 1-2).
     * 1.0 for a single-bucket group or under the linear estimator.
     */
    double mean_grouping_ratio = 1.0;

    /** Union of member buckets' output seeds (subgraph-local ids). */
    NodeList outputSeeds() const;

    /** Total output nodes across member buckets. */
    std::uint64_t outputCount() const;
};

/**
 * Evenly splits @p bucket into @p pieces micro-buckets (paper's
 * SplitExplosionBucket). Every piece keeps the original degree; member
 * counts differ by at most one. Pieces never come back empty unless
 * pieces > volume.
 */
std::vector<DegreeBucket> splitExplosionBucket(
    const DegreeBucket &bucket, int pieces);

/** Result of one MemBalancedGrouping attempt. */
struct GroupingResult
{
    bool success = false;
    std::vector<BucketGroup> groups;
    /** Largest group estimate seen (diagnostic, set even on failure). */
    std::uint64_t max_group_bytes = 0;
};

/** Grouping heuristics for the ablation bench. */
enum class GroupingPolicy
{
    /** Paper's Algorithm 4: sort desc, place into lightest group. */
    LargestFirstBalanced,
    /** First-fit-decreasing: place into first group that fits. */
    FirstFit,
};

/**
 * Algorithm 4. Packs @p infos into @p num_groups groups whose
 * redundancy-aware estimates must each stay within @p mem_constraint.
 *
 * @param estimator Prices candidate groups (Eq. 1-2).
 * @param reserved_bytes Static bytes (weights, grads, optimizer state)
 *        subtracted from the constraint before packing.
 */
GroupingResult memBalancedGrouping(
    const std::vector<BucketMemInfo> &infos, int num_groups,
    std::uint64_t mem_constraint,
    const RedundancyAwareMemEstimator &estimator,
    std::uint64_t reserved_bytes = 0,
    GroupingPolicy policy = GroupingPolicy::LargestFirstBalanced);

} // namespace buffalo::core
