/**
 * @file
 * MicroBatchGenerator (paper Algorithm 3, line 11): materializes each
 * bucket group into an L-layer block chain using a pluggable block
 * generator — Buffalo's fast CSR-row generator by default.
 */
#pragma once

#include <memory>
#include <vector>

#include "core/grouping.h"
#include "sampling/block_generator.h"

namespace buffalo::core {

/** Builds micro-batches (block chains) from bucket groups. */
class MicroBatchGenerator
{
  public:
    /**
     * @param generator Strategy used to build blocks; null selects
     *        FastBlockGenerator.
     */
    explicit MicroBatchGenerator(
        std::unique_ptr<sampling::BlockGenerator> generator = nullptr);

    /** Generates one micro-batch per group, in group order. */
    std::vector<sampling::MicroBatch> generate(
        const SampledSubgraph &sg,
        const std::vector<BucketGroup> &groups,
        util::PhaseTimer *timer = nullptr) const;

    /** Generates the micro-batch of a single group. */
    sampling::MicroBatch generateOne(const SampledSubgraph &sg,
                                     const BucketGroup &group,
                                     util::PhaseTimer *timer =
                                         nullptr) const;

    /** The underlying block-generation strategy. */
    const sampling::BlockGenerator &blockGenerator() const
    {
        return *generator_;
    }

  private:
    std::unique_ptr<sampling::BlockGenerator> generator_;
};

} // namespace buffalo::core
