#include "sampling/presample.h"

#include <algorithm>
#include <numeric>

#include "sampling/sampled_subgraph.h"
#include "util/errors.h"
#include "util/rng.h"
#include "util/timer.h"

namespace buffalo::sampling {

PresampleResult
presampleFrequencies(const graph::CsrGraph &graph,
                     const graph::NodeList &seed_pool,
                     const std::vector<int> &fanouts,
                     const PresampleOptions &options)
{
    checkArgument(options.batch_size >= 1,
                  "presampleFrequencies: batch_size must be >= 1");
    PresampleResult result;
    result.frequency.assign(graph.numNodes(), 0);
    if (options.num_batches <= 0 || graph.numNodes() == 0)
        return result;

    util::StopWatch watch;
    graph::NodeList pool = seed_pool;
    if (pool.empty()) {
        pool.resize(graph.numNodes());
        std::iota(pool.begin(), pool.end(), graph::NodeId{0});
    }

    util::Rng rng(options.seed);
    NeighborSampler sampler(fanouts);
    // Seeds are drawn without replacement within one pass over the
    // shuffled pool (the sampler requires unique seeds per batch);
    // when the pool runs dry the pass reshuffles and keeps going, so
    // frequencies approximate epochs of the real seed distribution.
    rng.shuffle(pool);
    std::size_t cursor = 0;
    for (int b = 0; b < options.num_batches; ++b) {
        if (cursor >= pool.size()) {
            rng.shuffle(pool);
            cursor = 0;
        }
        const std::size_t end =
            std::min(pool.size(), cursor + options.batch_size);
        const graph::NodeList seeds(pool.begin() + cursor,
                                    pool.begin() + end);
        cursor = end;
        const SampledSubgraph sg = sampler.sample(graph, seeds, rng);
        for (const graph::NodeId node : sg.nodes())
            ++result.frequency[node];
        result.node_visits += sg.nodes().size();
        ++result.batches;
    }
    result.seconds = watch.seconds();
    return result;
}

} // namespace buffalo::sampling
