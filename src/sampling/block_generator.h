/**
 * @file
 * Block (MFG) generation strategies.
 *
 * FastBlockGenerator implements Buffalo's data-preparation optimization
 * (paper §IV-E): it reads pre-sampled neighbor rows straight from the
 * SampledSubgraph's CSR — one contiguous row access per destination —
 * and tracks neighbors in parallel at the node level.
 *
 * BaselineBlockGenerator reproduces the slow path Betty and stock
 * pipelines use (paper §III, "data preparation time is non-negligible"):
 * for every destination it rescans the *parent graph's full* neighbor
 * list and re-checks, edge by edge, which neighbors were selected by
 * sampling. The repeated connection checks make it O(parent_degree x
 * sampled_degree) per node instead of O(sampled_degree).
 */
#pragma once

#include <memory>
#include <string>

#include "obs/phase.h"
#include "sampling/block.h"
#include "sampling/sampled_subgraph.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace buffalo::sampling {

/** Phases charged by block generators (paper Fig. 11):
 *  obs::Phase::ConnectionCheck and obs::Phase::BlockConstruction. */
using obs::Phase;
using obs::phaseName;

/** Strategy interface for building a MicroBatch from an output set. */
class BlockGenerator
{
  public:
    virtual ~BlockGenerator() = default;

    /**
     * Builds the L-layer block chain for @p output_locals — local ids
     * of the subgraph's seed nodes this micro-batch owns. Ids must be
     * unique seeds (i.e. < sg.numSeeds()).
     *
     * @param timer Optional: receives the "connection check" (neighbor
     *        tracking) and "block construction" (assembly) phase
     *        split of Fig. 11.
     */
    virtual MicroBatch generate(const SampledSubgraph &sg,
                                const NodeList &output_locals,
                                util::PhaseTimer *timer = nullptr)
        const = 0;

    /** Human-readable strategy name for reports. */
    virtual std::string name() const = 0;
};

/** Buffalo's CSR-row, node-parallel generator (paper §IV-E). */
class FastBlockGenerator : public BlockGenerator
{
  public:
    /**
     * Fan-out tuning for the parallel construction path. Grain only
     * moves work between workers — the produced blocks are
     * byte-identical for every setting (the chunk-ascending stitch
     * reproduces the serial first-seen order for any chunking).
     */
    struct Grain
    {
        /** Destination count below which generation stays serial
         *  (per-node work is a few loads, so small batches lose more
         *  to dispatch than they gain). */
        std::size_t parallel_dst_threshold = 4096;
        /** Minimum destinations per construction chunk (phases A/C). */
        std::size_t min_chunk = 2048;
        /** parallelFor grain of the degree/offset fill. */
        std::size_t degree_grain = 1024;
    };

    /**
     * @param pool Thread pool for node-level parallelism; null uses the
     *             process-global pool.
     */
    explicit FastBlockGenerator(util::ThreadPool *pool = nullptr);

    /** @param grain Fan-out tuning; all fields must be >= 1. */
    FastBlockGenerator(util::ThreadPool *pool, Grain grain);

    MicroBatch generate(const SampledSubgraph &sg,
                        const NodeList &output_locals,
                        util::PhaseTimer *timer = nullptr)
        const override;

    std::string name() const override { return "buffalo-fast"; }

  private:
    util::ThreadPool *pool_;
    Grain grain_;
};

/** Betty-style generator with repeated parent-graph connection checks. */
class BaselineBlockGenerator : public BlockGenerator
{
  public:
    MicroBatch generate(const SampledSubgraph &sg,
                        const NodeList &output_locals,
                        util::PhaseTimer *timer = nullptr)
        const override;

    std::string name() const override { return "baseline-recheck"; }
};

} // namespace buffalo::sampling
