/**
 * @file
 * Degree bucketing (paper §II-C).
 *
 * Nodes with identical sampled in-degree are grouped into a bucket so
 * DNN kernels see fixed-shape inputs without zero padding. Because the
 * fanout F caps sampled degrees, every node of original degree >= F
 * lands in the degree-F bucket — on power-law graphs that bucket
 * *explodes* (paper §III), which is the problem Buffalo's scheduler
 * solves by splitting and regrouping.
 */
#pragma once

#include <vector>

#include "sampling/block.h"
#include "sampling/sampled_subgraph.h"

namespace buffalo::sampling {

/** All destinations of one degree within a block or seed layer. */
struct DegreeBucket
{
    /** The common sampled in-degree of every member. */
    EdgeIndex degree = 0;
    /** Member destinations (block-local or subgraph-local ids). */
    NodeList members;

    /** Number of member nodes (the bucket volume). */
    NodeId volume() const { return static_cast<NodeId>(members.size()); }
};

/** A degree-sorted list of buckets. */
using BucketList = std::vector<DegreeBucket>;

/**
 * Buckets the destinations of @p block by sampled in-degree.
 * Returned buckets are sorted by ascending degree; empty degrees are
 * omitted. Member ids are block-local destination indices.
 */
BucketList bucketizeBlock(const Block &block);

/**
 * Buckets the *seed* nodes of @p sg by their sampled in-degree at the
 * output layer. This is DegreeBucketing(G, L) of Algorithm 3: Buffalo
 * partitions at the output layer, so the scheduler only ever buckets
 * seeds. Member ids are subgraph-local seed ids.
 */
BucketList bucketizeSeeds(const SampledSubgraph &sg);

/**
 * Returns the index within @p buckets of the explosion bucket, or -1 if
 * none. A bucket explodes when it is the cut-off (max degree) bucket
 * and its volume exceeds @p threshold times the mean volume of the
 * other buckets (paper §III; threshold 2 by default).
 */
int findExplosionBucket(const BucketList &buckets,
                        double threshold = 2.0);

} // namespace buffalo::sampling
