/**
 * @file
 * Block (message-flow-graph) representation.
 *
 * A block summarizes the connectivity of one GNN layer for a micro-batch:
 * a bipartite graph from input (source) nodes to output (destination)
 * nodes, with neighbor lists stored in CSR over local source indices.
 * Bundling connectivity per layer into a single object is what enables
 * one-shot data transfer to the device (paper §I, problem 4).
 */
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"

namespace buffalo::sampling {

using graph::EdgeIndex;
using graph::NodeId;
using graph::NodeList;

/** One layer's bipartite message graph. */
struct Block
{
    /**
     * Global ids of the input nodes. The first dstNodes().size() entries
     * are exactly the destination nodes (standard MFG convention: outputs
     * are a prefix of inputs so self-features need no second gather).
     */
    NodeList src_nodes;

    /** Number of destination (output) nodes; prefix length of src_nodes. */
    NodeId num_dst = 0;

    /** CSR row offsets over destinations; size num_dst + 1. */
    std::vector<EdgeIndex> offsets;

    /**
     * Sampled in-neighbors of each destination as *local* indices into
     * src_nodes.
     */
    std::vector<NodeId> neighbors;

    /** Number of input nodes. */
    NodeId numSrc() const { return static_cast<NodeId>(src_nodes.size()); }

    /** Number of output nodes. */
    NodeId numDst() const { return num_dst; }

    /** Number of message edges. */
    EdgeIndex numEdges() const { return neighbors.size(); }

    /** Sampled in-degree of destination @p dst (local index). */
    EdgeIndex
    degree(NodeId dst) const
    {
        return offsets[dst + 1] - offsets[dst];
    }

    /** Neighbor list (local src indices) of destination @p dst. */
    std::span<const NodeId>
    neighborList(NodeId dst) const
    {
        return {neighbors.data() + offsets[dst],
                neighbors.data() + offsets[dst + 1]};
    }

    /** Global id of destination @p dst. */
    NodeId dstGlobal(NodeId dst) const { return src_nodes[dst]; }

    /** Structure bytes (ids + offsets), i.e. transfer payload size. */
    std::uint64_t structureBytes() const;

    /** Throws InternalError if any invariant is violated. */
    void validate() const;
};

/**
 * Blocks for all L layers of a micro-batch, input layer first:
 * blocks[0] consumes raw features, blocks[L-1] produces the outputs.
 * Invariant: blocks[l].src_nodes == blocks[l+1] would be wrong — the
 * chain runs the other way: blocks[l+1].src_nodes == blocks[l]'s
 * destination prefix. validateChain() checks it.
 */
struct MicroBatch
{
    std::vector<Block> blocks;

    /** Output nodes of the whole micro-batch (top block dst prefix). */
    NodeList outputNodes() const;

    /** Input nodes whose raw features must be loaded (bottom block). */
    const NodeList &inputNodes() const;

    /** Number of GNN layers. */
    int numLayers() const { return static_cast<int>(blocks.size()); }

    /** Total structure bytes across layers. */
    std::uint64_t structureBytes() const;

    /** Sum of node counts across all blocks (for Fig. 16's metric). */
    std::uint64_t totalNodeCount() const;

    /** Validates each block and the inter-layer chaining invariant. */
    void validateChain() const;
};

} // namespace buffalo::sampling
