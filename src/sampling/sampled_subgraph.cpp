#include "sampling/sampled_subgraph.h"

#include <algorithm>

#include "util/errors.h"

namespace buffalo::sampling {

NodeId
SampledSubgraph::localId(NodeId global) const
{
    auto it = to_local_.find(global);
    if (it == to_local_.end())
        throw NotFound("SampledSubgraph::localId: node not in batch");
    return it->second;
}

NodeId
SampledSubgraph::tryLocalId(NodeId global) const
{
    auto it = to_local_.find(global);
    return it == to_local_.end() ? static_cast<NodeId>(-1)
                                 : it->second;
}

const CsrGraph &
SampledSubgraph::layerAdjacency(int layer) const
{
    checkArgument(layer >= 0 && layer < numLayers(),
                  "SampledSubgraph::layerAdjacency: bad layer index");
    return layers_[layer];
}

std::uint64_t
SampledSubgraph::memoryBytes() const
{
    std::uint64_t total = nodes_.size() * sizeof(NodeId);
    for (const auto &layer : layers_)
        total += layer.memoryBytes();
    return total;
}

NeighborSampler::NeighborSampler(std::vector<int> fanouts)
    : fanouts_(std::move(fanouts))
{
    checkArgument(!fanouts_.empty(),
                  "NeighborSampler: need at least one layer");
    for (int f : fanouts_)
        checkArgument(f >= 1, "NeighborSampler: fanouts must be >= 1");
}

SampledSubgraph
NeighborSampler::sample(const CsrGraph &graph, const NodeList &seeds,
                        util::Rng &rng) const
{
    SampledSubgraph sg;
    sg.parent_ = &graph;
    sg.fanouts_ = fanouts_;
    sg.num_seeds_ = static_cast<NodeId>(seeds.size());

    sg.nodes_ = seeds;
    sg.to_local_.reserve(seeds.size() * 2);
    for (NodeId i = 0; i < seeds.size(); ++i) {
        checkArgument(seeds[i] < graph.numNodes(),
                      "NeighborSampler::sample: seed out of range");
        const bool inserted = sg.to_local_.emplace(seeds[i], i).second;
        checkArgument(inserted,
                      "NeighborSampler::sample: duplicate seed");
    }

    const int num_layers = numLayers();
    // Sampled rows per layer, keyed by local dst id, neighbors as
    // *global* ids (converted to local once the union is complete).
    std::vector<std::vector<NodeList>> layer_rows(num_layers);

    // frontier = local ids that are destinations at the current layer.
    NodeId frontier_end = sg.num_seeds_;
    std::vector<NodeId> sample_buffer;
    for (int layer = num_layers - 1; layer >= 0; --layer) {
        const int fanout = fanouts_[layer];
        auto &rows = layer_rows[layer];
        rows.resize(frontier_end);
        const NodeId union_before =
            static_cast<NodeId>(sg.nodes_.size());

        for (NodeId local = 0; local < frontier_end; ++local) {
            const NodeId global = sg.nodes_[local];
            auto nbrs = graph.neighbors(global);
            NodeList &row = rows[local];
            if (nbrs.size() <=
                static_cast<std::size_t>(fanout)) {
                row.assign(nbrs.begin(), nbrs.end());
            } else {
                auto picks = rng.sampleWithoutReplacement(
                    nbrs.size(), static_cast<std::uint64_t>(fanout));
                row.reserve(fanout);
                for (auto pick : picks)
                    row.push_back(nbrs[pick]);
            }
            for (NodeId nbr : row) {
                auto [it, inserted] = sg.to_local_.emplace(
                    nbr, static_cast<NodeId>(sg.nodes_.size()));
                if (inserted)
                    sg.nodes_.push_back(nbr);
            }
        }
        (void)union_before;
        frontier_end = static_cast<NodeId>(sg.nodes_.size());
    }

    // Compile each layer's rows into a CSR over the final union size.
    const NodeId n = static_cast<NodeId>(sg.nodes_.size());
    sg.layers_.reserve(num_layers);
    for (int layer = 0; layer < num_layers; ++layer) {
        const auto &rows = layer_rows[layer];
        std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n) + 1,
                                       0);
        EdgeIndex total = 0;
        for (std::size_t local = 0; local < rows.size(); ++local)
            total += rows[local].size();
        std::vector<NodeId> targets;
        targets.reserve(total);
        for (NodeId local = 0; local < n; ++local) {
            if (local < rows.size()) {
                for (NodeId global : rows[local])
                    targets.push_back(sg.to_local_.at(global));
            }
            offsets[local + 1] = targets.size();
        }
        sg.layers_.emplace_back(std::move(offsets), std::move(targets));
    }
    return sg;
}

} // namespace buffalo::sampling
