#include "sampling/block.h"

#include "util/errors.h"

namespace buffalo::sampling {

std::uint64_t
Block::structureBytes() const
{
    return src_nodes.size() * sizeof(NodeId) +
           offsets.size() * sizeof(EdgeIndex) +
           neighbors.size() * sizeof(NodeId);
}

void
Block::validate() const
{
    checkInternal(num_dst <= src_nodes.size(),
                  "Block: destination prefix exceeds src_nodes");
    checkInternal(offsets.size() ==
                      static_cast<std::size_t>(num_dst) + 1,
                  "Block: offsets size must be num_dst + 1");
    checkInternal(offsets.empty() || offsets.front() == 0,
                  "Block: offsets must start at 0");
    checkInternal(offsets.empty() || offsets.back() == neighbors.size(),
                  "Block: last offset must equal neighbor count");
    for (std::size_t i = 1; i < offsets.size(); ++i)
        checkInternal(offsets[i - 1] <= offsets[i],
                      "Block: offsets must be non-decreasing");
    for (NodeId local : neighbors)
        checkInternal(local < src_nodes.size(),
                      "Block: neighbor index out of range");
}

NodeList
MicroBatch::outputNodes() const
{
    checkInternal(!blocks.empty(), "MicroBatch: no blocks");
    const Block &top = blocks.back();
    return NodeList(top.src_nodes.begin(),
                    top.src_nodes.begin() + top.num_dst);
}

const NodeList &
MicroBatch::inputNodes() const
{
    checkInternal(!blocks.empty(), "MicroBatch: no blocks");
    return blocks.front().src_nodes;
}

std::uint64_t
MicroBatch::structureBytes() const
{
    std::uint64_t total = 0;
    for (const Block &block : blocks)
        total += block.structureBytes();
    return total;
}

std::uint64_t
MicroBatch::totalNodeCount() const
{
    std::uint64_t total = 0;
    for (const Block &block : blocks)
        total += block.numSrc();
    return total;
}

void
MicroBatch::validateChain() const
{
    for (const Block &block : blocks)
        block.validate();
    for (std::size_t l = 0; l + 1 < blocks.size(); ++l) {
        const Block &lower = blocks[l];
        const Block &upper = blocks[l + 1];
        checkInternal(upper.src_nodes.size() <= lower.src_nodes.size(),
                      "MicroBatch: upper layer wider than lower");
        // The upper layer's inputs must be exactly the lower layer's
        // destination prefix.
        checkInternal(lower.num_dst == upper.src_nodes.size(),
                      "MicroBatch: layer chaining size mismatch");
        for (NodeId i = 0; i < upper.src_nodes.size(); ++i) {
            checkInternal(upper.src_nodes[i] == lower.src_nodes[i],
                          "MicroBatch: layer chaining id mismatch");
        }
    }
}

} // namespace buffalo::sampling
