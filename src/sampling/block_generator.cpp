#include "sampling/block_generator.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/names.h"
#include "util/errors.h"

namespace buffalo::sampling {

namespace {

/**
 * Assembles one Block from per-destination neighbor rows given in
 * subgraph-local ids. @p dst_locals become the destination prefix; new
 * sources are appended in first-seen order. The returned block's
 * src_nodes hold *subgraph-local* ids; the caller translates to global
 * ids at the end.
 */
Block
assembleBlock(const NodeList &dst_locals,
              const std::vector<NodeList> &rows)
{
    Block block;
    block.num_dst = static_cast<NodeId>(dst_locals.size());
    block.src_nodes = dst_locals;
    block.offsets.resize(dst_locals.size() + 1, 0);

    std::unordered_map<NodeId, NodeId> to_block;
    to_block.reserve(dst_locals.size() * 2);
    for (NodeId i = 0; i < dst_locals.size(); ++i)
        to_block.emplace(dst_locals[i], i);

    EdgeIndex total = 0;
    for (const auto &row : rows)
        total += row.size();
    block.neighbors.reserve(total);

    for (std::size_t i = 0; i < rows.size(); ++i) {
        for (NodeId nbr : rows[i]) {
            auto [it, inserted] = to_block.emplace(
                nbr, static_cast<NodeId>(block.src_nodes.size()));
            if (inserted)
                block.src_nodes.push_back(nbr);
            block.neighbors.push_back(it->second);
        }
        block.offsets[i + 1] = block.neighbors.size();
    }
    return block;
}

/** Translates block.src_nodes from subgraph-local ids to global ids. */
void
translateToGlobal(MicroBatch &mb, const SampledSubgraph &sg)
{
    for (Block &block : mb.blocks)
        for (NodeId &id : block.src_nodes)
            id = sg.globalId(id);
}

void
checkOutputs(const SampledSubgraph &sg, const NodeList &output_locals)
{
    for (NodeId local : output_locals)
        checkArgument(local < sg.numSeeds(),
                      "BlockGenerator: output id is not a seed");
}

void
charge(util::PhaseTimer *timer, Phase phase, util::StopWatch &watch)
{
    if (timer)
        timer->add(phaseName(phase), watch.seconds());
    watch.reset();
}

/**
 * Per-thread first-seen filter for one chunk of destinations
 * (parallel block construction, phase A). Epoch-stamped so a worker
 * that processes several chunks reuses its allocation with an O(1)
 * reset between chunks.
 */
struct ChunkDedup
{
    std::vector<std::uint64_t> stamp;
    std::uint64_t epoch = 0;

    void
    beginChunk(std::size_t id_space)
    {
        if (stamp.size() < id_space) {
            stamp.assign(id_space, 0);
            epoch = 0;
        }
        ++epoch;
    }
};

ChunkDedup &
chunkDedup()
{
    static thread_local ChunkDedup dedup;
    return dedup;
}

/** Per-layer block size telemetry (one histogram entry per block). */
void
recordBlockSizes(const MicroBatch &mb)
{
    obs::MetricsRegistry &m = obs::metrics();
    std::uint64_t nodes = 0, edges = 0;
    for (const Block &block : mb.blocks) {
        m.histogram(obs::names::kHistBlockgenLayerNodes)
            .add(static_cast<double>(block.src_nodes.size()));
        m.histogram(obs::names::kHistBlockgenLayerEdges)
            .add(static_cast<double>(block.neighbors.size()));
        nodes += block.src_nodes.size();
        edges += block.neighbors.size();
    }
    m.counter(obs::names::kCtrBlockgenBlocks).add(mb.blocks.size());
    m.counter(obs::names::kCtrBlockgenNodes).add(nodes);
    m.counter(obs::names::kCtrBlockgenEdges).add(edges);
}

} // namespace

FastBlockGenerator::FastBlockGenerator(util::ThreadPool *pool)
    : FastBlockGenerator(pool, Grain{})
{
}

FastBlockGenerator::FastBlockGenerator(util::ThreadPool *pool,
                                       Grain grain)
    : pool_(pool), grain_(grain)
{
    checkArgument(grain_.parallel_dst_threshold >= 1 &&
                      grain_.min_chunk >= 1 &&
                      grain_.degree_grain >= 1,
                  "FastBlockGenerator: grain fields must be >= 1");
}

MicroBatch
FastBlockGenerator::generate(const SampledSubgraph &sg,
                             const NodeList &output_locals,
                             util::PhaseTimer *timer) const
{
    checkOutputs(sg, output_locals);
    obs::Span span(obs::names::kSpanBlockgenFast);
    util::ThreadPool &pool =
        pool_ ? *pool_ : util::ThreadPool::global();

    MicroBatch mb;
    mb.blocks.resize(sg.numLayers());

    // First-seen dedup over subgraph-local ids as an epoch-stamped
    // flat table (allocated once per call, O(1) reset per layer):
    // seen[local] == epoch marks membership, to_block[local] holds
    // the block-local id. Replaces the per-layer unordered_map — a
    // direct array probe per edge instead of a hash — and doubles as
    // the shared stitch table of the parallel path.
    const std::size_t id_space = sg.nodes().size();
    std::vector<std::uint32_t> seen(id_space, 0);
    std::vector<NodeId> to_block(id_space, 0);
    std::uint32_t epoch = 0;

    util::StopWatch watch;
    NodeList dst = output_locals;
    for (int layer = sg.numLayers() - 1; layer >= 0; --layer) {
        const CsrGraph &adjacency = sg.layerAdjacency(layer);

        // Connection check (paper §IV-E): neighbor tracking is a
        // single contiguous CSR-row read per destination — no
        // rechecking against the parent graph. The offsets (degree
        // prefix sums) are computed in parallel at the node level when
        // more than one worker is available; one core runs the loop
        // directly since fan-out overhead would dominate.
        Block &block = mb.blocks[layer];
        block.num_dst = static_cast<NodeId>(dst.size());
        block.offsets.resize(dst.size() + 1, 0);
        const bool fan_out =
            pool.size() > 1 &&
            dst.size() > grain_.parallel_dst_threshold;
        if (fan_out) {
            // Grain hint: a degree lookup is a couple of loads, so
            // chunks below ~1k nodes cost more to enqueue than to run
            // — and when this runs inside a prefetcher worker the
            // nested-call cap keeps the fan-out at the worker count.
            util::ParallelForOptions opts;
            opts.grain = grain_.degree_grain;
            pool.parallelFor(0, dst.size(), opts, [&](std::size_t i) {
                block.offsets[i + 1] = adjacency.degree(dst[i]);
            });
        } else {
            for (std::size_t i = 0; i < dst.size(); ++i)
                block.offsets[i + 1] = adjacency.degree(dst[i]);
        }
        for (std::size_t i = 0; i < dst.size(); ++i)
            block.offsets[i + 1] += block.offsets[i];
        charge(timer, Phase::ConnectionCheck, watch);

        // Block construction: append new sources in first-seen order
        // while streaming the CSR rows straight into the block.
        ++epoch;
        block.src_nodes = dst;
        for (NodeId i = 0; i < dst.size(); ++i) {
            seen[dst[i]] = epoch;
            to_block[dst[i]] = i;
        }
        if (!fan_out) {
            block.neighbors.reserve(block.offsets.back());
            for (std::size_t i = 0; i < dst.size(); ++i) {
                for (NodeId nbr : adjacency.neighbors(dst[i])) {
                    if (seen[nbr] != epoch) {
                        seen[nbr] = epoch;
                        to_block[nbr] = static_cast<NodeId>(
                            block.src_nodes.size());
                        block.src_nodes.push_back(nbr);
                    }
                    block.neighbors.push_back(to_block[nbr]);
                }
            }
        } else {
            // Parallel construction in three phases, byte-identical
            // to the serial first-seen order at any chunk or thread
            // count.
            //
            // Phase A (parallel): each chunk of destinations copies
            // its CSR rows into its owned neighbors range as raw
            // local ids and collects, in within-chunk first-seen
            // order, the candidate sources that are not destinations
            // (the shared table holds only the dst seeds here, so
            // reads race with nothing).
            block.neighbors.resize(block.offsets.back());
            const std::size_t chunk_size = std::max<std::size_t>(
                grain_.min_chunk, dst.size() / (pool.size() * 4));
            const std::size_t num_chunks =
                (dst.size() + chunk_size - 1) / chunk_size;
            std::vector<NodeList> candidates(num_chunks);
            util::ParallelForOptions opts;
            opts.grain = 1;
            pool.parallelFor(
                0, num_chunks, opts, [&](std::size_t c) {
                    const std::size_t d0 = c * chunk_size;
                    const std::size_t d1 =
                        std::min(dst.size(), d0 + chunk_size);
                    ChunkDedup &local = chunkDedup();
                    local.beginChunk(id_space);
                    NodeList &out = candidates[c];
                    EdgeIndex e = block.offsets[d0];
                    for (std::size_t i = d0; i < d1; ++i) {
                        for (NodeId nbr :
                             adjacency.neighbors(dst[i])) {
                            block.neighbors[e++] = nbr;
                            if (seen[nbr] == epoch)
                                continue; // a destination
                            if (local.stamp[nbr] == local.epoch)
                                continue; // already a candidate
                            local.stamp[nbr] = local.epoch;
                            out.push_back(nbr);
                        }
                    }
                });
            // Phase B (serial stitch): walk chunks ascending and
            // append unseen candidates. The first global occurrence
            // of any id lies in the earliest chunk that saw it, at
            // its first within-chunk position — so this append order
            // IS the serial first-seen order, for any chunking.
            for (const NodeList &cands : candidates) {
                for (NodeId nbr : cands) {
                    if (seen[nbr] != epoch) {
                        seen[nbr] = epoch;
                        to_block[nbr] = static_cast<NodeId>(
                            block.src_nodes.size());
                        block.src_nodes.push_back(nbr);
                    }
                }
            }
            // Phase C (parallel): map raw local ids to block ids;
            // the table is read-only now and every edge has exactly
            // one owner.
            pool.parallelFor(
                0, num_chunks, opts, [&](std::size_t c) {
                    const std::size_t d0 = c * chunk_size;
                    const std::size_t d1 =
                        std::min(dst.size(), d0 + chunk_size);
                    for (EdgeIndex e = block.offsets[d0];
                         e < block.offsets[d1]; ++e)
                        block.neighbors[e] =
                            to_block[block.neighbors[e]];
                });
        }
        dst = block.src_nodes; // subgraph-local ids
        charge(timer, Phase::BlockConstruction, watch);
    }
    translateToGlobal(mb, sg);
    charge(timer, Phase::BlockConstruction, watch);
    recordBlockSizes(mb);
    return mb;
}

MicroBatch
BaselineBlockGenerator::generate(const SampledSubgraph &sg,
                                 const NodeList &output_locals,
                                 util::PhaseTimer *timer) const
{
    checkOutputs(sg, output_locals);
    obs::Span span(obs::names::kSpanBlockgenBaseline);
    const CsrGraph &parent = sg.parent();

    MicroBatch mb;
    mb.blocks.resize(sg.numLayers());

    util::StopWatch watch;
    NodeList dst = output_locals;
    for (int layer = sg.numLayers() - 1; layer >= 0; --layer) {
        const CsrGraph &adjacency = sg.layerAdjacency(layer);

        // Repeated connection check (the redundant work Buffalo's
        // fast path avoids, paper §III/§IV-E): the baseline does not
        // keep per-node sampled rows, so for every micro-batch it
        // re-derives this layer's dependency structure — materializing
        // the micro-batch cone's sampled-edge set, then walking each
        // destination's FULL parent-graph neighbor list and probing
        // which of those edges sampling selected.
        std::unordered_set<std::uint64_t> sampled_edges;
        for (NodeId u : dst) {
            for (NodeId v : adjacency.neighbors(u)) {
                sampled_edges.insert(
                    (static_cast<std::uint64_t>(u) << 32) | v);
            }
        }

        std::vector<NodeList> rows(dst.size());
        for (std::size_t i = 0; i < dst.size(); ++i) {
            const NodeId global = sg.globalId(dst[i]);
            NodeList &row = rows[i];
            for (NodeId parent_nbr : parent.neighbors(global)) {
                const NodeId local = sg.tryLocalId(parent_nbr);
                if (local == static_cast<NodeId>(-1))
                    continue; // neighbor not in the batch at all
                const std::uint64_t key =
                    (static_cast<std::uint64_t>(dst[i]) << 32) |
                    local;
                if (sampled_edges.count(key))
                    row.push_back(local);
            }
        }
        charge(timer, Phase::ConnectionCheck, watch);

        mb.blocks[layer] = assembleBlock(dst, rows);
        dst = mb.blocks[layer].src_nodes;
        charge(timer, Phase::BlockConstruction, watch);
    }
    translateToGlobal(mb, sg);
    charge(timer, Phase::BlockConstruction, watch);
    recordBlockSizes(mb);
    return mb;
}

} // namespace buffalo::sampling
