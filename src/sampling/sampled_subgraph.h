/**
 * @file
 * Per-iteration neighbor sampling.
 *
 * One training iteration samples a subgraph ("batch") from the input
 * graph: for every node reachable within L hops of the seeds, up to
 * fanout[l] in-neighbors are drawn per layer. The SampledSubgraph keeps
 * the per-layer sampled adjacency in CSR so that block generation for
 * *any subset* of the seeds (Buffalo's micro-batches) can read neighbor
 * rows directly instead of re-checking connectivity against the parent
 * graph — the key to the fast block generator of paper §IV-E.
 */
#pragma once

#include <unordered_map>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"
#include "util/rng.h"

namespace buffalo::sampling {

using graph::CsrGraph;
using graph::EdgeIndex;
using graph::NodeId;
using graph::NodeList;

/** The result of sampling one batch. Node ids are *local* (0..n-1). */
class SampledSubgraph
{
  public:
    /** The graph this batch was sampled from. */
    const CsrGraph &parent() const { return *parent_; }

    /** Seed (output) nodes, in local ids 0..numSeeds()-1. */
    NodeId numSeeds() const { return num_seeds_; }

    /** All nodes touched by the batch; index is the local id. */
    const NodeList &nodes() const { return nodes_; }

    /** Global id for @p local. */
    NodeId globalId(NodeId local) const { return nodes_[local]; }

    /** Local id for @p global; throws NotFound if absent. */
    NodeId localId(NodeId global) const;

    /** Local id for @p global, or -1 (as NodeId) when absent. */
    NodeId tryLocalId(NodeId global) const;

    /** Number of GNN layers (== fanouts.size()). */
    int numLayers() const { return static_cast<int>(layers_.size()); }

    /**
     * Sampled adjacency for layer @p layer (0 = input-most layer,
     * numLayers()-1 = the seed layer). Rows are local ids; nodes that
     * are not destinations at this layer have empty rows.
     */
    const CsrGraph &layerAdjacency(int layer) const;

    /** Fanout used at @p layer (same indexing as layerAdjacency). */
    int fanout(int layer) const { return fanouts_[layer]; }

    /** All fanouts, input-most layer first. */
    const std::vector<int> &fanouts() const { return fanouts_; }

    /** Bytes held by the sampled CSR structures. */
    std::uint64_t memoryBytes() const;

  private:
    friend class NeighborSampler;

    const CsrGraph *parent_ = nullptr;
    NodeId num_seeds_ = 0;
    NodeList nodes_;
    std::unordered_map<NodeId, NodeId> to_local_;
    std::vector<int> fanouts_;
    std::vector<CsrGraph> layers_;
};

/**
 * Fanout-based uniform neighbor sampler.
 *
 * Fanout convention matches the paper's "cut-off degree for 1-hop and
 * 2-hop neighbors are 25 and 10": fanouts are given input-most layer
 * first, so a 2-layer model with fanouts {10, 25} samples 25 neighbors
 * per seed at the top layer and 10 at the input layer.
 */
class NeighborSampler
{
  public:
    /** Creates a sampler with per-layer @p fanouts (input-most first). */
    explicit NeighborSampler(std::vector<int> fanouts);

    /** Number of layers this sampler expands. */
    int numLayers() const { return static_cast<int>(fanouts_.size()); }

    /**
     * Samples the batch subgraph for @p seeds. Seeds must be unique.
     * Seeds receive local ids 0..seeds.size()-1 in order.
     */
    SampledSubgraph sample(const CsrGraph &graph, const NodeList &seeds,
                           util::Rng &rng) const;

  private:
    std::vector<int> fanouts_;
};

} // namespace buffalo::sampling
