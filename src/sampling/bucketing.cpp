#include "sampling/bucketing.h"

#include <algorithm>
#include <map>

namespace buffalo::sampling {

namespace {

BucketList
bucketsFromDegrees(const std::vector<EdgeIndex> &degrees,
                   const NodeList &ids)
{
    std::map<EdgeIndex, NodeList> by_degree;
    for (std::size_t i = 0; i < ids.size(); ++i)
        by_degree[degrees[i]].push_back(ids[i]);

    BucketList buckets;
    buckets.reserve(by_degree.size());
    for (auto &[degree, members] : by_degree)
        buckets.push_back({degree, std::move(members)});
    return buckets;
}

} // namespace

BucketList
bucketizeBlock(const Block &block)
{
    std::vector<EdgeIndex> degrees(block.numDst());
    NodeList ids(block.numDst());
    for (NodeId dst = 0; dst < block.numDst(); ++dst) {
        degrees[dst] = block.degree(dst);
        ids[dst] = dst;
    }
    return bucketsFromDegrees(degrees, ids);
}

BucketList
bucketizeSeeds(const SampledSubgraph &sg)
{
    const CsrGraph &top =
        sg.layerAdjacency(sg.numLayers() - 1);
    std::vector<EdgeIndex> degrees(sg.numSeeds());
    NodeList ids(sg.numSeeds());
    for (NodeId seed = 0; seed < sg.numSeeds(); ++seed) {
        degrees[seed] = top.degree(seed);
        ids[seed] = seed;
    }
    return bucketsFromDegrees(degrees, ids);
}

int
findExplosionBucket(const BucketList &buckets, double threshold)
{
    if (buckets.size() < 2)
        return -1;
    // The cut-off bucket is the highest-degree one.
    const std::size_t last = buckets.size() - 1;
    double other_total = 0.0;
    for (std::size_t i = 0; i < last; ++i)
        other_total += buckets[i].volume();
    const double other_mean =
        other_total / static_cast<double>(last);
    if (static_cast<double>(buckets[last].volume()) >
        threshold * other_mean) {
        return static_cast<int>(last);
    }
    return -1;
}

} // namespace buffalo::sampling
