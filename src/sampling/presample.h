/**
 * @file
 * Startup presample pass: measure per-node sample frequency.
 *
 * FGNN/SamGraph's headline caching result is that the best predictor
 * of which feature rows a cache should hold is not a static graph
 * property (degree) but the *observed* frequency with which the real
 * sampler touches each node on the real dataset. This pass runs the
 * production NeighborSampler over a configurable number of
 * micro-batches drawn from the training-seed pool (or all nodes, for
 * serving) and counts how often every node appears in the sampled
 * cones. The resulting frequency table feeds
 * pipeline::PresampleFrequencyPolicy.
 *
 * Determinism contract: the pass owns a private Rng derived from
 * PresampleOptions::seed, so running it never perturbs the training
 * Rng stream — serial/pipelined loss parity is unaffected by whether
 * a presample ran. Two passes with equal options over the same graph
 * produce identical tables.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"

namespace buffalo::sampling {

/** Salt XORed into the run seed to derive the presample Rng stream. */
inline constexpr std::uint64_t kPresampleSeedSalt = 0xF5EEDF00Dull;

/** Knobs for one presample pass. */
struct PresampleOptions
{
    /** Micro-batches to sample; 0 disables the pass (empty table). */
    int num_batches = 8;
    /** Seeds per micro-batch (match the training batch size). */
    std::size_t batch_size = 256;
    /** Seed for the pass's private Rng (salt in before passing). */
    std::uint64_t seed = 42;
};

/** What one presample pass measured. */
struct PresampleResult
{
    /** Per-node occurrence count across all sampled cones. */
    std::vector<std::uint64_t> frequency;
    /** Micro-batches actually sampled. */
    int batches = 0;
    /** Total node occurrences counted (sum of frequency). */
    std::uint64_t node_visits = 0;
    /** Wall-clock cost of the pass. */
    double seconds = 0.0;
};

/**
 * Runs the presample pass over @p graph with @p fanouts.
 *
 * Batches are drawn without replacement from @p seed_pool (shuffled;
 * the pool is re-shuffled and reused when num_batches * batch_size
 * exceeds it). An empty pool means "all nodes" — the serving-side
 * default, where any node can arrive as a request seed.
 */
PresampleResult presampleFrequencies(const graph::CsrGraph &graph,
                                     const graph::NodeList &seed_pool,
                                     const std::vector<int> &fanouts,
                                     const PresampleOptions &options);

} // namespace buffalo::sampling
