/**
 * @file
 * Padding-based memory accounting (paper §II-C): the PyG-flavored
 * baseline pads every destination's neighbor list to the maximum
 * sampled degree of its block instead of degree-bucketing, wasting
 * memory and compute on the padding.
 */
#pragma once

#include "nn/memory_model.h"
#include "sampling/block.h"

namespace buffalo::baselines {

/**
 * Activation bytes of @p mb when every destination is padded to its
 * block's maximum sampled degree (no degree bucketing).
 */
std::uint64_t paddedMicroBatchBytes(const nn::MemoryModel &model,
                                    const sampling::MicroBatch &mb);

/** Forward+backward FLOPs under the same padding scheme. */
double paddedMicroBatchFlops(const nn::MemoryModel &model,
                             const sampling::MicroBatch &mb);

} // namespace buffalo::baselines
