#include "baselines/padding.h"

namespace buffalo::baselines {

namespace {

graph::EdgeIndex
blockMaxDegree(const sampling::Block &block)
{
    graph::EdgeIndex max_degree = 0;
    for (graph::NodeId dst = 0; dst < block.numDst(); ++dst)
        max_degree = std::max(max_degree, block.degree(dst));
    return max_degree;
}

} // namespace

std::uint64_t
paddedMicroBatchBytes(const nn::MemoryModel &model,
                      const sampling::MicroBatch &mb)
{
    std::uint64_t total =
        model.inputFeatureBytes(mb.inputNodes().size());
    for (int layer = 0; layer < mb.numLayers(); ++layer) {
        const auto &block = mb.blocks[layer];
        const graph::EdgeIndex padded_edges =
            static_cast<graph::EdgeIndex>(block.numDst()) *
            blockMaxDegree(block);
        total += model.layerActivationBytesFromCounts(
            layer, block.numDst(), padded_edges,
            block.numDst() + padded_edges);
    }
    const auto &top = mb.blocks.back();
    total += static_cast<std::uint64_t>(
        2.0 * top.numDst() * model.config().num_classes * 4.0);
    return total;
}

double
paddedMicroBatchFlops(const nn::MemoryModel &model,
                      const sampling::MicroBatch &mb)
{
    double total = 0.0;
    for (int layer = 0; layer < mb.numLayers(); ++layer) {
        const auto &block = mb.blocks[layer];
        total += model.bucketFlops(layer, block.numDst(),
                                   blockMaxDegree(block));
    }
    return total;
}

} // namespace buffalo::baselines
