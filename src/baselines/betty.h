/**
 * @file
 * Betty baseline (Yang et al., ASPLOS'23) — the paper's main
 * comparison point.
 *
 * Betty partitions a batch at the output layer by (1) building a
 * redundancy-embedded graph (REG) over the output nodes, whose edge
 * weights count shared sampled neighbors, then (2) running METIS on the
 * REG so the partitioner minimizes cross-micro-batch redundancy. Both
 * steps are expensive — REG construction embeds node-dependency
 * information explicitly and METIS is multilevel — which is exactly the
 * overhead Buffalo's bucket-level scheduling removes (paper Figs. 5/11).
 *
 * Betty cannot process output nodes with zero in-edges (paper Fig. 11,
 * "no data" for OGBN-papers); partition() reproduces that by throwing
 * BettyUnsupported.
 */
#pragma once

#include <vector>

#include "partition/metis_like.h"
#include "sampling/sampled_subgraph.h"
#include "util/errors.h"

namespace buffalo::baselines {

using sampling::NodeList;
using sampling::SampledSubgraph;

/** Raised when Betty hits an input it cannot handle. */
class BettyUnsupported : public Error
{
  public:
    explicit BettyUnsupported(const std::string &what) : Error(what) {}
};

/** Timing breakdown of one Betty partitioning call (Fig. 11 phases). */
struct BettyPhases
{
    double reg_construction_seconds = 0.0;
    double metis_seconds = 0.0;
};

/** Betty's batch-level partitioner. */
class BettyPartitioner
{
  public:
    /**
     * @param metis_options Options for the underlying MetisLike run.
     * @param pair_cap For a sampled neighbor shared by s output nodes,
     *        at most pair_cap * s REG edges are materialized (bounds
     *        the quadratic pair enumeration on hub neighbors).
     */
    explicit BettyPartitioner(
        const partition::MetisLikeOptions &metis_options = {},
        int pair_cap = 8);

    /**
     * Splits the batch's output nodes into @p num_parts seed groups.
     * @return one NodeList of subgraph-local seed ids per part (empty
     *         parts removed).
     * @throws BettyUnsupported if any seed has zero sampled in-edges.
     */
    std::vector<NodeList> partition(const SampledSubgraph &sg,
                                    int num_parts);

    /** Phase timings of the most recent partition() call. */
    const BettyPhases &lastPhases() const { return phases_; }

    /** Builds the REG (exposed for tests). */
    partition::WeightedGraph buildReg(const SampledSubgraph &sg) const;

  private:
    partition::MetisLikeOptions metis_options_;
    int pair_cap_;
    BettyPhases phases_;
};

} // namespace buffalo::baselines
