#include "baselines/betty.h"

#include <algorithm>
#include <unordered_map>

#include "graph/coo.h"
#include "util/rng.h"
#include "util/timer.h"

namespace buffalo::baselines {

using graph::NodeId;
using partition::WeightedGraph;

BettyPartitioner::BettyPartitioner(
    const partition::MetisLikeOptions &metis_options, int pair_cap)
    : metis_options_(metis_options), pair_cap_(pair_cap)
{
    checkArgument(pair_cap_ >= 1,
                  "BettyPartitioner: pair_cap must be >= 1");
}

WeightedGraph
BettyPartitioner::buildReg(const SampledSubgraph &sg) const
{
    const NodeId num_seeds = sg.numSeeds();
    const auto &top = sg.layerAdjacency(sg.numLayers() - 1);

    // Betty requires every output node to have at least one in-edge;
    // zero-in-edge nodes have no place in the REG.
    for (NodeId seed = 0; seed < num_seeds; ++seed) {
        if (top.degree(seed) == 0) {
            throw BettyUnsupported(
                "Betty cannot process output nodes with zero in-edges "
                "(seed " + std::to_string(sg.globalId(seed)) + ")");
        }
    }

    // Inverted index: sampled neighbor -> seeds that reference it.
    std::unordered_map<NodeId, NodeList> seeds_of_neighbor;
    for (NodeId seed = 0; seed < num_seeds; ++seed)
        for (NodeId nbr : top.neighbors(seed))
            seeds_of_neighbor[nbr].push_back(seed);

    // Edge weights: number of shared sampled neighbors per seed pair.
    // Hub neighbors shared by s seeds would create s*(s-1)/2 pairs;
    // Betty's embedding cost is intentionally heavy, but we bound it at
    // pair_cap * s sampled pairs per neighbor to avoid quadratic
    // blowup on the simulator host.
    std::unordered_map<std::uint64_t, std::uint32_t> pair_weight;
    util::Rng rng(metis_options_.seed ^ 0xBE77F);
    auto pair_key = [](NodeId a, NodeId b) {
        if (a > b)
            std::swap(a, b);
        return (static_cast<std::uint64_t>(a) << 32) | b;
    };
    for (const auto &[nbr, seeds] : seeds_of_neighbor) {
        const std::size_t s = seeds.size();
        if (s < 2)
            continue;
        const std::size_t full_pairs = s * (s - 1) / 2;
        const std::size_t budget =
            static_cast<std::size_t>(pair_cap_) * s;
        if (full_pairs <= budget) {
            for (std::size_t i = 0; i < s; ++i)
                for (std::size_t j = i + 1; j < s; ++j)
                    ++pair_weight[pair_key(seeds[i], seeds[j])];
        } else {
            for (std::size_t p = 0; p < budget; ++p) {
                const std::size_t i = rng.nextBounded(s);
                std::size_t j = rng.nextBounded(s - 1);
                if (j >= i)
                    ++j;
                ++pair_weight[pair_key(seeds[i], seeds[j])];
            }
        }
    }

    // Materialize the REG as a symmetric weighted CSR.
    graph::CooBuilder builder(num_seeds);
    std::vector<std::uint32_t> weights_by_edge;
    // First build CSR rows; weights assigned after sorting via map.
    for (const auto &[key, weight] : pair_weight) {
        const NodeId a = static_cast<NodeId>(key >> 32);
        const NodeId b = static_cast<NodeId>(key & 0xFFFFFFFFu);
        builder.addUndirectedEdge(a, b);
        (void)weight;
    }
    WeightedGraph reg;
    reg.graph = builder.toCsr(/*dedup=*/true, /*drop_self_loops=*/true);
    reg.node_weights.assign(num_seeds, 1);
    reg.edge_weights.resize(reg.graph.numEdges(), 1);
    // Node weight = seed degree (heavier seeds cost more memory).
    for (NodeId seed = 0; seed < num_seeds; ++seed) {
        reg.node_weights[seed] =
            static_cast<std::uint32_t>(1 + top.degree(seed));
    }
    // Assign pair weights onto the CSR edges.
    for (NodeId dst = 0; dst < num_seeds; ++dst) {
        const auto &offsets = reg.graph.offsets();
        for (graph::EdgeIndex e = offsets[dst]; e < offsets[dst + 1];
             ++e) {
            const NodeId src = reg.graph.targets()[e];
            auto it = pair_weight.find(pair_key(src, dst));
            if (it != pair_weight.end())
                reg.edge_weights[e] = it->second;
        }
    }
    return reg;
}

std::vector<NodeList>
BettyPartitioner::partition(const SampledSubgraph &sg, int num_parts)
{
    checkArgument(num_parts >= 1,
                  "BettyPartitioner: need >= 1 part");
    phases_ = BettyPhases{};

    util::StopWatch watch;
    WeightedGraph reg = buildReg(sg);
    phases_.reg_construction_seconds = watch.seconds();

    watch.reset();
    partition::MetisLike metis(metis_options_);
    partition::Assignment assignment = metis.partition(reg, num_parts);
    phases_.metis_seconds = watch.seconds();

    std::vector<NodeList> parts(num_parts);
    for (NodeId seed = 0; seed < sg.numSeeds(); ++seed)
        parts[assignment[seed]].push_back(seed);
    std::erase_if(parts,
                  [](const NodeList &part) { return part.empty(); });
    return parts;
}

} // namespace buffalo::baselines
