/**
 * @file
 * The simulated accelerator: a named pairing of DeviceAllocator (memory)
 * and CostModel (time) plus an accumulating simulated clock. Substitutes
 * for the paper's RTX 6000 / A100 GPUs (see DESIGN.md).
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "device/cost_model.h"
#include "device/memory.h"

namespace buffalo::device {

/** One simulated accelerator with its own memory and clock. */
class Device
{
  public:
    /** Creates a device with @p capacity_bytes and default cost model. */
    Device(std::string name, std::uint64_t capacity_bytes);

    /** Creates a device with an explicit cost model. */
    Device(std::string name, std::uint64_t capacity_bytes,
           const CostModelParams &params);

    const std::string &name() const { return name_; }

    /** Allocation observer to pass when allocating "on this device". */
    DeviceAllocator &allocator() { return allocator_; }
    const DeviceAllocator &allocator() const { return allocator_; }

    const CostModel &costModel() const { return cost_model_; }

    /** Charges @p flops of kernel work to the compute clock. */
    void chargeCompute(double flops, std::uint64_t kernel_count = 1);

    /** Charges a host->device transfer of @p bytes. */
    void chargeTransfer(std::uint64_t bytes);

    /**
     * Records @p bytes of host->device transfer that was *avoided*
     * (e.g. served from a device-resident feature cache). No time is
     * charged; the byte counters let benches report traffic saved.
     */
    void noteTransferSaved(std::uint64_t bytes);

    /** Total bytes charged via chargeTransfer(). */
    std::uint64_t transferredBytes() const { return transferred_bytes_; }

    /** Total bytes recorded via noteTransferSaved(). */
    std::uint64_t transferSavedBytes() const
    {
        return transfer_saved_bytes_;
    }

    /** Charges arbitrary simulated seconds to the compute clock. */
    void chargeComputeSeconds(double seconds);

    /** Accumulated simulated kernel time, seconds. */
    double computeSeconds() const { return compute_seconds_; }

    /** Accumulated simulated transfer time, seconds. */
    double transferSeconds() const { return transfer_seconds_; }

    /** computeSeconds() + transferSeconds(). */
    double totalSeconds() const
    {
        return compute_seconds_ + transfer_seconds_;
    }

    /**
     * Zeroes both clocks and the transfer byte counters (memory
     * watermark is separate; see allocator).
     */
    void resetClocks();

  private:
    std::string name_;
    DeviceAllocator allocator_;
    CostModel cost_model_;
    double compute_seconds_ = 0.0;
    double transfer_seconds_ = 0.0;
    std::uint64_t transferred_bytes_ = 0;
    std::uint64_t transfer_saved_bytes_ = 0;
};

/**
 * A set of identical devices for simulated data-parallel training
 * (paper §V-G), with an all-reduce time model over the P2P link.
 */
class DeviceGroup
{
  public:
    /** Creates @p count devices named "<prefix>:<i>". */
    DeviceGroup(int count, std::uint64_t capacity_bytes_each,
                const CostModelParams &params = {});

    int size() const { return static_cast<int>(devices_.size()); }

    Device &device(int i) { return *devices_.at(i); }
    const Device &device(int i) const { return *devices_.at(i); }

    /** Simulated seconds for one gradient all-reduce of @p bytes. */
    double allReduceSeconds(std::uint64_t bytes) const;

  private:
    std::vector<std::unique_ptr<Device>> devices_;
};

} // namespace buffalo::device
