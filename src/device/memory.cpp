#include "device/memory.h"

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "util/format.h"

namespace buffalo::device {

DeviceOom::DeviceOom(std::uint64_t requested, std::uint64_t in_use,
                     std::uint64_t capacity)
    : Error("device out of memory: requested " +
            util::formatBytes(requested) + " with " +
            util::formatBytes(in_use) + " in use of " +
            util::formatBytes(capacity) + " capacity"),
      requested_(requested), in_use_(in_use), capacity_(capacity)
{
}

DeviceAllocator::DeviceAllocator(std::uint64_t capacity_bytes)
    : capacity_(capacity_bytes)
{
}

void
DeviceAllocator::onAllocate(std::uint64_t bytes)
{
    util::MutexLock lock(mutex_);
    if (in_use_ + bytes > capacity_) {
        ++oom_count_;
        obs::metrics().counter(obs::names::kCtrDeviceOomEvents).add();
        // EventLog has its own mutex and never calls back into the
        // allocator, so emitting under mutex_ cannot invert locks.
        obs::eventLog()
            .event(obs::names::kEvDeviceOom)
            .field("requested_bytes", bytes)
            .field("in_use_bytes", in_use_)
            .field("capacity_bytes", capacity_);
        throw DeviceOom(bytes, in_use_, capacity_);
    }
    in_use_ += bytes;
    if (in_use_ > peak_) {
        peak_ = in_use_;
        // A relaxed CAS only on new watermarks — allocation stays
        // cheap on the (hot) non-watermark path.
        obs::metrics()
            .gauge(obs::names::kGaugeDevicePeakBytes)
            .setMax(static_cast<double>(peak_));
    }
}

void
DeviceAllocator::onFree(std::uint64_t bytes)
{
    util::MutexLock lock(mutex_);
    checkInternal(bytes <= in_use_,
                  "DeviceAllocator::onFree: freeing more than in use");
    in_use_ -= bytes;
}

void
DeviceAllocator::setCapacity(std::uint64_t capacity_bytes)
{
    util::MutexLock lock(mutex_);
    checkArgument(capacity_bytes >= in_use_,
                  "DeviceAllocator::setCapacity: capacity below usage");
    capacity_ = capacity_bytes;
}

} // namespace buffalo::device
