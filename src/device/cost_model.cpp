#include "device/cost_model.h"

#include "util/errors.h"

namespace buffalo::device {

double
CostModel::kernelSeconds(double flops) const
{
    checkArgument(flops >= 0, "CostModel::kernelSeconds: negative flops");
    const double effective =
        params_.flops_per_second * params_.gnn_efficiency;
    return params_.kernel_launch_seconds + flops / effective;
}

double
CostModel::kernelsSeconds(double flops, std::uint64_t kernel_count) const
{
    const double effective =
        params_.flops_per_second * params_.gnn_efficiency;
    return static_cast<double>(kernel_count) *
               params_.kernel_launch_seconds +
           flops / effective;
}

double
CostModel::transferSeconds(std::uint64_t bytes) const
{
    return params_.transfer_latency_seconds +
           static_cast<double>(bytes) /
               params_.transfer_bytes_per_second;
}

double
CostModel::allReduceSeconds(std::uint64_t bytes, int devices) const
{
    checkArgument(devices >= 1,
                  "CostModel::allReduceSeconds: need >= 1 device");
    if (devices == 1)
        return 0.0;
    const double n = static_cast<double>(devices);
    const double moved = 2.0 * (n - 1.0) / n * static_cast<double>(bytes);
    return params_.transfer_latency_seconds +
           moved / params_.p2p_bytes_per_second;
}

} // namespace buffalo::device
