#include "device/device.h"

#include "obs/metrics.h"
#include "obs/names.h"
#include "util/errors.h"

namespace buffalo::device {

Device::Device(std::string name, std::uint64_t capacity_bytes)
    : name_(std::move(name)), allocator_(capacity_bytes)
{
}

Device::Device(std::string name, std::uint64_t capacity_bytes,
               const CostModelParams &params)
    : name_(std::move(name)), allocator_(capacity_bytes),
      cost_model_(params)
{
}

void
Device::chargeCompute(double flops, std::uint64_t kernel_count)
{
    compute_seconds_ += cost_model_.kernelsSeconds(flops, kernel_count);
}

void
Device::chargeTransfer(std::uint64_t bytes)
{
    transfer_seconds_ += cost_model_.transferSeconds(bytes);
    transferred_bytes_ += bytes;
    obs::metrics().counter(obs::names::kCtrDeviceTransferBytes).add(bytes);
}

void
Device::noteTransferSaved(std::uint64_t bytes)
{
    transfer_saved_bytes_ += bytes;
    obs::metrics().counter(obs::names::kCtrDeviceTransferSavedBytes).add(bytes);
}

void
Device::chargeComputeSeconds(double seconds)
{
    checkArgument(seconds >= 0,
                  "Device::chargeComputeSeconds: negative time");
    compute_seconds_ += seconds;
}

void
Device::resetClocks()
{
    compute_seconds_ = 0.0;
    transfer_seconds_ = 0.0;
    transferred_bytes_ = 0;
    transfer_saved_bytes_ = 0;
}

DeviceGroup::DeviceGroup(int count, std::uint64_t capacity_bytes_each,
                         const CostModelParams &params)
{
    checkArgument(count >= 1, "DeviceGroup: need at least one device");
    for (int i = 0; i < count; ++i) {
        devices_.push_back(std::make_unique<Device>(
            "gpu:" + std::to_string(i), capacity_bytes_each, params));
    }
}

double
DeviceGroup::allReduceSeconds(std::uint64_t bytes) const
{
    return devices_.front()->costModel().allReduceSeconds(bytes, size());
}

} // namespace buffalo::device
