/**
 * @file
 * Capacity-limited tracking allocator — the memory half of the simulated
 * GPU. It observes every tensor allocation charged to the device, refuses
 * allocations past the configured capacity by throwing DeviceOom (exactly
 * how the paper's baselines fail in Figs. 2 and 10 / Table IV), and keeps
 * the peak watermark the evaluation reports as "CUDA memory cost".
 */
#pragma once

#include <cstdint>
#include <string>

#include "tensor/tensor.h"
#include "util/errors.h"

namespace buffalo::device {

/** Thrown when an allocation would exceed the device memory capacity. */
class DeviceOom : public Error
{
  public:
    DeviceOom(std::uint64_t requested, std::uint64_t in_use,
              std::uint64_t capacity);

    std::uint64_t requested() const { return requested_; }
    std::uint64_t inUse() const { return in_use_; }
    std::uint64_t capacity() const { return capacity_; }

  private:
    std::uint64_t requested_;
    std::uint64_t in_use_;
    std::uint64_t capacity_;
};

/**
 * Tracking allocator with a hard byte capacity.
 *
 * Thread-compatible, not thread-safe: the training loop is single-
 * threaded per device, matching one CUDA stream.
 */
class DeviceAllocator : public tensor::AllocationObserver
{
  public:
    /** Creates an allocator with @p capacity_bytes of "device" memory. */
    explicit DeviceAllocator(std::uint64_t capacity_bytes);

    void onAllocate(std::uint64_t bytes) override;
    void onFree(std::uint64_t bytes) override;

    /** Live bytes right now. */
    std::uint64_t bytesInUse() const { return in_use_; }

    /** High-water mark since construction or resetPeak(). */
    std::uint64_t peakBytes() const { return peak_; }

    /** Configured capacity. */
    std::uint64_t capacity() const { return capacity_; }

    /** Changes the capacity (must be >= bytesInUse()). */
    void setCapacity(std::uint64_t capacity_bytes);

    /** Resets the peak watermark to the current usage. */
    void resetPeak() { peak_ = in_use_; }

    /** Count of allocation refusals (OOMs thrown). */
    std::uint64_t oomCount() const { return oom_count_; }

  private:
    std::uint64_t capacity_;
    std::uint64_t in_use_ = 0;
    std::uint64_t peak_ = 0;
    std::uint64_t oom_count_ = 0;
};

} // namespace buffalo::device
