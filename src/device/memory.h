/**
 * @file
 * Capacity-limited tracking allocator — the memory half of the simulated
 * GPU. It observes every tensor allocation charged to the device, refuses
 * allocations past the configured capacity by throwing DeviceOom (exactly
 * how the paper's baselines fail in Figs. 2 and 10 / Table IV), and keeps
 * the peak watermark the evaluation reports as "CUDA memory cost".
 */
#pragma once

#include <cstdint>
#include <string>

#include "tensor/tensor.h"
#include "util/errors.h"
#include "util/thread_annotations.h"

namespace buffalo::device {

/** Thrown when an allocation would exceed the device memory capacity. */
class DeviceOom : public Error
{
  public:
    DeviceOom(std::uint64_t requested, std::uint64_t in_use,
              std::uint64_t capacity);

    std::uint64_t requested() const { return requested_; }
    std::uint64_t inUse() const { return in_use_; }
    std::uint64_t capacity() const { return capacity_; }

  private:
    std::uint64_t requested_;
    std::uint64_t in_use_;
    std::uint64_t capacity_;
};

/**
 * Tracking allocator with a hard byte capacity.
 *
 * Thread-safe: the accounting is guarded by an internal mutex, so the
 * watermark and OOM counters stay exact even when pipeline stages or
 * per-device worker threads charge the same allocator. (Each charge
 * is one short uncontended lock — allocation is per-tensor, not
 * per-element, so this is not a hot path.)
 */
class DeviceAllocator : public tensor::AllocationObserver
{
  public:
    /** Creates an allocator with @p capacity_bytes of "device" memory. */
    explicit DeviceAllocator(std::uint64_t capacity_bytes);

    void onAllocate(std::uint64_t bytes) override
        BUFFALO_EXCLUDES(mutex_);
    void onFree(std::uint64_t bytes) override BUFFALO_EXCLUDES(mutex_);

    /** Live bytes right now. */
    std::uint64_t
    bytesInUse() const BUFFALO_EXCLUDES(mutex_)
    {
        util::MutexLock lock(mutex_);
        return in_use_;
    }

    /** High-water mark since construction or resetPeak(). */
    std::uint64_t
    peakBytes() const BUFFALO_EXCLUDES(mutex_)
    {
        util::MutexLock lock(mutex_);
        return peak_;
    }

    /** Configured capacity. */
    std::uint64_t
    capacity() const BUFFALO_EXCLUDES(mutex_)
    {
        util::MutexLock lock(mutex_);
        return capacity_;
    }

    /** Changes the capacity (must be >= bytesInUse()). */
    void setCapacity(std::uint64_t capacity_bytes)
        BUFFALO_EXCLUDES(mutex_);

    /** Resets the peak watermark to the current usage. */
    void
    resetPeak() BUFFALO_EXCLUDES(mutex_)
    {
        util::MutexLock lock(mutex_);
        peak_ = in_use_;
    }

    /** Count of allocation refusals (OOMs thrown). */
    std::uint64_t
    oomCount() const BUFFALO_EXCLUDES(mutex_)
    {
        util::MutexLock lock(mutex_);
        return oom_count_;
    }

  private:
    mutable util::Mutex mutex_;
    std::uint64_t capacity_ BUFFALO_GUARDED_BY(mutex_);
    std::uint64_t in_use_ BUFFALO_GUARDED_BY(mutex_) = 0;
    std::uint64_t peak_ BUFFALO_GUARDED_BY(mutex_) = 0;
    std::uint64_t oom_count_ BUFFALO_GUARDED_BY(mutex_) = 0;
};

} // namespace buffalo::device
