/**
 * @file
 * Analytic timing model — the compute half of the simulated GPU.
 *
 * Host-side phases (partitioning, scheduling, block generation) run for
 * real and are measured with wall clocks; only the accelerator-side work
 * (kernels, PCIe transfers) is charged through this model. Defaults are
 * calibrated to the paper's RTX 6000 testbed. The figures the model
 * feeds compare *relative* times, which are insensitive to the absolute
 * constants (see DESIGN.md, "Substitutions").
 */
#pragma once

#include <cstdint>

namespace buffalo::device {

/** Tunable hardware constants of the simulated accelerator. */
struct CostModelParams
{
    /** Sustained fp32 throughput, FLOP/s (RTX 6000 ~ 16.3 TFLOPS). */
    double flops_per_second = 16.3e12;
    /** Effective host->device bandwidth, bytes/s (PCIe 3.0 x16). */
    double transfer_bytes_per_second = 12.0e9;
    /** Fixed kernel-launch overhead, seconds. */
    double kernel_launch_seconds = 10e-6;
    /** Fixed per-transfer latency, seconds. */
    double transfer_latency_seconds = 20e-6;
    /** Achieved fraction of peak FLOPs for irregular GNN kernels. */
    double gnn_efficiency = 0.25;
    /** Device->device bandwidth for multi-GPU collectives (PCIe P2P). */
    double p2p_bytes_per_second = 10.0e9;
};

/** Converts work (FLOPs, bytes) into simulated accelerator seconds. */
class CostModel
{
  public:
    CostModel() = default;
    explicit CostModel(const CostModelParams &params) : params_(params) {}

    const CostModelParams &params() const { return params_; }

    /** Seconds for one kernel performing @p flops fp32 operations. */
    double kernelSeconds(double flops) const;

    /** Seconds for @p kernel_count back-to-back kernels of @p flops. */
    double kernelsSeconds(double flops, std::uint64_t kernel_count) const;

    /** Seconds to move @p bytes host->device (or back). */
    double transferSeconds(std::uint64_t bytes) const;

    /**
     * Seconds for a ring all-reduce of @p bytes across @p devices
     * (2(n-1)/n * bytes over the slowest link).
     */
    double allReduceSeconds(std::uint64_t bytes, int devices) const;

  private:
    CostModelParams params_;
};

} // namespace buffalo::device
