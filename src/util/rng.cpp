#include "util/rng.h"

#include <cmath>
#include <unordered_set>

#include "util/errors.h"

namespace buffalo::util {

namespace {

/** SplitMix64 step, used only to expand the user seed into engine state. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : state_)
        word = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    checkArgument(bound > 0, "Rng::nextBounded: bound must be positive");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextInRange(std::int64_t lo, std::int64_t hi)
{
    checkArgument(lo <= hi, "Rng::nextInRange: lo must be <= hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

double
Rng::nextDouble()
{
    // 53 high bits -> uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::nextGaussian()
{
    if (have_spare_gaussian_) {
        have_spare_gaussian_ = false;
        return spare_gaussian_;
    }
    double u1 = 0.0;
    do {
        u1 = nextDouble();
    } while (u1 <= 1e-300);
    const double u2 = nextDouble();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double two_pi = 6.283185307179586;
    spare_gaussian_ = mag * std::sin(two_pi * u2);
    have_spare_gaussian_ = true;
    return mag * std::cos(two_pi * u2);
}

bool
Rng::nextBernoulli(double p)
{
    return nextDouble() < p;
}

std::vector<std::uint64_t>
Rng::sampleWithoutReplacement(std::uint64_t population, std::uint64_t count)
{
    if (count >= population) {
        std::vector<std::uint64_t> all(population);
        for (std::uint64_t i = 0; i < population; ++i)
            all[i] = i;
        shuffle(all);
        return all;
    }
    // Floyd's algorithm: for j in [population - count, population), pick a
    // uniform t in [0, j]; insert t unless taken, else insert j.
    std::unordered_set<std::uint64_t> taken;
    std::vector<std::uint64_t> result;
    result.reserve(count);
    for (std::uint64_t j = population - count; j < population; ++j) {
        std::uint64_t t = nextBounded(j + 1);
        if (taken.insert(t).second) {
            result.push_back(t);
        } else {
            taken.insert(j);
            result.push_back(j);
        }
    }
    return result;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xD1B54A32D192ED03ULL);
}

} // namespace buffalo::util
