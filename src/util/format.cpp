#include "util/format.h"

#include <cstdio>

namespace buffalo::util {

std::string
formatBytes(std::uint64_t bytes)
{
    const char *units[] = {"B", "KB", "MB", "GB", "TB"};
    double value = static_cast<double>(bytes);
    int unit = 0;
    while (value >= 1024.0 && unit < 4) {
        value /= 1024.0;
        ++unit;
    }
    char buf[64];
    if (unit == 0)
        std::snprintf(buf, sizeof(buf), "%llu B",
                      static_cast<unsigned long long>(bytes));
    else
        std::snprintf(buf, sizeof(buf), "%.2f %s", value, units[unit]);
    return buf;
}

std::string
formatPercent(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

std::string
formatSeconds(double seconds)
{
    char buf[64];
    if (seconds < 1e-3)
        std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
    else if (seconds < 1.0)
        std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
    return buf;
}

} // namespace buffalo::util
