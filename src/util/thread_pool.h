/**
 * @file
 * A fixed-size thread pool with a blocking parallel-for, used by the fast
 * block generator (node-level parallel neighbor tracking, paper §IV-E).
 */
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace buffalo::util {

/** Fixed-size worker pool; tasks are std::function<void()>. */
class ThreadPool
{
  public:
    /**
     * Creates a pool with @p num_threads workers. Zero selects the
     * hardware concurrency (at least 1).
     */
    explicit ThreadPool(std::size_t num_threads = 0);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool();

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /** Enqueues a task for asynchronous execution. */
    void submit(std::function<void()> task);

    /** Blocks until every submitted task has finished. */
    void wait();

    /**
     * Runs body(i) for i in [begin, end), splitting the range into
     * roughly equal chunks across the workers, and blocks until done.
     * Exceptions thrown by @p body propagate (the first one rethrown).
     */
    void parallelFor(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t)> &body);

    /** Returns a process-wide shared pool (lazily constructed). */
    static ThreadPool &global();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable task_available_;
    std::condition_variable all_done_;
    std::size_t in_flight_ = 0;
    bool stopping_ = false;
};

} // namespace buffalo::util
