/**
 * @file
 * A fixed-size thread pool with a blocking parallel-for, used by the fast
 * block generator (node-level parallel neighbor tracking, paper §IV-E).
 */
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace buffalo::util {

/** Fixed-size worker pool; tasks are std::function<void()>. */
class ThreadPool
{
  public:
    /**
     * Creates a pool with @p num_threads workers. Zero selects the
     * hardware concurrency (at least 1).
     */
    explicit ThreadPool(std::size_t num_threads = 0);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool();

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /** Enqueues a task for asynchronous execution. */
    void submit(std::function<void()> task);

    /** Blocks until every submitted task has finished. */
    void wait();

    /**
     * Runs body(i) for i in [begin, end), splitting the range into
     * roughly equal chunks across the workers, and blocks until done.
     *
     * An empty range (begin >= end) is a no-op: nothing is enqueued and
     * the call returns immediately without taking the queue lock.
     *
     * Exception-propagation contract: if one or more body(i) calls
     * throw, the *first* exception observed (by chunk completion order)
     * is captured and rethrown on the calling thread after every chunk
     * has finished; the remaining chunks still run to completion (there
     * is no cancellation). Exceptions never escape into workerLoop(),
     * so a throwing body cannot take down the pool. Tasks enqueued via
     * submit() must not throw — there is no caller to receive the
     * exception, so it would terminate the process.
     *
     * Nesting: parallelFor may be called from inside a pool task (e.g.
     * a submitted job that itself fans out). While waiting for its
     * chunks, the calling thread *helps* by draining other queued tasks,
     * so nested calls make progress even when every worker is busy and
     * cannot deadlock on pool capacity.
     */
    void parallelFor(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t)> &body);

    /** Returns a process-wide shared pool (lazily constructed). */
    static ThreadPool &global();

  private:
    void workerLoop();

    /**
     * Pops and runs one queued task on the calling thread, if any.
     * @return true if a task was executed.
     */
    bool runOneTask();

    /** Immutable after construction (joined, never mutated, later). */
    std::vector<std::thread> workers_;

    Mutex mutex_;
    std::condition_variable task_available_;
    std::condition_variable all_done_;
    std::queue<std::function<void()>> tasks_ BUFFALO_GUARDED_BY(mutex_);
    std::size_t in_flight_ BUFFALO_GUARDED_BY(mutex_) = 0;
    bool stopping_ BUFFALO_GUARDED_BY(mutex_) = false;
};

} // namespace buffalo::util
