/**
 * @file
 * A fixed-size thread pool with a blocking parallel-for, used by the fast
 * block generator (node-level parallel neighbor tracking, paper §IV-E).
 */
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace buffalo::util {

/**
 * Tuning hints for ThreadPool::parallelFor. Defaults reproduce the
 * historical behaviour (chunk count capped at 4x the worker count,
 * no minimum chunk size).
 */
struct ParallelForOptions
{
    /**
     * Minimum iterations per chunk. Ranges smaller than 2 * grain run
     * inline on the calling thread without touching the task queue,
     * so callers with tiny per-iteration work (e.g. micro-bucket
     * kernels) can opt out of dispatch overhead declaratively.
     */
    std::size_t grain = 1;
    /**
     * Upper bound on the number of chunks enqueued; 0 selects the
     * default (4x the worker count). Kernel-level callers pass their
     * own thread budget here so compute parallelism composes with the
     * pipeline instead of flooding the shared queue.
     */
    std::size_t max_chunks = 0;
};

/** Fixed-size worker pool; tasks are std::function<void()>. */
class ThreadPool
{
  public:
    /**
     * Creates a pool with @p num_threads workers. Zero selects the
     * hardware concurrency (at least 1).
     */
    explicit ThreadPool(std::size_t num_threads = 0);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool();

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /** Enqueues a task for asynchronous execution. */
    void submit(std::function<void()> task);

    /** Blocks until every submitted task has finished. */
    void wait();

    /**
     * Runs body(i) for i in [begin, end), splitting the range into
     * roughly equal chunks across the workers, and blocks until done.
     *
     * An empty range (begin >= end) is a no-op: nothing is enqueued and
     * the call returns immediately without taking the queue lock.
     *
     * Exception-propagation contract: if one or more body(i) calls
     * throw, the *first* exception observed (by chunk completion order)
     * is captured and rethrown on the calling thread after every chunk
     * has finished; the remaining chunks still run to completion (there
     * is no cancellation). Exceptions never escape into workerLoop(),
     * so a throwing body cannot take down the pool. Tasks enqueued via
     * submit() must not throw — there is no caller to receive the
     * exception, so it would terminate the process.
     *
     * Nesting: parallelFor may be called from inside a pool task (e.g.
     * a submitted job that itself fans out). While waiting for its
     * chunks, the calling thread *helps* by draining other queued tasks,
     * so nested calls make progress even when every worker is busy and
     * cannot deadlock on pool capacity. Nested calls additionally cap
     * their chunk count at the worker count (instead of 4x) so a
     * fan-out issued from inside a long-running task — the prefetcher's
     * build stage calling the block generator, say — does not flood
     * the queue it is itself draining.
     */
    void parallelFor(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t)> &body);

    /** parallelFor with explicit grain / max-parallelism hints. */
    void parallelFor(std::size_t begin, std::size_t end,
                     const ParallelForOptions &options,
                     const std::function<void(std::size_t)> &body);

    /**
     * True when the calling thread is currently executing a task of
     * *any* ThreadPool (a worker's task or one help-drained during a
     * nested parallelFor wait). Compute layers consult this to keep
     * nested kernels serial instead of oversubscribing the pool.
     */
    static bool inPoolTask();

    /** Returns a process-wide shared pool (lazily constructed). */
    static ThreadPool &global();

  private:
    void workerLoop();

    /**
     * Pops and runs one queued task on the calling thread, if any.
     * @return true if a task was executed.
     */
    bool runOneTask();

    /** Immutable after construction (joined, never mutated, later). */
    std::vector<std::thread> workers_;

    Mutex mutex_;
    std::condition_variable task_available_;
    std::condition_variable all_done_;
    std::queue<std::function<void()>> tasks_ BUFFALO_GUARDED_BY(mutex_);
    std::size_t in_flight_ BUFFALO_GUARDED_BY(mutex_) = 0;
    bool stopping_ BUFFALO_GUARDED_BY(mutex_) = false;
};

} // namespace buffalo::util
