/**
 * @file
 * Small string-formatting helpers (byte sizes, percentages, durations).
 */
#pragma once

#include <cstdint>
#include <string>

namespace buffalo::util {

/** Formats a byte count as a human-readable string, e.g. "13.68 GB". */
std::string formatBytes(std::uint64_t bytes);

/** Formats a fraction (0..1) as a percentage string, e.g. "70.9%". */
std::string formatPercent(double fraction, int precision = 1);

/** Formats seconds adaptively (us / ms / s). */
std::string formatSeconds(double seconds);

/** Gibibytes -> bytes. */
constexpr std::uint64_t
gib(double gigabytes)
{
    return static_cast<std::uint64_t>(gigabytes * 1024.0 * 1024.0 * 1024.0);
}

/** Mebibytes -> bytes. */
constexpr std::uint64_t
mib(double megabytes)
{
    return static_cast<std::uint64_t>(megabytes * 1024.0 * 1024.0);
}

} // namespace buffalo::util
