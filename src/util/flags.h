/**
 * @file
 * A small command-line flag parser for the tools: supports
 * "--name value", "--name=value", and boolean "--name" forms, with
 * typed accessors and an unknown-flag check.
 */
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace buffalo::util {

/** Parsed command-line flags. */
class Flags
{
  public:
    /** Parses argv; throws InvalidArgument on malformed flags. */
    Flags(int argc, const char *const *argv);

    /** True if --name was given (with or without a value). */
    bool has(const std::string &name) const;

    /** String value of --name, or @p fallback. */
    std::string getString(const std::string &name,
                          const std::string &fallback = "") const;

    /** Integer value of --name, or @p fallback. */
    std::int64_t getInt(const std::string &name,
                        std::int64_t fallback) const;

    /** Double value of --name, or @p fallback. */
    double getDouble(const std::string &name, double fallback) const;

    /** Boolean: present without value, or "true"/"1". */
    bool getBool(const std::string &name, bool fallback = false) const;

    /** Positional (non-flag) arguments, in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /**
     * Throws InvalidArgument listing any flag not in @p known
     * (use after all get* calls to catch typos).
     */
    void checkKnown(const std::set<std::string> &known) const;

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

} // namespace buffalo::util
