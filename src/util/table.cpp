#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/errors.h"

namespace buffalo::util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    checkArgument(!headers_.empty(), "Table: need at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    checkArgument(cells.size() == headers_.size(),
                  "Table::addRow: cell count does not match header count");
    rows_.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto render_row = [&](const std::vector<std::string> &row,
                          std::ostringstream &out) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << "| " << row[c]
                << std::string(widths[c] - row[c].size() + 1, ' ');
        }
        out << "|\n";
    };

    std::ostringstream out;
    render_row(headers_, out);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        out << "|" << std::string(widths[c] + 2, '-');
    out << "|\n";
    for (const auto &row : rows_)
        render_row(row, out);
    return out.str();
}

void
Table::print() const
{
    const std::string text = render();
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fflush(stdout);
}

std::string
Table::num(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
Table::count(long long value)
{
    std::string digits = std::to_string(value < 0 ? -value : value);
    std::string out;
    int pos = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it, ++pos) {
        if (pos > 0 && pos % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
    }
    if (value < 0)
        out.push_back('-');
    std::reverse(out.begin(), out.end());
    return out;
}

} // namespace buffalo::util
