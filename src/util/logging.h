/**
 * @file
 * Minimal leveled logging used across Buffalo.
 *
 * The logger writes to stderr so that bench output (tables and series on
 * stdout) stays machine-readable. The global level can be raised to silence
 * progress chatter in tests.
 */
#pragma once

#include <sstream>
#include <string>

namespace buffalo::util {

/** Severity of a log record, ordered from chattiest to most severe. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/** Returns the current global log threshold. */
LogLevel logLevel();

/** Sets the global log threshold; records below it are dropped. */
void setLogLevel(LogLevel level);

/** Emits one log record at @p level with component tag @p tag. */
void logMessage(LogLevel level, const std::string &tag,
                const std::string &message);

/**
 * Stream-style log record builder; emits on destruction.
 *
 * Usage: LogStream(LogLevel::Info, "scheduler") << "K=" << k;
 */
class LogStream
{
  public:
    LogStream(LogLevel level, std::string tag)
        : level_(level), tag_(std::move(tag)) {}

    LogStream(const LogStream &) = delete;
    LogStream &operator=(const LogStream &) = delete;

    ~LogStream()
    {
        if (level_ >= logLevel())
            logMessage(level_, tag_, stream_.str());
    }

    template <typename T>
    LogStream &
    operator<<(const T &value)
    {
        stream_ << value;
        return *this;
    }

  private:
    LogLevel level_;
    std::string tag_;
    std::ostringstream stream_;
};

} // namespace buffalo::util

#define BUFFALO_LOG_DEBUG(tag) \
    ::buffalo::util::LogStream(::buffalo::util::LogLevel::Debug, tag)
#define BUFFALO_LOG_INFO(tag) \
    ::buffalo::util::LogStream(::buffalo::util::LogLevel::Info, tag)
#define BUFFALO_LOG_WARN(tag) \
    ::buffalo::util::LogStream(::buffalo::util::LogLevel::Warn, tag)
#define BUFFALO_LOG_ERROR(tag) \
    ::buffalo::util::LogStream(::buffalo::util::LogLevel::Error, tag)
