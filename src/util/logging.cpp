#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace buffalo::util {

namespace {

std::atomic<LogLevel> global_level{LogLevel::Warn};
std::mutex log_mutex;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
      default: return "?";
    }
}

} // namespace

LogLevel
logLevel()
{
    return global_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    global_level.store(level, std::memory_order_relaxed);
}

void
logMessage(LogLevel level, const std::string &tag,
           const std::string &message)
{
    std::lock_guard<std::mutex> guard(log_mutex);
    std::fprintf(stderr, "[%s] %s: %s\n", levelName(level), tag.c_str(),
                 message.c_str());
}

} // namespace buffalo::util
