/**
 * @file
 * Exception hierarchy shared by all Buffalo subsystems.
 *
 * Following the fatal-vs-panic distinction: InvalidArgument and friends
 * signal user/configuration mistakes a caller can recover from or report;
 * InternalError signals a broken invariant inside Buffalo itself.
 */
#pragma once

#include <stdexcept>
#include <string>

namespace buffalo {

/** Base class for all Buffalo exceptions. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &what) : std::runtime_error(what) {}
};

/** A caller supplied an argument or configuration that is not valid. */
class InvalidArgument : public Error
{
  public:
    explicit InvalidArgument(const std::string &what) : Error(what) {}
};

/** A requested entity (dataset, partition, bucket, ...) does not exist. */
class NotFound : public Error
{
  public:
    explicit NotFound(const std::string &what) : Error(what) {}
};

/** An internal invariant was violated — a Buffalo bug, not a user error. */
class InternalError : public Error
{
  public:
    explicit InternalError(const std::string &what) : Error(what) {}
};

/**
 * Checks a caller-facing precondition, throwing InvalidArgument on failure.
 */
inline void
checkArgument(bool cond, const std::string &msg)
{
    if (!cond)
        throw InvalidArgument(msg);
}

/** Checks an internal invariant, throwing InternalError on failure. */
inline void
checkInternal(bool cond, const std::string &msg)
{
    if (!cond)
        throw InternalError(msg);
}

} // namespace buffalo
