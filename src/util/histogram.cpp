#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/errors.h"
#include "util/table.h"

namespace buffalo::util {

Histogram
Histogram::linear(double max_value, std::size_t num_bins)
{
    checkArgument(max_value > 0 && num_bins > 0,
                  "Histogram::linear: need positive range and bins");
    Histogram h;
    const double width = max_value / static_cast<double>(num_bins);
    for (std::size_t i = 0; i < num_bins; ++i)
        h.bins_.push_back({i * width, (i + 1) * width, 0});
    return h;
}

Histogram
Histogram::logarithmic(double max_value, double base)
{
    checkArgument(max_value >= 1 && base > 1,
                  "Histogram::logarithmic: need max >= 1 and base > 1");
    Histogram h;
    h.bins_.push_back({0.0, 1.0, 0});
    double lo = 1.0;
    while (lo < max_value) {
        double hi = lo * base;
        h.bins_.push_back({lo, hi, 0});
        lo = hi;
    }
    return h;
}

std::size_t
Histogram::binIndex(double value) const
{
    // Bins are contiguous and sorted; binary-search the upper edge.
    std::size_t lo = 0, hi = bins_.size() - 1;
    if (value >= bins_.back().lo)
        return bins_.size() - 1;
    while (lo < hi) {
        std::size_t mid = (lo + hi) / 2;
        if (value < bins_[mid].hi)
            hi = mid;
        else
            lo = mid + 1;
    }
    return lo;
}

void
Histogram::add(double value)
{
    addWeighted(value, 1);
}

void
Histogram::addWeighted(double value, std::uint64_t weight)
{
    if (value < 0)
        value = 0;
    bins_[binIndex(value)].count += weight;
    total_ += weight;
    sum_ += value * static_cast<double>(weight);
}

double
Histogram::mean() const
{
    return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
}

std::string
Histogram::render(std::size_t width) const
{
    std::uint64_t peak = 0;
    for (const auto &bin : bins_)
        peak = std::max(peak, bin.count);
    std::ostringstream out;
    for (const auto &bin : bins_) {
        const std::size_t bar =
            peak == 0 ? 0
                      : static_cast<std::size_t>(
                            static_cast<double>(bin.count) * width / peak);
        out << "[" << Table::num(bin.lo, 0) << ", "
            << Table::num(bin.hi, 0) << ")  "
            << std::string(bar, '#') << " " << bin.count << "\n";
    }
    return out.str();
}

SummaryStats
SummaryStats::of(const std::vector<double> &values)
{
    SummaryStats stats;
    if (values.empty())
        return stats;
    stats.min = *std::min_element(values.begin(), values.end());
    stats.max = *std::max_element(values.begin(), values.end());
    double sum = 0.0;
    for (double v : values)
        sum += v;
    stats.mean = sum / values.size();
    double var = 0.0;
    for (double v : values)
        var += (v - stats.mean) * (v - stats.mean);
    stats.stddev = std::sqrt(var / values.size());
    return stats;
}

} // namespace buffalo::util
