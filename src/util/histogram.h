/**
 * @file
 * Histograms for degree-distribution analysis (Fig. 1, Fig. 4) including
 * logarithmic binning for power-law tails.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace buffalo::util {

/** One bin of a histogram: [lo, hi) with an occurrence count. */
struct HistogramBin
{
    double lo;
    double hi;
    std::uint64_t count;
};

/** Fixed-bin histogram over non-negative values. */
class Histogram
{
  public:
    /**
     * Creates a linear histogram with @p num_bins equal-width bins over
     * [0, max_value). Values >= max_value fall into the last bin.
     */
    static Histogram linear(double max_value, std::size_t num_bins);

    /**
     * Creates a logarithmic histogram whose bin edges grow by @p base
     * starting at 1: [0,1), [1,base), [base,base^2), ...
     */
    static Histogram logarithmic(double max_value, double base = 2.0);

    /** Records one observation. */
    void add(double value);

    /** Records @p weight observations of @p value. */
    void addWeighted(double value, std::uint64_t weight);

    /** Bin list (immutable view). */
    const std::vector<HistogramBin> &bins() const { return bins_; }

    /** Total number of observations. */
    std::uint64_t total() const { return total_; }

    /** Mean of all observations. */
    double mean() const;

    /** ASCII bar-chart rendering, @p width columns wide. */
    std::string render(std::size_t width = 50) const;

  private:
    Histogram() = default;
    std::size_t binIndex(double value) const;

    std::vector<HistogramBin> bins_;
    std::uint64_t total_ = 0;
    double sum_ = 0.0;
};

/** Simple descriptive statistics over a sample. */
struct SummaryStats
{
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double stddev = 0.0;

    /** Computes stats for @p values; all zero when empty. */
    static SummaryStats of(const std::vector<double> &values);
};

} // namespace buffalo::util
