#include "util/timer.h"

namespace buffalo::util {

void
PhaseTimer::add(const std::string &phase, double seconds)
{
    auto [it, inserted] = seconds_.try_emplace(phase, 0.0);
    if (inserted)
        order_.push_back(phase);
    it->second += seconds;
}

double
PhaseTimer::get(const std::string &phase) const
{
    auto it = seconds_.find(phase);
    return it == seconds_.end() ? 0.0 : it->second;
}

double
PhaseTimer::total() const
{
    double sum = 0.0;
    for (const auto &[name, secs] : seconds_)
        sum += secs;
    return sum;
}

void
PhaseTimer::clear()
{
    seconds_.clear();
    order_.clear();
}

void
PhaseTimer::merge(const PhaseTimer &other)
{
    for (const auto &phase : other.order_)
        add(phase, other.get(phase));
}

} // namespace buffalo::util
