#include "util/flags.h"

#include <cstdlib>

#include "util/errors.h"

namespace buffalo::util {

Flags::Flags(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(std::move(arg));
            continue;
        }
        std::string body = arg.substr(2);
        checkArgument(!body.empty(), "Flags: bare '--' not allowed");
        const auto eq = body.find('=');
        if (eq != std::string::npos) {
            values_[body.substr(0, eq)] = body.substr(eq + 1);
        } else if (i + 1 < argc &&
                   std::string(argv[i + 1]).rfind("--", 0) != 0) {
            values_[body] = argv[++i];
        } else {
            values_[body] = ""; // boolean flag
        }
    }
}

bool
Flags::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

std::string
Flags::getString(const std::string &name,
                 const std::string &fallback) const
{
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
}

std::int64_t
Flags::getInt(const std::string &name, std::int64_t fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    char *end = nullptr;
    const long long value = std::strtoll(it->second.c_str(), &end, 10);
    checkArgument(end && *end == '\0' && !it->second.empty(),
                  "Flags: --" + name + " expects an integer, got '" +
                      it->second + "'");
    return value;
}

double
Flags::getDouble(const std::string &name, double fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    char *end = nullptr;
    const double value = std::strtod(it->second.c_str(), &end);
    checkArgument(end && *end == '\0' && !it->second.empty(),
                  "Flags: --" + name + " expects a number, got '" +
                      it->second + "'");
    return value;
}

bool
Flags::getBool(const std::string &name, bool fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    return it->second.empty() || it->second == "true" ||
           it->second == "1";
}

void
Flags::checkKnown(const std::set<std::string> &known) const
{
    for (const auto &[name, value] : values_) {
        checkArgument(known.count(name) > 0,
                      "Flags: unknown flag --" + name);
    }
}

} // namespace buffalo::util
