/**
 * @file
 * Clang thread-safety annotations (DESIGN.md, "Static analysis &
 * sanitizer matrix") and the annotated mutex types the concurrent
 * subsystems lock with.
 *
 * Under Clang with `-Wthread-safety` (the `BUFFALO_THREAD_SAFETY`
 * CMake option, auto-on when supported) every `BUFFALO_GUARDED_BY`
 * member access is checked at compile time: reading or writing a
 * guarded member without holding its mutex is a hard error, as is
 * returning from a function annotated `BUFFALO_REQUIRES` without the
 * capability. Under GCC (which has no thread-safety analysis) the
 * macros expand to nothing and `Mutex`/`MutexLock` cost exactly a
 * `std::mutex`/`std::unique_lock`.
 *
 * Conventions (enforced by `tools/buffalo_lint`):
 *  - A class that owns shared state declares its `Mutex` member
 *    *before* the members it guards; everything declared after a
 *    mutex member must carry `BUFFALO_GUARDED_BY(that_mutex_)` or an
 *    explicit `// buffalo-lint: allow(guarded-by) <reason>` waiver.
 *  - Private helpers that assume the lock is held are annotated
 *    `BUFFALO_REQUIRES(mutex_)` and named `...Locked()`.
 *  - Condition waits use explicit while-loops over the guarded
 *    predicate (not the lambda-predicate overloads, which Clang's
 *    analysis cannot see into).
 */
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define BUFFALO_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef BUFFALO_THREAD_ANNOTATION
#define BUFFALO_THREAD_ANNOTATION(x) // not supported by this compiler
#endif

/** Marks a type as a lockable capability ("mutex", "role", ...). */
#define BUFFALO_CAPABILITY(x) BUFFALO_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires in its ctor, releases in its dtor. */
#define BUFFALO_SCOPED_CAPABILITY BUFFALO_THREAD_ANNOTATION(scoped_lockable)

/** Member may only be accessed while holding @p x. */
#define BUFFALO_GUARDED_BY(x) BUFFALO_THREAD_ANNOTATION(guarded_by(x))

/** Pointee may only be accessed while holding @p x. */
#define BUFFALO_PT_GUARDED_BY(x) BUFFALO_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function must be called with the capability held. */
#define BUFFALO_REQUIRES(...)                                             \
    BUFFALO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function acquires the capability and does not release it. */
#define BUFFALO_ACQUIRE(...)                                              \
    BUFFALO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases a held capability. */
#define BUFFALO_RELEASE(...)                                              \
    BUFFALO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function acquires the capability when it returns @p first arg. */
#define BUFFALO_TRY_ACQUIRE(...)                                          \
    BUFFALO_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Function must NOT be called with the capability held (deadlock). */
#define BUFFALO_EXCLUDES(...)                                             \
    BUFFALO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Declares that the function returns a reference to the capability. */
#define BUFFALO_RETURN_CAPABILITY(x)                                      \
    BUFFALO_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: disables analysis inside one function. */
#define BUFFALO_NO_THREAD_SAFETY_ANALYSIS                                 \
    BUFFALO_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace buffalo::util {

/**
 * A `std::mutex` annotated as a Clang capability, so members can be
 * declared `BUFFALO_GUARDED_BY(mutex_)`. Lock it with MutexLock; the
 * raw lock()/unlock() exist for completeness and for adapters.
 */
class BUFFALO_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() BUFFALO_ACQUIRE()
    {
        mu_.lock();
    }

    void
    unlock() BUFFALO_RELEASE()
    {
        mu_.unlock();
    }

    bool
    try_lock() BUFFALO_TRY_ACQUIRE(true)
    {
        return mu_.try_lock();
    }

    /**
     * The underlying std::mutex, for std::condition_variable waits
     * (via MutexLock::native()). Direct locking through this handle
     * is invisible to the analysis — don't.
     */
    std::mutex &
    native()
    {
        return mu_;
    }

  private:
    std::mutex mu_;
};

/**
 * Scoped lock over a Mutex (the annotated `std::lock_guard`). For
 * condition waits, pass `native()` — a `std::unique_lock` over the
 * same mutex — to `std::condition_variable::wait*`:
 *
 *   MutexLock lock(mutex_);
 *   while (!ready_)            // guarded predicate, re-checked held
 *       cv_.wait(lock.native());
 */
class BUFFALO_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) BUFFALO_ACQUIRE(mutex)
        : lock_(mutex.native())
    {
    }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    ~MutexLock() BUFFALO_RELEASE() {}

    /** The std::unique_lock handle condition variables wait on. */
    std::unique_lock<std::mutex> &
    native()
    {
        return lock_;
    }

  private:
    std::unique_lock<std::mutex> lock_;
};

} // namespace buffalo::util
