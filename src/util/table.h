/**
 * @file
 * Plain-text table formatter used by the bench binaries to print the
 * rows the paper's tables and figure series report.
 */
#pragma once

#include <string>
#include <vector>

namespace buffalo::util {

/** Builds and renders an aligned ASCII table. */
class Table
{
  public:
    /** Creates a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Appends one row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Renders the table with a header separator line. */
    std::string render() const;

    /** Renders and writes to stdout. */
    void print() const;

    /** Formats a double with @p precision fractional digits. */
    static std::string num(double value, int precision = 2);

    /** Formats an integer with thousands separators. */
    static std::string count(long long value);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace buffalo::util
