/**
 * @file
 * Deterministic random-number generation for Buffalo.
 *
 * All randomness in the library flows through Rng so every experiment is
 * reproducible from a single seed. The engine is xoshiro256**, seeded via
 * SplitMix64 as its authors recommend.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace buffalo::util {

/** xoshiro256** pseudo-random generator with convenience samplers. */
class Rng
{
  public:
    /** Constructs a generator whose full state derives from @p seed. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /** Returns the next raw 64-bit output. */
    std::uint64_t next();

    /** Returns a uniform integer in [0, bound). @p bound must be > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Returns a uniform integer in [lo, hi]. */
    std::int64_t nextInRange(std::int64_t lo, std::int64_t hi);

    /** Returns a uniform double in [0, 1). */
    double nextDouble();

    /** Returns a standard-normal sample (Box–Muller). */
    double nextGaussian();

    /** Returns true with probability @p p. */
    bool nextBernoulli(double p);

    /**
     * Samples @p count distinct values from [0, population) without
     * replacement. Uses Floyd's algorithm; O(count) expected time.
     * When count >= population, returns the whole range shuffled.
     */
    std::vector<std::uint64_t> sampleWithoutReplacement(
        std::uint64_t population, std::uint64_t count);

    /** Fisher–Yates shuffle of @p values. */
    template <typename T>
    void
    shuffle(std::vector<T> &values)
    {
        for (std::size_t i = values.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(nextBounded(i));
            std::swap(values[i - 1], values[j]);
        }
    }

    /** Derives an independent child generator (for per-thread streams). */
    Rng fork();

  private:
    std::uint64_t state_[4];
    bool have_spare_gaussian_ = false;
    double spare_gaussian_ = 0.0;
};

} // namespace buffalo::util
