/**
 * @file
 * Wall-clock timing utilities and the PhaseTimer used by the training
 * harness to produce the per-phase execution breakdowns of Figs. 5 and 11.
 */
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace buffalo::util {

/** A restartable wall-clock stopwatch with nanosecond resolution. */
class StopWatch
{
  public:
    StopWatch() { reset(); }

    /** Restarts the watch at zero. */
    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Milliseconds elapsed since construction or the last reset(). */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/**
 * Accumulates named phase durations across one or more iterations.
 *
 * Phases may mix *measured* wall-clock time (host-side work such as
 * partitioning and block generation) and *simulated* time charged by the
 * device cost model (kernel compute, PCIe transfer). Both are stored in
 * seconds and can be reported together.
 */
class PhaseTimer
{
  public:
    /** RAII scope that charges its lifetime to one phase. */
    class Scope
    {
      public:
        Scope(PhaseTimer &timer, std::string phase)
            : timer_(timer), phase_(std::move(phase)) {}
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;
        ~Scope() { timer_.add(phase_, watch_.seconds()); }

      private:
        PhaseTimer &timer_;
        std::string phase_;
        StopWatch watch_;
    };

    /** Adds @p seconds to phase @p phase (creating it if new). */
    void add(const std::string &phase, double seconds);

    /** Returns accumulated seconds for @p phase (0 if never charged). */
    double get(const std::string &phase) const;

    /** Total seconds across all phases. */
    double total() const;

    /** Phase names in first-charged order. */
    const std::vector<std::string> &phases() const { return order_; }

    /** Clears all accumulated phases. */
    void clear();

    /** Merges another timer's phases into this one (summing). */
    void merge(const PhaseTimer &other);

  private:
    std::map<std::string, double> seconds_;
    std::vector<std::string> order_;
};

} // namespace buffalo::util
