#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace buffalo::util {

ThreadPool::ThreadPool(std::size_t num_threads)
{
    if (num_threads == 0) {
        num_threads = std::max<std::size_t>(
            1, std::thread::hardware_concurrency());
    }
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> guard(mutex_);
        stopping_ = true;
    }
    task_available_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> guard(mutex_);
        tasks_.push(std::move(task));
        ++in_flight_;
    }
    task_available_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            task_available_.wait(
                lock, [this] { return stopping_ || !tasks_.empty(); });
            if (stopping_ && tasks_.empty())
                return;
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
        {
            std::lock_guard<std::mutex> guard(mutex_);
            if (--in_flight_ == 0)
                all_done_.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                        const std::function<void(std::size_t)> &body)
{
    if (begin >= end)
        return;
    const std::size_t count = end - begin;
    const std::size_t chunks = std::min(count, size() * 4);
    const std::size_t chunk_size = (count + chunks - 1) / chunks;

    std::exception_ptr first_error;
    std::mutex error_mutex;
    std::atomic<std::size_t> remaining{0};
    std::mutex done_mutex;
    std::condition_variable done_cv;

    std::size_t launched = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t lo = begin + c * chunk_size;
        if (lo >= end)
            break;
        const std::size_t hi = std::min(end, lo + chunk_size);
        ++launched;
        remaining.fetch_add(1, std::memory_order_relaxed);
        submit([&, lo, hi] {
            try {
                for (std::size_t i = lo; i < hi; ++i)
                    body(i);
            } catch (...) {
                std::lock_guard<std::mutex> guard(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
            }
            if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                std::lock_guard<std::mutex> guard(done_mutex);
                done_cv.notify_all();
            }
        });
    }

    if (launched > 0) {
        std::unique_lock<std::mutex> lock(done_mutex);
        done_cv.wait(lock, [&] {
            return remaining.load(std::memory_order_acquire) == 0;
        });
    }
    if (first_error)
        std::rethrow_exception(first_error);
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

} // namespace buffalo::util
