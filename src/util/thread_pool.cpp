#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>

namespace buffalo::util {

namespace {

/**
 * Depth of pool-task nesting on this thread, across all pools. Raised
 * around every task execution (worker loop and help-draining), so
 * ThreadPool::inPoolTask() answers "would fanning out here contend
 * with an enclosing task for the same workers?".
 */
thread_local std::size_t tls_task_depth = 0;

/** RAII increment of tls_task_depth around one task execution. */
struct TaskScope
{
    TaskScope() { ++tls_task_depth; }
    ~TaskScope() { --tls_task_depth; }
    TaskScope(const TaskScope &) = delete;
    TaskScope &operator=(const TaskScope &) = delete;
};

} // namespace

ThreadPool::ThreadPool(std::size_t num_threads)
{
    if (num_threads == 0) {
        num_threads = std::max<std::size_t>(
            1, std::thread::hardware_concurrency());
    }
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        // buffalo-lint: allow(escape-this-capture) workers_ are joined
        // by ~ThreadPool before any member is torn down
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex_);
        stopping_ = true;
    }
    task_available_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        MutexLock lock(mutex_);
        tasks_.push(std::move(task));
        ++in_flight_;
    }
    task_available_.notify_one();
}

void
ThreadPool::wait()
{
    MutexLock lock(mutex_);
    while (in_flight_ != 0)
        all_done_.wait(lock.native());
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(mutex_);
            while (!stopping_ && tasks_.empty())
                task_available_.wait(lock.native());
            if (stopping_ && tasks_.empty())
                return;
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        {
            TaskScope scope;
            task();
        }
        {
            MutexLock lock(mutex_);
            if (--in_flight_ == 0)
                all_done_.notify_all();
        }
    }
}

bool
ThreadPool::runOneTask()
{
    std::function<void()> task;
    {
        MutexLock lock(mutex_);
        if (tasks_.empty())
            return false;
        task = std::move(tasks_.front());
        tasks_.pop();
    }
    {
        TaskScope scope;
        task();
    }
    {
        MutexLock lock(mutex_);
        if (--in_flight_ == 0)
            all_done_.notify_all();
    }
    return true;
}

void
ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                        const std::function<void(std::size_t)> &body)
{
    parallelFor(begin, end, ParallelForOptions{}, body);
}

void
ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                        const ParallelForOptions &options,
                        const std::function<void(std::size_t)> &body)
{
    // Empty ranges never touch the queue (or its lock).
    if (begin >= end)
        return;
    const std::size_t count = end - begin;
    const std::size_t grain = std::max<std::size_t>(1, options.grain);
    std::size_t max_chunks =
        options.max_chunks != 0 ? options.max_chunks : size() * 4;
    // Nested fan-out: an enclosing task already occupies a worker, so
    // enqueueing 4x-worker chunks only thrashes the queue this thread
    // is about to help-drain. One chunk per worker is the most that
    // can run concurrently anyway.
    if (inPoolTask())
        max_chunks = std::min(max_chunks, size());
    std::size_t chunks = std::min(
        {count, max_chunks, std::max<std::size_t>(1, count / grain)});
    if (chunks <= 1) {
        // Below-grain (or single-chunk) ranges run inline: same
        // iteration order, no queue traffic, exceptions propagate
        // directly to the caller as the contract promises.
        for (std::size_t i = begin; i < end; ++i)
            body(i);
        return;
    }
    const std::size_t chunk_size = (count + chunks - 1) / chunks;

    // Shared (not stack) completion state: the caller may wake and
    // return the instant `remaining` hits zero, while the finishing
    // task is still inside notify_all — the tasks' shared_ptr copies
    // keep the cv alive until that call has fully returned.
    struct Completion
    {
        Mutex mutex;
        std::condition_variable done;
        std::atomic<std::size_t> remaining{0};
        std::exception_ptr first_error BUFFALO_GUARDED_BY(mutex);
    };
    auto state = std::make_shared<Completion>();

    for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t lo = begin + c * chunk_size;
        if (lo >= end)
            break;
        const std::size_t hi = std::min(end, lo + chunk_size);
        state->remaining.fetch_add(1, std::memory_order_relaxed);
        // buffalo-lint: allow(escape-ref-capture) parallelFor blocks on
        // state->done below, so body outlives every chunk task
        submit([state, &body, lo, hi] {
            try {
                for (std::size_t i = lo; i < hi; ++i)
                    body(i);
            } catch (...) {
                MutexLock lock(state->mutex);
                if (!state->first_error)
                    state->first_error = std::current_exception();
            }
            if (state->remaining.fetch_sub(
                    1, std::memory_order_acq_rel) == 1) {
                MutexLock lock(state->mutex);
                state->done.notify_all();
            }
        });
    }

    // Help drain the queue while waiting so nested parallelFor calls
    // (issued from inside pool tasks) make progress even when every
    // worker is already occupied by an enclosing task. The short
    // wait_for bounds the window between a runOneTask miss and the
    // completion notify; the outer loop re-checks `remaining`.
    while (state->remaining.load(std::memory_order_acquire) > 0) {
        if (runOneTask())
            continue;
        MutexLock lock(state->mutex);
        if (state->remaining.load(std::memory_order_acquire) > 0)
            state->done.wait_for(lock.native(),
                                 std::chrono::milliseconds(1));
    }
    std::exception_ptr error;
    {
        MutexLock lock(state->mutex);
        error = state->first_error;
    }
    if (error)
        std::rethrow_exception(error);
}

bool
ThreadPool::inPoolTask()
{
    return tls_task_depth > 0;
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

} // namespace buffalo::util
