/**
 * @file
 * Exit-safe flushing for the observability sinks (DESIGN.md,
 * "Observability").
 *
 * The metrics JSON and the JSONL run log used to be written only on
 * the clean exit path at the bottom of each tool's main(); any early
 * std::exit() — a bad flag, a checkArgument failure routed through
 * the top-level catch, a load-test harness killing the run — left a
 * truncated or empty file. ExitFlush closes that hole: a tool
 * registers its --metrics-json path, arms an atexit hook, and the
 * hook (or an explicit flush() on the clean path) emits a final
 * `run.flush` event, closes the event log, and writes the metrics
 * dump. flush() is idempotent, so clean exits that flush explicitly
 * are unaffected by the hook firing afterwards.
 *
 * arm() constructs the metrics()/eventLog() singletons *before*
 * registering the hook, which sequences their static destruction
 * after the hook runs — the hook never touches dead objects.
 */
#pragma once

#include <string>

#include "util/thread_annotations.h"

namespace buffalo::obs {

/** Process-wide exit flusher; use via exitFlush(). */
class ExitFlush
{
  public:
    ExitFlush() = default;
    ExitFlush(const ExitFlush &) = delete;
    ExitFlush &operator=(const ExitFlush &) = delete;

    /**
     * Registers @p path to receive the metrics JSON dump at flush
     * time. An empty path clears the registration.
     */
    void registerMetricsJson(const std::string &path)
        BUFFALO_EXCLUDES(mutex_);

    /**
     * Installs the atexit hook (idempotent). Call once early in
     * main(), after flag parsing decides which sinks are active.
     */
    void arm() BUFFALO_EXCLUDES(mutex_);

    /**
     * Flushes now: emits `run.flush` to the event log (if enabled),
     * closes it, and writes the registered metrics JSON. Safe to
     * call repeatedly; later calls are no-ops for the event log and
     * rewrite the same metrics file.
     */
    void flush() BUFFALO_EXCLUDES(mutex_);

  private:
    mutable util::Mutex mutex_;
    std::string metrics_path_ BUFFALO_GUARDED_BY(mutex_);
    bool armed_ BUFFALO_GUARDED_BY(mutex_) = false;
};

/** The process-wide flusher the atexit hook drives. */
ExitFlush &exitFlush();

} // namespace buffalo::obs
