/**
 * @file
 * Queue-depth timeline sampling (DESIGN.md, "Critical-path
 * attribution"): a lightweight interval sampler that periodically
 * reads a set of queue-depth probes and flushes one `queue.depth`
 * event per probe into the JSONL run log. Together with the
 * wait-vs-service histograms the queues themselves record, the
 * timeline shows *where* items piled up while the critical-path
 * analyzer shows *which* stage that made slow.
 *
 * The sampler owns one background thread, started only when the event
 * log is enabled (otherwise construction is a no-op); it samples once
 * immediately — so even sub-interval runs log a snapshot — and then
 * every interval until stop() or destruction.
 */
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace buffalo::obs {

/** One sampled queue: a static name and a depth reader. */
struct QueueDepthProbe
{
    /** Queue name emitted with each sample (static storage). */
    const char *queue = nullptr;
    /** Returns the queue's current occupancy; must be thread-safe. */
    std::function<std::size_t()> depth;
};

/** Periodically samples queue depths into the event log. */
class QueueDepthSampler
{
  public:
    /**
     * Starts sampling @p probes every @p interval_seconds. Inert (no
     * thread) when the event log is disabled or @p probes is empty.
     * The probes must outlive the sampler (or its stop() call).
     */
    explicit QueueDepthSampler(std::vector<QueueDepthProbe> probes,
                               double interval_seconds = 0.05);

    QueueDepthSampler(const QueueDepthSampler &) = delete;
    QueueDepthSampler &operator=(const QueueDepthSampler &) = delete;

    /** Stops sampling (idempotent; also run by the destructor). Call
     *  before tearing down the queues the probes read. */
    void stop();

    ~QueueDepthSampler();

  private:
    void run();

    /** Emits one queue.depth event per probe. */
    void sampleOnce();

    std::vector<QueueDepthProbe> probes_;
    double interval_seconds_;

    mutable util::Mutex mutex_;
    std::condition_variable wake_;
    bool stop_ BUFFALO_GUARDED_BY(mutex_) = false;
    // buffalo-lint: allow(guarded-by) joined in stop(), not shared
    std::thread thread_;
};

} // namespace buffalo::obs
