/**
 * @file
 * Comparison logic behind `tools/bench_diff` (DESIGN.md, "Memory
 * audit & bench regression"). A bench report is the JSON document a
 * `bench::Reporter` emits next to its ASCII table:
 *
 *   {"bench": "<name>",
 *    "metrics": {"<metric>": {"value": 12.5, "tolerance": 0.10}, ...}}
 *
 * compareBenchReports() walks the *baseline's* metrics: each must be
 * present in the candidate and within the baseline's own per-metric
 * relative tolerance, |cand - base| / max(|base|, eps) <= tolerance.
 * Embedding the tolerance in the baseline keeps the policy versioned
 * next to the numbers it governs — refreshing a baseline re-states
 * both. Metrics only the candidate has are reported but never fail
 * the comparison (new metrics must not break older baselines).
 *
 * Lives in src/obs (not in the tool) so the unit tests link the
 * exact logic CI gates on.
 */
#pragma once

#include <string>
#include <vector>

namespace buffalo::obs {

class JsonValue;

/** One metric's baseline-vs-candidate comparison. */
struct BenchMetricDiff
{
    std::string name;
    double baseline = 0.0;
    double candidate = 0.0;
    /** |candidate - baseline| / max(|baseline|, 1e-12). */
    double rel_diff = 0.0;
    /** Allowed relative drift (from the baseline document). */
    double tolerance = 0.0;
    /** Metric absent from the candidate (always a failure). */
    bool missing = false;

    bool
    ok() const
    {
        return !missing && rel_diff <= tolerance;
    }
};

/** Full result of comparing a candidate report against a baseline. */
struct BenchCompareResult
{
    /** The baseline's bench name. */
    std::string bench;
    /** One entry per baseline metric, in baseline document order. */
    std::vector<BenchMetricDiff> diffs;
    /** Candidate metrics with no baseline counterpart (informative). */
    std::vector<std::string> extra_metrics;

    bool
    ok() const
    {
        for (const BenchMetricDiff &diff : diffs)
            if (!diff.ok())
                return false;
        return true;
    }
};

/**
 * Compares parsed bench reports.
 * @throws InvalidArgument when either document does not follow the
 *         bench-report schema above.
 */
BenchCompareResult compareBenchReports(const JsonValue &baseline,
                                       const JsonValue &candidate);

/**
 * Reads, parses, and compares two bench-report files.
 * @throws Error when a file cannot be read, InvalidArgument when one
 *         is malformed.
 */
BenchCompareResult compareBenchFiles(const std::string &baseline_path,
                                     const std::string &candidate_path);

/** Human-readable per-metric report (one line per metric). */
std::string formatBenchCompare(const BenchCompareResult &result);

} // namespace buffalo::obs
