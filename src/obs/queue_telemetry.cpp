#include "obs/queue_telemetry.h"

#include <chrono>
#include <cstdint>

#include "obs/event_log.h"
#include "obs/names.h"

namespace buffalo::obs {

QueueDepthSampler::QueueDepthSampler(
    std::vector<QueueDepthProbe> probes, double interval_seconds)
    : probes_(std::move(probes)),
      interval_seconds_(interval_seconds > 0.0 ? interval_seconds
                                               : 0.05)
{
    if (!eventLog().enabled() || probes_.empty())
        return;
    sampleOnce();
    // buffalo-lint: allow(escape-this-capture) joined in stop()
    thread_ = std::thread([this] { run(); });
}

QueueDepthSampler::~QueueDepthSampler() { stop(); }

void
QueueDepthSampler::stop()
{
    {
        util::MutexLock lock(mutex_);
        stop_ = true;
        wake_.notify_all();
    }
    if (thread_.joinable())
        thread_.join();
}

void
QueueDepthSampler::run()
{
    const auto interval =
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(interval_seconds_));
    for (;;) {
        {
            util::MutexLock lock(mutex_);
            const auto deadline =
                std::chrono::steady_clock::now() + interval;
            while (!stop_ &&
                   std::chrono::steady_clock::now() < deadline)
                wake_.wait_until(lock.native(), deadline);
            if (stop_)
                return;
        }
        sampleOnce();
    }
}

void
QueueDepthSampler::sampleOnce()
{
    for (const QueueDepthProbe &probe : probes_)
        eventLog()
            .event(names::kEvQueueDepth)
            .field("queue", probe.queue)
            .field("depth",
                   static_cast<std::uint64_t>(probe.depth()));
}

} // namespace buffalo::obs
