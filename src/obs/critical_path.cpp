#include "obs/critical_path.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "obs/json.h"
#include "obs/names.h"

namespace buffalo::obs {

namespace {

/**
 * Infers pipeline order by each stage's mean position within its
 * item's start-sorted chain — upstream stages run earlier for every
 * item, so their mean rank is lower. Ties break on mean start time.
 */
std::vector<std::string>
inferStageOrder(const std::vector<CpSpan> &spans,
                const std::map<std::uint64_t, std::vector<std::size_t>>
                    &by_item)
{
    struct Rank
    {
        double rank_sum = 0.0;
        double start_sum = 0.0;
        std::size_t count = 0;
    };
    std::map<std::string, Rank> ranks;
    for (const auto &[item, chain] : by_item) {
        (void)item;
        for (std::size_t p = 0; p < chain.size(); ++p) {
            Rank &r = ranks[spans[chain[p]].stage];
            r.rank_sum += static_cast<double>(p);
            r.start_sum += spans[chain[p]].start_us;
            ++r.count;
        }
    }
    std::vector<std::string> order;
    order.reserve(ranks.size());
    for (const auto &[stage, r] : ranks) {
        (void)r;
        order.push_back(stage);
    }
    std::sort(order.begin(), order.end(),
              [&](const std::string &a, const std::string &b) {
                  const Rank &ra = ranks[a];
                  const Rank &rb = ranks[b];
                  const double ma = ra.rank_sum / ra.count;
                  const double mb = rb.rank_sum / rb.count;
                  if (ma != mb)
                      return ma < mb;
                  return ra.start_sum / ra.count <
                         rb.start_sum / rb.count;
              });
    return order;
}

/** Wall time of the pipeline recurrence under per-stage scales. */
double
modeledWall(const std::vector<std::vector<double>> &durations,
            const std::vector<double> &scales)
{
    const std::size_t num_stages = scales.size();
    std::vector<double> t(num_stages, 0.0);
    for (const std::vector<double> &item : durations) {
        for (std::size_t s = 0; s < num_stages; ++s) {
            const double d = s < item.size() ? item[s] : 0.0;
            const double upstream = s > 0 ? t[s - 1] : 0.0;
            t[s] = std::max(t[s], upstream) + d * scales[s];
        }
    }
    return num_stages == 0 ? 0.0 : t[num_stages - 1];
}

void
addWhatIfs(CriticalPathReport *report,
           const std::vector<std::string> &stage_order,
           const std::vector<std::vector<double>> &durations,
           const CpOptions &options)
{
    const std::size_t num_stages = stage_order.size();
    if (num_stages == 0 || durations.empty())
        return;
    auto stageIndex = [&](const std::string &name) {
        const auto it = std::find(stage_order.begin(),
                                  stage_order.end(), name);
        return it == stage_order.end()
                   ? num_stages
                   : static_cast<std::size_t>(
                         it - stage_order.begin());
    };
    auto add = [&](const std::string &name,
                   const std::vector<double> &scales) {
        CpWhatIf whatif;
        whatif.name = name;
        whatif.wall_us = modeledWall(durations, scales);
        whatif.speedup = whatif.wall_us > 0.0
                             ? report->wall_us / whatif.wall_us
                             : 0.0;
        report->whatifs.push_back(std::move(whatif));
    };

    const std::vector<double> ones(num_stages, 1.0);
    add("perfect_overlap", ones);

    const std::size_t feature = stageIndex(options.feature_stage);
    if (feature < num_stages && options.cache_hit_rate >= 0.0) {
        std::vector<double> scales = ones;
        scales[feature] = zeroCacheMissScale(options.cache_hit_rate);
        add("zero_cache_miss", scales);
    }
    const std::size_t build = stageIndex(options.build_stage);
    if (build < num_stages) {
        std::vector<double> scales = ones;
        scales[build] = 0.5;
        add("blockgen_2x", scales);
        scales[build] = 0.25;
        add("blockgen_4x", scales);
    }
}

} // namespace

double
overlapEfficiency(double serial_seconds, double wall_seconds)
{
    if (serial_seconds <= 0.0 || wall_seconds <= 0.0)
        return 0.0;
    return std::min(1.0, serial_seconds / wall_seconds);
}

double
zeroCacheMissScale(double hit_rate, double kappa)
{
    const double h = std::clamp(hit_rate, 0.0, 1.0);
    const double current = (1.0 - h) + h * kappa;
    return current > 0.0 ? kappa / current : 1.0;
}

CriticalPathReport
analyzeCriticalPath(std::vector<CpSpan> spans,
                    const CpOptions &options)
{
    CriticalPathReport report;
    spans.erase(std::remove_if(spans.begin(), spans.end(),
                               [](const CpSpan &s) {
                                   return s.item == 0 ||
                                          s.end_us < s.start_us;
                               }),
                spans.end());
    if (spans.empty())
        return report;
    std::sort(spans.begin(), spans.end(),
              [](const CpSpan &a, const CpSpan &b) {
                  if (a.start_us != b.start_us)
                      return a.start_us < b.start_us;
                  return a.end_us < b.end_us;
              });

    // Chains: per-item and per-stage span lists, both in start order.
    std::map<std::uint64_t, std::vector<std::size_t>> by_item;
    std::map<std::string, std::vector<std::size_t>> by_stage;
    std::vector<std::size_t> pos_in_item(spans.size());
    std::vector<std::size_t> pos_in_stage(spans.size());
    for (std::size_t i = 0; i < spans.size(); ++i) {
        auto &item_chain = by_item[spans[i].item];
        auto &stage_chain = by_stage[spans[i].stage];
        pos_in_item[i] = item_chain.size();
        pos_in_stage[i] = stage_chain.size();
        item_chain.push_back(i);
        stage_chain.push_back(i);
    }

    report.spans = spans.size();
    report.items = by_item.size();
    for (const auto &[item, chain] : by_item) {
        (void)item;
        std::set<std::string> seen;
        for (const std::size_t i : chain)
            seen.insert(spans[i].stage);
        if (seen.size() != by_stage.size())
            ++report.incomplete_items;
    }

    // Stage order: configured names that actually occur, then any
    // stages the configuration missed, then inferred when empty.
    std::vector<std::string> order;
    for (const std::string &stage : options.stage_order)
        if (by_stage.count(stage) != 0)
            order.push_back(stage);
    if (order.empty()) {
        order = inferStageOrder(spans, by_item);
    } else {
        for (const auto &[stage, chain] : by_stage) {
            (void)chain;
            if (std::find(order.begin(), order.end(), stage) ==
                order.end())
                order.push_back(stage);
        }
    }

    double t0 = spans.front().start_us;
    std::size_t last = 0;
    for (std::size_t i = 0; i < spans.size(); ++i) {
        t0 = std::min(t0, spans[i].start_us);
        if (spans[i].end_us > spans[last].end_us)
            last = i;
        report.serial_us += spans[i].end_us - spans[i].start_us;
    }
    report.wall_us = spans[last].end_us - t0;

    // Backward walk from the last-ending span: at each step the
    // binding predecessor is the later-ending of the same-item
    // previous span and the same-stage previous-item span (ties go
    // to the same-stage edge, keeping the chain inside a saturated
    // stage). Everything between the predecessor's end and the
    // cursor is the current span's self time; any gap before the
    // span's own start is critical-path idle (queue wait/startup).
    std::map<std::string, double> self;
    std::size_t cur = last;
    double cursor = spans[last].end_us;
    for (std::size_t steps = 0; steps <= spans.size(); ++steps) {
        std::ptrdiff_t pred = -1;
        const auto &item_chain = by_item[spans[cur].item];
        const auto &stage_chain = by_stage[spans[cur].stage];
        if (pos_in_item[cur] > 0)
            pred = static_cast<std::ptrdiff_t>(
                item_chain[pos_in_item[cur] - 1]);
        if (pos_in_stage[cur] > 0) {
            const std::size_t same_stage =
                stage_chain[pos_in_stage[cur] - 1];
            if (pred < 0 ||
                spans[same_stage].end_us >=
                    spans[static_cast<std::size_t>(pred)].end_us)
                pred = static_cast<std::ptrdiff_t>(same_stage);
        }
        const double begin = spans[cur].start_us;
        const double pred_end =
            pred >= 0 ? spans[static_cast<std::size_t>(pred)].end_us
                      : t0;
        const double handoff =
            std::min(cursor, std::max(begin, pred_end));
        self[spans[cur].stage] += cursor - handoff;
        const double next_cursor = std::min(cursor, pred_end);
        report.idle_us += std::max(0.0, handoff - next_cursor);
        cursor = next_cursor;
        if (pred < 0)
            break;
        cur = static_cast<std::size_t>(pred);
    }

    for (const std::string &stage : order) {
        CpStageReport sr;
        sr.stage = stage;
        for (const std::size_t i : by_stage[stage]) {
            ++sr.spans;
            sr.busy_us += spans[i].end_us - spans[i].start_us;
        }
        sr.cp_self_us = self[stage];
        sr.cp_share =
            report.wall_us > 0.0 ? sr.cp_self_us / report.wall_us
                                 : 0.0;
        if (sr.cp_self_us >
            report.dominant_share * report.wall_us) {
            report.dominant_stage = sr.stage;
            report.dominant_share = sr.cp_share;
        }
        report.stages.push_back(std::move(sr));
    }
    report.overlap_efficiency =
        overlapEfficiency(report.serial_us, report.wall_us);
    report.avg_concurrency =
        report.wall_us > 0.0 ? report.serial_us / report.wall_us
                             : 0.0;

    // Per-item stage durations (items in id order = submission
    // order) feed the what-if recurrence.
    std::vector<std::vector<double>> durations;
    durations.reserve(by_item.size());
    std::map<std::string, std::size_t> stage_index;
    for (std::size_t s = 0; s < order.size(); ++s)
        stage_index[order[s]] = s;
    for (const auto &[item, chain] : by_item) {
        (void)item;
        std::vector<double> d(order.size(), 0.0);
        for (const std::size_t i : chain)
            d[stage_index[spans[i].stage]] +=
                spans[i].end_us - spans[i].start_us;
        durations.push_back(std::move(d));
    }
    addWhatIfs(&report, order, durations, options);
    return report;
}

CriticalPathReport
analyzeModeledPipeline(
    const std::vector<std::string> &stage_order,
    const std::vector<std::vector<double>> &item_stage_seconds,
    const CpOptions &options)
{
    // Synthesize each item's spans at the times the unscaled
    // recurrence admits them, then run the real analyzer: the CP
    // decomposition of the model and of a recorded trace share one
    // code path.
    const std::size_t num_stages = stage_order.size();
    std::vector<CpSpan> spans;
    std::vector<double> t(num_stages, 0.0);
    for (std::size_t i = 0; i < item_stage_seconds.size(); ++i) {
        const std::vector<double> &item = item_stage_seconds[i];
        for (std::size_t s = 0; s < num_stages; ++s) {
            const double d = s < item.size() ? item[s] : 0.0;
            const double upstream = s > 0 ? t[s - 1] : 0.0;
            const double start = std::max(t[s], upstream);
            t[s] = start + d;
            CpSpan span;
            span.stage = stage_order[s];
            span.item = static_cast<std::uint64_t>(i) + 1;
            span.start_us = start * 1e6;
            span.end_us = t[s] * 1e6;
            span.tid = static_cast<std::uint32_t>(s);
            spans.push_back(std::move(span));
        }
    }
    CpOptions resolved = options;
    resolved.stage_order = stage_order;
    return analyzeCriticalPath(std::move(spans), resolved);
}

std::vector<CpSpan>
loadTraceSpans(const std::string &path)
{
    const JsonValue doc = JsonValue::parse(readFileText(path));
    std::vector<CpSpan> spans;
    if (!doc.isArray())
        return spans;
    for (std::size_t i = 0; i < doc.size(); ++i) {
        const JsonValue &event = doc.at(i);
        if (!event.isObject() || !event.has("args") ||
            !event.at("args").isObject() ||
            !event.at("args").has("item"))
            continue;
        const JsonValue &item = event.at("args").at("item");
        if (!item.isNumber() || item.asNumber() <= 0.0)
            continue;
        CpSpan span;
        span.stage = event.at("name").asString();
        span.item = static_cast<std::uint64_t>(item.asNumber());
        span.start_us = event.at("ts").asNumber();
        span.end_us = span.start_us + event.at("dur").asNumber();
        span.tid =
            static_cast<std::uint32_t>(event.at("tid").asNumber());
        spans.push_back(std::move(span));
    }
    return spans;
}

double
cacheHitRateFromRunLog(const std::string &path)
{
    const std::string text = readFileText(path);
    std::stringstream stream(text);
    std::string line;
    double hit_rate = -1.0;
    while (std::getline(stream, line)) {
        if (line.empty())
            continue;
        JsonValue event;
        try {
            event = JsonValue::parse(line);
        } catch (const std::exception &) {
            continue; // obs_validate owns schema enforcement
        }
        if (!event.isObject() || !event.has("ev") ||
            !event.at("ev").isString())
            continue;
        if (event.at("ev").asString() != names::kEvCacheSnapshot)
            continue;
        if (event.has("hit_rate") &&
            event.at("hit_rate").isNumber())
            hit_rate = event.at("hit_rate").asNumber();
    }
    return hit_rate;
}

} // namespace buffalo::obs
