#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/json.h"
#include "util/table.h"

namespace buffalo::obs {

// ---------------------------------------------------------------------
// ReservoirHistogram

ReservoirHistogram::ReservoirHistogram(std::size_t capacity)
    : capacity_(capacity < 1 ? 1 : capacity),
      // Fixed seed: snapshots are a deterministic function of the
      // insertion sequence, which the tests rely on.
      rng_(0xB0FFA10ULL)
{
    reservoir_.reserve(capacity_);
}

void
ReservoirHistogram::add(double value)
{
    util::MutexLock lock(mutex_);
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    sum_ += value;
    sum_sq_ += value * value;
    ++count_;
    if (reservoir_.size() < capacity_) {
        reservoir_.push_back(value);
        return;
    }
    // Algorithm R: replace a random slot with probability cap/count.
    const std::uint64_t slot = rng_.nextBounded(count_);
    if (slot < capacity_)
        reservoir_[static_cast<std::size_t>(slot)] = value;
}

std::uint64_t
ReservoirHistogram::count() const
{
    util::MutexLock lock(mutex_);
    return count_;
}

namespace {

/** Interpolated percentile over a sorted sample. */
double
sortedPercentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    const double rank =
        p / 100.0 * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

} // namespace

double
ReservoirHistogram::percentile(double p) const
{
    std::vector<double> sample;
    {
        util::MutexLock lock(mutex_);
        sample = reservoir_;
    }
    std::sort(sample.begin(), sample.end());
    return sortedPercentile(sample, p);
}

HistogramSnapshot
ReservoirHistogram::snapshot() const
{
    HistogramSnapshot snap;
    std::vector<double> sample;
    {
        util::MutexLock lock(mutex_);
        snap.count = count_;
        snap.min = min_;
        snap.max = max_;
        snap.mean = count_ == 0
                        ? 0.0
                        : sum_ / static_cast<double>(count_);
        if (count_ > 0) {
            const double mean_sq =
                sum_sq_ / static_cast<double>(count_);
            // Numerical noise can push the variance a hair negative.
            snap.stddev = std::sqrt(
                std::max(0.0, mean_sq - snap.mean * snap.mean));
        }
        sample = reservoir_;
    }
    std::sort(sample.begin(), sample.end());
    snap.p50 = sortedPercentile(sample, 50.0);
    snap.p95 = sortedPercentile(sample, 95.0);
    snap.p99 = sortedPercentile(sample, 99.0);
    snap.p999 = sortedPercentile(sample, 99.9);
    return snap;
}

void
ReservoirHistogram::reset()
{
    util::MutexLock lock(mutex_);
    reservoir_.clear();
    count_ = 0;
    min_ = max_ = sum_ = sum_sq_ = 0.0;
}

// ---------------------------------------------------------------------
// MetricsRegistry

Counter &
MetricsRegistry::counter(std::string_view name)
{
    util::MutexLock lock(mutex_);
    auto it = counters_.find(name);
    if (it == counters_.end())
        it = counters_
                 .emplace(std::string(name),
                          std::make_unique<Counter>())
                 .first;
    return *it->second;
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    util::MutexLock lock(mutex_);
    auto it = gauges_.find(name);
    if (it == gauges_.end())
        it = gauges_
                 .emplace(std::string(name), std::make_unique<Gauge>())
                 .first;
    return *it->second;
}

ReservoirHistogram &
MetricsRegistry::histogram(std::string_view name)
{
    util::MutexLock lock(mutex_);
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_
                 .emplace(std::string(name),
                          std::make_unique<ReservoirHistogram>())
                 .first;
    return *it->second;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    util::MutexLock lock(mutex_);
    for (const auto &[name, counter] : counters_)
        snap.counters.emplace_back(name, counter->value());
    for (const auto &[name, gauge] : gauges_)
        snap.gauges.emplace_back(name, gauge->value());
    for (const auto &[name, histogram] : histograms_)
        snap.histograms.emplace_back(name, histogram->snapshot());
    return snap;
}

std::string
MetricsRegistry::toJson() const
{
    const MetricsSnapshot snap = snapshot();
    JsonWriter w;
    w.beginObject();
    w.key("counters").beginObject();
    for (const auto &[name, value] : snap.counters)
        w.key(name).value(value);
    w.endObject();
    w.key("gauges").beginObject();
    for (const auto &[name, value] : snap.gauges)
        w.key(name).value(value);
    w.endObject();
    w.key("histograms").beginObject();
    for (const auto &[name, h] : snap.histograms) {
        w.key(name).beginObject();
        w.key("count").value(h.count);
        w.key("min").value(h.min);
        w.key("max").value(h.max);
        w.key("mean").value(h.mean);
        w.key("stddev").value(h.stddev);
        w.key("p50").value(h.p50);
        w.key("p95").value(h.p95);
        w.key("p99").value(h.p99);
        w.key("p999").value(h.p999);
        w.endObject();
    }
    w.endObject();
    w.endObject();
    return w.str();
}

void
MetricsRegistry::writeJson(const std::string &path) const
{
    writeFileText(path, toJson());
}

std::string
MetricsRegistry::toTable() const
{
    const MetricsSnapshot snap = snapshot();
    std::ostringstream out;
    {
        util::Table table({"counter", "value"});
        for (const auto &[name, value] : snap.counters)
            table.addRow({name, std::to_string(value)});
        out << table.render();
    }
    {
        util::Table table({"gauge", "value"});
        for (const auto &[name, value] : snap.gauges) {
            char buf[40];
            std::snprintf(buf, sizeof(buf), "%.6g", value);
            table.addRow({name, buf});
        }
        out << table.render();
    }
    {
        util::Table table({"histogram", "count", "min", "mean",
                           "stddev", "p50", "p95", "p99", "p999",
                           "max"});
        for (const auto &[name, h] : snap.histograms) {
            auto fmt = [](double v) {
                char buf[40];
                std::snprintf(buf, sizeof(buf), "%.4g", v);
                return std::string(buf);
            };
            table.addRow({name, std::to_string(h.count), fmt(h.min),
                          fmt(h.mean), fmt(h.stddev), fmt(h.p50),
                          fmt(h.p95), fmt(h.p99), fmt(h.p999),
                          fmt(h.max)});
        }
        out << table.render();
    }
    return out.str();
}

void
MetricsRegistry::reset()
{
    util::MutexLock lock(mutex_);
    for (auto &[name, counter] : counters_)
        counter->reset();
    for (auto &[name, gauge] : gauges_)
        gauge->reset();
    for (auto &[name, histogram] : histograms_)
        histogram->reset();
}

MetricsRegistry &
metrics()
{
    static MetricsRegistry registry;
    return registry;
}

} // namespace buffalo::obs
