#include "obs/event_log.h"

#include "util/errors.h"

namespace buffalo::obs {

// ---------------------------------------------------------------- EventBuilder

EventBuilder::EventBuilder(EventLog *log, const char *type) : log_(log)
{
    writer_.beginObject();
    writer_.key("ts_us").value(log_->nowMicros());
    writer_.key("ev").value(type);
}

EventBuilder::EventBuilder(EventBuilder &&other) noexcept
    : log_(other.log_), writer_(std::move(other.writer_))
{
    other.log_ = nullptr;
}

EventBuilder &
EventBuilder::field(std::string_view key, double value)
{
    if (log_ != nullptr)
        writer_.key(key).value(value);
    return *this;
}

EventBuilder &
EventBuilder::field(std::string_view key, std::uint64_t value)
{
    if (log_ != nullptr)
        writer_.key(key).value(value);
    return *this;
}

EventBuilder &
EventBuilder::field(std::string_view key, std::int64_t value)
{
    if (log_ != nullptr)
        writer_.key(key).value(value);
    return *this;
}

EventBuilder &
EventBuilder::field(std::string_view key, int value)
{
    if (log_ != nullptr)
        writer_.key(key).value(value);
    return *this;
}

EventBuilder &
EventBuilder::field(std::string_view key, bool value)
{
    if (log_ != nullptr)
        writer_.key(key).value(value);
    return *this;
}

EventBuilder &
EventBuilder::field(std::string_view key, std::string_view value)
{
    if (log_ != nullptr)
        writer_.key(key).value(value);
    return *this;
}

EventBuilder &
EventBuilder::field(std::string_view key, const char *value)
{
    return field(key, std::string_view(value));
}

EventBuilder::~EventBuilder()
{
    if (log_ == nullptr)
        return;
    writer_.endObject();
    log_->writeLine(writer_.str());
}

// -------------------------------------------------------------------- EventLog

void
EventLog::open(const std::string &path)
{
    util::MutexLock lock(mutex_);
    // Truncate: a run log documents one run, and ts_us restarts at 0
    // on every open() — appending across runs would interleave clocks
    // (and fail obs_validate's monotone-timestamp check).
    out_.open(path, std::ios::out | std::ios::trunc);
    if (!out_)
        throw Error("EventLog: cannot open run log: " + path);
    events_written_ = 0;
    epoch_ = std::chrono::steady_clock::now();
    enabled_.store(true, std::memory_order_release);
}

void
EventLog::close()
{
    enabled_.store(false, std::memory_order_release);
    util::MutexLock lock(mutex_);
    if (out_.is_open()) {
        out_.flush();
        out_.close();
    }
}

EventBuilder
EventLog::event(const char *type)
{
    if (!enabled())
        return EventBuilder();
    return EventBuilder(this, type);
}

std::uint64_t
EventLog::eventsWritten() const
{
    util::MutexLock lock(mutex_);
    return events_written_;
}

std::uint64_t
EventLog::nowMicros() const
{
    util::MutexLock lock(mutex_);
    const auto delta = std::chrono::steady_clock::now() - epoch_;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(delta)
            .count());
}

void
EventLog::writeLine(const std::string &line)
{
    util::MutexLock lock(mutex_);
    if (!out_.is_open())
        return; // closed between the enabled() check and now
    out_ << line << '\n';
    ++events_written_;
}

EventLog &
eventLog()
{
    static EventLog instance;
    return instance;
}

} // namespace buffalo::obs
