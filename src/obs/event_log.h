/**
 * @file
 * Structured JSONL run log (DESIGN.md, "Memory audit & bench
 * regression"): one JSON object per line, one line per interesting
 * run event — a schedule decision, an explosion split, an OOM retry,
 * a cache hit-rate snapshot, an epoch summary. Unlike the Tracer
 * (sampled spans, bounded rings) the event log is lossless and
 * append-only, which is what makes it greppable/jq-able after a
 * production run.
 *
 * Disabled (the default) an event costs one relaxed atomic load and
 * nothing else; enabled, the emitting thread serializes its line
 * locally and appends it under one short mutex. Event *type* names
 * must come from src/obs/names.h (`buffalo_lint` rule `obs-name`
 * covers `event(` call sites); field keys are free-form literals
 * local to the emitting site.
 *
 * Usage:
 *   obs::eventLog().open("run.jsonl");
 *   obs::eventLog().event(obs::names::kEvSchedulerSchedule)
 *       .field("k", 4)
 *       .field("seconds", 0.012);   // line emitted at end of statement
 */
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>

#include "obs/json.h"
#include "util/thread_annotations.h"

namespace buffalo::obs {

class EventLog;

/**
 * Builder for one JSONL event; the line is emitted when the builder
 * goes out of scope (normally the end of the full expression it was
 * created in). Inert — all calls no-ops — when the log is disabled.
 */
class EventBuilder
{
  public:
    EventBuilder(EventBuilder &&other) noexcept;
    EventBuilder(const EventBuilder &) = delete;
    EventBuilder &operator=(const EventBuilder &) = delete;

    EventBuilder &field(std::string_view key, double value);
    EventBuilder &field(std::string_view key, std::uint64_t value);
    EventBuilder &field(std::string_view key, std::int64_t value);
    EventBuilder &field(std::string_view key, int value);
    EventBuilder &field(std::string_view key, bool value);
    EventBuilder &field(std::string_view key, std::string_view value);
    /** Guards against the const char* -> bool standard conversion. */
    EventBuilder &field(std::string_view key, const char *value);

    /** Emits the line (also done by the destructor). */
    ~EventBuilder();

  private:
    friend class EventLog;

    /** Inert builder (log disabled). */
    EventBuilder() = default;

    EventBuilder(EventLog *log, const char *type);

    EventLog *log_ = nullptr; // null = inert
    JsonWriter writer_;
};

/**
 * A process-wide JSONL event sink. Thread-safe; events from
 * concurrent threads interleave whole-line, never intra-line.
 */
class EventLog
{
  public:
    EventLog() = default;
    EventLog(const EventLog &) = delete;
    EventLog &operator=(const EventLog &) = delete;

    /**
     * Opens (truncating) @p path and enables the log.
     * @throws Error when the file cannot be opened.
     */
    void open(const std::string &path) BUFFALO_EXCLUDES(mutex_);

    /** Flushes and disables; subsequent events are dropped cheaply. */
    void close() BUFFALO_EXCLUDES(mutex_);

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Starts an event of @p type (a constant from obs/names.h with
     * static storage duration). The returned builder emits its line
     * when destroyed; when the log is disabled the builder is inert.
     */
    EventBuilder event(const char *type);

    /** Lines emitted since open(). */
    std::uint64_t eventsWritten() const BUFFALO_EXCLUDES(mutex_);

  private:
    friend class EventBuilder;

    /** Microseconds since open() (monotonic). */
    std::uint64_t nowMicros() const BUFFALO_EXCLUDES(mutex_);

    void writeLine(const std::string &line) BUFFALO_EXCLUDES(mutex_);

    std::atomic<bool> enabled_{false};

    mutable util::Mutex mutex_;
    std::ofstream out_ BUFFALO_GUARDED_BY(mutex_);
    std::uint64_t events_written_ BUFFALO_GUARDED_BY(mutex_) = 0;
    std::chrono::steady_clock::time_point epoch_
        BUFFALO_GUARDED_BY(mutex_);
};

/** The process-wide event log the built-in instrumentation feeds. */
EventLog &eventLog();

} // namespace buffalo::obs
