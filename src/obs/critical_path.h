/**
 * @file
 * Critical-path attribution over causal span chains (DESIGN.md,
 * "Critical-path attribution").
 *
 * Input: item-attributed spans — every micro-batch (training) or
 * batch plan (serving) carries a stable item id through the pipeline,
 * so its sample/build/feature/compute (or prep/forward) spans link
 * into one chain even though each stage ran on a different thread.
 *
 * The analyzer walks backwards from the globally last-ending span.
 * Each span's *binding predecessor* is the later-ending of
 *   (a) the previous stage of the same item   (parent/child edge) and
 *   (b) the previous item in the same stage   (follows-from edge —
 *       a single-threaded stage serializes its items),
 * i.e. whichever dependency actually released the span to finish.
 * Walking that chain decomposes the run's wall time into per-stage
 * *self time* (the stage was the critical activity) plus *idle* (a
 * gap where the next critical span had not started yet — queue wait
 * or startup); self times + idle always sum to the wall exactly.
 *
 * What-if bounds re-run the classic pipeline recurrence
 *   t[i][s] = max(t[i-1][s], t[i][s-1]) + d[i][s] * scale[s]
 * over the measured per-item stage durations: scale 1 everywhere is
 * the perfect-overlap bound (no queue gating, infinite buffers);
 * scaling the feature stage by zeroCacheMissScale(hit_rate) models a
 * fully-warm feature cache; scaling the build stage by 1/N models an
 * N-times-faster block generator.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace buffalo::obs {

/** One item-attributed span, as reassembled from a trace. */
struct CpSpan
{
    /** Stage name (span name in the trace). */
    std::string stage;
    /** Causal item id (micro-batch / plan); must be nonzero. */
    std::uint64_t item = 0;
    double start_us = 0.0;
    double end_us = 0.0;
    std::uint32_t tid = 0;
};

/** Per-stage accounting in a CriticalPathReport. */
struct CpStageReport
{
    std::string stage;
    /** Spans of this stage that entered chains. */
    std::size_t spans = 0;
    /** Total busy time (sum of span durations). */
    double busy_us = 0.0;
    /** Self time on the critical path. */
    double cp_self_us = 0.0;
    /** cp_self_us / wall_us. */
    double cp_share = 0.0;
};

/** One modeled what-if bound. */
struct CpWhatIf
{
    std::string name;
    /** Modeled wall time under the scenario. */
    double wall_us = 0.0;
    /** Measured wall / modeled wall (>= 1 means faster). */
    double speedup = 0.0;
};

/** Critical-path decomposition of one run or epoch. */
struct CriticalPathReport
{
    /** Distinct item ids seen. */
    std::size_t items = 0;
    /** Item-attributed spans analyzed. */
    std::size_t spans = 0;
    /** Items missing at least one stage other items have (dropped
     *  spans or ring overwrites truncated their chains). */
    std::size_t incomplete_items = 0;

    /** Last span end minus first span start. */
    double wall_us = 0.0;
    /** Sum of all span durations (the no-overlap serial cost). */
    double serial_us = 0.0;
    /** Critical-path gaps (queue wait / startup), wall - sum(self). */
    double idle_us = 0.0;
    /** min(1, serial/wall): 1 = the pipeline kept some stage busy
     *  the whole run; < 1 = idle gaps on the critical path. */
    double overlap_efficiency = 0.0;
    /** serial/wall uncapped — mean number of concurrently busy
     *  stages (> 1 means overlap is hiding work). */
    double avg_concurrency = 0.0;

    /** Stage with the largest critical-path self time. */
    std::string dominant_stage;
    /** Its share of the wall. */
    double dominant_share = 0.0;

    /** Stages in pipeline order. */
    std::vector<CpStageReport> stages;
    std::vector<CpWhatIf> whatifs;
};

/** Analyzer knobs. */
struct CpOptions
{
    /**
     * Pipeline stage order, upstream first. Empty = inferred by each
     * stage's mean start-rank within its item's chain.
     */
    std::vector<std::string> stage_order;
    /** Feature-cache hit rate for the zero-cache-miss what-if; < 0 =
     *  unknown (the bound is skipped). */
    double cache_hit_rate = -1.0;
    /** Stage the cache what-if scales (feature loading). */
    std::string feature_stage;
    /** Stage the N-times-faster what-if scales (block generation). */
    std::string build_stage;
};

/**
 * Runs the critical-path walk and what-if models over @p spans.
 * Spans with item == 0 are ignored; an empty input yields an empty
 * report (items == 0).
 */
CriticalPathReport analyzeCriticalPath(std::vector<CpSpan> spans,
                                       const CpOptions &options = {});

/**
 * Analyzes a pipeline from measured per-item stage durations instead
 * of timestamps: synthesizes each item's spans at the times the
 * pipeline recurrence admits them (infinite buffers) and runs
 * analyzeCriticalPath. This is how the PipelineTrainer attributes an
 * epoch without requiring the tracer to be on: the per-batch
 * sample/build/feature/device durations are always measured.
 *
 * @p item_stage_seconds[i][s] is item i's duration in stage
 * @p stage_order[s] (rows may be ragged; missing stages are 0).
 */
CriticalPathReport analyzeModeledPipeline(
    const std::vector<std::string> &stage_order,
    const std::vector<std::vector<double>> &item_stage_seconds,
    const CpOptions &options = {});

/** serial/wall capped to [0, 1]; 0 when either input is <= 0. */
double overlapEfficiency(double serial_seconds, double wall_seconds);

/**
 * Duration scale of the feature stage if every cache miss became a
 * hit, given the measured hit rate: a hit costs @p kappa of a miss
 * (lookup + copy vs. a full feature fill), so the stage currently
 * costs (1-h) + h*kappa per unit and would cost kappa fully warm.
 * Returns 1 for h >= 1 (already all hits) and kappa for h == 0.
 */
double zeroCacheMissScale(double hit_rate, double kappa = 0.25);

/**
 * Loads the item-attributed spans (args.item != 0) from a Chrome
 * trace-event JSON file written by Tracer::writeJson. Unattributed
 * spans are skipped. @throws Error / InvalidArgument on bad input.
 */
std::vector<CpSpan> loadTraceSpans(const std::string &path);

/**
 * Extracts the last cache.snapshot hit_rate from a JSONL run log,
 * or -1 when the file has none (no cache enabled).
 */
double cacheHitRateFromRunLog(const std::string &path);

} // namespace buffalo::obs
