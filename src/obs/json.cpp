#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/errors.h"

namespace buffalo::obs {

// ---------------------------------------------------------------------
// Parsing

struct JsonValue::Parser
{
    std::string_view text;
    std::size_t pos = 0;

    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw InvalidArgument("JsonValue::parse: " + why +
                              " at offset " + std::to_string(pos));
    }

    void
    skipWhitespace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    char
    peek()
    {
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos;
    }

    bool
    consume(std::string_view word)
    {
        if (text.substr(pos, word.size()) != word)
            return false;
        pos += word.size();
        return true;
    }

    JsonValue
    parseValue()
    {
        skipWhitespace();
        const char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"') {
            JsonValue v;
            v.kind_ = Kind::String;
            v.string_ = parseString();
            return v;
        }
        if (consume("true")) {
            JsonValue v;
            v.kind_ = Kind::Bool;
            v.bool_ = true;
            return v;
        }
        if (consume("false")) {
            JsonValue v;
            v.kind_ = Kind::Bool;
            v.bool_ = false;
            return v;
        }
        if (consume("null"))
            return JsonValue();
        return parseNumber();
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= text.size())
                fail("unterminated string");
            const char c = text[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos >= text.size())
                fail("unterminated escape");
            const char e = text[pos++];
            switch (e) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'n': out.push_back('\n'); break;
            case 'r': out.push_back('\r'); break;
            case 't': out.push_back('\t'); break;
            case 'u': {
                if (pos + 4 > text.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                // Exporters only escape ASCII; decode BMP code points
                // to UTF-8 so round-trips stay lossless.
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(
                        static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(
                        static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
            }
            default:
                fail("unknown escape");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        const std::size_t begin = pos;
        if (peek() == '-')
            ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '+' ||
                text[pos] == '-'))
            ++pos;
        if (pos == begin)
            fail("expected a value");
        const std::string token(text.substr(begin, pos - begin));
        std::size_t used = 0;
        double number = 0.0;
        try {
            number = std::stod(token, &used);
        } catch (const std::exception &) {
            fail("malformed number '" + token + "'");
        }
        if (used != token.size())
            fail("malformed number '" + token + "'");
        JsonValue v;
        v.kind_ = Kind::Number;
        v.number_ = number;
        return v;
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v;
        v.kind_ = Kind::Array;
        skipWhitespace();
        if (peek() == ']') {
            ++pos;
            return v;
        }
        while (true) {
            v.items_.push_back(parseValue());
            skipWhitespace();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v.kind_ = Kind::Object;
        skipWhitespace();
        if (peek() == '}') {
            ++pos;
            return v;
        }
        while (true) {
            skipWhitespace();
            std::string key = parseString();
            skipWhitespace();
            expect(':');
            v.index_.emplace(key, v.items_.size());
            v.items_.push_back(parseValue());
            v.keys_.push_back(std::move(key));
            skipWhitespace();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect('}');
            return v;
        }
    }
};

JsonValue
JsonValue::parse(std::string_view text)
{
    Parser parser{text};
    JsonValue v = parser.parseValue();
    parser.skipWhitespace();
    if (parser.pos != text.size())
        parser.fail("trailing content");
    return v;
}

bool
JsonValue::asBool() const
{
    checkArgument(kind_ == Kind::Bool, "JsonValue: not a bool");
    return bool_;
}

double
JsonValue::asNumber() const
{
    checkArgument(kind_ == Kind::Number, "JsonValue: not a number");
    return number_;
}

const std::string &
JsonValue::asString() const
{
    checkArgument(kind_ == Kind::String, "JsonValue: not a string");
    return string_;
}

std::size_t
JsonValue::size() const
{
    return items_.size();
}

const JsonValue &
JsonValue::at(std::size_t index) const
{
    checkArgument(kind_ == Kind::Array, "JsonValue: not an array");
    checkArgument(index < items_.size(),
                  "JsonValue: array index out of range");
    return items_[index];
}

bool
JsonValue::has(std::string_view key) const
{
    return kind_ == Kind::Object && index_.find(key) != index_.end();
}

const JsonValue &
JsonValue::at(std::string_view key) const
{
    checkArgument(kind_ == Kind::Object, "JsonValue: not an object");
    const auto it = index_.find(key);
    checkArgument(it != index_.end(),
                  "JsonValue: no member '" + std::string(key) + "'");
    return items_[it->second];
}

// ---------------------------------------------------------------------
// Writing

std::string
readFileText(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw Error("readFileText: cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void
writeFileText(const std::string &path, std::string_view text)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw Error("writeFileText: cannot open '" + path + "'");
    out << text << '\n';
    if (!out)
        throw Error("writeFileText: write failed for '" + path + "'");
}

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

void
JsonWriter::separate()
{
    if (pending_key_) {
        pending_key_ = false;
        return;
    }
    if (needs_comma_.back())
        out_.push_back(',');
    needs_comma_.back() = true;
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    out_.push_back('{');
    needs_comma_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    out_.push_back('}');
    needs_comma_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    out_.push_back('[');
    needs_comma_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    out_.push_back(']');
    needs_comma_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    separate();
    out_.push_back('"');
    out_ += jsonEscape(name);
    out_ += "\":";
    pending_key_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view text)
{
    separate();
    out_.push_back('"');
    out_ += jsonEscape(text);
    out_.push_back('"');
    return *this;
}

JsonWriter &
JsonWriter::value(const char *text)
{
    return value(std::string_view(text));
}

JsonWriter &
JsonWriter::value(double number)
{
    separate();
    if (!std::isfinite(number)) {
        // JSON has no Inf/NaN; null keeps the document parseable.
        out_ += "null";
        return *this;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", number);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t number)
{
    separate();
    out_ += std::to_string(number);
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t number)
{
    separate();
    out_ += std::to_string(number);
    return *this;
}

JsonWriter &
JsonWriter::value(int number)
{
    return value(static_cast<std::int64_t>(number));
}

JsonWriter &
JsonWriter::value(bool flag)
{
    separate();
    out_ += flag ? "true" : "false";
    return *this;
}

void
JsonWriter::writeFile(const std::string &path) const
{
    writeFileText(path, out_);
}

} // namespace buffalo::obs
