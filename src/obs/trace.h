/**
 * @file
 * The tracing half of the observability layer (DESIGN.md,
 * "Observability"): RAII scoped spans recorded into per-thread ring
 * buffers and exported as Chrome trace-event JSON (loadable in
 * about://tracing or Perfetto).
 *
 * The tracer is globally disabled by default; a disabled Span costs
 * one relaxed atomic load and nothing else, which is what keeps the
 * instrumented trainers' overhead under the 5% budget. When enabled,
 * each span takes one steady_clock read at open and, at close, a
 * second read plus a push into its thread's bounded ring buffer
 * (guarded by a per-thread mutex that is only ever contended by an
 * exporting reader). The ring overwrites its oldest spans when full
 * and counts the overwrites, so tracing never grows unbounded.
 *
 * Spans may carry an *item id* — the stable per-micro-batch (or
 * per-request-plan) identity that links one item's spans across
 * stage threads into a causal chain (DESIGN.md, "Critical-path
 * attribution"). Item 0 means unattributed; attributed spans export
 * the id as `args.item` in the trace JSON, which is what
 * obs::loadTraceSpans / tools/buffalo_profile reassemble chains from.
 *
 * Span names must have static storage duration (string literals or
 * phaseName() results) — the ring stores the pointer, not a copy.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

namespace buffalo::obs {

/** One closed span, timestamps in microseconds since tracer start. */
struct SpanRecord
{
    const char *name = nullptr;
    double start_us = 0.0;
    double duration_us = 0.0;
    /** Causal item id (micro-batch / plan); 0 = unattributed. */
    std::uint64_t item = 0;
};

class Tracer;

/** Tracer construction knobs (CLI `--trace-ring`). */
struct TracerOptions
{
    /** Spans each thread's ring buffer retains before overwriting. */
    std::size_t ring_capacity = 1 << 16;
};

/**
 * RAII scope that records its lifetime as a span on the tracer.
 * No-op (a single atomic load) while the tracer is disabled.
 */
class Span
{
  public:
    /** Opens a span named @p name on the global tracer(). */
    explicit Span(const char *name);

    /** Opens an item-attributed span on the global tracer(). */
    Span(const char *name, std::uint64_t item);

    /** Opens a span on a specific tracer (tests). */
    Span(Tracer &tracer, const char *name);

    /** Opens an item-attributed span on a specific tracer (tests). */
    Span(Tracer &tracer, const char *name, std::uint64_t item);

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    ~Span();

  private:
    Tracer *tracer_ = nullptr; // null when disabled at construction
    const char *name_ = nullptr;
    double start_us_ = 0.0;
    std::uint64_t item_ = 0;
};

/** Per-thread span-drop accounting (ring-buffer overwrites). */
struct ThreadDropReport
{
    std::uint32_t tid = 0;
    std::uint64_t dropped = 0;
};

/** Collects spans from all threads; exports Chrome trace JSON. */
class Tracer
{
  public:
    /** Spans each thread's ring buffer retains before overwriting. */
    static constexpr std::size_t kDefaultRingCapacity = 1 << 16;

    explicit Tracer(std::size_t ring_capacity = kDefaultRingCapacity);

    explicit Tracer(const TracerOptions &options);

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Starts recording spans. */
    void enable();

    /** Stops recording; buffered spans are kept for export. */
    void disable();

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Reconfigures the per-thread ring capacity (`--trace-ring`).
     * Call before enable(); rings that already exceed a shrunken
     * capacity keep their buffered spans but stop growing.
     */
    void setRingCapacity(std::size_t ring_capacity);

    std::size_t
    ringCapacity() const
    {
        return ring_capacity_.load(std::memory_order_relaxed);
    }

    /** Microseconds since the tracer's epoch (monotonic). */
    double nowMicros() const;

    /**
     * Records a closed span for the calling thread. Instrumentation
     * normally goes through Span; this entry point exists for spans
     * whose lifetime is not a C++ scope. @p name must have static
     * storage duration. @p item is the causal item id (0 = none).
     */
    void record(const char *name, double start_us, double duration_us,
                std::uint64_t item = 0);

    /** Spans currently buffered across all threads. */
    std::size_t spanCount() const;

    /** Spans overwritten because a ring buffer was full. */
    std::uint64_t droppedSpans() const;

    /** Per-thread drop counts, tid-ordered (threads with zero drops
     *  included, so callers can report ring utilization). */
    std::vector<ThreadDropReport> droppedByThread() const;

    /**
     * Chrome trace-event export: a JSON array of complete ("ph":"X")
     * events {name, ph, ts, dur, pid, tid}, sorted by start time.
     * Item-attributed spans additionally carry {"args":{"item":N}}.
     */
    std::string toJson() const;

    /** Writes toJson() to @p path (throws Error on failure). */
    void writeJson(const std::string &path) const;

    /** Discards all buffered spans (thread registrations persist). */
    void clear();

  private:
    struct ThreadBuffer
    {
        explicit ThreadBuffer(std::uint32_t id) : tid(id) {}

        std::uint32_t tid;
        mutable util::Mutex mutex;
        /** Ring storage; write cursor wraps at capacity. */
        std::vector<SpanRecord> ring BUFFALO_GUARDED_BY(mutex);
        std::size_t next BUFFALO_GUARDED_BY(mutex) = 0;
        std::uint64_t total BUFFALO_GUARDED_BY(mutex) = 0;
    };

    /** The calling thread's buffer (created and cached on first use). */
    ThreadBuffer &threadBuffer() BUFFALO_EXCLUDES(registry_mutex_);

    std::atomic<bool> enabled_{false};
    std::atomic<std::size_t> ring_capacity_;
    std::chrono::steady_clock::time_point epoch_;
    /** Process-unique instance id: the per-thread buffer cache keys
     *  on (address, id) so a tracer constructed at a destroyed
     *  tracer's address cannot satisfy a stale cache entry. */
    std::uint64_t instance_id_;

    mutable util::Mutex registry_mutex_;
    /** Buffer pointers are stable; each buffer has its own lock. */
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_
        BUFFALO_GUARDED_BY(registry_mutex_);
};

/** The process-wide tracer the built-in instrumentation reports to. */
Tracer &tracer();

} // namespace buffalo::obs
