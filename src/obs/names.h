/**
 * @file
 * The central registry of observability name literals (DESIGN.md,
 * "Observability"). Every span and metric name in the codebase lives
 * here, once: instrumentation sites, `obs_validate --expect-* @core`,
 * and `tools/ci.sh` all reference these constants, so a renamed span
 * cannot silently drift apart from the CI expectations that gate on
 * it. `tools/buffalo_lint` rejects raw name literals at call sites
 * (rule `obs-name`) to keep it that way.
 *
 * Constants are grouped by kind (span / counter / gauge / histogram)
 * and named k<Kind><Subsystem><What>. All values are dotted lowercase
 * paths, `<subsystem>.<what>`. The arrays at the bottom are the core
 * sets a smoke-test epoch must produce; ci.sh gates on them via
 * `obs_validate --expect-spans @core --expect-metrics @core`.
 */
#pragma once

namespace buffalo::obs::names {

// --- Tracer spans (static storage duration, as Tracer requires) ----
inline constexpr char kSpanTrainEpoch[] = "train.epoch";
inline constexpr char kSpanTrainIteration[] = "train.iteration";
inline constexpr char kSpanTrainMicroBatch[] = "train.micro_batch";
inline constexpr char kSpanPipelineSample[] = "pipeline.sample";
inline constexpr char kSpanPipelineBuild[] = "pipeline.build";
inline constexpr char kSpanPipelineFeature[] = "pipeline.feature";
inline constexpr char kSpanSchedulerSchedule[] = "scheduler.schedule";
inline constexpr char kSpanBlockgenFast[] = "blockgen.fast";
inline constexpr char kSpanBlockgenBaseline[] = "blockgen.baseline";
inline constexpr char kSpanServePrep[] = "serve.prep";
inline constexpr char kSpanServeForward[] = "serve.forward";

// --- Counters ------------------------------------------------------
inline constexpr char kCtrTrainEpochs[] = "train.epochs";
inline constexpr char kCtrTrainMicroBatches[] = "train.micro_batches";
inline constexpr char kCtrTrainOomRetries[] = "train.oom_retries";
inline constexpr char kCtrPipelineEpochs[] = "pipeline.epochs";
inline constexpr char kCtrSchedulerSchedules[] = "scheduler.schedules";
inline constexpr char kCtrSchedulerKAttempts[] =
    "scheduler.k_attempts";
inline constexpr char kCtrSchedulerExplosionSplits[] =
    "scheduler.explosion_splits";
inline constexpr char kCtrBlockgenBlocks[] = "blockgen.blocks";
inline constexpr char kCtrBlockgenNodes[] = "blockgen.nodes";
inline constexpr char kCtrBlockgenEdges[] = "blockgen.edges";
inline constexpr char kCtrDeviceTransferBytes[] =
    "device.transfer_bytes";
inline constexpr char kCtrDeviceTransferSavedBytes[] =
    "device.transfer_saved_bytes";
inline constexpr char kCtrDeviceOomEvents[] = "device.oom_events";

// --- Counters: memory audit ----------------------------------------
inline constexpr char kCtrAuditGroups[] = "audit.groups";

// --- Counters: feature-cache policies ------------------------------
// Micro-batches the startup presample pass sampled to build the
// frequency table (PresampleFrequencyPolicy only).
inline constexpr char kCtrCachePresampleBatches[] =
    "cache.presample_batches";

// --- Counters: serving (DESIGN.md, "Serving") ----------------------
// requests = everything submitted; shed = rejected at admission
// (queue full); expired = dropped past their deadline before a
// worker saw them; completed = responses produced (deadline met or
// not); errors = forward-pass failures; batches = micro-batches
// executed; deadline_misses = completed but past deadline.
inline constexpr char kCtrServeRequests[] = "serve.requests";
inline constexpr char kCtrServeShed[] = "serve.shed";
inline constexpr char kCtrServeExpired[] = "serve.expired";
inline constexpr char kCtrServeCompleted[] = "serve.completed";
inline constexpr char kCtrServeErrors[] = "serve.errors";
inline constexpr char kCtrServeBatches[] = "serve.batches";
inline constexpr char kCtrServeDeadlineMisses[] =
    "serve.deadline_misses";

// --- Counters: compute kernels (DESIGN.md, "Compute kernels") ------
// Per-op-class call counts, cumulative nanoseconds, and bytes moved,
// recorded by tensor::kernels::OpTimer; gemm_flops counts multiply-add
// work (2*m*n*k per GEMM). parallel_ops / serial_ops count dispatch
// decisions (grain policy, nesting, thread budget).
inline constexpr char kCtrKernelsGemmCalls[] = "kernels.gemm_calls";
inline constexpr char kCtrKernelsGemmNanos[] = "kernels.gemm_nanos";
inline constexpr char kCtrKernelsGemmBytes[] = "kernels.gemm_bytes";
inline constexpr char kCtrKernelsGemmFlops[] = "kernels.gemm_flops";
inline constexpr char kCtrKernelsElementwiseCalls[] =
    "kernels.elementwise_calls";
inline constexpr char kCtrKernelsElementwiseNanos[] =
    "kernels.elementwise_nanos";
inline constexpr char kCtrKernelsElementwiseBytes[] =
    "kernels.elementwise_bytes";
inline constexpr char kCtrKernelsGatherCalls[] =
    "kernels.gather_calls";
inline constexpr char kCtrKernelsGatherNanos[] =
    "kernels.gather_nanos";
inline constexpr char kCtrKernelsGatherBytes[] =
    "kernels.gather_bytes";
inline constexpr char kCtrKernelsAggCalls[] = "kernels.agg_calls";
inline constexpr char kCtrKernelsAggNanos[] = "kernels.agg_nanos";
inline constexpr char kCtrKernelsAggBytes[] = "kernels.agg_bytes";
inline constexpr char kCtrKernelsParallelOps[] =
    "kernels.parallel_ops";
inline constexpr char kCtrKernelsSerialOps[] = "kernels.serial_ops";

// --- Gauges --------------------------------------------------------
inline constexpr char kGaugeTrainPeakDeviceBytes[] =
    "train.peak_device_bytes";
inline constexpr char kGaugeDevicePeakBytes[] = "device.peak_bytes";
inline constexpr char kGaugePipelineSampleBusySeconds[] =
    "pipeline.sample_busy_seconds";
inline constexpr char kGaugePipelineBuildBusySeconds[] =
    "pipeline.build_busy_seconds";
inline constexpr char kGaugePipelineFeatureBusySeconds[] =
    "pipeline.feature_busy_seconds";
inline constexpr char kGaugePipelineMaxSampledQueue[] =
    "pipeline.max_sampled_queue";
inline constexpr char kGaugePipelineMaxBuiltQueue[] =
    "pipeline.max_built_queue";
inline constexpr char kGaugePipelineMaxReadyQueue[] =
    "pipeline.max_ready_queue";
inline constexpr char kGaugePipelinePeakHostBytes[] =
    "pipeline.peak_host_bytes";
inline constexpr char kGaugeCacheHits[] = "cache.hits";
inline constexpr char kGaugeCacheMisses[] = "cache.misses";
inline constexpr char kGaugeCacheHitRate[] = "cache.hit_rate";
inline constexpr char kGaugeCacheBytesInUse[] = "cache.bytes_in_use";
inline constexpr char kGaugeCacheResidentNodes[] =
    "cache.resident_nodes";
inline constexpr char kGaugeCachePinnedNodes[] =
    "cache.pinned_nodes";
inline constexpr char kGaugeCachePresampleSeconds[] =
    "cache.presample_seconds";
inline constexpr char kGaugeTracerDroppedSpans[] =
    "tracer.dropped_spans";
inline constexpr char kGaugeAuditMeanAbsRelError[] =
    "audit.mean_abs_rel_error";
inline constexpr char kGaugeAuditMaxAbsRelError[] =
    "audit.max_abs_rel_error";
inline constexpr char kGaugeServeGoodputQps[] = "serve.goodput_qps";
inline constexpr char kGaugeServeShedRate[] = "serve.shed_rate";
inline constexpr char kGaugeServeMaxQueueDepth[] =
    "serve.max_queue_depth";

// --- Histograms ----------------------------------------------------
inline constexpr char kHistSchedulerEstimateRelError[] =
    "scheduler.estimate_rel_error";
inline constexpr char kHistSchedulerNumGroups[] =
    "scheduler.num_groups";
inline constexpr char kHistSchedulerScheduleSeconds[] =
    "scheduler.schedule_seconds";
inline constexpr char kHistPipelineOverlapRatio[] =
    "pipeline.overlap_ratio";
inline constexpr char kHistBlockgenLayerNodes[] =
    "blockgen.layer_nodes";
inline constexpr char kHistBlockgenLayerEdges[] =
    "blockgen.layer_edges";
inline constexpr char kHistServeLatencyMs[] = "serve.latency_ms";
inline constexpr char kHistServeQueueMs[] = "serve.queue_ms";
inline constexpr char kHistServeBatchSize[] = "serve.batch_size";

// --- Histograms: queue wait/service decomposition ------------------
// Per-item time decomposition at every pipeline handoff (DESIGN.md,
// "Critical-path attribution"): `wait_ms` is how long an item sat in
// the queue before its consumer dequeued it; `service_ms` is how long
// the consumer then worked on it. Training pipeline queues
// (sampled/built/ready) and the serve tier (admit/plans/prepared)
// share the naming scheme `queue.<name>.{wait,service}_ms`.
inline constexpr char kHistQueueSampledWaitMs[] =
    "queue.sampled.wait_ms";
inline constexpr char kHistQueueSampledServiceMs[] =
    "queue.sampled.service_ms";
inline constexpr char kHistQueueBuiltWaitMs[] =
    "queue.built.wait_ms";
inline constexpr char kHistQueueBuiltServiceMs[] =
    "queue.built.service_ms";
inline constexpr char kHistQueueReadyWaitMs[] =
    "queue.ready.wait_ms";
inline constexpr char kHistQueueReadyServiceMs[] =
    "queue.ready.service_ms";
inline constexpr char kHistQueueAdmitWaitMs[] =
    "queue.admit.wait_ms";
inline constexpr char kHistQueueAdmitServiceMs[] =
    "queue.admit.service_ms";
inline constexpr char kHistQueuePlansWaitMs[] =
    "queue.plans.wait_ms";
inline constexpr char kHistQueuePlansServiceMs[] =
    "queue.plans.service_ms";
inline constexpr char kHistQueuePreparedWaitMs[] =
    "queue.prepared.wait_ms";
inline constexpr char kHistQueuePreparedServiceMs[] =
    "queue.prepared.service_ms";

// --- Gauges: critical-path attribution -----------------------------
// Published per pipelined epoch from the EpochReport's critical-path
// section (obs/critical_path.h).
inline constexpr char kGaugeCpWallSeconds[] = "cp.wall_seconds";
inline constexpr char kGaugeCpSerialSeconds[] = "cp.serial_seconds";
inline constexpr char kGaugeCpOverlapEfficiency[] =
    "cp.overlap_efficiency";
inline constexpr char kGaugeCpDominantShare[] = "cp.dominant_share";

// --- Event-log event types (`obs::eventLog().event(...)`) ----------
// JSONL run-log vocabulary (DESIGN.md, "Memory audit & bench
// regression"). Same dotted naming scheme as spans; an event type
// may intentionally share its string with the span that brackets the
// same work (e.g. scheduler.schedule).
inline constexpr char kEvRunBegin[] = "run.begin";
inline constexpr char kEvRunEnd[] = "run.end";
inline constexpr char kEvSchedulerSchedule[] = "scheduler.schedule";
inline constexpr char kEvSchedulerExplosionSplit[] =
    "scheduler.explosion_split";
inline constexpr char kEvTrainOomRetry[] = "train.oom_retry";
inline constexpr char kEvTrainEpochSummary[] = "train.epoch_summary";
inline constexpr char kEvCacheSnapshot[] = "cache.snapshot";
/** Emitted when a cache policy is built (makeCachePolicy): policy
 *  name plus the presample pass cost when one ran. */
inline constexpr char kEvCachePolicy[] = "cache.policy";
inline constexpr char kEvDeviceOom[] = "device.oom";
inline constexpr char kEvServeBatch[] = "serve.batch";
inline constexpr char kEvServeSummary[] = "serve.summary";
/** Emitted by the atexit-safe flush path (obs/flush.h) just before
 *  the run log is closed, whether the exit was clean or early. */
inline constexpr char kEvRunFlush[] = "run.flush";
/** Periodic queue-depth snapshot from the QueueDepthSampler
 *  (obs/queue_telemetry.h): {queue, depth}. */
inline constexpr char kEvQueueDepth[] = "queue.depth";
/** Per-epoch critical-path summary: wall/serial seconds, overlap
 *  efficiency, and the dominant stage with its share. */
inline constexpr char kEvCpReport[] = "cp.report";
/** Per-thread tracer ring accounting at end of run: {tid, dropped,
 *  capacity}; emitted only for threads that overwrote spans. */
inline constexpr char kEvTracerRing[] = "tracer.ring";

// --- Core CI expectations (`obs_validate --expect-* @core`) --------
// Spans any pipelined smoke epoch must record.
inline constexpr const char *kCoreSpans[] = {
    kSpanTrainEpoch,
    kSpanTrainIteration,
    kSpanPipelineSample,
};

// Metrics any pipelined smoke epoch must register. The kernel
// counters require Numeric execution (cost-model epochs never run
// numeric kernels), which the ci.sh smoke epoch uses.
inline constexpr const char *kCoreMetrics[] = {
    kCtrTrainEpochs,
    kCtrSchedulerSchedules,
    kCtrKernelsGemmCalls,
    kCtrKernelsSerialOps,
    kGaugeDevicePeakBytes,
    kGaugeTracerDroppedSpans,
};

// Event types any pipelined smoke run (`--run-log`) must emit.
inline constexpr const char *kCoreEvents[] = {
    kEvRunBegin,
    kEvSchedulerSchedule,
    kEvTrainEpochSummary,
    kEvRunEnd,
};

// --- Serve CI expectations (`obs_validate --expect-* @serve`) ------
// What any buffalo_serve smoke run must produce; kept separate from
// @core because training smokes never touch the serve path.
inline constexpr const char *kServeSpans[] = {
    kSpanServePrep,
    kSpanServeForward,
};

inline constexpr const char *kServeMetrics[] = {
    kCtrServeRequests,
    kCtrServeCompleted,
    kCtrServeBatches,
    kGaugeServeGoodputQps,
    kHistServeLatencyMs,
    kHistQueueAdmitWaitMs,
    kHistQueueAdmitServiceMs,
    kHistQueuePlansWaitMs,
    kHistQueuePlansServiceMs,
    kHistQueuePreparedWaitMs,
    kHistQueuePreparedServiceMs,
};

inline constexpr const char *kServeEvents[] = {
    kEvRunBegin,
    kEvServeSummary,
    kEvQueueDepth,
    kEvRunFlush,
    kEvRunEnd,
};

// --- Cache CI expectations (`obs_validate --expect-* @cache`) ------
// Metrics any cache-enabled run with `--cache-policy presample` must
// register — both the ci.sh smoke epoch and the serving smoke enable
// the cache with the presample policy, so they share this list.
inline constexpr const char *kCacheMetrics[] = {
    kGaugeCacheHits,
    kGaugeCacheMisses,
    kGaugeCacheHitRate,
    kGaugeCachePinnedNodes,
    kCtrCachePresampleBatches,
    kGaugeCachePresampleSeconds,
};

// Event types any cache-enabled run must log: the policy-build event
// (with the presample cost) and the end-of-run cache snapshot.
inline constexpr const char *kCacheEvents[] = {
    kEvCachePolicy,
    kEvCacheSnapshot,
};

// --- Critical-path CI expectations (`obs_validate ... @cp`) --------
// What any pipelined training smoke must additionally produce once
// critical-path attribution is on: the per-epoch cp.* gauges and the
// wait/service histograms of the three prefetch handoffs. Serve runs
// use the queue.{admit,plans,prepared}.* names in @serve instead.
inline constexpr const char *kCpMetrics[] = {
    kGaugeCpWallSeconds,
    kGaugeCpSerialSeconds,
    kGaugeCpOverlapEfficiency,
    kGaugeCpDominantShare,
    kHistQueueSampledWaitMs,
    kHistQueueSampledServiceMs,
    kHistQueueBuiltWaitMs,
    kHistQueueBuiltServiceMs,
    kHistQueueReadyWaitMs,
    kHistQueueReadyServiceMs,
};

// Event types a pipelined training smoke with `--run-log` must emit:
// the epoch critical-path report and at least one queue-depth sample.
inline constexpr const char *kCpEvents[] = {
    kEvCpReport,
    kEvQueueDepth,
};

} // namespace buffalo::obs::names
