/**
 * @file
 * Minimal JSON support for the observability exporters: a streaming
 * writer (used to emit Chrome trace-event and metrics files without
 * materializing a DOM) and a small recursive-descent parser (used by
 * the schema round-trip tests and the obs_validate CI tool).
 *
 * Deliberately not a general-purpose JSON library: numbers are stored
 * as double, object keys keep insertion order, and inputs larger than
 * a trace file was ever going to be are out of scope.
 */
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace buffalo::obs {

/** A parsed JSON document node. */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;

    /**
     * Parses @p text as one JSON document (trailing whitespace only).
     * @throws buffalo::InvalidArgument on malformed input.
     */
    static JsonValue parse(std::string_view text);

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Value accessors; throw InvalidArgument on kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;

    /** Array element count / object member count. */
    std::size_t size() const;

    /** Array element @p index (throws when out of range / not array). */
    const JsonValue &at(std::size_t index) const;

    /** True when this is an object with member @p key. */
    bool has(std::string_view key) const;

    /** Object member @p key (throws when absent / not an object). */
    const JsonValue &at(std::string_view key) const;

    /** Object keys in document order (empty for non-objects). */
    const std::vector<std::string> &keys() const { return keys_; }

  private:
    struct Parser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<std::string> keys_;
    std::map<std::string, std::size_t, std::less<>> index_;
};

/** Reads the whole file at @p path (throws Error on failure). */
std::string readFileText(const std::string &path);

/** Writes @p text (plus a trailing newline) to @p path. */
void writeFileText(const std::string &path, std::string_view text);

/** JSON string escaping for @p text (no surrounding quotes). */
std::string jsonEscape(std::string_view text);

/**
 * A streaming JSON writer with automatic comma placement. Usage:
 *
 *   JsonWriter w;
 *   w.beginObject();
 *   w.key("counters").beginObject();
 *   w.key("hits").value(42);
 *   w.endObject();
 *   w.endObject();
 *   std::string text = w.str();
 *
 * The caller is responsible for structural validity (matched begins
 * and ends, keys only inside objects).
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();
    JsonWriter &key(std::string_view name);
    JsonWriter &value(std::string_view text);
    JsonWriter &value(const char *text);
    JsonWriter &value(double number);
    JsonWriter &value(std::uint64_t number);
    JsonWriter &value(std::int64_t number);
    JsonWriter &value(int number);
    JsonWriter &value(bool flag);

    /** The document so far. */
    const std::string &str() const { return out_; }

    /** Writes str() to @p path (throws Error on failure). */
    void writeFile(const std::string &path) const;

  private:
    void separate();

    std::string out_;
    /** Whether a value was already emitted at each nesting level. */
    std::vector<bool> needs_comma_ = {false};
    bool pending_key_ = false;
};

} // namespace buffalo::obs
