#include "obs/flush.h"

#include <cstdio>
#include <cstdlib>
#include <exception>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/names.h"

namespace buffalo::obs {

namespace {

void
atexitHook()
{
    exitFlush().flush();
}

} // namespace

void
ExitFlush::registerMetricsJson(const std::string &path)
{
    util::MutexLock lock(mutex_);
    metrics_path_ = path;
}

void
ExitFlush::arm()
{
    // Touch the sink singletons before std::atexit so their static
    // destruction is sequenced after the hook: atexit handlers and
    // static destructors run in reverse order of registration/
    // construction, and construction registers destruction.
    metrics();
    eventLog();
    util::MutexLock lock(mutex_);
    if (armed_)
        return;
    armed_ = true;
    std::atexit(&atexitHook);
}

void
ExitFlush::flush()
{
    std::string path;
    {
        util::MutexLock lock(mutex_);
        path = metrics_path_;
    }
    // Event log first: `run.flush` marks the log complete, and
    // close() makes any racing event inert rather than torn.
    if (eventLog().enabled()) {
        eventLog()
            .event(names::kEvRunFlush)
            .field("events", eventLog().eventsWritten());
        eventLog().close();
    }
    if (!path.empty()) {
        try {
            metrics().writeJson(path);
        } catch (const std::exception &error) {
            // atexit context: report, never throw.
            std::fprintf(stderr,
                         "obs: exit flush of metrics to '%s' "
                         "failed: %s\n",
                         path.c_str(), error.what());
        }
    }
}

ExitFlush &
exitFlush()
{
    static ExitFlush instance;
    return instance;
}

} // namespace buffalo::obs
