#include "obs/audit.h"

#include <algorithm>

#include "obs/json.h"

namespace buffalo::obs {

void
MemoryAuditSummary::add(const GroupMemRecord &record)
{
    ++groups;
    if (record.predicted_bytes >= record.actual_bytes)
        ++over_predicted;
    else
        ++under_predicted;
    predicted_bytes += record.predicted_bytes;
    actual_bytes += record.actual_bytes;
    max_actual_bytes = std::max(max_actual_bytes, record.actual_bytes);
    const double signed_err = record.signedRelError();
    sum_signed_rel_error += signed_err;
    sum_abs_rel_error += std::abs(signed_err);
    max_abs_rel_error = std::max(max_abs_rel_error, std::abs(signed_err));
}

void
MemoryAuditSummary::merge(const MemoryAuditSummary &other)
{
    groups += other.groups;
    over_predicted += other.over_predicted;
    under_predicted += other.under_predicted;
    predicted_bytes += other.predicted_bytes;
    actual_bytes += other.actual_bytes;
    max_actual_bytes = std::max(max_actual_bytes, other.max_actual_bytes);
    sum_abs_rel_error += other.sum_abs_rel_error;
    sum_signed_rel_error += other.sum_signed_rel_error;
    max_abs_rel_error =
        std::max(max_abs_rel_error, other.max_abs_rel_error);
}

void
MemoryAudit::record(GroupMemRecord record)
{
    if (!enabled())
        return;
    util::MutexLock lock(mutex_);
    record.epoch = next_epoch_;
    record.sequence = next_sequence_++;
    current_summary_.add(record);
    if (current_records_.size() < kMaxRecordsPerEpoch)
        current_records_.push_back(record);
    else
        ++dropped_records_;
}

void
MemoryAudit::endEpoch()
{
    if (!enabled())
        return;
    util::MutexLock lock(mutex_);
    if (current_summary_.groups == 0)
        return; // nothing trained since the last close
    EpochRecords closed;
    closed.epoch = next_epoch_;
    closed.summary = current_summary_;
    closed.records = std::move(current_records_);
    epochs_.push_back(std::move(closed));
    current_summary_ = MemoryAuditSummary();
    current_records_.clear();
    next_sequence_ = 0;
    ++next_epoch_;
}

MemoryAuditSummary
MemoryAudit::currentEpochSummary() const
{
    util::MutexLock lock(mutex_);
    return current_summary_;
}

std::vector<MemoryAudit::EpochRecords>
MemoryAudit::epochs() const
{
    util::MutexLock lock(mutex_);
    return epochs_;
}

std::uint64_t
MemoryAudit::droppedRecords() const
{
    util::MutexLock lock(mutex_);
    return dropped_records_;
}

namespace {

void
writeSummary(JsonWriter &w, const MemoryAuditSummary &s)
{
    w.key("groups").value(s.groups);
    w.key("over_predicted").value(s.over_predicted);
    w.key("under_predicted").value(s.under_predicted);
    w.key("predicted_bytes").value(s.predicted_bytes);
    w.key("actual_bytes").value(s.actual_bytes);
    w.key("max_actual_bytes").value(s.max_actual_bytes);
    w.key("mean_abs_rel_error").value(s.meanAbsRelError());
    w.key("mean_signed_rel_error").value(s.meanSignedRelError());
    w.key("max_abs_rel_error").value(s.max_abs_rel_error);
}

void
writeRecord(JsonWriter &w, const GroupMemRecord &r)
{
    w.beginObject();
    w.key("epoch").value(r.epoch);
    w.key("sequence").value(r.sequence);
    w.key("group_index").value(std::uint64_t(r.group_index));
    w.key("buckets").value(std::uint64_t(r.buckets));
    w.key("outputs").value(std::uint64_t(r.outputs));
    w.key("grouping_ratio").value(r.grouping_ratio);
    w.key("predicted_bytes").value(r.predicted_bytes);
    w.key("actual_bytes").value(r.actual_bytes);
    w.key("signed_rel_error").value(r.signedRelError());
    w.endObject();
}

} // namespace

std::string
MemoryAudit::toJson() const
{
    std::vector<EpochRecords> snapshot;
    std::uint64_t dropped = 0;
    {
        util::MutexLock lock(mutex_);
        snapshot = epochs_;
        dropped = dropped_records_;
    }
    JsonWriter w;
    w.beginObject();
    w.key("dropped_records").value(dropped);
    w.key("epochs").beginArray();
    for (const EpochRecords &epoch : snapshot) {
        w.beginObject();
        w.key("epoch").value(epoch.epoch);
        writeSummary(w, epoch.summary);
        w.key("records").beginArray();
        for (const GroupMemRecord &record : epoch.records)
            writeRecord(w, record);
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

void
MemoryAudit::writeJson(const std::string &path) const
{
    writeFileText(path, toJson());
}

void
MemoryAudit::clear()
{
    util::MutexLock lock(mutex_);
    next_epoch_ = 0;
    next_sequence_ = 0;
    dropped_records_ = 0;
    current_summary_ = MemoryAuditSummary();
    current_records_.clear();
    epochs_.clear();
}

MemoryAudit &
memoryAudit()
{
    static MemoryAudit instance;
    return instance;
}

} // namespace buffalo::obs
