/**
 * @file
 * The metrics half of the observability layer (DESIGN.md,
 * "Observability"): a thread-safe MetricsRegistry of named counters,
 * gauges, and reservoir histograms, exportable as a flat JSON document
 * or an ASCII table.
 *
 * Handles returned by counter()/gauge()/histogram() are stable for the
 * registry's lifetime, so hot paths fetch a metric once and update it
 * lock-free (counters/gauges are single atomics; histograms take a
 * short uncontended mutex). Naming convention is dotted lowercase
 * paths, e.g. "scheduler.k_attempts" or "cache.hit_rows".
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"
#include "util/thread_annotations.h"

namespace buffalo::obs {

/** A monotonically increasing 64-bit counter. */
class Counter
{
  public:
    /** Adds @p delta (relaxed; totals are exact, ordering is not). */
    void
    add(std::uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** A last-value (or running-max) floating-point gauge. */
class Gauge
{
  public:
    void
    set(double value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    /** Raises the gauge to @p value if it is higher (CAS loop). */
    void
    setMax(double value)
    {
        double seen = value_.load(std::memory_order_relaxed);
        while (value > seen &&
               !value_.compare_exchange_weak(
                   seen, value, std::memory_order_relaxed))
            ;
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/** Point-in-time summary of a histogram. */
struct HistogramSnapshot
{
    std::uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    /** Population standard deviation (exact, not reservoir-derived). */
    double stddev = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
};

/**
 * Fixed-size uniform reservoir (Vitter's algorithm R) with derived
 * percentiles. Below capacity the sample is exact, so percentiles are
 * exact too; past capacity each observation has equal probability of
 * residing in the reservoir. The internal RNG is deterministically
 * seeded, so identical insertion sequences yield identical snapshots.
 */
class ReservoirHistogram
{
  public:
    static constexpr std::size_t kDefaultCapacity = 1024;

    explicit ReservoirHistogram(
        std::size_t capacity = kDefaultCapacity);

    /** Records one observation. Thread-safe. */
    void add(double value);

    /** Observations recorded so far (not the reservoir size). */
    std::uint64_t count() const;

    /**
     * Linearly interpolated percentile @p p in [0, 100] over the
     * reservoir. Returns 0 when empty.
     */
    double percentile(double p) const;

    HistogramSnapshot snapshot() const;

    void reset();

  private:
    /** Immutable after construction. */
    std::size_t capacity_;

    mutable util::Mutex mutex_;
    std::vector<double> reservoir_ BUFFALO_GUARDED_BY(mutex_);
    std::uint64_t count_ BUFFALO_GUARDED_BY(mutex_) = 0;
    double min_ BUFFALO_GUARDED_BY(mutex_) = 0.0;
    double max_ BUFFALO_GUARDED_BY(mutex_) = 0.0;
    double sum_ BUFFALO_GUARDED_BY(mutex_) = 0.0;
    double sum_sq_ BUFFALO_GUARDED_BY(mutex_) = 0.0;
    util::Rng rng_ BUFFALO_GUARDED_BY(mutex_);
};

/** One full registry snapshot, in name order. */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/**
 * A named collection of metrics. Lookup is mutex-protected; returned
 * references stay valid for the registry's lifetime (metrics are
 * never removed, only reset).
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Finds or creates the counter named @p name. */
    Counter &counter(std::string_view name);

    /** Finds or creates the gauge named @p name. */
    Gauge &gauge(std::string_view name);

    /** Finds or creates the histogram named @p name. */
    ReservoirHistogram &histogram(std::string_view name);

    /** Snapshot of every metric, names sorted. */
    MetricsSnapshot snapshot() const;

    /**
     * Flat JSON export:
     *   {"counters": {name: value, ...},
     *    "gauges": {name: value, ...},
     *    "histograms": {name:
     *        {count,min,max,mean,stddev,p50,p95,p99,p999}, ...}}
     */
    std::string toJson() const;

    /** Writes toJson() to @p path (throws Error on failure). */
    void writeJson(const std::string &path) const;

    /** Human-readable table dump (one section per metric kind). */
    std::string toTable() const;

    /** Zeroes every registered metric (registrations persist). */
    void reset();

  private:
    mutable util::Mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>>
        counters_ BUFFALO_GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>>
        gauges_ BUFFALO_GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<ReservoirHistogram>,
             std::less<>>
        histograms_ BUFFALO_GUARDED_BY(mutex_);
};

/** The process-wide registry the built-in instrumentation reports to. */
MetricsRegistry &metrics();

} // namespace buffalo::obs
