/**
 * @file
 * The typed training-phase taxonomy shared by timers, tracer spans,
 * and the Fig. 5 / Fig. 11 benches.
 *
 * Phases used to be free-floating string constants scattered across
 * train/ and sampling/; a typo'd key silently created a new phase in
 * the breakdown tables. The enum is the single source of truth and
 * phaseName() the only place the display strings live — PhaseTimer
 * stays string-keyed (it also accepts ad-hoc phases), but every
 * built-in phase goes through here.
 */
#pragma once

#include <array>
#include <cstddef>

#include "obs/trace.h"
#include "util/timer.h"

namespace buffalo::obs {

/** The built-in phases of one training iteration. */
enum class Phase : int
{
    /** Fanout neighbor sampling of the batch subgraph. */
    Sampling = 0,
    /** Buffalo scheduling (Algorithm 3). */
    Scheduling,
    /** Betty's redundancy-embedded-graph construction. */
    RegConstruction,
    /** Betty's METIS partition of the REG. */
    MetisPartition,
    /** Block generation: neighbor tracking / connection checks. */
    ConnectionCheck,
    /** Block generation: CSR assembly. */
    BlockConstruction,
    /** Host feature fill + host->device transfer. */
    DataLoading,
    /** Simulated device kernel time. */
    GpuCompute,
};

/** Number of Phase enumerators (for iteration). */
inline constexpr std::size_t kNumPhases = 8;

/**
 * Stable display name of @p phase — the PhaseTimer key and the label
 * the benches print. Strings match the paper's Fig. 11 legend.
 */
constexpr const char *
phaseName(Phase phase)
{
    switch (phase) {
    case Phase::Sampling:
        return "sampling";
    case Phase::Scheduling:
        return "buffalo scheduling";
    case Phase::RegConstruction:
        return "REG construction";
    case Phase::MetisPartition:
        return "METIS partition";
    case Phase::ConnectionCheck:
        return "connection check";
    case Phase::BlockConstruction:
        return "block construction";
    case Phase::DataLoading:
        return "data loading";
    case Phase::GpuCompute:
        return "GPU compute";
    }
    return "unknown";
}

/** Every Phase in enum order (for breakdown tables and benches). */
inline constexpr std::array<Phase, kNumPhases> kAllPhases = {
    Phase::Sampling,          Phase::Scheduling,
    Phase::RegConstruction,   Phase::MetisPartition,
    Phase::ConnectionCheck,   Phase::BlockConstruction,
    Phase::DataLoading,       Phase::GpuCompute,
};

/**
 * RAII scope that charges its lifetime to @p phase on a PhaseTimer and
 * simultaneously records it as a span on the global tracer. The
 * span side is free when tracing is disabled, so instrumented code
 * pays only the PhaseTimer cost it always paid.
 */
class PhaseScope
{
  public:
    PhaseScope(util::PhaseTimer &timer, Phase phase)
        : timer_(timer), phase_(phase), span_(phaseName(phase)) {}
    PhaseScope(const PhaseScope &) = delete;
    PhaseScope &operator=(const PhaseScope &) = delete;
    ~PhaseScope() { timer_.add(phaseName(phase_), watch_.seconds()); }

  private:
    util::PhaseTimer &timer_;
    Phase phase_;
    Span span_;
    util::StopWatch watch_;
};

} // namespace buffalo::obs
