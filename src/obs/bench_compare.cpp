#include "obs/bench_compare.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include "obs/json.h"
#include "util/errors.h"

namespace buffalo::obs {

namespace {

constexpr double kRelDiffFloor = 1e-12;

/** Validates the outer shape and returns the "metrics" object. */
const JsonValue &
metricsOf(const JsonValue &report, const char *which)
{
    checkArgument(report.isObject(),
                  std::string(which) + " bench report is not an object");
    checkArgument(report.has("bench") && report.at("bench").isString(),
                  std::string(which) +
                      " bench report lacks a string \"bench\" field");
    checkArgument(report.has("metrics") && report.at("metrics").isObject(),
                  std::string(which) +
                      " bench report lacks a \"metrics\" object");
    return report.at("metrics");
}

/** Validates one metric entry and pulls out a numeric field. */
double
numberField(const JsonValue &metric, const std::string &name,
            const char *field)
{
    checkArgument(metric.isObject(),
                  "bench metric \"" + name + "\" is not an object");
    checkArgument(metric.has(field) && metric.at(field).isNumber(),
                  "bench metric \"" + name + "\" lacks a numeric \"" +
                      field + "\" field");
    return metric.at(field).asNumber();
}

} // namespace

BenchCompareResult
compareBenchReports(const JsonValue &baseline, const JsonValue &candidate)
{
    const JsonValue &base_metrics = metricsOf(baseline, "baseline");
    const JsonValue &cand_metrics = metricsOf(candidate, "candidate");

    BenchCompareResult result;
    result.bench = baseline.at("bench").asString();

    for (const std::string &name : base_metrics.keys()) {
        const JsonValue &base_metric = base_metrics.at(name);
        BenchMetricDiff diff;
        diff.name = name;
        diff.baseline = numberField(base_metric, name, "value");
        diff.tolerance = numberField(base_metric, name, "tolerance");
        checkArgument(diff.tolerance >= 0.0,
                      "bench metric \"" + name +
                          "\" has a negative tolerance");
        if (!cand_metrics.has(name)) {
            diff.missing = true;
            result.diffs.push_back(diff);
            continue;
        }
        diff.candidate =
            numberField(cand_metrics.at(name), name, "value");
        diff.rel_diff =
            std::abs(diff.candidate - diff.baseline) /
            std::max(std::abs(diff.baseline), kRelDiffFloor);
        result.diffs.push_back(diff);
    }

    const std::set<std::string> base_names(base_metrics.keys().begin(),
                                           base_metrics.keys().end());
    for (const std::string &name : cand_metrics.keys())
        if (base_names.count(name) == 0)
            result.extra_metrics.push_back(name);

    return result;
}

BenchCompareResult
compareBenchFiles(const std::string &baseline_path,
                  const std::string &candidate_path)
{
    const JsonValue baseline =
        JsonValue::parse(readFileText(baseline_path));
    const JsonValue candidate =
        JsonValue::parse(readFileText(candidate_path));
    return compareBenchReports(baseline, candidate);
}

std::string
formatBenchCompare(const BenchCompareResult &result)
{
    std::string out = "bench_diff: " + result.bench + "\n";
    char line[256];
    for (const BenchMetricDiff &diff : result.diffs) {
        if (diff.missing) {
            std::snprintf(line, sizeof(line),
                          "  FAIL %-32s missing from candidate "
                          "(baseline %.6g)\n",
                          diff.name.c_str(), diff.baseline);
        } else {
            std::snprintf(line, sizeof(line),
                          "  %s %-32s base %.6g  cand %.6g  "
                          "drift %.2f%% (tol %.2f%%)\n",
                          diff.ok() ? "ok  " : "FAIL",
                          diff.name.c_str(), diff.baseline,
                          diff.candidate, diff.rel_diff * 100.0,
                          diff.tolerance * 100.0);
        }
        out += line;
    }
    for (const std::string &name : result.extra_metrics)
        out += "  note " + name + " only in candidate (ignored)\n";
    out += result.ok() ? "bench_diff: PASS\n" : "bench_diff: FAIL\n";
    return out;
}

} // namespace buffalo::obs
