/**
 * @file
 * Predicted-vs-actual memory accounting (DESIGN.md, "Memory audit &
 * bench regression"). Buffalo schedules bucket groups against the
 * redundancy-aware analytical estimator (Eq. 1–2); the MemoryAudit
 * closes the loop by recording, for every group actually trained,
 * the estimator's predicted footprint next to the DeviceAllocator
 * peak observed while that group ran. Per-epoch aggregates surface
 * in `train::EpochReport`, the full record stream exports as JSON
 * (`buffalo_train --audit-json`), and `tests/obs_audit_test.cpp`
 * gates the mean relative error as a CI-fast analogue of the paper's
 * Table 3.
 *
 * Disabled (the default) a record costs one relaxed atomic load.
 */
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

namespace buffalo::obs {

/** One trained bucket group: what Eq. 1–2 predicted vs what happened. */
struct GroupMemRecord
{
    /** Epoch index (stamped by MemoryAudit::record). */
    std::uint64_t epoch = 0;
    /** Order the group was trained within the epoch (stamped too). */
    std::uint64_t sequence = 0;
    /** Index of the group within its schedule. */
    std::size_t group_index = 0;
    /** Number of buckets merged into the group. */
    std::size_t buckets = 0;
    /** Seed outputs the group trains. */
    std::size_t outputs = 0;
    /** Mean R_group discount applied to the group (Eq. 1). */
    double grouping_ratio = 1.0;
    /** Estimator footprint for the group, including static bytes. */
    std::uint64_t predicted_bytes = 0;
    /** DeviceAllocator peak while the group trained. */
    std::uint64_t actual_bytes = 0;

    /** (predicted - actual) / actual; 0 when nothing was observed. */
    double
    signedRelError() const
    {
        if (actual_bytes == 0)
            return 0.0;
        return (static_cast<double>(predicted_bytes) -
                static_cast<double>(actual_bytes)) /
               static_cast<double>(actual_bytes);
    }

    double
    absRelError() const
    {
        return std::abs(signedRelError());
    }
};

/** Aggregate of GroupMemRecords (one epoch's worth, or a merge). */
struct MemoryAuditSummary
{
    std::uint64_t groups = 0;
    /** Groups where the estimator over/under-shot the observed peak. */
    std::uint64_t over_predicted = 0;
    std::uint64_t under_predicted = 0;
    std::uint64_t predicted_bytes = 0; ///< summed over groups
    std::uint64_t actual_bytes = 0;    ///< summed over groups
    std::uint64_t max_actual_bytes = 0;
    double sum_abs_rel_error = 0.0;
    double sum_signed_rel_error = 0.0;
    double max_abs_rel_error = 0.0;

    void add(const GroupMemRecord &record);
    void merge(const MemoryAuditSummary &other);

    double
    meanAbsRelError() const
    {
        return groups == 0 ? 0.0
                           : sum_abs_rel_error /
                                 static_cast<double>(groups);
    }

    double
    meanSignedRelError() const
    {
        return groups == 0 ? 0.0
                           : sum_signed_rel_error /
                                 static_cast<double>(groups);
    }
};

/**
 * Process-wide recorder of per-group memory records, bucketed by
 * epoch. Trainers call record() per trained group and endEpoch()
 * once per epoch; toJson()/writeJson() export the whole run.
 * Thread-safe, though in practice groups train serially.
 */
class MemoryAudit
{
  public:
    /** One epoch's records plus their precomputed aggregate. */
    struct EpochRecords
    {
        std::uint64_t epoch = 0;
        MemoryAuditSummary summary;
        std::vector<GroupMemRecord> records;
    };

    MemoryAudit() = default;
    MemoryAudit(const MemoryAudit &) = delete;
    MemoryAudit &operator=(const MemoryAudit &) = delete;

    void
    enable(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Records one trained group (no-op when disabled). The record's
     * epoch/sequence fields are stamped here; callers fill the rest.
     * At most kMaxRecordsPerEpoch full records are kept per epoch
     * (the aggregate still counts every call).
     */
    void record(GroupMemRecord record) BUFFALO_EXCLUDES(mutex_);

    /**
     * Closes the current epoch (no-op when disabled or when no group
     * was recorded since the last call).
     */
    void endEpoch() BUFFALO_EXCLUDES(mutex_);

    /** Aggregate of the records since the last endEpoch(). */
    MemoryAuditSummary currentEpochSummary() const
        BUFFALO_EXCLUDES(mutex_);

    /** Closed epochs, oldest first. */
    std::vector<EpochRecords> epochs() const BUFFALO_EXCLUDES(mutex_);

    /** Records dropped by the per-epoch cap (aggregates unaffected). */
    std::uint64_t droppedRecords() const BUFFALO_EXCLUDES(mutex_);

    /**
     * The whole run as JSON:
     * {"epochs":[{"epoch":N,"groups":N,"mean_abs_rel_error":...,
     *   "records":[{...per group...}]}]}
     */
    std::string toJson() const BUFFALO_EXCLUDES(mutex_);

    /** Writes toJson() to @p path (throws Error on failure). */
    void writeJson(const std::string &path) const
        BUFFALO_EXCLUDES(mutex_);

    /** Drops all state (epochs, current records, counters). */
    void clear() BUFFALO_EXCLUDES(mutex_);

    /** Full-record cap per epoch; beyond it only aggregates grow. */
    static constexpr std::size_t kMaxRecordsPerEpoch = 4096;

  private:
    std::atomic<bool> enabled_{false};

    mutable util::Mutex mutex_;
    std::uint64_t next_epoch_ BUFFALO_GUARDED_BY(mutex_) = 0;
    std::uint64_t next_sequence_ BUFFALO_GUARDED_BY(mutex_) = 0;
    std::uint64_t dropped_records_ BUFFALO_GUARDED_BY(mutex_) = 0;
    MemoryAuditSummary current_summary_ BUFFALO_GUARDED_BY(mutex_);
    std::vector<GroupMemRecord> current_records_
        BUFFALO_GUARDED_BY(mutex_);
    std::vector<EpochRecords> epochs_ BUFFALO_GUARDED_BY(mutex_);
};

/** The process-wide audit the trainers feed. */
MemoryAudit &memoryAudit();

} // namespace buffalo::obs
