#include "obs/trace.h"

#include <algorithm>

#include "obs/json.h"

namespace buffalo::obs {

// ---------------------------------------------------------------------
// Span

Span::Span(const char *name) : Span(tracer(), name, 0) {}

Span::Span(const char *name, std::uint64_t item)
    : Span(tracer(), name, item)
{
}

Span::Span(Tracer &tracer, const char *name) : Span(tracer, name, 0) {}

Span::Span(Tracer &tracer, const char *name, std::uint64_t item)
{
    if (!tracer.enabled())
        return;
    tracer_ = &tracer;
    name_ = name;
    item_ = item;
    start_us_ = tracer.nowMicros();
}

Span::~Span()
{
    if (tracer_ == nullptr)
        return;
    const double end_us = tracer_->nowMicros();
    tracer_->record(name_, start_us_, end_us - start_us_, item_);
}

// ---------------------------------------------------------------------
// Tracer

namespace {
/** Monotonic id shared by every tracer in the process. */
std::atomic<std::uint64_t> next_tracer_id{0};
} // namespace

Tracer::Tracer(std::size_t ring_capacity)
    : ring_capacity_(ring_capacity < 1 ? 1 : ring_capacity),
      epoch_(std::chrono::steady_clock::now()),
      instance_id_(next_tracer_id.fetch_add(
                       1, std::memory_order_relaxed) +
                   1)
{
}

Tracer::Tracer(const TracerOptions &options)
    : Tracer(options.ring_capacity)
{
}

void
Tracer::enable()
{
    enabled_.store(true, std::memory_order_relaxed);
}

void
Tracer::disable()
{
    enabled_.store(false, std::memory_order_relaxed);
}

void
Tracer::setRingCapacity(std::size_t ring_capacity)
{
    ring_capacity_.store(ring_capacity < 1 ? 1 : ring_capacity,
                         std::memory_order_relaxed);
}

double
Tracer::nowMicros() const
{
    const auto elapsed = std::chrono::steady_clock::now() - epoch_;
    return std::chrono::duration<double, std::micro>(elapsed).count();
}

Tracer::ThreadBuffer &
Tracer::threadBuffer()
{
    // Each thread resolves its buffer once per tracer. The cache is
    // keyed by (address, instance id): the address alone is not
    // enough, because a tracer constructed at a destroyed tracer's
    // address would satisfy the stale entry and hand back a pointer
    // into freed memory.
    thread_local Tracer *cached_owner = nullptr;
    thread_local std::uint64_t cached_id = 0;
    thread_local ThreadBuffer *cached_buffer = nullptr;
    if (cached_owner == this && cached_id == instance_id_)
        return *cached_buffer;
    util::MutexLock registry_lock(registry_mutex_);
    buffers_.push_back(std::make_unique<ThreadBuffer>(
        static_cast<std::uint32_t>(buffers_.size())));
    cached_owner = this;
    cached_id = instance_id_;
    cached_buffer = buffers_.back().get();
    return *cached_buffer;
}

void
Tracer::record(const char *name, double start_us, double duration_us,
               std::uint64_t item)
{
    const std::size_t capacity =
        ring_capacity_.load(std::memory_order_relaxed);
    ThreadBuffer &buffer = threadBuffer();
    util::MutexLock lock(buffer.mutex);
    const SpanRecord span{name, start_us, duration_us, item};
    if (buffer.ring.size() < capacity) {
        buffer.ring.push_back(span);
    } else {
        // A shrunken capacity can leave the cursor past the new end;
        // wrap it so overwrites stay in range.
        if (buffer.next >= buffer.ring.size())
            buffer.next = 0;
        buffer.ring[buffer.next] = span;
        buffer.next = (buffer.next + 1) % buffer.ring.size();
    }
    ++buffer.total;
}

std::size_t
Tracer::spanCount() const
{
    std::size_t count = 0;
    util::MutexLock registry_lock(registry_mutex_);
    for (const auto &buffer : buffers_) {
        util::MutexLock lock(buffer->mutex);
        count += buffer->ring.size();
    }
    return count;
}

std::uint64_t
Tracer::droppedSpans() const
{
    std::uint64_t dropped = 0;
    util::MutexLock registry_lock(registry_mutex_);
    for (const auto &buffer : buffers_) {
        util::MutexLock lock(buffer->mutex);
        dropped += buffer->total - buffer->ring.size();
    }
    return dropped;
}

std::vector<ThreadDropReport>
Tracer::droppedByThread() const
{
    std::vector<ThreadDropReport> out;
    util::MutexLock registry_lock(registry_mutex_);
    out.reserve(buffers_.size());
    for (const auto &buffer : buffers_) {
        util::MutexLock lock(buffer->mutex);
        out.push_back(
            {buffer->tid, buffer->total - buffer->ring.size()});
    }
    return out;
}

std::string
Tracer::toJson() const
{
    struct Event
    {
        SpanRecord span;
        std::uint32_t tid;
    };
    std::vector<Event> events;
    {
        util::MutexLock registry_lock(registry_mutex_);
        for (const auto &buffer : buffers_) {
            util::MutexLock lock(buffer->mutex);
            for (const SpanRecord &span : buffer->ring)
                events.push_back({span, buffer->tid});
        }
    }
    std::sort(events.begin(), events.end(),
              [](const Event &a, const Event &b) {
                  return a.span.start_us < b.span.start_us;
              });
    JsonWriter w;
    w.beginArray();
    for (const Event &event : events) {
        w.beginObject();
        w.key("name").value(event.span.name);
        w.key("ph").value("X");
        w.key("ts").value(event.span.start_us);
        w.key("dur").value(event.span.duration_us);
        w.key("pid").value(1);
        w.key("tid").value(static_cast<std::int64_t>(event.tid));
        if (event.span.item != 0) {
            w.key("args").beginObject();
            w.key("item").value(event.span.item);
            w.endObject();
        }
        w.endObject();
    }
    w.endArray();
    return w.str();
}

void
Tracer::writeJson(const std::string &path) const
{
    writeFileText(path, toJson());
}

void
Tracer::clear()
{
    util::MutexLock registry_lock(registry_mutex_);
    for (const auto &buffer : buffers_) {
        util::MutexLock lock(buffer->mutex);
        buffer->ring.clear();
        buffer->next = 0;
        buffer->total = 0;
    }
}

Tracer &
tracer()
{
    static Tracer instance;
    return instance;
}

} // namespace buffalo::obs
