#include "serve/serve_loop.h"

#include <algorithm>
#include <unordered_map>

#include "nn/checkpoint.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "pipeline/cache_policy.h"
#include "sampling/presample.h"
#include "train/feature_loader.h"
#include "util/errors.h"
#include "util/rng.h"
#include "util/timer.h"

namespace buffalo::serve {

namespace names = buffalo::obs::names;

const char *
responseStatusName(ResponseStatus status)
{
    switch (status) {
      case ResponseStatus::Ok: return "ok";
      case ResponseStatus::Shed: return "shed";
      case ResponseStatus::Expired: return "expired";
      case ResponseStatus::Failed: return "failed";
    }
    return "?";
}

Server::Server(const ServeOptions &options,
               const graph::Dataset &dataset)
    : options_(options),
      dataset_(dataset),
      sampler_(options.fanouts),
      admission_(options.queue_capacity),
      batcher_(options.model, options.fanouts, options.max_batch,
               options.byte_budget),
      plans_(options.prepared_depth < 1 ? 1 : options.prepared_depth),
      prepared_(options.prepared_depth < 1 ? 1
                                           : options.prepared_depth),
      budget_(options.byte_budget),
      start_(Clock::now())
{
    checkArgument(options_.fanouts.size() ==
                      static_cast<std::size_t>(
                          options_.model.num_layers),
                  "Server: fanouts must list one value per layer");
    checkArgument(options_.model.feature_dim == dataset.featureDim(),
                  "Server: model feature_dim != dataset featureDim");
    const std::size_t workers =
        options_.workers < 1 ? 1 : options_.workers;
    const std::size_t preps =
        options_.prep_threads < 1 ? 1 : options_.prep_threads;

    // The prep-path feature cache shares the training tier's policy
    // interface: the hot set is selected by --cache-policy, with the
    // presample pass seeded over *all* nodes (any node can arrive as
    // a request seed, unlike training where seeds come from
    // trainNodes()). Hits skip dataset.fillFeatures in prepare().
    if (options_.feature_cache_bytes > 0) {
        pipeline::FeatureCacheOptions cache_options;
        cache_options.capacity_bytes = options_.feature_cache_bytes;
        cache_options.feature_dim = dataset.featureDim();
        cache_options.store_payload = true;
        sampling::PresampleOptions presample;
        presample.num_batches = options_.presample_batches;
        presample.batch_size =
            options_.max_batch < 1 ? 1 : options_.max_batch;
        presample.seed =
            options_.seed ^ sampling::kPresampleSeedSalt;
        cache_options.policy = pipeline::makeCachePolicy(
            options_.cache_policy, dataset, options_.fanouts,
            graph::NodeList{}, presample);
        cache_ =
            std::make_unique<pipeline::FeatureCache>(cache_options);
        cache_->pinHotSet(dataset, options_.cache_pinned_nodes);
    }

    // Identical replicas: same seed, then the same checkpoint. Any
    // worker therefore produces bitwise-identical logits for a given
    // prepared batch.
    for (std::size_t w = 0; w < workers; ++w) {
        models_.push_back(train::makeModel(
            options_.model_kind, options_.model, options_.seed));
        if (!options_.checkpoint.empty())
            nn::loadCheckpointFile(options_.checkpoint,
                                   models_.back()->module());
    }

    // Queue-wait histograms (DESIGN.md, "Critical-path attribution"):
    // installed before any pipeline thread starts. Histogram handles
    // are process-stable and captured by value.
    obs::ReservoirHistogram *admit_wait =
        &obs::metrics().histogram(names::kHistQueueAdmitWaitMs);
    admission_.setWaitObserver([admit_wait](double seconds) {
        admit_wait->add(seconds * 1e3);
    });
    obs::ReservoirHistogram *plans_wait =
        &obs::metrics().histogram(names::kHistQueuePlansWaitMs);
    plans_.setWaitObserver([plans_wait](double seconds) {
        plans_wait->add(seconds * 1e3);
    });
    obs::ReservoirHistogram *prepared_wait =
        &obs::metrics().histogram(names::kHistQueuePreparedWaitMs);
    prepared_.setWaitObserver([prepared_wait](double seconds) {
        prepared_wait->add(seconds * 1e3);
    });

    active_preps_.store(preps, std::memory_order_relaxed);
    // buffalo-lint: allow(escape-this-capture) threads_ are joined by
    // stop() before ~Server tears members down
    threads_.emplace_back([this] { batcherLoop(); });
    for (std::size_t p = 0; p < preps; ++p)
        // buffalo-lint: allow(escape-this-capture) joined by stop()
        threads_.emplace_back([this] { prepLoop(); });
    for (std::size_t w = 0; w < workers; ++w)
        // buffalo-lint: allow(escape-this-capture) joined by stop()
        threads_.emplace_back([this, w] { workerLoop(w); });

    // Depth timeline over the serve queues; probes capture stable
    // member addresses by value and outlive nothing — the sampler is
    // stopped in shutdown() before the queues die.
    AdmissionQueue *admission = &admission_;
    pipeline::StageQueue<BatchPlan> *plans = &plans_;
    pipeline::StageQueue<PreparedBatch> *prepared = &prepared_;
    std::vector<obs::QueueDepthProbe> probes;
    probes.push_back(
        {"admit", [admission] { return admission->size(); }});
    probes.push_back({"plans", [plans] { return plans->size(); }});
    probes.push_back(
        {"prepared", [prepared] { return prepared->size(); }});
    depth_sampler_ =
        std::make_unique<obs::QueueDepthSampler>(std::move(probes));
}

Server::~Server()
{
    shutdown();
}

std::future<InferenceResponse>
Server::submit(graph::NodeId seed)
{
    InferenceRequest request;
    request.id =
        next_request_id_.fetch_add(1, std::memory_order_relaxed);
    request.seed = seed;
    request.submit_time = Clock::now();
    request.deadline =
        request.submit_time +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(
                options_.deadline_ms));

    PendingRequest pending(request);
    std::future<InferenceResponse> future = pending.takeFuture();
    stats_.onSubmitted();

    if (seed >= dataset_.graph().numNodes()) {
        stats_.onErrors(1);
        pending.fulfill(ResponseStatus::Failed, Clock::now());
        return future;
    }
    if (!admission_.tryPush(pending)) {
        stats_.onShed();
        pending.fulfill(ResponseStatus::Shed, Clock::now());
    }
    return future;
}

void
Server::batcherLoop()
{
    std::vector<PendingRequest> admitted;
    std::vector<PendingRequest> expired;
    for (;;) {
        admitted.clear();
        expired.clear();
        if (!admission_.popBatch(options_.queue_capacity, &admitted,
                                 &expired))
            break;
        if (!expired.empty()) {
            const Clock::time_point now = Clock::now();
            for (PendingRequest &request : expired)
                request.fulfill(ResponseStatus::Expired, now);
            stats_.onExpired(expired.size());
        }
        if (admitted.empty())
            continue;
        const Clock::time_point dequeued = Clock::now();
        util::StopWatch service_watch;
        for (BatchPlan &plan : batcher_.plan(std::move(admitted))) {
            plan.dequeue_time = dequeued;
            // push() fails only on close/abort; the dropped plan's
            // requests resolve to Failed via ~PendingRequest.
            const std::size_t size = plan.requests.size();
            if (!plans_.push(std::move(plan)))
                stats_.onErrors(size);
        }
        obs::metrics()
            .histogram(names::kHistQueueAdmitServiceMs)
            .add(service_watch.seconds() * 1e3);
        admitted.clear();
    }
    plans_.close();
}

Server::PreparedBatch
Server::prepare(BatchPlan plan) const
{
    // The span's item id links this plan's prep to its forward pass
    // (plan.id is read now; plan is moved into the result below).
    obs::Span span(names::kSpanServePrep, plan.id + 1);
    PreparedBatch prepared;

    // Sampling seeds must be unique; requests for the same node
    // share one ego network (and one logits row).
    graph::NodeList unique_seeds;
    std::unordered_map<graph::NodeId, std::size_t> seed_row;
    prepared.output_rows.reserve(plan.requests.size());
    for (const PendingRequest &request : plan.requests) {
        const graph::NodeId seed = request.request().seed;
        auto [it, inserted] =
            seed_row.emplace(seed, unique_seeds.size());
        if (inserted)
            unique_seeds.push_back(seed);
        prepared.output_rows.push_back(it->second);
    }

    // Per-plan RNG stream: sampling depends only on (seed, plan id),
    // never on which prep thread ran or what ran before it.
    util::Rng rng(options_.seed ^
                  (0x5EEDF00Dull + plan.id * 0x9E3779B97F4A7C15ull));
    auto sg = sampler_.sample(dataset_.graph(), unique_seeds, rng);

    graph::NodeList output_locals(unique_seeds.size());
    for (std::size_t i = 0; i < output_locals.size(); ++i)
        output_locals[i] = static_cast<graph::NodeId>(i);
    prepared.mb = generator_.generate(sg, output_locals);
    if (cache_ != nullptr && cache_->enabled()) {
        // Cached rows are bitwise-identical to fresh fillFeatures
        // (features are deterministic in (dataset seed, node)), so a
        // hit changes cost, never the prediction.
        const graph::NodeList &nodes = prepared.mb.inputNodes();
        prepared.features = nn::Tensor::zeros(
            nodes.size(), dataset_.featureDim(), nullptr);
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            std::span<float> out = prepared.features.row(i);
            if (cache_->lookup(nodes[i], out))
                continue;
            dataset_.fillFeatures(nodes[i], out);
            cache_->insert(nodes[i], out);
        }
    } else {
        prepared.features =
            train::loadFeatures(dataset_, prepared.mb.inputNodes());
    }
    prepared.plan = std::move(plan);
    return prepared;
}

void
Server::prepLoop()
{
    while (auto plan = plans_.pop()) {
        const std::uint64_t charge = plan->estimated_bytes;
        const std::size_t size = plan->requests.size();
        if (!budget_.acquire(charge)) {
            // cancel() only fires on abort paths; fail the batch.
            stats_.onErrors(size);
            continue;
        }
        try {
            util::StopWatch service_watch;
            PreparedBatch batch = prepare(std::move(*plan));
            obs::metrics()
                .histogram(names::kHistQueuePlansServiceMs)
                .add(service_watch.seconds() * 1e3);
            batch.charged_bytes = charge;
            if (!prepared_.push(std::move(batch))) {
                budget_.release(charge);
                stats_.onErrors(size);
            }
        } catch (const std::exception &) {
            // The plan's requests resolve to Failed on destruction.
            budget_.release(charge);
            stats_.onErrors(size);
        }
    }
    if (active_preps_.fetch_sub(1, std::memory_order_acq_rel) == 1)
        prepared_.close();
}

void
Server::workerLoop(std::size_t worker_index)
{
    train::GnnModel &model = *models_[worker_index];
    while (auto batch = prepared_.pop()) {
        const std::size_t size = batch->plan.requests.size();
        stats_.onBatch(size);
        util::StopWatch service_watch;
        try {
            nn::Tensor logits;
            {
                obs::Span span(names::kSpanServeForward,
                               batch->plan.id + 1);
                logits = model.forwardInference(batch->mb,
                                                batch->features,
                                                nullptr);
            }
            const std::size_t classes = logits.cols();
            const Clock::time_point now = Clock::now();
            for (std::size_t i = 0; i < size; ++i) {
                const float *row = logits.data() +
                                   batch->output_rows[i] * classes;
                std::size_t best = 0;
                for (std::size_t c = 1; c < classes; ++c)
                    if (row[c] > row[best])
                        best = c;
                auto response =
                    batch->plan.requests[i].fulfillWithQueueTime(
                        ResponseStatus::Ok, now,
                        batch->plan.dequeue_time,
                        static_cast<std::int32_t>(best), row[best]);
                if (response)
                    stats_.onCompleted(*response);
            }
            obs::eventLog()
                .event(names::kEvServeBatch)
                .field("plan", batch->plan.id)
                .field("requests", static_cast<std::uint64_t>(size))
                .field("unique_seeds",
                       static_cast<std::uint64_t>(
                           batch->mb.outputNodes().size()))
                .field("estimated_bytes",
                       batch->plan.estimated_bytes);
        } catch (const std::exception &) {
            const Clock::time_point now = Clock::now();
            for (PendingRequest &request : batch->plan.requests)
                request.fulfill(ResponseStatus::Failed, now);
            stats_.onErrors(size);
        }
        obs::metrics()
            .histogram(names::kHistQueuePreparedServiceMs)
            .add(service_watch.seconds() * 1e3);
        budget_.release(batch->charged_bytes);
    }
}

void
Server::shutdown()
{
    if (shut_down_.exchange(true))
        return;
    admission_.close();
    for (std::thread &thread : threads_)
        thread.join();
    threads_.clear();
    if (depth_sampler_ != nullptr)
        depth_sampler_->stop(); // before the queues it probes die
    final_elapsed_seconds_.store(
        std::chrono::duration<double>(Clock::now() - start_).count(),
        std::memory_order_relaxed);
    stats_.publishGauges(elapsedSeconds(), admission_.maxOccupancy());
    if (cache_ != nullptr && cache_->enabled()) {
        const pipeline::FeatureCacheStats cache = cache_->stats();
        obs::MetricsRegistry &m = obs::metrics();
        m.gauge(names::kGaugeCacheHits)
            .set(static_cast<double>(cache.hits));
        m.gauge(names::kGaugeCacheMisses)
            .set(static_cast<double>(cache.misses));
        m.gauge(names::kGaugeCacheHitRate).set(cache.hitRate());
        m.gauge(names::kGaugeCacheBytesInUse)
            .set(static_cast<double>(cache.bytes_in_use));
        m.gauge(names::kGaugeCacheResidentNodes)
            .set(static_cast<double>(cache.resident_nodes));
        m.gauge(names::kGaugeCachePinnedNodes)
            .set(static_cast<double>(cache.pinned_nodes));
        obs::eventLog()
            .event(names::kEvCacheSnapshot)
            .field("policy", cache.policy)
            .field("hits", cache.hits)
            .field("misses", cache.misses)
            .field("hit_rate", cache.hitRate())
            .field("resident_nodes", cache.resident_nodes)
            .field("pinned_nodes", cache.pinned_nodes);
    }
}

double
Server::elapsedSeconds() const
{
    const double final_elapsed =
        final_elapsed_seconds_.load(std::memory_order_relaxed);
    if (final_elapsed > 0.0)
        return final_elapsed;
    return std::chrono::duration<double>(Clock::now() - start_)
        .count();
}

ServeSnapshot
Server::stats() const
{
    return stats_.snapshot(elapsedSeconds());
}

std::size_t
Server::maxQueueDepth() const
{
    return admission_.maxOccupancy();
}

} // namespace buffalo::serve
