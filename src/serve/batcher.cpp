#include "serve/batcher.h"

#include "util/errors.h"

namespace buffalo::serve {

namespace {

/**
 * Worst-case bytes one seed adds to a batch: node counts follow the
 * sampling cone (1 output node; each layer multiplies by fanout+1
 * for neighbors plus self), each layer touches its input and output
 * activations once.
 */
std::uint64_t
estimateBytes(const nn::ModelConfig &model,
              const std::vector<int> &fanouts)
{
    checkArgument(fanouts.size() ==
                      static_cast<std::size_t>(model.num_layers),
                  "Batcher: fanouts must list one value per layer");
    // nodes[l] = nodes entering layer l; cone grows input-ward.
    std::vector<std::uint64_t> nodes(
        static_cast<std::size_t>(model.num_layers) + 1);
    nodes[static_cast<std::size_t>(model.num_layers)] = 1;
    for (int layer = model.num_layers - 1; layer >= 0; --layer) {
        const auto l = static_cast<std::size_t>(layer);
        nodes[l] = nodes[l + 1] *
                   (static_cast<std::uint64_t>(fanouts[l]) + 1);
    }
    std::uint64_t bytes = 0;
    for (int layer = 0; layer < model.num_layers; ++layer) {
        const auto l = static_cast<std::size_t>(layer);
        bytes += nodes[l] *
                 static_cast<std::uint64_t>(model.layerInDim(layer)) *
                 sizeof(float);
        bytes += nodes[l + 1] *
                 static_cast<std::uint64_t>(model.layerOutDim(layer)) *
                 sizeof(float);
    }
    return bytes;
}

} // namespace

Batcher::Batcher(const nn::ModelConfig &model,
                 const std::vector<int> &fanouts,
                 std::size_t max_batch, std::uint64_t byte_budget)
    : max_batch_(max_batch < 1 ? 1 : max_batch),
      byte_budget_(byte_budget),
      per_request_bytes_(estimateBytes(model, fanouts))
{
}

std::vector<BatchPlan>
Batcher::plan(std::vector<PendingRequest> pending)
{
    std::vector<BatchPlan> plans;
    BatchPlan current;
    auto flush = [&] {
        if (current.requests.empty())
            return;
        current.id = next_plan_id_++;
        current.estimated_bytes =
            per_request_bytes_ *
            static_cast<std::uint64_t>(current.requests.size());
        plans.push_back(std::move(current));
        current = BatchPlan{};
    };
    for (PendingRequest &request : pending) {
        const auto next = static_cast<std::uint64_t>(
            current.requests.size() + 1);
        const bool over_bytes =
            byte_budget_ > 0 && !current.requests.empty() &&
            next * per_request_bytes_ > byte_budget_;
        if (current.requests.size() >= max_batch_ || over_bytes)
            flush();
        current.requests.push_back(std::move(request));
    }
    flush();
    return plans;
}

} // namespace buffalo::serve
