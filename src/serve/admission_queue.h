/**
 * @file
 * Bounded admission queue with load shedding and deadline-based
 * rejection (DESIGN.md, "Serving").
 *
 * This is the server's backpressure valve: when the offered load
 * exceeds what the batcher/workers drain, the queue fills and new
 * requests are *shed* immediately (tryPush returns false) rather
 * than queued into certain deadline misses. Requests that do get in
 * but outlive their deadline while waiting are *expired* at pop time
 * — the batcher never wastes a forward pass on an answer nobody is
 * waiting for. Unlike pipeline::StageQueue, pushes never block: an
 * online client needs an instant admit/shed verdict.
 */
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <vector>

#include "serve/request.h"
#include "util/thread_annotations.h"

namespace buffalo::serve {

/** MPMC bounded FIFO of pending requests. */
class AdmissionQueue
{
  public:
    /** Creates a queue admitting at most @p capacity >= 1 requests. */
    explicit AdmissionQueue(std::size_t capacity);

    AdmissionQueue(const AdmissionQueue &) = delete;
    AdmissionQueue &operator=(const AdmissionQueue &) = delete;

    /**
     * Admits @p request if there is room. Never blocks.
     * @return true on admission (request consumed); false when the
     *         queue is full or closed — @p request is left with the
     *         caller, who decides how to reject it.
     */
    bool tryPush(PendingRequest &request) BUFFALO_EXCLUDES(mutex_);

    /**
     * Blocks until requests are available or the queue is closed,
     * then drains up to @p max_items from the front. Requests whose
     * deadline has already passed are moved to @p expired instead of
     * @p out (both may receive items in one call; @p out may come
     * back empty when everything drained was expired).
     *
     * @return false only when the queue is closed and empty —
     *         the consumer should exit its loop.
     */
    bool popBatch(std::size_t max_items,
                  std::vector<PendingRequest> *out,
                  std::vector<PendingRequest> *expired)
        BUFFALO_EXCLUDES(mutex_);

    /** Stops admissions and wakes blocked consumers; queued
     *  requests remain poppable until drained. */
    void close() BUFFALO_EXCLUDES(mutex_);

    /** Requests currently queued. */
    std::size_t size() const BUFFALO_EXCLUDES(mutex_);

    /** High-water mark of size() since construction. */
    std::size_t maxOccupancy() const BUFFALO_EXCLUDES(mutex_);

    /**
     * Installs a callback receiving each drained request's admission
     * wait in seconds (submit to popBatch, expired requests
     * included). Install before the server threads start; invoked on
     * the consuming thread with the queue unlocked (DESIGN.md,
     * "Critical-path attribution").
     */
    void setWaitObserver(std::function<void(double)> observer);

  private:
    const std::size_t capacity_;
    /** Written only before threads start (see setWaitObserver). */
    std::function<void(double)> wait_observer_;

    mutable util::Mutex mutex_;
    std::condition_variable not_empty_;
    std::deque<PendingRequest> items_ BUFFALO_GUARDED_BY(mutex_);
    std::size_t max_occupancy_ BUFFALO_GUARDED_BY(mutex_) = 0;
    bool closed_ BUFFALO_GUARDED_BY(mutex_) = false;
};

} // namespace buffalo::serve
