/**
 * @file
 * Request/response vocabulary of the serving subsystem (DESIGN.md,
 * "Serving").
 *
 * A client submits an ego-network inference request for one seed
 * node; the server answers with the predicted class once a worker
 * has run the forward-only pass, or with a rejection status when the
 * request was shed at admission, expired in the queue, or failed in
 * execution. PendingRequest pairs a request with the promise that
 * carries its response back to the submitting thread, and guarantees
 * the promise is always fulfilled — a dropped request resolves to
 * Failed instead of a broken promise.
 */
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <optional>
#include <string>
#include <vector>

#include "graph/types.h"
#include "nn/config.h"
#include "tensor/kernels.h"
#include "train/model_adapter.h"
#include "train/report.h"

namespace buffalo::serve {

/** The serving clock (monotonic; deadlines are time points on it). */
using Clock = std::chrono::steady_clock;

/** Terminal state of one inference request. */
enum class ResponseStatus
{
    Ok,      ///< forward pass ran; prediction is valid
    Shed,    ///< rejected at admission (queue full)
    Expired, ///< deadline passed before a worker saw it
    Failed,  ///< execution error or server shutdown
};

/** Printable name of @p status. */
const char *responseStatusName(ResponseStatus status);

/** One ego-network inference request. */
struct InferenceRequest
{
    std::uint64_t id = 0;
    graph::NodeId seed = 0;
    Clock::time_point submit_time{};
    Clock::time_point deadline{};
};

/** The server's answer to one request. */
struct InferenceResponse
{
    std::uint64_t id = 0;
    ResponseStatus status = ResponseStatus::Failed;
    /** argmax of the logits row; -1 unless status == Ok. */
    std::int32_t predicted_class = -1;
    /** Logit of the predicted class. */
    float score = 0.0f;
    /** Time from submit to leaving the admission queue. */
    double queue_ms = 0.0;
    /** Time from submit to response. */
    double latency_ms = 0.0;
    /** True when the response was produced before the deadline. */
    bool deadline_met = false;
};

/**
 * A request travelling through the server, owning the promise its
 * response is delivered on. Exactly one fulfill() wins; destruction
 * without fulfillment resolves the future to Failed, so queue drops
 * and shutdown can never leave a submitter blocked on a broken
 * promise.
 */
class PendingRequest
{
  public:
    PendingRequest() : responded_(true) {}

    explicit PendingRequest(const InferenceRequest &request)
        : request_(request)
    {
    }

    PendingRequest(PendingRequest &&other) noexcept
        : request_(other.request_),
          promise_(std::move(other.promise_)),
          responded_(other.responded_)
    {
        other.responded_ = true; // moved-from must not double-set
    }

    PendingRequest &
    operator=(PendingRequest &&other) noexcept
    {
        if (this != &other) {
            abandon();
            request_ = other.request_;
            promise_ = std::move(other.promise_);
            responded_ = other.responded_;
            other.responded_ = true;
        }
        return *this;
    }

    PendingRequest(const PendingRequest &) = delete;
    PendingRequest &operator=(const PendingRequest &) = delete;

    ~PendingRequest() { abandon(); }

    const InferenceRequest &request() const { return request_; }

    /** The future the submitter waits on; call exactly once. */
    std::future<InferenceResponse>
    takeFuture()
    {
        return promise_.get_future();
    }

    /**
     * Resolves the request at time @p now. @p predicted_class and
     * @p score matter only for Ok. Later calls are no-ops.
     * @return the delivered response (for stats), or nullopt when
     *         the request was already resolved.
     */
    std::optional<InferenceResponse>
    fulfill(ResponseStatus status, Clock::time_point now,
            std::int32_t predicted_class = -1, float score = 0.0f)
    {
        if (responded_)
            return std::nullopt;
        responded_ = true;
        InferenceResponse response;
        response.id = request_.id;
        response.status = status;
        response.predicted_class =
            status == ResponseStatus::Ok ? predicted_class : -1;
        response.score = status == ResponseStatus::Ok ? score : 0.0f;
        response.latency_ms = millisSince(request_.submit_time, now);
        response.queue_ms = response.latency_ms;
        response.deadline_met =
            status == ResponseStatus::Ok && now <= request_.deadline;
        promise_.set_value(response);
        return response;
    }

    /** fulfill() variant recording when the request left the queue. */
    std::optional<InferenceResponse>
    fulfillWithQueueTime(ResponseStatus status, Clock::time_point now,
                         Clock::time_point dequeue_time,
                         std::int32_t predicted_class, float score)
    {
        if (responded_)
            return std::nullopt;
        responded_ = true;
        InferenceResponse response;
        response.id = request_.id;
        response.status = status;
        response.predicted_class =
            status == ResponseStatus::Ok ? predicted_class : -1;
        response.score = status == ResponseStatus::Ok ? score : 0.0f;
        response.latency_ms = millisSince(request_.submit_time, now);
        response.queue_ms =
            millisSince(request_.submit_time, dequeue_time);
        response.deadline_met =
            status == ResponseStatus::Ok && now <= request_.deadline;
        promise_.set_value(response);
        return response;
    }

  private:
    static double
    millisSince(Clock::time_point from, Clock::time_point to)
    {
        return std::chrono::duration<double, std::milli>(to - from)
            .count();
    }

    void
    abandon()
    {
        if (!responded_)
            fulfill(ResponseStatus::Failed, Clock::now());
    }

    InferenceRequest request_;
    std::promise<InferenceResponse> promise_;
    bool responded_ = false;
};

/** Configuration of a serve::Server. */
struct ServeOptions
{
    train::ModelKind model_kind = train::ModelKind::Sage;
    nn::ModelConfig model;
    /** Per-layer fanouts, input-most first (one per model layer). */
    std::vector<int> fanouts = {10, 25};
    /** Checkpoint to load into every worker replica; empty keeps the
     *  seed-derived initialization. */
    std::string checkpoint;

    /** Admission queue capacity; beyond it requests are shed. */
    std::size_t queue_capacity = 256;
    /** Max requests coalesced into one micro-batch. */
    std::size_t max_batch = 32;
    /** Cap on estimated bytes of batches in flight (0 = off). */
    std::uint64_t byte_budget = 0;
    /** Per-request latency SLO; expired requests are rejected. */
    double deadline_ms = 100.0;

    /**
     * Feature-cache byte budget for the prep path; hits skip
     * dataset.fillFeatures. 0 = no cache (every batch fills fresh).
     */
    std::uint64_t feature_cache_bytes = 0;
    /** Hot-set policy of the serve-side cache (same vocabulary as
     *  training; see pipeline/cache_policy.h). */
    train::CachePolicyKind cache_policy =
        train::CachePolicyKind::Degree;
    /** Cap on pinned nodes; 0 = policy may fill the capacity. */
    std::size_t cache_pinned_nodes = 0;
    /** Presample micro-batches (PresampleFrequency policy only). */
    int presample_batches = 8;

    /** Threads sampling/building/loading features per batch. */
    std::size_t prep_threads = 1;
    /** Threads running the forward pass (one model replica each). */
    std::size_t workers = 1;
    /** Prepared batches buffered ahead of the workers. */
    std::size_t prepared_depth = 4;

    /** Seed for model init and per-plan sampling RNG streams. */
    std::uint64_t seed = 42;
    /** Kernel-layer tunables (installed process-wide by the tool). */
    tensor::kernels::KernelConfig kernels;
};

} // namespace buffalo::serve
