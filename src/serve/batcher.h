/**
 * @file
 * Micro-batch coalescing for the serving path (DESIGN.md, "Serving").
 *
 * The batcher turns a drained slice of the admission queue into
 * BatchPlans: deterministic, in-order chunks bounded by a request
 * count (`max_batch`, amortizing per-batch sampling/blockgen cost)
 * and an analytic byte estimate (`byte_budget`, keeping one batch's
 * working set inside the memory envelope the pipeline ByteBudget
 * enforces). Determinism matters: the same pending sequence must
 * produce the same plans regardless of thread timing, so serve runs
 * are replayable and the bench baseline is stable.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "nn/config.h"
#include "serve/request.h"

namespace buffalo::serve {

/** One planned micro-batch: the requests it will answer. */
struct BatchPlan
{
    std::uint64_t id = 0;
    std::vector<PendingRequest> requests;
    /** Analytic upper bound on the batch's working-set bytes. */
    std::uint64_t estimated_bytes = 0;
    /** When the requests left the admission queue (stamped by the
     *  serve loop, not by Batcher::plan — keeps plan() pure). */
    Clock::time_point dequeue_time{};
};

/** Deterministic request-to-batch planner. */
class Batcher
{
  public:
    /**
     * @param model      Layer dimensions for the byte estimate.
     * @param fanouts    Per-layer fanouts, input-most first.
     * @param max_batch  Max requests per plan (>= 1).
     * @param byte_budget Cap on a plan's estimated bytes; 0 = off.
     *                   A single request always fits (the pipeline
     *                   ByteBudget admits oversized items when idle).
     */
    Batcher(const nn::ModelConfig &model,
            const std::vector<int> &fanouts, std::size_t max_batch,
            std::uint64_t byte_budget);

    /**
     * Analytic per-request byte bound: the sampled ego-network cone
     * at worst-case fanout, times per-layer activation widths, plus
     * input features. Deliberately an over-estimate — admission
     * should be conservative, never optimistic.
     */
    std::uint64_t estimateRequestBytes() const
    {
        return per_request_bytes_;
    }

    /**
     * Splits @p pending (consumed, order preserved) into plans.
     * Same input sequence -> same plans, ids increasing in order.
     */
    std::vector<BatchPlan> plan(std::vector<PendingRequest> pending);

  private:
    std::size_t max_batch_;
    std::uint64_t byte_budget_;
    std::uint64_t per_request_bytes_;
    std::uint64_t next_plan_id_ = 0;
};

} // namespace buffalo::serve
