#include "serve/admission_queue.h"

#include <chrono>

namespace buffalo::serve {

AdmissionQueue::AdmissionQueue(std::size_t capacity)
    : capacity_(capacity < 1 ? 1 : capacity)
{
}

bool
AdmissionQueue::tryPush(PendingRequest &request)
{
    {
        util::MutexLock lock(mutex_);
        if (closed_ || items_.size() >= capacity_)
            return false;
        items_.push_back(std::move(request));
        if (items_.size() > max_occupancy_)
            max_occupancy_ = items_.size();
    }
    not_empty_.notify_one();
    return true;
}

bool
AdmissionQueue::popBatch(std::size_t max_items,
                         std::vector<PendingRequest> *out,
                         std::vector<PendingRequest> *expired)
{
    std::vector<double> waits;
    {
        util::MutexLock lock(mutex_);
        while (items_.empty() && !closed_)
            not_empty_.wait(lock.native());
        if (items_.empty())
            return false; // closed and drained

        const Clock::time_point now = Clock::now();
        std::size_t taken = 0;
        while (!items_.empty() && taken < max_items) {
            PendingRequest request = std::move(items_.front());
            items_.pop_front();
            ++taken;
            if (wait_observer_)
                waits.push_back(
                    std::chrono::duration<double>(
                        now - request.request().submit_time)
                        .count());
            if (request.request().deadline < now)
                expired->push_back(std::move(request));
            else
                out->push_back(std::move(request));
        }
    }
    for (const double wait_seconds : waits)
        wait_observer_(wait_seconds); // outside the lock
    return true;
}

void
AdmissionQueue::close()
{
    {
        util::MutexLock lock(mutex_);
        closed_ = true;
    }
    not_empty_.notify_all();
}

std::size_t
AdmissionQueue::size() const
{
    util::MutexLock lock(mutex_);
    return items_.size();
}

std::size_t
AdmissionQueue::maxOccupancy() const
{
    util::MutexLock lock(mutex_);
    return max_occupancy_;
}

void
AdmissionQueue::setWaitObserver(std::function<void(double)> observer)
{
    wait_observer_ = std::move(observer);
}

} // namespace buffalo::serve
