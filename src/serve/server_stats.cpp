#include "serve/server_stats.h"

#include "obs/names.h"

namespace buffalo::serve {

namespace names = buffalo::obs::names;

ServerStats::ServerStats() = default;

void
ServerStats::onSubmitted()
{
    submitted_.fetch_add(1, std::memory_order_relaxed);
    obs::metrics().counter(names::kCtrServeRequests).add();
}

void
ServerStats::onShed()
{
    shed_.fetch_add(1, std::memory_order_relaxed);
    obs::metrics().counter(names::kCtrServeShed).add();
}

void
ServerStats::onExpired(std::uint64_t count)
{
    if (count == 0)
        return;
    expired_.fetch_add(count, std::memory_order_relaxed);
    obs::metrics().counter(names::kCtrServeExpired).add(count);
}

void
ServerStats::onBatch(std::uint64_t size)
{
    batches_.fetch_add(1, std::memory_order_relaxed);
    batched_requests_.fetch_add(size, std::memory_order_relaxed);
    obs::metrics().counter(names::kCtrServeBatches).add();
    obs::metrics()
        .histogram(names::kHistServeBatchSize)
        .add(static_cast<double>(size));
}

void
ServerStats::onCompleted(const InferenceResponse &response)
{
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (!response.deadline_met)
        deadline_misses_.fetch_add(1, std::memory_order_relaxed);
    latency_ms_.add(response.latency_ms);
    queue_ms_.add(response.queue_ms);
    obs::metrics().counter(names::kCtrServeCompleted).add();
    if (!response.deadline_met)
        obs::metrics()
            .counter(names::kCtrServeDeadlineMisses)
            .add();
    obs::metrics()
        .histogram(names::kHistServeLatencyMs)
        .add(response.latency_ms);
    obs::metrics()
        .histogram(names::kHistServeQueueMs)
        .add(response.queue_ms);
}

void
ServerStats::onErrors(std::uint64_t count)
{
    if (count == 0)
        return;
    errors_.fetch_add(count, std::memory_order_relaxed);
    obs::metrics().counter(names::kCtrServeErrors).add(count);
}

ServeSnapshot
ServerStats::snapshot(double elapsed_seconds) const
{
    ServeSnapshot snap;
    snap.submitted = submitted_.load(std::memory_order_relaxed);
    snap.shed = shed_.load(std::memory_order_relaxed);
    snap.expired = expired_.load(std::memory_order_relaxed);
    snap.completed = completed_.load(std::memory_order_relaxed);
    snap.errors = errors_.load(std::memory_order_relaxed);
    snap.batches = batches_.load(std::memory_order_relaxed);
    snap.deadline_misses =
        deadline_misses_.load(std::memory_order_relaxed);
    snap.elapsed_seconds = elapsed_seconds;

    const std::uint64_t good = snap.completed - snap.deadline_misses;
    snap.goodput_qps =
        elapsed_seconds > 0.0
            ? static_cast<double>(good) / elapsed_seconds
            : 0.0;
    snap.shed_rate = snap.submitted > 0
                         ? static_cast<double>(snap.shed) /
                               static_cast<double>(snap.submitted)
                         : 0.0;
    snap.latency_p50_ms = latency_ms_.percentile(50.0);
    snap.latency_p99_ms = latency_ms_.percentile(99.0);
    snap.latency_p999_ms = latency_ms_.percentile(99.9);
    snap.queue_p99_ms = queue_ms_.percentile(99.0);
    const std::uint64_t batched =
        batched_requests_.load(std::memory_order_relaxed);
    snap.mean_batch_size =
        snap.batches > 0 ? static_cast<double>(batched) /
                               static_cast<double>(snap.batches)
                         : 0.0;
    return snap;
}

void
ServerStats::publishGauges(double elapsed_seconds,
                           std::size_t max_queue_depth) const
{
    const ServeSnapshot snap = snapshot(elapsed_seconds);
    obs::metrics()
        .gauge(names::kGaugeServeGoodputQps)
        .set(snap.goodput_qps);
    obs::metrics()
        .gauge(names::kGaugeServeShedRate)
        .set(snap.shed_rate);
    obs::metrics()
        .gauge(names::kGaugeServeMaxQueueDepth)
        .set(static_cast<double>(max_queue_depth));
}

} // namespace buffalo::serve
