/**
 * @file
 * Serving SLO accounting (DESIGN.md, "Serving"): request counts by
 * outcome, latency reservoirs, goodput and shed rate.
 *
 * Counts live in per-server atomics so concurrent servers (tests run
 * several) stay independent; every update is also mirrored into the
 * process-wide obs::metrics() registry under the serve.* names so
 * `--metrics-json` and obs_validate see the serving surface with no
 * extra wiring.
 */
#pragma once

#include <atomic>
#include <cstdint>

#include "obs/metrics.h"
#include "serve/request.h"

namespace buffalo::serve {

/** Point-in-time summary of one server's traffic. */
struct ServeSnapshot
{
    std::uint64_t submitted = 0;
    std::uint64_t shed = 0;
    std::uint64_t expired = 0;
    std::uint64_t completed = 0; ///< Ok responses (late ones included)
    std::uint64_t errors = 0;
    std::uint64_t batches = 0;
    std::uint64_t deadline_misses = 0; ///< completed but late

    double elapsed_seconds = 0.0;
    /** Deadline-met completions per second of elapsed time. */
    double goodput_qps = 0.0;
    /** shed / submitted (0 when nothing was submitted). */
    double shed_rate = 0.0;

    double latency_p50_ms = 0.0;
    double latency_p99_ms = 0.0;
    double latency_p999_ms = 0.0;
    double queue_p99_ms = 0.0;
    double mean_batch_size = 0.0;
};

/** Thread-safe per-server statistics sink. */
class ServerStats
{
  public:
    ServerStats();

    ServerStats(const ServerStats &) = delete;
    ServerStats &operator=(const ServerStats &) = delete;

    void onSubmitted();
    void onShed();
    void onExpired(std::uint64_t count);
    /** A micro-batch of @p size requests entered the forward pass. */
    void onBatch(std::uint64_t size);
    /** An Ok response; feeds the latency reservoirs. */
    void onCompleted(const InferenceResponse &response);
    void onErrors(std::uint64_t count);

    /** Summarizes traffic over @p elapsed_seconds of wall time. */
    ServeSnapshot snapshot(double elapsed_seconds) const;

    /** Publishes goodput/shed-rate gauges to obs::metrics(). */
    void publishGauges(double elapsed_seconds,
                       std::size_t max_queue_depth) const;

  private:
    std::atomic<std::uint64_t> submitted_{0};
    std::atomic<std::uint64_t> shed_{0};
    std::atomic<std::uint64_t> expired_{0};
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<std::uint64_t> errors_{0};
    std::atomic<std::uint64_t> batches_{0};
    std::atomic<std::uint64_t> batched_requests_{0};
    std::atomic<std::uint64_t> deadline_misses_{0};

    /** Per-server reservoirs; the registry mirrors aggregate. */
    obs::ReservoirHistogram latency_ms_;
    obs::ReservoirHistogram queue_ms_;
};

} // namespace buffalo::serve
