/**
 * @file
 * The serving engine (DESIGN.md, "Serving"): a three-stage pipeline
 * behind a bounded admission queue.
 *
 *   submit() -> AdmissionQueue -> batcher -> StageQueue<BatchPlan>
 *           -> prep threads (sample + blockgen + features, under a
 *              ByteBudget) -> StageQueue<PreparedBatch>
 *           -> workers (Model::forwardInference, one replica each)
 *
 * Backpressure composes outward: workers drain prepared batches, the
 * prepared queue and the ByteBudget bound prep, the plan queue bounds
 * the batcher, and once the admission queue fills, new requests are
 * shed at submit() — the only unbounded thing is the client's retry
 * policy. Determinism: per-plan RNG streams are derived from
 * (seed, plan id), worker replicas share identical weights, and the
 * PR-5 kernel layer is bitwise reproducible at any thread count, so
 * a request's prediction does not depend on scheduling.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "graph/datasets.h"
#include "obs/queue_telemetry.h"
#include "pipeline/feature_cache.h"
#include "pipeline/stage_queue.h"
#include "sampling/block_generator.h"
#include "sampling/sampled_subgraph.h"
#include "serve/admission_queue.h"
#include "serve/batcher.h"
#include "serve/request.h"
#include "serve/server_stats.h"
#include "train/model_adapter.h"

namespace buffalo::serve {

/** A concurrent forward-only inference server over one dataset. */
class Server
{
  public:
    /**
     * Builds the worker replicas (loading @p options.checkpoint into
     * each when set) and starts the pipeline threads. @p dataset
     * must outlive the server.
     */
    Server(const ServeOptions &options,
           const graph::Dataset &dataset);

    /** Shuts down (drains in-flight requests) and joins. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Submits one inference request for @p seed. Never blocks: when
     * the admission queue is full the returned future resolves to
     * Shed immediately. Out-of-range seeds resolve to Failed.
     */
    std::future<InferenceResponse> submit(graph::NodeId seed);

    /**
     * Stops admissions, drains everything in flight, joins the
     * pipeline threads, and publishes the final serve.* gauges.
     * Idempotent; also run by the destructor.
     */
    void shutdown();

    /** Traffic summary over the server's lifetime so far. */
    ServeSnapshot stats() const;

    /** High-water mark of the admission queue. */
    std::size_t maxQueueDepth() const;

    /**
     * The prep-path feature cache, or null when
     * ServeOptions::feature_cache_bytes is 0. Stats reads are one
     * consistent snapshot even while prep threads mutate the cache.
     */
    const pipeline::FeatureCache *featureCache() const
    {
        return cache_.get();
    }

    const ServeOptions &options() const { return options_; }

  private:
    /** A plan with its blocks and features materialized. */
    struct PreparedBatch
    {
        BatchPlan plan;
        sampling::MicroBatch mb;
        nn::Tensor features;
        /** Logits row answering plan.requests[i] (seeds dedup'd). */
        std::vector<std::size_t> output_rows;
        std::uint64_t charged_bytes = 0;
    };

    void batcherLoop();
    void prepLoop();
    void workerLoop(std::size_t worker_index);
    PreparedBatch prepare(BatchPlan plan) const;
    double elapsedSeconds() const;

    ServeOptions options_;
    const graph::Dataset &dataset_;
    sampling::NeighborSampler sampler_;
    sampling::FastBlockGenerator generator_;
    /** Shared across prep threads (internally thread-safe); null when
     *  the cache is disabled. */
    std::unique_ptr<pipeline::FeatureCache> cache_;

    AdmissionQueue admission_;
    Batcher batcher_; ///< batcher thread only
    pipeline::StageQueue<BatchPlan> plans_;
    pipeline::StageQueue<PreparedBatch> prepared_;
    pipeline::ByteBudget budget_;
    ServerStats stats_;

    /** One replica per worker; identical weights, so results do not
     *  depend on which worker executes a batch. */
    std::vector<std::unique_ptr<train::GnnModel>> models_;

    std::atomic<std::uint64_t> next_request_id_{1};
    std::atomic<std::size_t> active_preps_{0};
    std::atomic<bool> shut_down_{false};
    Clock::time_point start_;
    std::atomic<double> final_elapsed_seconds_{0.0};

    /** Depth timeline over admit/plans/prepared; stopped by
     *  shutdown() while the queues are still alive. */
    std::unique_ptr<obs::QueueDepthSampler> depth_sampler_;

    std::vector<std::thread> threads_; ///< last member: joins first
};

} // namespace buffalo::serve
