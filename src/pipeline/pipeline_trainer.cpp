#include "pipeline/pipeline_trainer.h"

#include <algorithm>
#include <deque>

#include "obs/audit.h"
#include "obs/critical_path.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/queue_telemetry.h"
#include "obs/trace.h"
#include "pipeline/cache_policy.h"
#include "sampling/presample.h"
#include "util/logging.h"

namespace buffalo::pipeline {

PipelineTrainer::PipelineTrainer(const train::TrainerOptions &options,
                                 device::Device &device)
    : BuffaloTrainer(options, device),
      generator_(makePipelineGenerator())
{
    FeatureCacheOptions cache_options;
    cache_options.capacity_bytes =
        options.pipeline.feature_cache_bytes;
    cache_options.feature_dim = options.model.feature_dim;
    cache_options.store_payload =
        options.mode == train::ExecutionMode::Numeric;
    cache_ = std::make_unique<FeatureCache>(cache_options);
}

core::SchedulerOptions
PipelineTrainer::resolvedSchedulerOptions() const
{
    core::SchedulerOptions sched = options_.scheduler;
    if (sched.mem_constraint == 0)
        sched.mem_constraint = device_.allocator().capacity();
    sched.reserved_bytes = static_bytes_;
    return sched;
}

train::IterationStats
PipelineTrainer::trainPrepared(PreparedBatch &batch,
                               const graph::Dataset &dataset)
{
    obs::Span iteration_span(obs::names::kSpanTrainIteration,
                             batch.index + 1);
    const std::size_t batch_outputs = batch.sg.numSeeds();
    core::SchedulerOptions sched = resolvedSchedulerOptions();

    // Same recovery protocol as the serial BuffaloTrainer: on OOM the
    // batch restarts (accumulated gradients discarded first) with a
    // tighter safety factor. Retries re-schedule from the retained
    // sampled subgraph and prepare inline — the cache discount is
    // deliberately forgone so accounting stays conservative.
    constexpr int kMaxAttempts = 4;
    bool use_prefetched = true;
    for (int attempt = 0;; ++attempt) {
        train::IterationStats stats;
        stats.phases.merge(batch.phases);
        device_.allocator().resetPeak();
        // Per-group peak capture feeds the estimator audit, exactly
        // as in the serial BuffaloTrainer (the allocator peak resets
        // per group; the iteration peak is the max over groups).
        std::uint64_t iteration_peak = 0;
        auto auditGroup = [&](const core::BucketGroup &group,
                              std::size_t index) {
            obs::GroupMemRecord record;
            record.group_index = index;
            record.buckets = group.buckets.size();
            record.outputs =
                static_cast<std::size_t>(group.outputCount());
            record.grouping_ratio = group.mean_grouping_ratio;
            record.predicted_bytes = group.est_bytes + static_bytes_;
            record.actual_bytes = device_.allocator().peakBytes();
            iteration_peak =
                std::max(iteration_peak, record.actual_bytes);
            obs::metrics()
                .histogram(obs::names::kHistSchedulerEstimateRelError)
                .add(record.signedRelError());
            obs::memoryAudit().record(record);
            stats.group_audit.push_back(record);
        };
        try {
            if (use_prefetched) {
                // batch.micro is in batch.schedule.groups order (the
                // prefetcher builds one PreparedMicroBatch per group).
                std::size_t group_index = 0;
                for (PreparedMicroBatch &pmb : batch.micro) {
                    train::StagedFeatures staged;
                    staged.host_features = &pmb.staged_features;
                    staged.saved_transfer_bytes =
                        pmb.saved_transfer_bytes;
                    device_.allocator().resetPeak();
                    processMicroBatch(pmb.mb, dataset, batch_outputs,
                                      stats, 0, 0.0, &staged);
                    auditGroup(
                        batch.schedule.groups[group_index],
                        group_index);
                    ++group_index;
                }
                stats.num_micro_batches =
                    static_cast<int>(batch.micro.size());
            } else {
                core::BuffaloScheduler scheduler(
                    model_->memoryModel(),
                    dataset.spec().paper_avg_coefficient, sched);
                core::ScheduleResult schedule =
                    scheduler.schedule(batch.sg);
                stats.phases.add(
                    train::phaseName(train::Phase::Scheduling),
                    schedule.schedule_seconds);
                std::size_t group_index = 0;
                for (const core::BucketGroup &group : schedule.groups) {
                    sampling::MicroBatch mb = generator_.generateOne(
                        batch.sg, group, &stats.phases);
                    device_.allocator().resetPeak();
                    processMicroBatch(mb, dataset, batch_outputs,
                                      stats);
                    auditGroup(group, group_index++);
                }
                stats.num_micro_batches = schedule.num_groups;
            }
            optimizerStep(stats);
            stats.peak_device_bytes =
                std::max(iteration_peak,
                         device_.allocator().peakBytes());
            return stats;
        } catch (const device::DeviceOom &) {
            obs::metrics().counter(obs::names::kCtrTrainOomRetries).add();
            obs::eventLog()
                .event(obs::names::kEvTrainOomRetry)
                .field("attempt", attempt + 1)
                .field("max_attempts", kMaxAttempts)
                .field("safety_factor", sched.safety_factor)
                .field("prefetched", use_prefetched)
                .field("giving_up", attempt + 1 >= kMaxAttempts);
            if (attempt + 1 >= kMaxAttempts)
                throw;
            model_->clearCache();
            if (options_.mode == train::ExecutionMode::Numeric)
                model_->module().zeroGrad();
            sched.safety_factor *= 0.7;
            use_prefetched = false;
            BUFFALO_LOG_WARN("pipeline-trainer")
                << "prepared batch overflowed the device; "
                   "rescheduling inline with safety factor "
                << sched.safety_factor;
        }
    }
}

namespace {

/** Publishes one pipelined epoch's telemetry to the global registry. */
void
recordEpochMetrics(const train::EpochReport &report)
{
    obs::MetricsRegistry &m = obs::metrics();
    m.counter(obs::names::kCtrPipelineEpochs).add();
    m.histogram(obs::names::kHistPipelineOverlapRatio).add(report.overlapRatio());
    m.gauge(obs::names::kGaugePipelineSampleBusySeconds)
        .set(report.stages.sample_busy_seconds);
    m.gauge(obs::names::kGaugePipelineBuildBusySeconds)
        .set(report.stages.build_busy_seconds);
    m.gauge(obs::names::kGaugePipelineFeatureBusySeconds)
        .set(report.stages.feature_busy_seconds);
    m.gauge(obs::names::kGaugePipelineMaxSampledQueue)
        .setMax(static_cast<double>(report.stages.max_sampled_queue));
    m.gauge(obs::names::kGaugePipelineMaxBuiltQueue)
        .setMax(static_cast<double>(report.stages.max_built_queue));
    m.gauge(obs::names::kGaugePipelineMaxReadyQueue)
        .setMax(static_cast<double>(report.stages.max_ready_queue));
    m.gauge(obs::names::kGaugePipelinePeakHostBytes)
        .setMax(static_cast<double>(report.stages.peak_host_bytes));
    m.gauge(obs::names::kGaugeCacheHits).set(static_cast<double>(report.cache.hits));
    m.gauge(obs::names::kGaugeCacheMisses)
        .set(static_cast<double>(report.cache.misses));
    m.gauge(obs::names::kGaugeCacheHitRate).set(report.cache.hitRate());
    m.gauge(obs::names::kGaugeCacheBytesInUse)
        .set(static_cast<double>(report.cache.bytes_in_use));
    m.gauge(obs::names::kGaugeCacheResidentNodes)
        .set(static_cast<double>(report.cache.resident_nodes));
    m.gauge(obs::names::kGaugeCachePinnedNodes)
        .set(static_cast<double>(report.cache.pinned_nodes));
    m.gauge(obs::names::kGaugeCpWallSeconds)
        .set(report.cp.wall_us / 1e6);
    m.gauge(obs::names::kGaugeCpSerialSeconds)
        .set(report.cp.serial_us / 1e6);
    m.gauge(obs::names::kGaugeCpOverlapEfficiency)
        .set(report.cp.overlap_efficiency);
    m.gauge(obs::names::kGaugeCpDominantShare)
        .set(report.cp.dominant_share);
}

} // namespace

train::EpochReport
PipelineTrainer::trainEpochImpl(
    const graph::Dataset &dataset,
    const std::vector<graph::NodeList> &batches, util::Rng &rng)
{
    train::EpochReport report;
    report.pipelined = true;
    if (cache_->enabled() && !hot_set_pinned_) {
        // The policy is built lazily on the first epoch — the
        // presample pass needs the dataset, which the constructor
        // never sees. Its Rng stream is private (seed ^ salt), so
        // running it leaves the training stream — and therefore
        // serial/pipelined loss parity — untouched.
        sampling::PresampleOptions presample;
        presample.num_batches = options_.pipeline.presample_batches;
        presample.batch_size =
            batches.empty() ? 256 : batches.front().size();
        presample.seed =
            options_.seed ^ sampling::kPresampleSeedSalt;
        cache_->setPolicy(makeCachePolicy(
            options_.pipeline.cache_policy, dataset,
            options_.fanouts, dataset.trainNodes(), presample));
        cache_->pinHotSet(dataset,
                          options_.pipeline.pinned_hot_nodes);
        hot_set_pinned_ = true;
    }

    Prefetcher prefetcher(
        dataset, batches, options_.fanouts, model_->memoryModel(),
        resolvedSchedulerOptions(),
        options_.mode == train::ExecutionMode::Numeric,
        options_.pipeline,
        cache_->enabled() ? cache_.get() : nullptr, rng);

    // Depth timeline for the three stage queues. Declared after the
    // prefetcher so destruction stops the sampler thread before the
    // queues its probes read are torn down.
    obs::QueueDepthSampler depth_sampler(prefetcher.depthProbes());

    // 4-lane pipeline schedule (sample | build | feature | device):
    // lane l of batch i starts when lane l finished batch i-1 AND lane
    // l-1 finished batch i. The sampling lane is additionally gated so
    // at most `window` batches are in flight — the queue capacities.
    const std::size_t window =
        3 * static_cast<std::size_t>(
                std::max(1, options_.pipeline.prefetch_depth)) +
        3;
    double t_sample = 0.0, t_build = 0.0, t_feature = 0.0,
           t_device = 0.0;
    std::deque<double> consumed_at;
    /** Per-batch {sample, build, feature, device} durations feeding
     *  the critical-path model. */
    std::vector<std::vector<double>> cp_rows;

    const std::uint64_t bytes0 = device_.transferredBytes();
    const std::uint64_t saved0 = device_.transferSavedBytes();
    util::StopWatch wall;

    while (auto batch = prefetcher.next()) {
        const double device_before = device_.totalSeconds();
        util::StopWatch train_watch;
        train::IterationStats stats = trainPrepared(*batch, dataset);
        obs::metrics()
            .histogram(obs::names::kHistQueueReadyServiceMs)
            .add(train_watch.seconds() * 1e3);
        const double device_delta =
            device_.totalSeconds() - device_before;

        report.loss_sum += stats.loss;
        report.correct += stats.correct;
        report.outputs += stats.num_outputs;
        report.num_micro_batches += stats.num_micro_batches;
        report.epoch_seconds += stats.endToEndSeconds();
        report.phases.merge(stats.phases);
        report.peak_device_bytes = std::max(report.peak_device_bytes,
                                            stats.peak_device_bytes);
        for (const obs::GroupMemRecord &record : stats.group_audit)
            report.mem_audit.add(record);

        const double gate =
            consumed_at.size() >= window
                ? consumed_at[consumed_at.size() - window]
                : 0.0;
        t_sample =
            std::max(t_sample, gate) + batch->sample_seconds;
        t_build = std::max(t_sample, t_build) + batch->build_seconds;
        t_feature =
            std::max(t_build, t_feature) + batch->feature_seconds;
        t_device = std::max(t_feature, t_device) + device_delta;
        consumed_at.push_back(t_device);

        report.prep_seconds += batch->prepSeconds();
        report.device_seconds += device_delta;
        report.serial_seconds += batch->prepSeconds() + device_delta;
        cp_rows.push_back({batch->sample_seconds,
                           batch->build_seconds,
                           batch->feature_seconds, device_delta});

        prefetcher.release(*batch);
        ++report.num_batches;
    }

    report.pipelined_seconds = t_device;
    report.wall_seconds = wall.seconds();
    report.transfer_bytes = device_.transferredBytes() - bytes0;
    report.transfer_saved_bytes =
        device_.transferSavedBytes() - saved0;
    report.mean_loss = report.num_batches == 0
                           ? 0.0
                           : report.loss_sum / report.num_batches;
    report.accuracy =
        report.outputs == 0
            ? 0.0
            : static_cast<double>(report.correct) /
                  static_cast<double>(report.outputs);

    const PrefetcherStats stages = prefetcher.stats();
    report.stages.sample_busy_seconds = stages.sample_busy_seconds;
    report.stages.build_busy_seconds = stages.build_busy_seconds;
    report.stages.feature_busy_seconds = stages.feature_busy_seconds;
    report.stages.max_sampled_queue = stages.max_sampled_queue;
    report.stages.max_built_queue = stages.max_built_queue;
    report.stages.max_ready_queue = stages.max_ready_queue;
    report.stages.peak_host_bytes = stages.peak_host_bytes;

    const FeatureCacheStats cache = cache_->stats();
    report.cache.policy = cache.policy;
    report.cache.hits = cache.hits;
    report.cache.misses = cache.misses;
    report.cache.insertions = cache.insertions;
    report.cache.evictions = cache.evictions;
    report.cache.pinned_nodes = cache.pinned_nodes;
    report.cache.resident_nodes = cache.resident_nodes;
    report.cache.bytes_in_use = cache.bytes_in_use;
    report.cache.capacity_bytes = cache.capacity_bytes;

    // Critical-path attribution over the same per-batch durations
    // that drive the overlap recurrence — available even when the
    // tracer is off (buffalo_profile re-derives the same chains from
    // a recorded trace).
    obs::CpOptions cp_options;
    cp_options.cache_hit_rate =
        cache_->enabled() ? report.cache.hitRate() : -1.0;
    cp_options.feature_stage = obs::names::kSpanPipelineFeature;
    cp_options.build_stage = obs::names::kSpanPipelineBuild;
    report.cp = obs::analyzeModeledPipeline(
        {obs::names::kSpanPipelineSample,
         obs::names::kSpanPipelineBuild,
         obs::names::kSpanPipelineFeature,
         obs::names::kSpanTrainIteration},
        cp_rows, cp_options);
    obs::eventLog()
        .event(obs::names::kEvCpReport)
        .field("items", static_cast<std::uint64_t>(report.cp.items))
        .field("wall_seconds", report.cp.wall_us / 1e6)
        .field("serial_seconds", report.cp.serial_us / 1e6)
        .field("overlap_efficiency", report.cp.overlap_efficiency)
        .field("dominant_stage", report.cp.dominant_stage)
        .field("dominant_share", report.cp.dominant_share);

    if (cache_->enabled()) {
        obs::eventLog()
            .event(obs::names::kEvCacheSnapshot)
            .field("policy", report.cache.policy)
            .field("hits", report.cache.hits)
            .field("misses", report.cache.misses)
            .field("hit_rate", report.cache.hitRate())
            .field("insertions", report.cache.insertions)
            .field("evictions", report.cache.evictions)
            .field("resident_nodes",
                   std::uint64_t(report.cache.resident_nodes))
            .field("bytes_in_use", report.cache.bytes_in_use)
            .field("capacity_bytes", report.cache.capacity_bytes);
    }

    recordEpochMetrics(report);
    return report;
}

} // namespace buffalo::pipeline
