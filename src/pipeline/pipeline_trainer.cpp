#include "pipeline/pipeline_trainer.h"

#include <algorithm>
#include <deque>

#include "train/experiment.h"
#include "util/logging.h"

namespace buffalo::pipeline {

PipelineTrainer::PipelineTrainer(
    const train::TrainerOptions &options, device::Device &device,
    const PipelineOptions &pipeline_options)
    : BuffaloTrainer(options, device),
      pipeline_options_(pipeline_options)
{
    FeatureCacheOptions cache_options;
    cache_options.capacity_bytes = pipeline_options_.feature_cache_bytes;
    cache_options.feature_dim = options.model.feature_dim;
    cache_options.store_payload =
        options.mode == train::ExecutionMode::Numeric;
    cache_ = std::make_unique<FeatureCache>(cache_options);
}

core::SchedulerOptions
PipelineTrainer::resolvedSchedulerOptions() const
{
    core::SchedulerOptions sched = options_.scheduler;
    if (sched.mem_constraint == 0)
        sched.mem_constraint = device_.allocator().capacity();
    sched.reserved_bytes = static_bytes_;
    return sched;
}

train::IterationStats
PipelineTrainer::trainPrepared(PreparedBatch &batch,
                               const graph::Dataset &dataset)
{
    const std::size_t batch_outputs = batch.sg.numSeeds();
    core::SchedulerOptions sched = resolvedSchedulerOptions();

    // Same recovery protocol as the serial BuffaloTrainer: on OOM the
    // batch restarts (accumulated gradients discarded first) with a
    // tighter safety factor. Retries re-schedule from the retained
    // sampled subgraph and prepare inline — the cache discount is
    // deliberately forgone so accounting stays conservative.
    constexpr int kMaxAttempts = 4;
    bool use_prefetched = true;
    for (int attempt = 0;; ++attempt) {
        train::IterationStats stats;
        stats.phases.merge(batch.phases);
        device_.allocator().resetPeak();
        try {
            if (use_prefetched) {
                for (PreparedMicroBatch &pmb : batch.micro) {
                    train::StagedFeatures staged;
                    staged.host_features = &pmb.staged_features;
                    staged.saved_transfer_bytes =
                        pmb.saved_transfer_bytes;
                    processMicroBatch(pmb.mb, dataset, batch_outputs,
                                      stats, 0, 0.0, &staged);
                }
                stats.num_micro_batches =
                    static_cast<int>(batch.micro.size());
            } else {
                core::BuffaloScheduler scheduler(
                    model_->memoryModel(),
                    dataset.spec().paper_avg_coefficient, sched);
                core::ScheduleResult schedule =
                    scheduler.schedule(batch.sg);
                stats.phases.add(train::kPhaseScheduling,
                                 schedule.schedule_seconds);
                for (const core::BucketGroup &group : schedule.groups) {
                    sampling::MicroBatch mb = generator_.generateOne(
                        batch.sg, group, &stats.phases);
                    processMicroBatch(mb, dataset, batch_outputs,
                                      stats);
                }
                stats.num_micro_batches = schedule.num_groups;
            }
            optimizerStep(stats);
            stats.peak_device_bytes = device_.allocator().peakBytes();
            return stats;
        } catch (const device::DeviceOom &) {
            if (attempt + 1 >= kMaxAttempts)
                throw;
            model_->clearCache();
            if (options_.mode == train::ExecutionMode::Numeric)
                model_->module().zeroGrad();
            sched.safety_factor *= 0.7;
            use_prefetched = false;
            BUFFALO_LOG_WARN("pipeline-trainer")
                << "prepared batch overflowed the device; "
                   "rescheduling inline with safety factor "
                << sched.safety_factor;
        }
    }
}

PipelinedEpochStats
PipelineTrainer::trainEpochPipelined(
    const graph::Dataset &dataset,
    const std::vector<graph::NodeList> &batches, util::Rng &rng)
{
    PipelinedEpochStats result;
    if (cache_->enabled() && !hot_set_pinned_) {
        cache_->pinHotNodes(dataset, pipeline_options_.pinned_hot_nodes);
        hot_set_pinned_ = true;
    }

    Prefetcher prefetcher(
        dataset, batches, options_.fanouts, model_->memoryModel(),
        resolvedSchedulerOptions(),
        options_.mode == train::ExecutionMode::Numeric,
        pipeline_options_, cache_->enabled() ? cache_.get() : nullptr,
        rng);

    // 4-lane pipeline schedule (sample | build | feature | device):
    // lane l of batch i starts when lane l finished batch i-1 AND lane
    // l-1 finished batch i. The sampling lane is additionally gated so
    // at most `window` batches are in flight — the queue capacities.
    const std::size_t window =
        3 * static_cast<std::size_t>(
                std::max(1, pipeline_options_.prefetch_depth)) +
        3;
    double t_sample = 0.0, t_build = 0.0, t_feature = 0.0,
           t_device = 0.0;
    std::deque<double> consumed_at;

    const std::uint64_t bytes0 = device_.transferredBytes();
    const std::uint64_t saved0 = device_.transferSavedBytes();
    util::StopWatch wall;

    while (auto batch = prefetcher.next()) {
        const double device_before = device_.totalSeconds();
        train::IterationStats stats = trainPrepared(*batch, dataset);
        const double device_delta =
            device_.totalSeconds() - device_before;

        result.loss_sum += stats.loss;
        result.correct += stats.correct;
        result.outputs += stats.num_outputs;
        result.num_micro_batches += stats.num_micro_batches;
        result.peak_device_bytes = std::max(
            result.peak_device_bytes, stats.peak_device_bytes);

        const double gate =
            consumed_at.size() >= window
                ? consumed_at[consumed_at.size() - window]
                : 0.0;
        t_sample =
            std::max(t_sample, gate) + batch->sample_seconds;
        t_build = std::max(t_sample, t_build) + batch->build_seconds;
        t_feature =
            std::max(t_build, t_feature) + batch->feature_seconds;
        t_device = std::max(t_feature, t_device) + device_delta;
        consumed_at.push_back(t_device);

        result.prep_seconds += batch->prepSeconds();
        result.device_seconds += device_delta;
        result.serial_seconds += batch->prepSeconds() + device_delta;

        prefetcher.release(*batch);
        ++result.num_batches;
    }

    result.pipelined_seconds = t_device;
    result.wall_seconds = wall.seconds();
    result.transfer_bytes = device_.transferredBytes() - bytes0;
    result.transfer_saved_bytes =
        device_.transferSavedBytes() - saved0;
    result.mean_loss = result.num_batches == 0
                           ? 0.0
                           : result.loss_sum / result.num_batches;
    result.accuracy =
        result.outputs == 0
            ? 0.0
            : static_cast<double>(result.correct) /
                  static_cast<double>(result.outputs);
    result.stages = prefetcher.stats();
    result.cache = cache_->stats();
    return result;
}

PipelinedEpochStats
PipelineTrainer::trainEpoch(const graph::Dataset &dataset,
                            std::size_t batch_size, util::Rng &rng)
{
    const std::vector<graph::NodeList> batches =
        train::makeBatches(dataset.trainNodes(), batch_size, rng);
    return trainEpochPipelined(dataset, batches, rng);
}

} // namespace buffalo::pipeline
