/**
 * @file
 * Pluggable feature-cache hot-set policies (DESIGN.md, "Pipeline &
 * feature cache").
 *
 * The FeatureCache itself is policy-free: it provides thread-safe LRU
 * admission plus a pinned set that is never evicted, and delegates
 * *which* nodes deserve pinning to a CachePolicy. Three policies ship:
 *
 *   - LruOnlyPolicy: no pinned set; pure recency.
 *   - DegreePolicy: pin the highest in-degree nodes — BGL's
 *     observation that power-law graphs concentrate block inputs in
 *     few hub nodes.
 *   - PresampleFrequencyPolicy: pin the nodes the *real sampler*
 *     touched most often during a startup presample pass
 *     (sampling/presample.h) — FGNN's result that measured frequency
 *     for the actual sampler + dataset beats static degree.
 *
 * Training and serving share this interface: the PipelineTrainer and
 * the serve::Server both build their cache's policy through
 * makeCachePolicy(), so a policy name means the same thing in
 * `buffalo_train --cache-policy` and `buffalo_serve --cache-policy`.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/datasets.h"
#include "graph/types.h"
#include "sampling/presample.h"
#include "train/report.h"

namespace buffalo::pipeline {

/** What a policy's construction cost (zero unless a presample ran). */
struct CachePolicyBuildReport
{
    /** Presample micro-batches run (0 for degree / LRU-only). */
    int presample_batches = 0;
    /** Node occurrences the presample pass counted. */
    std::uint64_t presample_node_visits = 0;
    /** Wall-clock seconds spent presampling. */
    double presample_seconds = 0.0;
};

/**
 * Hot-set selection strategy for a FeatureCache. Implementations are
 * immutable after construction and safe to share across caches and
 * threads.
 */
class CachePolicy
{
  public:
    virtual ~CachePolicy() = default;

    /** Stable short name ("lru" | "degree" | "presample"). */
    virtual const char *name() const = 0;

    /** The kind this policy implements. */
    virtual train::CachePolicyKind kind() const = 0;

    /**
     * Up to @p max_pinned node ids to pin, best first. May return
     * fewer when the policy has no evidence for more (e.g. nodes the
     * presample never touched); an empty list means pure LRU.
     */
    virtual graph::NodeList pinSet(const graph::Dataset &dataset,
                                   std::size_t max_pinned) const = 0;
};

/** No pinned set; the cache is pure LRU. */
class LruOnlyPolicy final : public CachePolicy
{
  public:
    const char *name() const override { return "lru"; }
    train::CachePolicyKind
    kind() const override
    {
        return train::CachePolicyKind::LruOnly;
    }
    graph::NodeList pinSet(const graph::Dataset &dataset,
                           std::size_t max_pinned) const override;
};

/** Pin the highest in-degree nodes (ties broken by node id). */
class DegreePolicy final : public CachePolicy
{
  public:
    const char *name() const override { return "degree"; }
    train::CachePolicyKind
    kind() const override
    {
        return train::CachePolicyKind::Degree;
    }
    graph::NodeList pinSet(const graph::Dataset &dataset,
                           std::size_t max_pinned) const override;
};

/**
 * Pin the nodes most frequently observed by a presample pass. Only
 * nodes with nonzero observed frequency are ever pinned — the rest of
 * the capacity stays available to LRU admission. Ties break by
 * degree, then node id, so the ranking is fully deterministic.
 */
class PresampleFrequencyPolicy final : public CachePolicy
{
  public:
    /** @p frequency is indexed by global node id (may be empty). */
    explicit PresampleFrequencyPolicy(
        std::vector<std::uint64_t> frequency);

    const char *name() const override { return "presample"; }
    train::CachePolicyKind
    kind() const override
    {
        return train::CachePolicyKind::PresampleFrequency;
    }
    graph::NodeList pinSet(const graph::Dataset &dataset,
                           std::size_t max_pinned) const override;

    /** The table the policy ranks by (for tests / introspection). */
    const std::vector<std::uint64_t> &
    frequency() const
    {
        return frequency_;
    }

  private:
    std::vector<std::uint64_t> frequency_;
};

/** CLI/flag name of @p kind ("lru" | "degree" | "presample"). */
const char *cachePolicyKindName(train::CachePolicyKind kind);

/** Inverse of cachePolicyKindName(); throws InvalidArgument. */
train::CachePolicyKind cachePolicyKindFromName(const std::string &name);

/**
 * Builds the policy for @p kind. For PresampleFrequency this runs the
 * presample pass over @p dataset's graph with @p fanouts and
 * @p presample (seeds drawn from @p seed_pool; empty = all nodes),
 * publishes the cache.presample_* metrics and the cache.policy event,
 * and reports the cost through @p report when non-null. Degree and
 * LRU-only construction is free.
 */
std::shared_ptr<const CachePolicy> makeCachePolicy(
    train::CachePolicyKind kind, const graph::Dataset &dataset,
    const std::vector<int> &fanouts,
    const graph::NodeList &seed_pool,
    const sampling::PresampleOptions &presample,
    CachePolicyBuildReport *report = nullptr);

} // namespace buffalo::pipeline
