#include "pipeline/feature_cache.h"

#include <algorithm>

#include "util/errors.h"

namespace buffalo::pipeline {

FeatureCache::FeatureCache(const FeatureCacheOptions &options)
    : options_(options)
{
    checkArgument(options_.feature_dim >= 0,
                  "FeatureCache: feature_dim must be >= 0");
    row_bytes_ = static_cast<std::uint64_t>(options_.feature_dim) *
                 sizeof(float);
    enabled_ = options_.capacity_bytes > 0 && row_bytes_ > 0 &&
               row_bytes_ <= options_.capacity_bytes;
    util::MutexLock lock(mutex_);
    policy_ = options_.policy != nullptr
                  ? options_.policy
                  : std::make_shared<DegreePolicy>();
}

std::shared_ptr<const CachePolicy>
FeatureCache::policy() const
{
    util::MutexLock lock(mutex_);
    return policy_;
}

void
FeatureCache::setPolicy(std::shared_ptr<const CachePolicy> policy)
{
    checkArgument(policy != nullptr,
                  "FeatureCache::setPolicy: policy must be non-null");
    util::MutexLock lock(mutex_);
    policy_ = std::move(policy);
}

std::uint64_t
FeatureCache::capacityRows() const
{
    return enabled_ ? options_.capacity_bytes / row_bytes_ : 0;
}

void
FeatureCache::pinHotSet(const graph::Dataset &dataset,
                        std::size_t max_pinned)
{
    if (!enabled_)
        return;
    // Resolve the pin budget: an explicit cap wins, otherwise the
    // policy may fill the whole capacity. The ranking itself runs
    // outside the lock — policies are immutable and may walk the
    // whole graph.
    const std::size_t budget = std::min<std::size_t>(
        max_pinned == 0 ? static_cast<std::size_t>(capacityRows())
                        : max_pinned,
        static_cast<std::size_t>(capacityRows()));
    if (budget == 0)
        return;
    const graph::NodeList order = policy()->pinSet(dataset, budget);

    std::vector<float> row;
    if (options_.store_payload)
        row.resize(static_cast<std::size_t>(options_.feature_dim));

    util::MutexLock lock(mutex_);
    for (const graph::NodeId node : order) {
        if (entries_.count(node) > 0)
            continue;
        evictUntilFitsLocked(row_bytes_);
        if (bytes_in_use_ + row_bytes_ > options_.capacity_bytes)
            break; // everything left is pinned
        Entry entry;
        entry.pinned = true;
        if (options_.store_payload) {
            dataset.fillFeatures(node, row);
            entry.row = row;
        }
        entries_.emplace(node, std::move(entry));
        bytes_in_use_ += row_bytes_;
        ++pinned_count_;
    }
}

bool
FeatureCache::lookup(graph::NodeId node, std::span<float> out)
{
    if (!enabled_)
        return false;
    util::MutexLock lock(mutex_);
    auto it = entries_.find(node);
    if (it == entries_.end()) {
        ++misses_;
        return false;
    }
    ++hits_;
    if (!it->second.pinned) {
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
        it->second.lru_pos = lru_.begin();
    }
    if (options_.store_payload && !out.empty()) {
        checkArgument(out.size() == it->second.row.size(),
                      "FeatureCache::lookup: row width mismatch");
        std::copy(it->second.row.begin(), it->second.row.end(),
                  out.begin());
    }
    return true;
}

void
FeatureCache::insert(graph::NodeId node, std::span<const float> row)
{
    if (!enabled_)
        return;
    util::MutexLock lock(mutex_);
    if (entries_.count(node) > 0)
        return;
    evictUntilFitsLocked(row_bytes_);
    if (bytes_in_use_ + row_bytes_ > options_.capacity_bytes)
        return; // capacity fully pinned
    Entry entry;
    if (options_.store_payload) {
        checkArgument(row.size() ==
                          static_cast<std::size_t>(options_.feature_dim),
                      "FeatureCache::insert: row width mismatch");
        entry.row.assign(row.begin(), row.end());
    }
    lru_.push_front(node);
    entry.lru_pos = lru_.begin();
    entries_.emplace(node, std::move(entry));
    bytes_in_use_ += row_bytes_;
    ++insertions_;
}

void
FeatureCache::evictUntilFitsLocked(std::uint64_t needed_bytes)
{
    while (bytes_in_use_ + needed_bytes > options_.capacity_bytes &&
           !lru_.empty()) {
        const graph::NodeId victim = lru_.back();
        lru_.pop_back();
        entries_.erase(victim);
        bytes_in_use_ -= row_bytes_;
        ++evictions_;
    }
}

FeatureCacheStats
FeatureCache::stats() const
{
    util::MutexLock lock(mutex_);
    FeatureCacheStats s;
    s.policy = enabled_ ? policy_->name() : "";
    s.hits = hits_;
    s.misses = misses_;
    s.insertions = insertions_;
    s.evictions = evictions_;
    s.pinned_nodes = pinned_count_;
    s.resident_nodes = entries_.size();
    s.bytes_in_use = bytes_in_use_;
    s.capacity_bytes = options_.capacity_bytes;
    return s;
}

void
FeatureCache::resetCounters()
{
    util::MutexLock lock(mutex_);
    hits_ = misses_ = insertions_ = evictions_ = 0;
}

} // namespace buffalo::pipeline
