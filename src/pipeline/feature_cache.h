/**
 * @file
 * Redundancy-aware feature cache.
 *
 * Buffalo's grouping ratio R_group (paper Eq. 1-2) quantifies exactly
 * how many input nodes adjacent micro-batches share; every shared node
 * whose feature row is still device-resident needs no host->device
 * re-transfer. The cache models that resident set: an LRU keyed by
 * global node id, with an optional *pinned* hot set of the highest
 * in-degree nodes (power-law graphs concentrate most block inputs in
 * few hub nodes, so pinning them captures a large hit fraction with a
 * small budget — the BGL insight).
 *
 * Two payload modes share the accounting: in numeric execution the
 * cache stores the actual rows (hits skip dataset.fillFeatures); in
 * cost-model execution it stores presence only, so capacity, hits,
 * and evictions behave identically without the float traffic.
 */
#pragma once

#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/datasets.h"
#include "graph/types.h"
#include "util/thread_annotations.h"

namespace buffalo::pipeline {

/** Cache configuration. */
struct FeatureCacheOptions
{
    /** Byte budget for cached rows; 0 disables the cache entirely. */
    std::uint64_t capacity_bytes = 0;
    /** Feature row width, floats (== dataset.featureDim()). */
    int feature_dim = 0;
    /** Store row payloads (numeric mode) or presence only (cost model). */
    bool store_payload = true;
};

/** Counter snapshot; rates are derived, all counts monotonic. */
struct FeatureCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t pinned_nodes = 0;
    std::uint64_t resident_nodes = 0;
    std::uint64_t bytes_in_use = 0;
    std::uint64_t capacity_bytes = 0;

    /** hits / (hits + misses), 0 when never queried. */
    double
    hitRate() const
    {
        const std::uint64_t total = hits + misses;
        return total == 0
                   ? 0.0
                   : static_cast<double>(hits) / static_cast<double>(total);
    }
};

/**
 * Thread-safe LRU feature-row cache with a degree-pinned hot set.
 * All methods are safe to call concurrently from prefetch workers.
 */
class FeatureCache
{
  public:
    explicit FeatureCache(const FeatureCacheOptions &options);

    /** False when capacity is 0 or the row width is larger than it. */
    bool enabled() const { return enabled_; }

    /** Bytes one cached row occupies. */
    std::uint64_t rowBytes() const { return row_bytes_; }

    /** Rows that fit under the capacity. */
    std::uint64_t capacityRows() const;

    /**
     * Permanently pins the @p max_pinned highest in-degree nodes of
     * @p dataset (capped by capacity). Pinned rows are filled from the
     * dataset immediately (payload mode) and are never evicted.
     */
    void pinHotNodes(const graph::Dataset &dataset,
                     std::size_t max_pinned) BUFFALO_EXCLUDES(mutex_);

    /**
     * Looks @p node up, refreshing its LRU position. On a payload-mode
     * hit the row is copied into @p out when non-empty (@p out must
     * then hold feature_dim floats).
     * @return true on hit.
     */
    bool lookup(graph::NodeId node, std::span<float> out)
        BUFFALO_EXCLUDES(mutex_);

    /**
     * Inserts @p node's row (ignored if already resident or the cache
     * is disabled), evicting least-recently-used unpinned rows to make
     * room. @p row may be empty in presence-only mode.
     */
    void insert(graph::NodeId node, std::span<const float> row)
        BUFFALO_EXCLUDES(mutex_);

    /** Counter snapshot. */
    FeatureCacheStats stats() const BUFFALO_EXCLUDES(mutex_);

    /** Zeroes hit/miss/insert/evict counters; contents stay resident. */
    void resetCounters() BUFFALO_EXCLUDES(mutex_);

  private:
    struct Entry
    {
        std::vector<float> row;
        /** Position in lru_ (valid only when !pinned). */
        std::list<graph::NodeId>::iterator lru_pos;
        bool pinned = false;
    };

    void evictUntilFitsLocked(std::uint64_t needed_bytes)
        BUFFALO_REQUIRES(mutex_);

    /** Immutable after construction. */
    FeatureCacheOptions options_;
    std::uint64_t row_bytes_ = 0;
    bool enabled_ = false;

    mutable util::Mutex mutex_;
    std::unordered_map<graph::NodeId, Entry> entries_
        BUFFALO_GUARDED_BY(mutex_);
    /** Unpinned residents, most recent at the front. */
    std::list<graph::NodeId> lru_ BUFFALO_GUARDED_BY(mutex_);
    std::uint64_t bytes_in_use_ BUFFALO_GUARDED_BY(mutex_) = 0;
    std::uint64_t hits_ BUFFALO_GUARDED_BY(mutex_) = 0;
    std::uint64_t misses_ BUFFALO_GUARDED_BY(mutex_) = 0;
    std::uint64_t insertions_ BUFFALO_GUARDED_BY(mutex_) = 0;
    std::uint64_t evictions_ BUFFALO_GUARDED_BY(mutex_) = 0;
    std::uint64_t pinned_count_ BUFFALO_GUARDED_BY(mutex_) = 0;
};

} // namespace buffalo::pipeline
