/**
 * @file
 * Redundancy-aware feature cache.
 *
 * Buffalo's grouping ratio R_group (paper Eq. 1-2) quantifies exactly
 * how many input nodes adjacent micro-batches share; every shared node
 * whose feature row is still device-resident needs no host->device
 * re-transfer. The cache models that resident set: an LRU keyed by
 * global node id, with an optional *pinned* hot set that is never
 * evicted. Which nodes deserve pinning is delegated to a pluggable
 * CachePolicy (cache_policy.h): highest in-degree (BGL's hub
 * insight), presample-frequency (FGNN's measured ranking), or none
 * (pure LRU).
 *
 * Two payload modes share the accounting: in numeric execution the
 * cache stores the actual rows (hits skip dataset.fillFeatures); in
 * cost-model execution it stores presence only, so capacity, hits,
 * and evictions behave identically without the float traffic.
 */
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/datasets.h"
#include "graph/types.h"
#include "pipeline/cache_policy.h"
#include "util/thread_annotations.h"

namespace buffalo::pipeline {

/** Cache configuration. */
struct FeatureCacheOptions
{
    /** Byte budget for cached rows; 0 disables the cache entirely. */
    std::uint64_t capacity_bytes = 0;
    /** Feature row width, floats (== dataset.featureDim()). */
    int feature_dim = 0;
    /** Store row payloads (numeric mode) or presence only (cost model). */
    bool store_payload = true;
    /** Hot-set policy; null defaults to DegreePolicy. */
    std::shared_ptr<const CachePolicy> policy;
};

/**
 * Counter snapshot; rates are derived, all counts monotonic. Always
 * taken as one consistent read under the cache mutex — hits + misses
 * equals the number of lookups even while workers mutate the cache.
 */
struct FeatureCacheStats
{
    /** name() of the installed policy ("" when cache is disabled). */
    const char *policy = "";
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t pinned_nodes = 0;
    std::uint64_t resident_nodes = 0;
    std::uint64_t bytes_in_use = 0;
    std::uint64_t capacity_bytes = 0;

    /** hits / (hits + misses), 0 when never queried. */
    double
    hitRate() const
    {
        const std::uint64_t total = hits + misses;
        return total == 0
                   ? 0.0
                   : static_cast<double>(hits) / static_cast<double>(total);
    }
};

/**
 * Thread-safe LRU feature-row cache with a policy-selected pinned hot
 * set. All methods are safe to call concurrently from prefetch
 * workers.
 */
class FeatureCache
{
  public:
    explicit FeatureCache(const FeatureCacheOptions &options);

    /** False when capacity is 0 or the row width is larger than it. */
    bool enabled() const { return enabled_; }

    /** Bytes one cached row occupies. */
    std::uint64_t rowBytes() const { return row_bytes_; }

    /** Rows that fit under the capacity. */
    std::uint64_t capacityRows() const;

    /** The installed hot-set policy (never null once constructed). */
    std::shared_ptr<const CachePolicy> policy() const
        BUFFALO_EXCLUDES(mutex_);

    /**
     * Replaces the hot-set policy. Call before pinHotSet(); already
     * pinned rows are unaffected.
     */
    void setPolicy(std::shared_ptr<const CachePolicy> policy)
        BUFFALO_EXCLUDES(mutex_);

    /**
     * Permanently pins the policy's hot set for @p dataset: up to
     * @p max_pinned nodes (0 = up to the cache capacity; always
     * capped by it), in the policy's ranking order. Pinned rows are
     * filled from the dataset immediately (payload mode) and are
     * never evicted. A policy may rank fewer nodes than the budget
     * (LRU-only ranks none); the rest of the capacity serves LRU
     * admission.
     */
    void pinHotSet(const graph::Dataset &dataset,
                   std::size_t max_pinned) BUFFALO_EXCLUDES(mutex_);

    /**
     * Looks @p node up, refreshing its LRU position. On a payload-mode
     * hit the row is copied into @p out when non-empty (@p out must
     * then hold feature_dim floats).
     * @return true on hit.
     */
    bool lookup(graph::NodeId node, std::span<float> out)
        BUFFALO_EXCLUDES(mutex_);

    /**
     * Inserts @p node's row (ignored if already resident or the cache
     * is disabled), evicting least-recently-used unpinned rows to make
     * room. @p row may be empty in presence-only mode.
     */
    void insert(graph::NodeId node, std::span<const float> row)
        BUFFALO_EXCLUDES(mutex_);

    /** Counter snapshot. */
    FeatureCacheStats stats() const BUFFALO_EXCLUDES(mutex_);

    /** Zeroes hit/miss/insert/evict counters; contents stay resident. */
    void resetCounters() BUFFALO_EXCLUDES(mutex_);

  private:
    struct Entry
    {
        std::vector<float> row;
        /** Position in lru_ (valid only when !pinned). */
        std::list<graph::NodeId>::iterator lru_pos;
        bool pinned = false;
    };

    void evictUntilFitsLocked(std::uint64_t needed_bytes)
        BUFFALO_REQUIRES(mutex_);

    /** Immutable after construction. */
    FeatureCacheOptions options_;
    std::uint64_t row_bytes_ = 0;
    bool enabled_ = false;

    mutable util::Mutex mutex_;
    /** Hot-set policy; replaced by setPolicy() before pinning, read
     *  by pinHotSet()/stats() — guarded so a concurrent stats() call
     *  can never observe a half-swapped pointer. */
    std::shared_ptr<const CachePolicy> policy_
        BUFFALO_GUARDED_BY(mutex_);
    std::unordered_map<graph::NodeId, Entry> entries_
        BUFFALO_GUARDED_BY(mutex_);
    /** Unpinned residents, most recent at the front. */
    std::list<graph::NodeId> lru_ BUFFALO_GUARDED_BY(mutex_);
    std::uint64_t bytes_in_use_ BUFFALO_GUARDED_BY(mutex_) = 0;
    std::uint64_t hits_ BUFFALO_GUARDED_BY(mutex_) = 0;
    std::uint64_t misses_ BUFFALO_GUARDED_BY(mutex_) = 0;
    std::uint64_t insertions_ BUFFALO_GUARDED_BY(mutex_) = 0;
    std::uint64_t evictions_ BUFFALO_GUARDED_BY(mutex_) = 0;
    std::uint64_t pinned_count_ BUFFALO_GUARDED_BY(mutex_) = 0;
};

} // namespace buffalo::pipeline
