#include "pipeline/cache_policy.h"

#include <algorithm>
#include <numeric>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "util/errors.h"

namespace buffalo::pipeline {

graph::NodeList
LruOnlyPolicy::pinSet(const graph::Dataset &dataset,
                      std::size_t max_pinned) const
{
    (void)dataset;
    (void)max_pinned;
    return {};
}

graph::NodeList
DegreePolicy::pinSet(const graph::Dataset &dataset,
                     std::size_t max_pinned) const
{
    const graph::CsrGraph &g = dataset.graph();
    graph::NodeList order(g.numNodes());
    std::iota(order.begin(), order.end(), graph::NodeId{0});
    const std::size_t count =
        std::min<std::size_t>(max_pinned, order.size());
    if (count == 0)
        return {};
    std::partial_sort(order.begin(), order.begin() + count, order.end(),
                      [&g](graph::NodeId a, graph::NodeId b) {
                          const auto da = g.degree(a);
                          const auto db = g.degree(b);
                          return da != db ? da > db : a < b;
                      });
    order.resize(count);
    return order;
}

PresampleFrequencyPolicy::PresampleFrequencyPolicy(
    std::vector<std::uint64_t> frequency)
    : frequency_(std::move(frequency))
{
}

graph::NodeList
PresampleFrequencyPolicy::pinSet(const graph::Dataset &dataset,
                                 std::size_t max_pinned) const
{
    const graph::CsrGraph &g = dataset.graph();
    graph::NodeList order;
    order.reserve(
        std::min<std::size_t>(frequency_.size(), g.numNodes()));
    for (graph::NodeId node = 0;
         node < g.numNodes() &&
         static_cast<std::size_t>(node) < frequency_.size();
         ++node)
        if (frequency_[node] > 0)
            order.push_back(node);
    const std::size_t count =
        std::min<std::size_t>(max_pinned, order.size());
    if (count == 0)
        return {};
    std::partial_sort(
        order.begin(), order.begin() + count, order.end(),
        [this, &g](graph::NodeId a, graph::NodeId b) {
            const std::uint64_t fa = frequency_[a];
            const std::uint64_t fb = frequency_[b];
            if (fa != fb)
                return fa > fb;
            const auto da = g.degree(a);
            const auto db = g.degree(b);
            return da != db ? da > db : a < b;
        });
    order.resize(count);
    return order;
}

const char *
cachePolicyKindName(train::CachePolicyKind kind)
{
    switch (kind) {
      case train::CachePolicyKind::LruOnly: return "lru";
      case train::CachePolicyKind::Degree: return "degree";
      case train::CachePolicyKind::PresampleFrequency:
        return "presample";
    }
    return "?";
}

train::CachePolicyKind
cachePolicyKindFromName(const std::string &name)
{
    if (name == "lru")
        return train::CachePolicyKind::LruOnly;
    if (name == "degree")
        return train::CachePolicyKind::Degree;
    if (name == "presample")
        return train::CachePolicyKind::PresampleFrequency;
    throw InvalidArgument("unknown cache policy '" + name +
                          "' (expected lru | degree | presample)");
}

std::shared_ptr<const CachePolicy>
makeCachePolicy(train::CachePolicyKind kind,
                const graph::Dataset &dataset,
                const std::vector<int> &fanouts,
                const graph::NodeList &seed_pool,
                const sampling::PresampleOptions &presample,
                CachePolicyBuildReport *report)
{
    std::shared_ptr<const CachePolicy> policy;
    CachePolicyBuildReport build;
    switch (kind) {
      case train::CachePolicyKind::LruOnly:
        policy = std::make_shared<LruOnlyPolicy>();
        break;
      case train::CachePolicyKind::Degree:
        policy = std::make_shared<DegreePolicy>();
        break;
      case train::CachePolicyKind::PresampleFrequency: {
        sampling::PresampleResult pass = sampling::presampleFrequencies(
            dataset.graph(), seed_pool, fanouts, presample);
        build.presample_batches = pass.batches;
        build.presample_node_visits = pass.node_visits;
        build.presample_seconds = pass.seconds;
        obs::metrics()
            .counter(obs::names::kCtrCachePresampleBatches)
            .add(static_cast<std::uint64_t>(pass.batches));
        obs::metrics()
            .gauge(obs::names::kGaugeCachePresampleSeconds)
            .set(pass.seconds);
        policy = std::make_shared<PresampleFrequencyPolicy>(
            std::move(pass.frequency));
        break;
      }
    }
    checkArgument(policy != nullptr,
                  "makeCachePolicy: unknown policy kind");
    obs::eventLog()
        .event(obs::names::kEvCachePolicy)
        .field("policy", policy->name())
        .field("presample_batches",
               static_cast<std::uint64_t>(build.presample_batches))
        .field("presample_node_visits", build.presample_node_visits)
        .field("presample_seconds", build.presample_seconds);
    if (report != nullptr)
        *report = build;
    return policy;
}

} // namespace buffalo::pipeline
