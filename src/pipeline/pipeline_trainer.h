/**
 * @file
 * PipelineTrainer — Buffalo training with asynchronous micro-batch
 * preparation (DESIGN.md, "Pipeline & feature cache").
 *
 * Wraps the Algorithm-2 trainer: while the (simulated) device executes
 * batch i, a Prefetcher prepares batches i+1..i+depth on background
 * workers and a FeatureCache serves repeated input rows without
 * re-transfer. Only *when* preparation happens changes — the sampling
 * Rng stream, the schedules, the micro-batch order, and the gradient
 * accumulation of Algorithm 2 are identical to the serial path, so
 * losses and weights match BuffaloTrainer bitwise.
 *
 * Epochs run through the unified TrainerBase::trainEpoch API: this
 * class overrides the protected epoch strategy, so callers see the
 * same train::EpochReport the serial trainers produce, with the
 * pipeline-only sections (stages, cache, overlap model) filled in.
 * Pipeline knobs come from TrainerOptions::pipeline.
 */
#pragma once

#include <memory>
#include <vector>

#include "pipeline/feature_cache.h"
#include "pipeline/prefetcher.h"
#include "train/trainer.h"

namespace buffalo::pipeline {

/** Buffalo trainer with prefetching and feature caching. */
class PipelineTrainer : public train::BuffaloTrainer
{
  public:
    /** Pipeline knobs are read from @p options.pipeline. */
    PipelineTrainer(const train::TrainerOptions &options,
                    device::Device &device);

    const train::PipelineOptions &pipelineOptions() const
    {
        return options().pipeline;
    }

    /** The cross-epoch feature cache (disabled when budget is 0). */
    FeatureCache &featureCache() { return *cache_; }
    const FeatureCache &featureCache() const { return *cache_; }

  protected:
    /**
     * The pipelined epoch strategy behind trainEpoch(): overlaps
     * preparation with device execution. @p rng is handed to the
     * sampling stage and must not be used elsewhere until this
     * returns; afterwards its state equals the serial trainer's after
     * the same batches.
     */
    train::EpochReport trainEpochImpl(
        const graph::Dataset &dataset,
        const std::vector<graph::NodeList> &batches,
        util::Rng &rng) override;

  private:
    /** Scheduler options with capacity/reserved bytes filled in. */
    core::SchedulerOptions resolvedSchedulerOptions() const;

    /**
     * Trains one prepared batch (all micro-batches + optimizer step),
     * with the serial trainer's OOM-reschedule-and-retry semantics;
     * retries fall back to inline (uncached) preparation.
     */
    train::IterationStats trainPrepared(PreparedBatch &batch,
                                        const graph::Dataset &dataset);

    std::unique_ptr<FeatureCache> cache_;
    core::MicroBatchGenerator generator_;
    bool hot_set_pinned_ = false;
};

} // namespace buffalo::pipeline
