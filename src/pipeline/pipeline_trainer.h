/**
 * @file
 * PipelineTrainer — Buffalo training with asynchronous micro-batch
 * preparation (DESIGN.md, "Pipeline & feature cache").
 *
 * Wraps the Algorithm-2 trainer: while the (simulated) device executes
 * batch i, a Prefetcher prepares batches i+1..i+depth on background
 * workers and a FeatureCache serves repeated input rows without
 * re-transfer. Only *when* preparation happens changes — the sampling
 * Rng stream, the schedules, the micro-batch order, and the gradient
 * accumulation of Algorithm 2 are identical to the serial path, so
 * losses and weights match BuffaloTrainer bitwise.
 */
#pragma once

#include <memory>
#include <vector>

#include "pipeline/feature_cache.h"
#include "pipeline/prefetcher.h"
#include "train/trainer.h"

namespace buffalo::pipeline {

/** Aggregate result of one pipelined epoch. */
struct PipelinedEpochStats
{
    /** Mean per-batch loss (valid in Numeric mode). */
    double mean_loss = 0.0;
    /** Top-1 training accuracy (Numeric mode). */
    double accuracy = 0.0;
    double loss_sum = 0.0;
    std::size_t correct = 0;
    std::size_t outputs = 0;
    int num_batches = 0;
    int num_micro_batches = 0;

    /**
     * Modeled epoch wall-clock with preparation overlapped behind
     * device execution: a 4-lane (sample/build/feature/device)
     * pipeline schedule over the measured stage times and simulated
     * device times, windowed by the prefetch depth.
     */
    double pipelined_seconds = 0.0;
    /** The same costs summed serially (the non-overlapped trainer). */
    double serial_seconds = 0.0;
    /** Host-side preparation busy time across stages. */
    double prep_seconds = 0.0;
    /** Simulated device (transfer + kernel) time. */
    double device_seconds = 0.0;
    /** Real host wall-clock of the epoch loop (prep ran concurrent). */
    double wall_seconds = 0.0;

    std::uint64_t transfer_bytes = 0;
    std::uint64_t transfer_saved_bytes = 0;
    std::uint64_t peak_device_bytes = 0;

    PrefetcherStats stages;
    FeatureCacheStats cache;

    /** pipelined/serial; < 1 means the overlap hid preparation time. */
    double
    overlapRatio() const
    {
        return serial_seconds > 0.0 ? pipelined_seconds / serial_seconds
                                    : 0.0;
    }
};

/** Buffalo trainer with prefetching and feature caching. */
class PipelineTrainer : public train::BuffaloTrainer
{
  public:
    PipelineTrainer(const train::TrainerOptions &options,
                    device::Device &device,
                    const PipelineOptions &pipeline_options);

    /**
     * Trains one epoch over @p batches (in order) with pipelined
     * preparation. @p rng is handed to the sampling stage and must not
     * be used elsewhere until this returns; afterwards its state equals
     * the serial trainer's after the same batches.
     */
    PipelinedEpochStats trainEpochPipelined(
        const graph::Dataset &dataset,
        const std::vector<graph::NodeList> &batches, util::Rng &rng);

    /**
     * Convenience epoch: shuffles the dataset's train nodes into
     * batches of @p batch_size (identically to train::runTraining) and
     * runs trainEpochPipelined.
     */
    PipelinedEpochStats trainEpoch(const graph::Dataset &dataset,
                                   std::size_t batch_size,
                                   util::Rng &rng);

    const PipelineOptions &pipelineOptions() const
    {
        return pipeline_options_;
    }

    /** The cross-epoch feature cache (disabled when budget is 0). */
    FeatureCache &featureCache() { return *cache_; }
    const FeatureCache &featureCache() const { return *cache_; }

  private:
    /** Scheduler options with capacity/reserved bytes filled in. */
    core::SchedulerOptions resolvedSchedulerOptions() const;

    /**
     * Trains one prepared batch (all micro-batches + optimizer step),
     * with the serial trainer's OOM-reschedule-and-retry semantics;
     * retries fall back to inline (uncached) preparation.
     */
    train::IterationStats trainPrepared(PreparedBatch &batch,
                                        const graph::Dataset &dataset);

    PipelineOptions pipeline_options_;
    std::unique_ptr<FeatureCache> cache_;
    core::MicroBatchGenerator generator_;
    bool hot_set_pinned_ = false;
};

} // namespace buffalo::pipeline
