/**
 * @file
 * Concurrency primitives of the prefetch pipeline (DESIGN.md, "Pipeline
 * & feature cache"): a bounded MPMC queue connecting pipeline stages,
 * with shutdown and exception propagation, and a byte-denominated
 * backpressure gate that caps the host memory held by prepared
 * micro-batches.
 */
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <optional>
#include <utility>

#include "util/thread_annotations.h"

namespace buffalo::pipeline {

/**
 * A bounded multi-producer/multi-consumer queue for pipeline stages.
 *
 * Lifecycle: producers push() until done, then one of them calls
 * close(); consumers pop() until they receive std::nullopt (queue
 * closed *and* drained). Any stage that fails calls abort(error):
 * pending and future pop() calls rethrow the error, push() returns
 * false so producers can unwind, and queued items are dropped.
 *
 * push() blocks while the queue is at capacity — this is the
 * backpressure that keeps a fast producer at most `capacity` items
 * ahead of its consumer.
 *
 * Telemetry: every push stamps the item's enqueue time; pop reports
 * the item's queue wait to the observer installed with
 * setWaitObserver() (DESIGN.md, "Critical-path attribution"), which
 * feeds the per-queue wait-time histograms.
 */
template <typename T> class StageQueue
{
  public:
    /** Creates a queue admitting at most @p capacity >= 1 items. */
    explicit StageQueue(std::size_t capacity)
        : capacity_(capacity < 1 ? 1 : capacity)
    {
    }

    StageQueue(const StageQueue &) = delete;
    StageQueue &operator=(const StageQueue &) = delete;

    /**
     * Blocks until there is room, then enqueues @p value.
     * @return false (dropping @p value) if the queue was closed or
     *         aborted while waiting.
     */
    bool
    push(T value)
    {
        util::MutexLock lock(mutex_);
        while (!(closed_ || error_ || items_.size() < capacity_))
            not_full_.wait(lock.native());
        if (closed_ || error_)
            return false;
        items_.push_back(std::move(value));
        enqueued_at_.push_back(std::chrono::steady_clock::now());
        if (items_.size() > max_occupancy_)
            max_occupancy_ = items_.size();
        not_empty_.notify_one();
        return true;
    }

    /**
     * Blocks until an item, closure, or abort arrives.
     * @return the next item in FIFO order, or std::nullopt once the
     *         queue is closed and fully drained.
     * @throws the abort(error) exception if the queue was aborted.
     */
    std::optional<T>
    pop()
    {
        std::optional<T> value;
        double wait_seconds = 0.0;
        {
            util::MutexLock lock(mutex_);
            while (!(error_ || closed_ || !items_.empty()))
                not_empty_.wait(lock.native());
            if (error_)
                std::rethrow_exception(error_);
            if (items_.empty())
                return std::nullopt; // closed and drained
            value.emplace(std::move(items_.front()));
            items_.pop_front();
            if (!enqueued_at_.empty()) {
                wait_seconds =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() -
                        enqueued_at_.front())
                        .count();
                enqueued_at_.pop_front();
            }
            not_full_.notify_one();
        }
        if (wait_observer_)
            wait_observer_(wait_seconds); // outside the lock
        return value;
    }

    /** Marks the producing side done; pops drain then return nullopt. */
    void
    close()
    {
        util::MutexLock lock(mutex_);
        closed_ = true;
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    /**
     * Fails the queue: queued items are dropped, waiting producers are
     * released (push returns false), and consumers rethrow @p error.
     * The first abort wins; later calls are ignored.
     */
    void
    abort(std::exception_ptr error)
    {
        util::MutexLock lock(mutex_);
        if (!error_)
            error_ = error;
        items_.clear();
        enqueued_at_.clear();
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    /** True once abort() has been called. */
    bool
    aborted() const
    {
        util::MutexLock lock(mutex_);
        return error_ != nullptr;
    }

    /** Items currently queued. */
    std::size_t
    size() const
    {
        util::MutexLock lock(mutex_);
        return items_.size();
    }

    /** High-water mark of queued items since construction. */
    std::size_t
    maxOccupancy() const
    {
        util::MutexLock lock(mutex_);
        return max_occupancy_;
    }

    std::size_t capacity() const { return capacity_; }

    /**
     * Installs a callback receiving each popped item's queue wait in
     * seconds. Install before producer/consumer threads start; the
     * observer runs on the consumer thread with the queue unlocked,
     * so it may touch metrics freely.
     */
    void
    setWaitObserver(std::function<void(double)> observer)
    {
        wait_observer_ = std::move(observer);
    }

  private:
    const std::size_t capacity_;
    /** Written only before threads start (see setWaitObserver). */
    std::function<void(double)> wait_observer_;
    mutable util::Mutex mutex_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<T> items_ BUFFALO_GUARDED_BY(mutex_);
    /** Parallel to items_: each item's enqueue time. */
    std::deque<std::chrono::steady_clock::time_point> enqueued_at_
        BUFFALO_GUARDED_BY(mutex_);
    std::size_t max_occupancy_ BUFFALO_GUARDED_BY(mutex_) = 0;
    bool closed_ BUFFALO_GUARDED_BY(mutex_) = false;
    std::exception_ptr error_ BUFFALO_GUARDED_BY(mutex_);
};

/**
 * Byte-denominated admission gate: the prefetcher acquires the host
 * bytes a prepared batch will pin *before* materializing it and
 * releases them when the trainer has consumed the batch, so prepared
 * work never exceeds the configured host-memory budget.
 *
 * A request larger than the whole budget is admitted once the gate is
 * empty (otherwise it could never run); capacity 0 disables gating.
 */
class ByteBudget
{
  public:
    explicit ByteBudget(std::uint64_t capacity_bytes)
        : capacity_(capacity_bytes)
    {
    }

    ByteBudget(const ByteBudget &) = delete;
    ByteBudget &operator=(const ByteBudget &) = delete;

    /**
     * Blocks until @p bytes fit under the budget (or the gate is empty
     * for an oversized request), then charges them.
     * @return false if cancel() interrupted the wait.
     */
    bool
    acquire(std::uint64_t bytes)
    {
        if (capacity_ == 0)
            return true;
        util::MutexLock lock(mutex_);
        while (!(cancelled_ || in_use_ + bytes <= capacity_ ||
                 in_use_ == 0))
            changed_.wait(lock.native());
        if (cancelled_)
            return false;
        in_use_ += bytes;
        return true;
    }

    /** Returns @p bytes previously acquired. */
    void
    release(std::uint64_t bytes)
    {
        if (capacity_ == 0)
            return;
        util::MutexLock lock(mutex_);
        in_use_ = bytes > in_use_ ? 0 : in_use_ - bytes;
        changed_.notify_all();
    }

    /** Wakes all waiters; subsequent acquires fail fast. */
    void
    cancel()
    {
        util::MutexLock lock(mutex_);
        cancelled_ = true;
        changed_.notify_all();
    }

    /** Bytes currently charged. */
    std::uint64_t
    bytesInUse() const
    {
        util::MutexLock lock(mutex_);
        return in_use_;
    }

    std::uint64_t capacity() const { return capacity_; }

  private:
    const std::uint64_t capacity_;
    mutable util::Mutex mutex_;
    std::condition_variable changed_;
    std::uint64_t in_use_ BUFFALO_GUARDED_BY(mutex_) = 0;
    bool cancelled_ BUFFALO_GUARDED_BY(mutex_) = false;
};

} // namespace buffalo::pipeline
