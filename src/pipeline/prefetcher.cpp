#include "pipeline/prefetcher.h"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "train/trainer.h"
#include "util/errors.h"

namespace buffalo::pipeline {

core::MicroBatchGenerator
makePipelineGenerator()
{
    // Coarser fan-out than FastBlockGenerator's defaults: inside the
    // pipeline the global pool also serves the compute kernels, so
    // block construction trades scheduling freedom for fewer enqueues.
    sampling::FastBlockGenerator::Grain grain;
    grain.parallel_dst_threshold = 16384;
    grain.min_chunk = 8192;
    grain.degree_grain = 4096;
    return core::MicroBatchGenerator(
        std::make_unique<sampling::FastBlockGenerator>(nullptr, grain));
}

Prefetcher::Prefetcher(const graph::Dataset &dataset,
                       std::vector<graph::NodeList> batches,
                       const std::vector<int> &fanouts,
                       const nn::MemoryModel &memory_model,
                       const core::SchedulerOptions &scheduler_options,
                       bool stage_features,
                       const PipelineOptions &options,
                       FeatureCache *cache, util::Rng &rng)
    : dataset_(dataset), memory_model_(memory_model),
      scheduler_options_(scheduler_options), fanouts_(fanouts),
      stage_features_(stage_features), options_(options), cache_(cache),
      rng_(&rng), generator_(makePipelineGenerator()),
      sampled_(static_cast<std::size_t>(
          std::max(1, options.prefetch_depth))),
      built_(static_cast<std::size_t>(
          std::max(1, options.prefetch_depth))),
      ready_(static_cast<std::size_t>(
          std::max(1, options.prefetch_depth))),
      budget_(options.host_memory_budget)
{
    checkArgument(options_.prefetch_depth >= 1,
                  "Prefetcher: prefetch_depth must be >= 1");
    // Queue-wait histograms (DESIGN.md, "Critical-path attribution").
    // Histogram handles are stable for the process lifetime and are
    // captured by value, so the observers never dangle.
    obs::ReservoirHistogram *sampled_wait = &obs::metrics().histogram(
        obs::names::kHistQueueSampledWaitMs);
    sampled_.setWaitObserver([sampled_wait](double seconds) {
        sampled_wait->add(seconds * 1e3);
    });
    obs::ReservoirHistogram *built_wait = &obs::metrics().histogram(
        obs::names::kHistQueueBuiltWaitMs);
    built_.setWaitObserver([built_wait](double seconds) {
        built_wait->add(seconds * 1e3);
    });
    obs::ReservoirHistogram *ready_wait = &obs::metrics().histogram(
        obs::names::kHistQueueReadyWaitMs);
    ready_.setWaitObserver([ready_wait](double seconds) {
        ready_wait->add(seconds * 1e3);
    });
    // One dedicated worker per stage: the stage loops are long-running
    // tasks, so the pool must have a thread for each or the pipeline
    // would never start. Intra-stage parallelism (the fast block
    // generator's parallelFor) runs on the global pool.
    pool_ = std::make_unique<util::ThreadPool>(3);
    // buffalo-lint: allow(escape-this-capture) stage workers are joined
    // by ~Prefetcher via pool_.reset() before any member is torn down
    pool_->submit([this, batches = std::move(batches)]() mutable {
        try {
            sampleStage(std::move(batches), *rng_);
        } catch (...) {
            failAll(std::current_exception());
        }
    });
    // buffalo-lint: allow(escape-this-capture) joined by ~Prefetcher
    pool_->submit([this] {
        try {
            buildStage();
        } catch (...) {
            failAll(std::current_exception());
        }
    });
    // buffalo-lint: allow(escape-this-capture) joined by ~Prefetcher
    pool_->submit([this] {
        try {
            featureStage();
        } catch (...) {
            failAll(std::current_exception());
        }
    });
}

Prefetcher::~Prefetcher()
{
    failAll(std::make_exception_ptr(
        std::runtime_error("prefetcher cancelled")));
    pool_.reset(); // joins the stage workers
}

void
Prefetcher::failAll(std::exception_ptr error)
{
    sampled_.abort(error);
    built_.abort(error);
    ready_.abort(error);
    budget_.cancel();
}

void
Prefetcher::sampleStage(std::vector<graph::NodeList> batches,
                        util::Rng &rng)
{
    // Single in-order worker: the Rng stream is consumed in exactly
    // the order the serial trainer would consume it.
    sampling::NeighborSampler sampler(fanouts_);
    for (std::size_t i = 0; i < batches.size(); ++i) {
        SampledItem item;
        item.index = i;
        util::StopWatch watch;
        {
            obs::Span span(obs::names::kSpanPipelineSample, i + 1);
            util::PhaseTimer::Scope scope(
                item.phases, train::phaseName(train::Phase::Sampling));
            item.sg = sampler.sample(dataset_.graph(), batches[i], rng);
        }
        item.seconds = watch.seconds();
        {
            util::MutexLock lock(stats_mutex_);
            stats_.sample_busy_seconds += item.seconds;
        }
        if (!sampled_.push(std::move(item)))
            return; // aborted
    }
    sampled_.close();
}

void
Prefetcher::buildStage()
{
    while (auto item = sampled_.pop()) {
        PreparedBatch pb;
        pb.index = item->index;
        pb.sg = std::move(item->sg);
        pb.phases.merge(item->phases);
        pb.sample_seconds = item->seconds;

        util::StopWatch watch;
        obs::Span span(obs::names::kSpanPipelineBuild, pb.index + 1);
        core::BuffaloScheduler scheduler(
            memory_model_, dataset_.spec().paper_avg_coefficient,
            scheduler_options_);
        pb.schedule = scheduler.schedule(pb.sg);
        pb.phases.add(train::phaseName(train::Phase::Scheduling),
                      pb.schedule.schedule_seconds);
        pb.micro.reserve(pb.schedule.groups.size());
        for (const core::BucketGroup &group : pb.schedule.groups) {
            PreparedMicroBatch pmb;
            pmb.mb = generator_.generateOne(pb.sg, group, &pb.phases);
            pb.micro.push_back(std::move(pmb));
        }
        pb.build_seconds = watch.seconds();
        obs::metrics()
            .histogram(obs::names::kHistQueueSampledServiceMs)
            .add(pb.build_seconds * 1e3);
        {
            util::MutexLock lock(stats_mutex_);
            stats_.build_busy_seconds += pb.build_seconds;
        }
        if (!built_.push(std::move(pb)))
            return; // aborted
    }
    built_.close();
}

void
Prefetcher::featureStage()
{
    const std::uint64_t row_bytes =
        static_cast<std::uint64_t>(dataset_.featureDim()) *
        sizeof(float);
    while (auto pb = built_.pop()) {
        // Charge the host bytes this batch will pin *before*
        // materializing anything — this is the backpressure that
        // bounds prepared-but-unconsumed work.
        std::uint64_t bytes = pb->sg.memoryBytes();
        for (const PreparedMicroBatch &pmb : pb->micro) {
            bytes += pmb.mb.structureBytes();
            if (stage_features_)
                bytes += pmb.mb.inputNodes().size() * row_bytes;
        }
        pb->staged_bytes = bytes;
        if (!budget_.acquire(bytes))
            return; // cancelled

        util::StopWatch watch;
        {
            obs::Span span(obs::names::kSpanPipelineFeature,
                           pb->index + 1);
            for (PreparedMicroBatch &pmb : pb->micro)
                stageFeatures(pmb);
        }
        pb->feature_seconds = watch.seconds();
        obs::metrics()
            .histogram(obs::names::kHistQueueBuiltServiceMs)
            .add(pb->feature_seconds * 1e3);
        {
            util::MutexLock lock(stats_mutex_);
            stats_.feature_busy_seconds += pb->feature_seconds;
            current_host_bytes_ += bytes;
            stats_.peak_host_bytes =
                std::max(stats_.peak_host_bytes, current_host_bytes_);
        }
        if (!ready_.push(std::move(*pb))) {
            budget_.release(bytes);
            return; // aborted
        }
    }
    ready_.close();
}

void
Prefetcher::stageFeatures(PreparedMicroBatch &pmb)
{
    const graph::NodeList &nodes = pmb.mb.inputNodes();
    const int dim = dataset_.featureDim();
    const std::uint64_t row_bytes =
        static_cast<std::uint64_t>(dim) * sizeof(float);
    std::uint64_t cached = 0;

    if (stage_features_) {
        pmb.staged_features =
            tensor::Tensor::zeros(nodes.size(), dim, nullptr);
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            std::span<float> out = pmb.staged_features.row(i);
            if (cache_ && cache_->lookup(nodes[i], out)) {
                ++cached;
                continue;
            }
            // Deterministic in (dataset seed, node), so a cached row
            // is bitwise-identical to a freshly filled one.
            dataset_.fillFeatures(nodes[i], out);
            if (cache_)
                cache_->insert(nodes[i], out);
        }
    } else if (cache_ && cache_->enabled()) {
        // Cost-model execution: track presence only (no numerics).
        for (const graph::NodeId node : nodes) {
            if (cache_->lookup(node, {}))
                ++cached;
            else
                cache_->insert(node, {});
        }
    }

    pmb.cached_rows = cached;
    pmb.saved_transfer_bytes = cached * row_bytes;
}

std::optional<PreparedBatch>
Prefetcher::next()
{
    return ready_.pop();
}

void
Prefetcher::release(const PreparedBatch &batch)
{
    budget_.release(batch.staged_bytes);
    util::MutexLock lock(stats_mutex_);
    current_host_bytes_ = batch.staged_bytes > current_host_bytes_
                              ? 0
                              : current_host_bytes_ -
                                    batch.staged_bytes;
}

std::vector<obs::QueueDepthProbe>
Prefetcher::depthProbes()
{
    // Queue pointers are captured by value; the sampler using these
    // probes must be stopped before the Prefetcher is destroyed.
    StageQueue<SampledItem> *sampled = &sampled_;
    StageQueue<PreparedBatch> *built = &built_;
    StageQueue<PreparedBatch> *ready = &ready_;
    std::vector<obs::QueueDepthProbe> probes;
    probes.push_back(
        {"sampled", [sampled] { return sampled->size(); }});
    probes.push_back({"built", [built] { return built->size(); }});
    probes.push_back({"ready", [ready] { return ready->size(); }});
    return probes;
}

PrefetcherStats
Prefetcher::stats() const
{
    util::MutexLock lock(stats_mutex_);
    PrefetcherStats s = stats_;
    s.max_sampled_queue = sampled_.maxOccupancy();
    s.max_built_queue = built_.maxOccupancy();
    s.max_ready_queue = ready_.maxOccupancy();
    return s;
}

} // namespace buffalo::pipeline
