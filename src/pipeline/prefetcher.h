/**
 * @file
 * Asynchronous micro-batch preparation (DESIGN.md, "Pipeline & feature
 * cache").
 *
 * The serial trainers interleave host-side preparation (sampling,
 * Buffalo scheduling, block generation, feature materialization) with
 * device execution, so preparation time adds to, instead of hiding
 * behind, simulated device compute — the paper's §V-G bottleneck. The
 * Prefetcher runs those four stages for batches i+1..i+depth on
 * util::ThreadPool workers while the trainer consumes batch i:
 *
 *   sample ──q──▶ build (schedule + blocks) ──q──▶ features ──q──▶ next()
 *
 * Stages are connected by bounded StageQueues (item backpressure) and
 * a ByteBudget (host-memory backpressure). Sampling runs on a single
 * in-order worker that owns the caller's Rng, so the random stream is
 * consumed in exactly the serial batch order — this is what keeps the
 * pipelined trainer bitwise-identical to the serial one.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/micro_batch_generator.h"
#include "core/scheduler.h"
#include "graph/datasets.h"
#include "nn/memory_model.h"
#include "obs/queue_telemetry.h"
#include "pipeline/feature_cache.h"
#include "pipeline/stage_queue.h"
#include "sampling/sampled_subgraph.h"
#include "tensor/tensor.h"
#include "train/report.h"
#include "util/rng.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace buffalo::pipeline {

/** Pipeline knobs now live in TrainerOptions (train/report.h). */
using train::PipelineOptions;

/**
 * Micro-batch generator tuned for running inside the pipeline: block
 * generation executes on a prefetcher stage worker while the sampling
 * and feature stages compete for the process-global kernel pool, so
 * its intra-stage fan-out uses coarser grain hints than the serial
 * trainer's default (fewer, larger chunks — less queue pressure on
 * the shared pool, identical output bytes for any grain).
 */
core::MicroBatchGenerator makePipelineGenerator();

/** One micro-batch with its prefetched inputs. */
struct PreparedMicroBatch
{
    sampling::MicroBatch mb;
    /** Host-staged features (numeric mode; empty in cost model). */
    tensor::Tensor staged_features;
    /** Input rows served by the feature cache. */
    std::uint64_t cached_rows = 0;
    /** Host->device bytes those rows avoid re-transferring. */
    std::uint64_t saved_transfer_bytes = 0;
};

/** One fully prepared training batch, in submission order. */
struct PreparedBatch
{
    std::size_t index = 0;
    /** Kept so OOM recovery can re-schedule without re-sampling. */
    sampling::SampledSubgraph sg;
    core::ScheduleResult schedule;
    std::vector<PreparedMicroBatch> micro;
    /** Host bytes charged against the ByteBudget until release(). */
    std::uint64_t staged_bytes = 0;
    /** Preparation phases (sampling/scheduling/block gen), measured. */
    util::PhaseTimer phases;
    /** Per-stage busy seconds, for the pipeline overlap model. */
    double sample_seconds = 0.0;
    double build_seconds = 0.0;
    double feature_seconds = 0.0;

    double
    prepSeconds() const
    {
        return sample_seconds + build_seconds + feature_seconds;
    }
};

/** Aggregate pipeline telemetry after (or during) a run. */
struct PrefetcherStats
{
    double sample_busy_seconds = 0.0;
    double build_busy_seconds = 0.0;
    double feature_busy_seconds = 0.0;
    std::size_t max_sampled_queue = 0;
    std::size_t max_built_queue = 0;
    std::size_t max_ready_queue = 0;
    std::uint64_t peak_host_bytes = 0;
};

/** Runs the three preparation stages on a private util::ThreadPool. */
class Prefetcher
{
  public:
    /**
     * Starts preparing @p batches immediately.
     *
     * @param stage_features Materialize host feature tensors (numeric
     *        execution); the cost model only tracks cache presence.
     * @param cache Optional shared feature cache (may be null).
     * @param rng Consumed *only* by the sampling stage, in batch
     *        order; the caller must not use it until the epoch ends.
     *        All other references must outlive the Prefetcher.
     */
    Prefetcher(const graph::Dataset &dataset,
               std::vector<graph::NodeList> batches,
               const std::vector<int> &fanouts,
               const nn::MemoryModel &memory_model,
               const core::SchedulerOptions &scheduler_options,
               bool stage_features, const PipelineOptions &options,
               FeatureCache *cache, util::Rng &rng);

    /** Cancels outstanding work and joins the stage workers. */
    ~Prefetcher();

    Prefetcher(const Prefetcher &) = delete;
    Prefetcher &operator=(const Prefetcher &) = delete;

    /**
     * Blocks for the next prepared batch, in submission order.
     * @return std::nullopt when every batch has been delivered.
     * @throws whatever a preparation stage threw (first error wins).
     */
    std::optional<PreparedBatch> next();

    /**
     * Returns @p batch's staged bytes to the host budget. Call after
     * the batch has been trained (its tensors may be freed then too).
     */
    void release(const PreparedBatch &batch);

    PrefetcherStats stats() const BUFFALO_EXCLUDES(stats_mutex_);

    /**
     * Depth probes for the three stage queues ("sampled", "built",
     * "ready"), for an obs::QueueDepthSampler. The probes read live
     * queue state, so stop the sampler before this Prefetcher dies.
     */
    std::vector<obs::QueueDepthProbe> depthProbes();

  private:
    struct SampledItem
    {
        std::size_t index = 0;
        sampling::SampledSubgraph sg;
        double seconds = 0.0;
        util::PhaseTimer phases;
    };

    void sampleStage(std::vector<graph::NodeList> batches,
                     util::Rng &rng);
    void buildStage();
    void featureStage();
    void failAll(std::exception_ptr error);

    /** Stages one micro-batch's features through the cache. */
    void stageFeatures(PreparedMicroBatch &pmb);

    const graph::Dataset &dataset_;
    const nn::MemoryModel &memory_model_;
    core::SchedulerOptions scheduler_options_;
    std::vector<int> fanouts_;
    bool stage_features_;
    PipelineOptions options_;
    FeatureCache *cache_;
    /** The caller's Rng, consumed only by the sampling stage. Held as
     * a member so the stage task does not capture a constructor-frame
     * reference. */
    util::Rng *rng_;
    core::MicroBatchGenerator generator_;

    StageQueue<SampledItem> sampled_;
    StageQueue<PreparedBatch> built_;
    StageQueue<PreparedBatch> ready_;
    ByteBudget budget_;

    mutable util::Mutex stats_mutex_;
    PrefetcherStats stats_ BUFFALO_GUARDED_BY(stats_mutex_);
    /** Host bytes currently staged. */
    std::uint64_t current_host_bytes_
        BUFFALO_GUARDED_BY(stats_mutex_) = 0;

    /** Owns the three stage workers; declared last so it is destroyed
     * (joining them) before the state they reference. Written only by
     * the constructor/destructor. */
    std::unique_ptr<util::ThreadPool> pool_; // buffalo-lint: allow(guarded-by)
};

} // namespace buffalo::pipeline
