#include "train/experiment.h"

#include <algorithm>

#include "nn/memory_model.h"
#include "sampling/bucketing.h"
#include "util/errors.h"

namespace buffalo::train {

std::vector<EpochReport>
runTraining(TrainerBase &trainer, const graph::Dataset &dataset,
            int epochs, std::size_t batch_size, util::Rng &rng)
{
    std::vector<EpochReport> results;
    results.reserve(epochs);
    for (int epoch = 0; epoch < epochs; ++epoch)
        results.push_back(trainer.trainEpoch(dataset, batch_size, rng));
    return results;
}

MultiGpuStats
runBuffaloDataParallel(const graph::Dataset &dataset,
                       const TrainerOptions &options,
                       device::DeviceGroup &devices,
                       const NodeList &seeds, util::Rng &rng)
{
    checkArgument(options.mode == ExecutionMode::CostModel,
                  "runBuffaloDataParallel: cost-model execution only");
    MultiGpuStats result;

    // Schedule once against one device's budget (devices are uniform),
    // then deal the micro-batches round-robin.
    device::Device &lead = devices.device(0);
    BuffaloTrainer probe(options, lead);

    // Host side: sampling + scheduling + block generation run once.
    util::PhaseTimer host_phases;
    sampling::NeighborSampler sampler(options.fanouts);
    sampling::SampledSubgraph sg = [&] {
        obs::PhaseScope scope(host_phases, Phase::Sampling);
        return sampler.sample(dataset.graph(), seeds, rng);
    }();

    core::SchedulerOptions sched_options = options.scheduler;
    if (sched_options.mem_constraint == 0)
        sched_options.mem_constraint = lead.allocator().capacity();
    sched_options.reserved_bytes = probe.staticBytes();

    core::BuffaloScheduler scheduler(
        probe.model().memoryModel(),
        dataset.spec().paper_avg_coefficient, sched_options);
    core::ScheduleResult schedule = scheduler.schedule(sg);
    host_phases.add(phaseName(Phase::Scheduling),
                    schedule.schedule_seconds);

    core::MicroBatchGenerator generator;
    std::vector<sampling::MicroBatch> micro_batches =
        generator.generate(sg, schedule.groups, &host_phases);
    result.num_micro_batches =
        static_cast<int>(micro_batches.size());

    // Device side: per-device simulated compute + transfer.
    const nn::MemoryModel &mm = probe.model().memoryModel();
    std::vector<double> device_seconds(devices.size(), 0.0);
    for (std::size_t i = 0; i < micro_batches.size(); ++i) {
        const auto &mb = micro_batches[i];
        const int dev = static_cast<int>(i % devices.size());
        const auto &cm = devices.device(dev).costModel();
        std::uint64_t launches = 0;
        for (const auto &block : mb.blocks)
            launches += sampling::bucketizeBlock(block).size() * 4 + 4;
        device_seconds[dev] +=
            cm.transferSeconds(mm.transferBytes(mb)) +
            cm.kernelsSeconds(mm.microBatchFlops(mb), launches);
    }

    result.host_seconds = host_phases.total();
    result.device_seconds = *std::max_element(device_seconds.begin(),
                                              device_seconds.end());
    result.allreduce_seconds =
        devices.allReduceSeconds(mm.weightBytes() / 2);
    result.iteration_seconds = result.host_seconds +
                               result.device_seconds +
                               result.allreduce_seconds;
    return result;
}

} // namespace buffalo::train
