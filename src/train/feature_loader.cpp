#include "train/feature_loader.h"

namespace buffalo::train {

tensor::Tensor
loadFeatures(const graph::Dataset &dataset, const graph::NodeList &nodes,
             tensor::AllocationObserver *observer)
{
    tensor::Tensor feats = tensor::Tensor::zeros(
        nodes.size(), dataset.featureDim(), observer);
    for (std::size_t i = 0; i < nodes.size(); ++i)
        dataset.fillFeatures(nodes[i], feats.row(i));
    return feats;
}

std::vector<std::int32_t>
gatherLabels(const graph::Dataset &dataset,
             const graph::NodeList &nodes)
{
    std::vector<std::int32_t> labels(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i)
        labels[i] = dataset.labels()[nodes[i]];
    return labels;
}

} // namespace buffalo::train
