/**
 * @file
 * Host-side feature materialization for micro-batch input nodes.
 */
#pragma once

#include "graph/datasets.h"
#include "tensor/tensor.h"

namespace buffalo::train {

/**
 * Builds the input-feature tensor (|nodes| x featureDim()) for
 * @p nodes, allocated under @p observer (pass the device allocator to
 * model "features resident on the GPU").
 */
tensor::Tensor loadFeatures(const graph::Dataset &dataset,
                            const graph::NodeList &nodes,
                            tensor::AllocationObserver *observer =
                                nullptr);

/** Gathers the labels of @p nodes. */
std::vector<std::int32_t> gatherLabels(const graph::Dataset &dataset,
                                       const graph::NodeList &nodes);

} // namespace buffalo::train
