/**
 * @file
 * A uniform handle over the concrete GNN models (GraphSAGE, GAT) so the
 * trainers and benches can switch architectures by configuration.
 */
#pragma once

#include <memory>

#include "nn/config.h"
#include "nn/memory_model.h"
#include "nn/parameter.h"
#include "sampling/block.h"

namespace buffalo::train {

/** Which architecture to instantiate. */
enum class ModelKind { Sage, Gat, Gcn };

/** Printable name of @p kind. */
const char *modelKindName(ModelKind kind);

/** Architecture-agnostic training handle. */
class GnnModel
{
  public:
    virtual ~GnnModel() = default;

    /**
     * Forward pass; the activation cache is held internally until the
     * matching backward() (one in flight at a time).
     */
    virtual nn::Tensor forward(const sampling::MicroBatch &mb,
                               const nn::Tensor &input_features,
                               nn::AllocationObserver *observer) = 0;

    /**
     * Forward-only pass for serving: bitwise-identical logits to
     * forward(), but no activation cache is retained, so no
     * backward() may follow and peak memory stays bounded by one
     * layer's working set.
     */
    virtual nn::Tensor
    forwardInference(const sampling::MicroBatch &mb,
                     const nn::Tensor &input_features,
                     nn::AllocationObserver *observer) = 0;

    /** Backward for the last forward(); releases the cache. */
    virtual void backward(const nn::Tensor &grad_logits,
                          nn::AllocationObserver *observer) = 0;

    /** Drops any held activation cache without a backward pass. */
    virtual void clearCache() = 0;

    /** The parameter owner (for zeroGrad / optimizers). */
    virtual nn::Module &module() = 0;

    /** The shared analytic cost model. */
    virtual const nn::MemoryModel &memoryModel() const = 0;
};

/** Instantiates @p kind with the given config and seed. */
std::unique_ptr<GnnModel> makeModel(
    ModelKind kind, const nn::ModelConfig &config, std::uint64_t seed,
    nn::AllocationObserver *param_observer = nullptr);

} // namespace buffalo::train
