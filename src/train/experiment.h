/**
 * @file
 * Experiment drivers shared by the bench binaries and examples:
 * epoch-level convergence runs (Fig. 17, Table IV) and simulated
 * data-parallel multi-GPU training (paper §V-G).
 */
#pragma once

#include <functional>
#include <vector>

#include "train/trainer.h"

namespace buffalo::train {

/**
 * Trains @p trainer for @p epochs over the dataset's train nodes via
 * TrainerBase::trainEpoch (so a PipelineTrainer runs pipelined and
 * the TrainerOptions::epoch_observer fires each epoch).
 * @return per-epoch reports, in order.
 */
std::vector<EpochReport> runTraining(TrainerBase &trainer,
                                     const graph::Dataset &dataset,
                                     int epochs, std::size_t batch_size,
                                     util::Rng &rng);

/** Result of one simulated data-parallel iteration (paper §V-G). */
struct MultiGpuStats
{
    /** End-to-end seconds: host phases + slowest device + all-reduce. */
    double iteration_seconds = 0.0;
    /** The host-side share (scheduling + block generation). */
    double host_seconds = 0.0;
    /** Max over devices of their compute+transfer time. */
    double device_seconds = 0.0;
    /** Gradient all-reduce seconds. */
    double allreduce_seconds = 0.0;
    int num_micro_batches = 0;
};

/**
 * One Buffalo iteration executed data-parallel across @p devices:
 * micro-batches are scheduled once against the per-device budget, dealt
 * round-robin to the devices, and gradients all-reduced once.
 * Cost-model execution only.
 */
MultiGpuStats runBuffaloDataParallel(const graph::Dataset &dataset,
                                     const TrainerOptions &options,
                                     device::DeviceGroup &devices,
                                     const NodeList &seeds,
                                     util::Rng &rng);

} // namespace buffalo::train
