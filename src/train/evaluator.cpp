#include "train/evaluator.h"

#include "core/micro_batch_generator.h"
#include "core/scheduler.h"
#include "nn/loss.h"
#include "train/feature_loader.h"
#include "util/errors.h"

namespace buffalo::train {

EvalStats
evaluate(GnnModel &model, const graph::Dataset &dataset,
         const graph::NodeList &nodes, const std::vector<int> &fanouts,
         device::Device &device, util::Rng &rng)
{
    checkArgument(!nodes.empty(), "evaluate: empty node set");
    EvalStats stats;
    device.allocator().resetPeak();

    sampling::NeighborSampler sampler(fanouts);
    auto sg = sampler.sample(dataset.graph(), nodes, rng);

    // Forward-only passes pin no backward caches, so roughly half the
    // training budget suffices per micro-batch; reuse the scheduler
    // with the full budget for simplicity (still conservative).
    core::SchedulerOptions options;
    options.mem_constraint = device.allocator().capacity();
    options.reserved_bytes = device.allocator().bytesInUse();
    core::BuffaloScheduler scheduler(
        model.memoryModel(), dataset.spec().paper_avg_coefficient,
        options);
    auto schedule = scheduler.schedule(sg);
    stats.micro_batches = schedule.num_groups;

    core::MicroBatchGenerator generator;
    double loss_sum = 0.0;
    std::size_t correct = 0;
    for (const auto &group : schedule.groups) {
        auto mb = generator.generateOne(sg, group);
        nn::Tensor feats = loadFeatures(dataset, mb.inputNodes(),
                                        &device.allocator());
        nn::Tensor logits =
            model.forward(mb, feats, &device.allocator());
        model.clearCache(); // inference: no backward pass
        auto labels = gatherLabels(dataset, mb.outputNodes());
        auto result = nn::softmaxCrossEntropy(logits, labels, 0,
                                              &device.allocator());
        loss_sum += result.loss * labels.size();
        correct += result.correct;
        stats.nodes += labels.size();
    }
    stats.loss = loss_sum / static_cast<double>(stats.nodes);
    stats.accuracy =
        static_cast<double>(correct) / static_cast<double>(stats.nodes);
    stats.peak_device_bytes = device.allocator().peakBytes();
    return stats;
}

EvalStats
evaluate(TrainerBase &trainer, const graph::Dataset &dataset,
         const graph::NodeList &nodes, util::Rng &rng)
{
    return evaluate(trainer.model(), dataset, nodes,
                    trainer.options().fanouts, trainer.device(), rng);
}

} // namespace buffalo::train
