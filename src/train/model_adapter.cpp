#include "train/model_adapter.h"

#include "nn/gat_model.h"
#include "nn/gcn_model.h"
#include "nn/sage_model.h"
#include "util/errors.h"

namespace buffalo::train {

namespace {

class SageAdapter : public GnnModel
{
  public:
    SageAdapter(const nn::ModelConfig &config, std::uint64_t seed,
                nn::AllocationObserver *param_observer)
        : model_(config, seed, param_observer) {}

    nn::Tensor
    forward(const sampling::MicroBatch &mb,
            const nn::Tensor &input_features,
            nn::AllocationObserver *observer) override
    {
        return model_.forward(mb, input_features, cache_, observer);
    }

    nn::Tensor
    forwardInference(const sampling::MicroBatch &mb,
                     const nn::Tensor &input_features,
                     nn::AllocationObserver *observer) override
    {
        return model_.forwardInference(mb, input_features, observer);
    }

    void
    backward(const nn::Tensor &grad_logits,
             nn::AllocationObserver *observer) override
    {
        model_.backward(cache_, grad_logits, observer);
        clearCache();
    }

    void clearCache() override { cache_ = {}; }

    nn::Module &module() override { return model_; }

    const nn::MemoryModel &
    memoryModel() const override
    {
        return model_.memoryModel();
    }

  private:
    nn::SageModel model_;
    nn::SageModel::ForwardCache cache_;
};

class GcnAdapter : public GnnModel
{
  public:
    GcnAdapter(const nn::ModelConfig &config, std::uint64_t seed,
               nn::AllocationObserver *param_observer)
        : model_(config, seed, param_observer) {}

    nn::Tensor
    forward(const sampling::MicroBatch &mb,
            const nn::Tensor &input_features,
            nn::AllocationObserver *observer) override
    {
        return model_.forward(mb, input_features, cache_, observer);
    }

    nn::Tensor
    forwardInference(const sampling::MicroBatch &mb,
                     const nn::Tensor &input_features,
                     nn::AllocationObserver *observer) override
    {
        return model_.forwardInference(mb, input_features, observer);
    }

    void
    backward(const nn::Tensor &grad_logits,
             nn::AllocationObserver *observer) override
    {
        model_.backward(cache_, grad_logits, observer);
        clearCache();
    }

    void clearCache() override { cache_ = {}; }

    nn::Module &module() override { return model_; }

    const nn::MemoryModel &
    memoryModel() const override
    {
        return model_.memoryModel();
    }

  private:
    nn::GcnModel model_;
    nn::GcnModel::ForwardCache cache_;
};

class GatAdapter : public GnnModel
{
  public:
    GatAdapter(const nn::ModelConfig &config, std::uint64_t seed,
               nn::AllocationObserver *param_observer)
        : model_(config, seed, param_observer) {}

    nn::Tensor
    forward(const sampling::MicroBatch &mb,
            const nn::Tensor &input_features,
            nn::AllocationObserver *observer) override
    {
        return model_.forward(mb, input_features, cache_, observer);
    }

    nn::Tensor
    forwardInference(const sampling::MicroBatch &mb,
                     const nn::Tensor &input_features,
                     nn::AllocationObserver *observer) override
    {
        return model_.forwardInference(mb, input_features, observer);
    }

    void
    backward(const nn::Tensor &grad_logits,
             nn::AllocationObserver *observer) override
    {
        model_.backward(cache_, grad_logits, observer);
        clearCache();
    }

    void clearCache() override { cache_ = {}; }

    nn::Module &module() override { return model_; }

    const nn::MemoryModel &
    memoryModel() const override
    {
        return model_.memoryModel();
    }

  private:
    nn::GatModel model_;
    nn::GatModel::ForwardCache cache_;
};

} // namespace

const char *
modelKindName(ModelKind kind)
{
    switch (kind) {
      case ModelKind::Sage: return "GraphSAGE";
      case ModelKind::Gat: return "GAT";
      case ModelKind::Gcn: return "GCN";
    }
    return "?";
}

std::unique_ptr<GnnModel>
makeModel(ModelKind kind, const nn::ModelConfig &config,
          std::uint64_t seed, nn::AllocationObserver *param_observer)
{
    switch (kind) {
      case ModelKind::Sage:
        return std::make_unique<SageAdapter>(config, seed,
                                             param_observer);
      case ModelKind::Gat:
        return std::make_unique<GatAdapter>(config, seed,
                                            param_observer);
      case ModelKind::Gcn:
        return std::make_unique<GcnAdapter>(config, seed,
                                            param_observer);
    }
    throw InvalidArgument("makeModel: unknown model kind");
}

} // namespace buffalo::train
