/**
 * @file
 * End-to-end training iteration pipelines:
 *
 *  - WholeBatchTrainer — paper Algorithm 1 (DGL-like whole-batch degree
 *    bucketing; optional PyG-like padding accounting). OOMs when the
 *    batch exceeds the device budget.
 *  - BuffaloTrainer — paper Algorithm 2: Buffalo scheduling, fast block
 *    generation, per-micro-batch forward/backward with gradient
 *    accumulation, one optimizer step per batch.
 *  - BettyTrainer — REG construction + METIS partitioning + baseline
 *    block generation, per the Betty pipeline Buffalo is compared to.
 *
 * Two execution fidelities (DESIGN.md): Numeric runs real kernels under
 * the device's tracking allocator; CostModel walks identical scheduling
 * and blocking code but charges analytic bytes/FLOPs, so paper-scale
 * shapes finish quickly on one CPU core. Device-side time is always
 * simulated via the device cost model; host-side phases are measured.
 */
#pragma once

#include <memory>
#include <optional>

#include "baselines/betty.h"
#include "core/micro_batch_generator.h"
#include "core/scheduler.h"
#include "device/device.h"
#include "graph/datasets.h"
#include "nn/optimizer.h"
#include "obs/audit.h"
#include "obs/phase.h"
#include "sampling/block_generator.h"
#include "sampling/sampled_subgraph.h"
#include "tensor/kernels.h"
#include "train/model_adapter.h"
#include "train/report.h"
#include "util/rng.h"
#include "util/timer.h"

namespace buffalo::train {

using graph::NodeList;

/** The typed phase taxonomy shared with Fig. 5 / Fig. 11 benches. */
using obs::kAllPhases;
using obs::Phase;
using obs::phaseName;

/** Numeric = real kernels; CostModel = analytic charging only. */
enum class ExecutionMode { Numeric, CostModel };

/** Configuration shared by all trainers. */
struct TrainerOptions
{
    nn::ModelConfig model;
    ModelKind model_kind = ModelKind::Sage;
    /** Per-layer fanouts, input-most first; size == model.num_layers. */
    std::vector<int> fanouts;
    ExecutionMode mode = ExecutionMode::Numeric;
    double learning_rate = 3e-3;
    std::uint64_t seed = 42;
    /** Scheduler knobs (BuffaloTrainer only); mem_constraint defaults
     *  to the device capacity when 0. */
    core::SchedulerOptions scheduler;
    /** Prefetch/cache knobs (PipelineTrainer; serial trainers ignore). */
    PipelineOptions pipeline;
    /** Compute-kernel tunables (threads, tiles, grain). Installed
     *  process-wide at trainer construction; never affects numerics. */
    tensor::kernels::KernelConfig kernels;
    /** Invoked after every trainEpoch() with the finished report. */
    EpochObserver epoch_observer;
};

/** Splits @p nodes into shuffled batches of @p batch_size. */
std::vector<NodeList> makeBatches(const NodeList &nodes,
                                  std::size_t batch_size,
                                  util::Rng &rng);

/**
 * Inputs a prefetch pipeline prepared ahead of time for one
 * micro-batch. The trainer consumes them instead of materializing
 * features inline, and discounts the charged host->device traffic by
 * the bytes a feature cache already held device-resident.
 */
struct StagedFeatures
{
    /**
     * Pre-materialized input features in host memory (unobserved
     * allocation); null or empty means "load from the dataset inline"
     * (the cost-model path, which never materializes numerics).
     */
    const tensor::Tensor *host_features = nullptr;
    /** Transfer bytes avoided because rows were cache-resident. */
    std::uint64_t saved_transfer_bytes = 0;
};

/** Outcome of one training iteration. */
struct IterationStats
{
    util::PhaseTimer phases;
    /** Whole-batch loss (valid only in Numeric mode). */
    double loss = 0.0;
    /** Correct top-1 predictions (Numeric mode). */
    std::size_t correct = 0;
    /** Output (seed) nodes processed. */
    std::size_t num_outputs = 0;
    int num_micro_batches = 1;
    /** Device allocator watermark during the iteration. */
    std::uint64_t peak_device_bytes = 0;
    /** Sum of block node counts across micro-batches (Fig. 16). */
    std::uint64_t total_block_nodes = 0;
    /**
     * Simulated end-to-end seconds if micro-batch preparation were
     * pipelined with device execution (prepare batch k+1 while the
     * device runs batch k) — an extension beyond the paper, which
     * identifies non-overlapped preparation as the §V-G bottleneck.
     * Zero for trainers that do not compute it.
     */
    double pipelined_seconds = 0.0;
    /**
     * Per-trained-group predicted-vs-actual memory records (Buffalo
     * trainers only; empty for whole-batch/Betty). The same records
     * feed obs::memoryAudit(); this copy rolls up into
     * EpochReport::mem_audit.
     */
    std::vector<obs::GroupMemRecord> group_audit;

    /** Sum of all phase times (host-measured + simulated device). */
    double endToEndSeconds() const { return phases.total(); }
};

/** Common machinery of the three pipelines. */
class TrainerBase
{
  public:
    TrainerBase(const TrainerOptions &options, device::Device &device);
    virtual ~TrainerBase();

    TrainerBase(const TrainerBase &) = delete;
    TrainerBase &operator=(const TrainerBase &) = delete;

    /** Runs one training iteration over @p seeds (global node ids). */
    virtual IterationStats trainIteration(const graph::Dataset &dataset,
                                          const NodeList &seeds,
                                          util::Rng &rng) = 0;

    /**
     * Trains one epoch over @p batches (in order) and returns the
     * unified report. Serial trainers iterate trainIteration; the
     * pipelined trainer overlaps preparation with device execution —
     * either way the same EpochReport shape comes back, the
     * TrainerOptions::epoch_observer hook fires, and @p rng ends in
     * the state a serial run over the same batches would leave it.
     */
    EpochReport trainEpoch(const graph::Dataset &dataset,
                           const std::vector<NodeList> &batches,
                           util::Rng &rng);

    /**
     * Convenience epoch: shuffles the dataset's train nodes into
     * batches of @p batch_size (via makeBatches) and trains them.
     */
    EpochReport trainEpoch(const graph::Dataset &dataset,
                           std::size_t batch_size, util::Rng &rng);

    /** Epochs this trainer has completed (drives observer indices). */
    int epochsRun() const { return epochs_run_; }

    GnnModel &model() { return *model_; }
    device::Device &device() { return device_; }
    const TrainerOptions &options() const { return options_; }

    /** Weights + grads + optimizer state, bytes. */
    std::uint64_t staticBytes() const { return static_bytes_; }

  protected:
    /**
     * The epoch strategy behind trainEpoch(): the default drives
     * trainIteration serially; PipelineTrainer substitutes the
     * prefetch pipeline. Implementations fill everything except the
     * observer call, which the public wrapper owns.
     */
    virtual EpochReport trainEpochImpl(
        const graph::Dataset &dataset,
        const std::vector<NodeList> &batches, util::Rng &rng);

    /** Samples the batch subgraph for @p seeds ("sampling" phase). */
    sampling::SampledSubgraph sampleBatch(const graph::Dataset &dataset,
                                          const NodeList &seeds,
                                          util::Rng &rng,
                                          util::PhaseTimer &phases) const;

    /**
     * Transfers, computes, and backpropagates one micro-batch;
     * gradients accumulate in the model parameters.
     * @param batch_output_count Denominator for the loss so micro-batch
     *        gradients sum to the whole-batch gradient.
     * @param extra_padding_bytes Additional activation bytes charged
     *        during compute (PyG-like padding accounting).
     * @param staged Optional prefetched inputs (see StagedFeatures);
     *        numeric values are bitwise-identical to the inline path,
     *        only the data-loading time/traffic accounting changes.
     * @return Simulated device seconds (transfer + kernels) charged
     *         for this micro-batch.
     */
    double processMicroBatch(const sampling::MicroBatch &mb,
                             const graph::Dataset &dataset,
                             std::size_t batch_output_count,
                             IterationStats &stats,
                             std::uint64_t extra_padding_bytes = 0,
                             double extra_padding_flops = 0.0,
                             const StagedFeatures *staged = nullptr);

    /** Applies the optimizer step ("GPU compute" charged). */
    void optimizerStep(IterationStats &stats);

    TrainerOptions options_;
    device::Device &device_;
    std::unique_ptr<GnnModel> model_;
    std::unique_ptr<nn::Optimizer> optimizer_;
    std::uint64_t static_bytes_ = 0;
    bool static_bytes_charged_ = false;

  private:
    int epochs_run_ = 0;
};

/** Paper Algorithm 1: one block chain for the whole batch. */
class WholeBatchTrainer : public TrainerBase
{
  public:
    /**
     * @param padding_based PyG-like accounting: destinations padded to
     *        the block max degree instead of degree-bucketed.
     */
    WholeBatchTrainer(const TrainerOptions &options,
                      device::Device &device,
                      bool padding_based = false);

    IterationStats trainIteration(const graph::Dataset &dataset,
                                  const NodeList &seeds,
                                  util::Rng &rng) override;

  private:
    bool padding_based_;
    sampling::FastBlockGenerator generator_;
};

/** Paper Algorithm 2: Buffalo scheduling + micro-batch training. */
class BuffaloTrainer : public TrainerBase
{
  public:
    BuffaloTrainer(const TrainerOptions &options,
                   device::Device &device);

    IterationStats trainIteration(const graph::Dataset &dataset,
                                  const NodeList &seeds,
                                  util::Rng &rng) override;

    /** The scheduler's decision on the most recent iteration. */
    const core::ScheduleResult &lastSchedule() const
    {
        return last_schedule_;
    }

  private:
    core::MicroBatchGenerator generator_;
    core::ScheduleResult last_schedule_;
};

/** Betty: REG + METIS partitioning + baseline block generation. */
class BettyTrainer : public TrainerBase
{
  public:
    /**
     * @param num_micro_batches Fixed partition count (Betty sweeps
     *        this externally in the paper's figures).
     */
    BettyTrainer(const TrainerOptions &options, device::Device &device,
                 int num_micro_batches);

    IterationStats trainIteration(const graph::Dataset &dataset,
                                  const NodeList &seeds,
                                  util::Rng &rng) override;

    int numMicroBatches() const { return num_micro_batches_; }

  private:
    int num_micro_batches_;
    baselines::BettyPartitioner partitioner_;
    sampling::BaselineBlockGenerator generator_;
};

} // namespace buffalo::train
