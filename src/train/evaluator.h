/**
 * @file
 * Model evaluation (inference): loss and top-1 accuracy of a trained
 * model over a node set, computed in micro-batches under the same
 * device budget as training — evaluation must not OOM either.
 *
 * Evaluation uses sampled neighborhoods like training (the standard
 * GraphSAGE inductive protocol); pass fanouts larger than the max
 * degree for full-neighborhood inference.
 */
#pragma once

#include "device/device.h"
#include "graph/datasets.h"
#include "train/model_adapter.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace buffalo::train {

/** Evaluation outcome over a node set. */
struct EvalStats
{
    double loss = 0.0;
    double accuracy = 0.0;
    std::size_t nodes = 0;
    int micro_batches = 0;
    std::uint64_t peak_device_bytes = 0;
};

/**
 * Evaluates @p model on @p nodes, splitting the batch into
 * budget-safe micro-batches with the Buffalo scheduler. Numeric
 * forward only — no gradients, caches dropped per micro-batch.
 */
EvalStats evaluate(GnnModel &model, const graph::Dataset &dataset,
                   const graph::NodeList &nodes,
                   const std::vector<int> &fanouts,
                   device::Device &device, util::Rng &rng);

/**
 * Convenience: evaluates @p trainer's model with the trainer's own
 * fanouts and device.
 */
EvalStats evaluate(TrainerBase &trainer, const graph::Dataset &dataset,
                   const graph::NodeList &nodes, util::Rng &rng);

} // namespace buffalo::train
