#include "train/trainer.h"

#include <algorithm>

#include "baselines/padding.h"
#include "nn/loss.h"
#include "obs/audit.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/names.h"
#include "sampling/bucketing.h"
#include "train/feature_loader.h"
#include "util/errors.h"
#include "util/logging.h"

namespace buffalo::train {

namespace {

/** Kernel launches a micro-batch incurs (per-bucket kernel batches). */
std::uint64_t
kernelLaunchCount(const sampling::MicroBatch &mb)
{
    std::uint64_t launches = 0;
    for (const auto &block : mb.blocks) {
        const auto buckets = sampling::bucketizeBlock(block);
        // Per bucket: gather, aggregate fwd, aggregate bwd, scatter.
        launches += buckets.size() * 4;
        // Per layer: update matmul fwd + 2 bwd + activation.
        launches += 4;
    }
    return launches;
}

} // namespace

std::vector<NodeList>
makeBatches(const NodeList &nodes, std::size_t batch_size,
            util::Rng &rng)
{
    checkArgument(batch_size >= 1, "makeBatches: batch_size >= 1");
    NodeList shuffled = nodes;
    rng.shuffle(shuffled);
    std::vector<NodeList> batches;
    for (std::size_t begin = 0; begin < shuffled.size();
         begin += batch_size) {
        const std::size_t end =
            std::min(shuffled.size(), begin + batch_size);
        batches.emplace_back(shuffled.begin() + begin,
                             shuffled.begin() + end);
    }
    return batches;
}

TrainerBase::TrainerBase(const TrainerOptions &options,
                         device::Device &device)
    : options_(options), device_(device)
{
    options_.model.validate();
    checkArgument(options_.fanouts.size() ==
                      static_cast<std::size_t>(options_.model.num_layers),
                  "TrainerBase: fanouts must match model depth");
    // Kernel tunables are process-wide (the tensor layer has no
    // per-trainer state); the last trainer constructed wins, which is
    // the right answer for every CLI / test we have.
    tensor::kernels::setConfig(options_.kernels);

    // Numeric mode keeps weights/optimizer state under the device
    // allocator for byte-exact accounting; cost-model mode charges the
    // same bytes logically so OOM behaviour matches.
    nn::AllocationObserver *param_observer =
        options_.mode == ExecutionMode::Numeric ? &device_.allocator()
                                                : nullptr;
    model_ = makeModel(options_.model_kind, options_.model,
                       options_.seed, param_observer);
    optimizer_ = std::make_unique<nn::Adam>(
        model_->module().parameters(), options_.learning_rate, 0.9,
        0.999, 1e-8, param_observer);

    const nn::MemoryModel &mm = model_->memoryModel();
    static_bytes_ = mm.weightBytes() + mm.optimizerBytes();
    if (options_.mode == ExecutionMode::CostModel) {
        device_.allocator().onAllocate(static_bytes_);
        static_bytes_charged_ = true;
    }
}

TrainerBase::~TrainerBase()
{
    if (static_bytes_charged_)
        device_.allocator().onFree(static_bytes_);
}

sampling::SampledSubgraph
TrainerBase::sampleBatch(const graph::Dataset &dataset,
                         const NodeList &seeds, util::Rng &rng,
                         util::PhaseTimer &phases) const
{
    obs::PhaseScope scope(phases, Phase::Sampling);
    sampling::NeighborSampler sampler(options_.fanouts);
    return sampler.sample(dataset.graph(), seeds, rng);
}

EpochReport
TrainerBase::trainEpoch(const graph::Dataset &dataset,
                        const std::vector<NodeList> &batches,
                        util::Rng &rng)
{
    obs::Span span(obs::names::kSpanTrainEpoch);
    EpochReport report = trainEpochImpl(dataset, batches, rng);
    const int epoch = epochs_run_++;
    obs::metrics().counter(obs::names::kCtrTrainEpochs).add();
    if (report.mem_audit.groups > 0) {
        obs::MetricsRegistry &m = obs::metrics();
        m.counter(obs::names::kCtrAuditGroups)
            .add(report.mem_audit.groups);
        m.gauge(obs::names::kGaugeAuditMeanAbsRelError)
            .set(report.mem_audit.meanAbsRelError());
        m.gauge(obs::names::kGaugeAuditMaxAbsRelError)
            .setMax(report.mem_audit.max_abs_rel_error);
    }
    // Close the audit epoch (covers failed-attempt groups too; a
    // no-op when the audit is disabled or nothing was recorded).
    obs::memoryAudit().endEpoch();
    obs::eventLog()
        .event(obs::names::kEvTrainEpochSummary)
        .field("epoch", epoch)
        .field("batches", report.num_batches)
        .field("micro_batches", report.num_micro_batches)
        .field("mean_loss", report.mean_loss)
        .field("epoch_seconds", report.effectiveSeconds())
        .field("peak_device_bytes", report.peak_device_bytes)
        .field("audit_groups", report.mem_audit.groups)
        .field("audit_mean_abs_rel_error",
               report.mem_audit.meanAbsRelError())
        .field("audit_mean_signed_rel_error",
               report.mem_audit.meanSignedRelError());
    if (options_.epoch_observer)
        options_.epoch_observer(epoch, report);
    return report;
}

EpochReport
TrainerBase::trainEpoch(const graph::Dataset &dataset,
                        std::size_t batch_size, util::Rng &rng)
{
    return trainEpoch(
        dataset, makeBatches(dataset.trainNodes(), batch_size, rng),
        rng);
}

EpochReport
TrainerBase::trainEpochImpl(const graph::Dataset &dataset,
                            const std::vector<NodeList> &batches,
                            util::Rng &rng)
{
    EpochReport report;
    const std::uint64_t bytes0 = device_.transferredBytes();
    const std::uint64_t saved0 = device_.transferSavedBytes();
    util::StopWatch wall;
    for (const NodeList &batch : batches) {
        IterationStats iter = trainIteration(dataset, batch, rng);
        report.loss_sum += iter.loss;
        report.correct += iter.correct;
        report.outputs += iter.num_outputs;
        report.num_micro_batches += iter.num_micro_batches;
        report.epoch_seconds += iter.endToEndSeconds();
        report.phases.merge(iter.phases);
        report.peak_device_bytes = std::max(report.peak_device_bytes,
                                            iter.peak_device_bytes);
        for (const obs::GroupMemRecord &record : iter.group_audit)
            report.mem_audit.add(record);
        ++report.num_batches;
    }
    report.wall_seconds = wall.seconds();
    report.transfer_bytes = device_.transferredBytes() - bytes0;
    report.transfer_saved_bytes =
        device_.transferSavedBytes() - saved0;
    report.mean_loss = report.num_batches == 0
                           ? 0.0
                           : report.loss_sum / report.num_batches;
    report.accuracy =
        report.outputs == 0
            ? 0.0
            : static_cast<double>(report.correct) /
                  static_cast<double>(report.outputs);
    return report;
}

double
TrainerBase::processMicroBatch(const sampling::MicroBatch &mb,
                               const graph::Dataset &dataset,
                               std::size_t batch_output_count,
                               IterationStats &stats,
                               std::uint64_t extra_padding_bytes,
                               double extra_padding_flops,
                               const StagedFeatures *staged)
{
    const nn::MemoryModel &mm = model_->memoryModel();
    device::DeviceAllocator &allocator = device_.allocator();

    obs::Span span(obs::names::kSpanTrainMicroBatch);
    obs::metrics().counter(obs::names::kCtrTrainMicroBatches).add();

    // --- Data loading: host feature fill + simulated PCIe transfer.
    // Rows the feature cache already holds device-resident are not
    // re-transferred; only the accounting changes, never the numerics.
    std::uint64_t transfer_bytes = mm.transferBytes(mb);
    const std::uint64_t saved_bytes =
        staged ? std::min(staged->saved_transfer_bytes, transfer_bytes)
               : 0;
    transfer_bytes -= saved_bytes;
    const double transfer_seconds =
        device_.costModel().transferSeconds(transfer_bytes);
    device_.chargeTransfer(transfer_bytes);
    if (saved_bytes > 0)
        device_.noteTransferSaved(saved_bytes);

    const double flops =
        mm.microBatchFlops(mb) + extra_padding_flops;
    const std::uint64_t launches = kernelLaunchCount(mb);
    const double compute_seconds =
        device_.costModel().kernelsSeconds(flops, launches);

    if (options_.mode == ExecutionMode::CostModel) {
        stats.phases.add(phaseName(Phase::DataLoading),
                         transfer_seconds);
        device_.chargeComputeSeconds(compute_seconds);
        stats.phases.add(phaseName(Phase::GpuCompute),
                         compute_seconds);
        // Logical allocation exercises the capacity/peak machinery.
        const std::uint64_t bytes =
            mm.microBatchBytes(mb) + extra_padding_bytes;
        allocator.onAllocate(bytes);
        allocator.onFree(bytes);
        stats.total_block_nodes += mb.totalNodeCount();
        stats.num_outputs += mb.outputNodes().size();
        return transfer_seconds + compute_seconds;
    }

    // --- Numeric execution under the tracking allocator. Staged
    // features (prefetched to host by the pipeline) are copied onto
    // the device; otherwise they are materialized inline.
    util::StopWatch watch;
    const bool use_staged = staged && staged->host_features &&
                            !staged->host_features->empty();
    nn::Tensor feats =
        use_staged ? staged->host_features->clone(&allocator)
                   : loadFeatures(dataset, mb.inputNodes(), &allocator);
    stats.phases.add(phaseName(Phase::DataLoading),
                     watch.seconds() + transfer_seconds);

    std::optional<tensor::Tensor> padding_ballast;
    if (extra_padding_bytes > 0) {
        padding_ballast = tensor::Tensor::zeros(
            extra_padding_bytes / sizeof(float), 1, &allocator);
    }

    nn::Tensor logits = model_->forward(mb, feats, &allocator);
    const NodeList outputs = mb.outputNodes();
    auto labels = gatherLabels(dataset, outputs);
    nn::LossResult loss_result = nn::softmaxCrossEntropy(
        logits, labels, batch_output_count, &allocator);
    model_->backward(loss_result.grad_logits, &allocator);

    device_.chargeComputeSeconds(compute_seconds);
    stats.phases.add(phaseName(Phase::GpuCompute), compute_seconds);

    stats.loss += loss_result.loss;
    stats.correct += loss_result.correct;
    stats.num_outputs += outputs.size();
    stats.total_block_nodes += mb.totalNodeCount();
    return transfer_seconds + compute_seconds;
}

void
TrainerBase::optimizerStep(IterationStats &stats)
{
    if (options_.mode == ExecutionMode::Numeric)
        optimizer_->step();
    // Optimizer kernel time: ~4 FLOPs per parameter element.
    const double flops =
        static_cast<double>(model_->memoryModel().weightBytes()) / 4.0 *
        4.0;
    const double seconds = device_.costModel().kernelsSeconds(flops, 2);
    device_.chargeComputeSeconds(seconds);
    stats.phases.add(phaseName(Phase::GpuCompute), seconds);
}

// ---------------------------------------------------------------------
// WholeBatchTrainer (Algorithm 1)

WholeBatchTrainer::WholeBatchTrainer(const TrainerOptions &options,
                                     device::Device &device,
                                     bool padding_based)
    : TrainerBase(options, device), padding_based_(padding_based)
{
}

IterationStats
WholeBatchTrainer::trainIteration(const graph::Dataset &dataset,
                                  const NodeList &seeds, util::Rng &rng)
{
    IterationStats stats;
    device_.allocator().resetPeak();

    auto sg = sampleBatch(dataset, seeds, rng, stats.phases);

    NodeList all_seeds(sg.numSeeds());
    for (graph::NodeId i = 0; i < sg.numSeeds(); ++i)
        all_seeds[i] = i;
    sampling::MicroBatch mb =
        generator_.generate(sg, all_seeds, &stats.phases);

    std::uint64_t padding_bytes = 0;
    double padding_flops = 0.0;
    if (padding_based_) {
        const nn::MemoryModel &mm = model_->memoryModel();
        const std::uint64_t padded =
            baselines::paddedMicroBatchBytes(mm, mb);
        const std::uint64_t bucketed = mm.microBatchBytes(mb);
        padding_bytes = padded > bucketed ? padded - bucketed : 0;
        const double padded_flops =
            baselines::paddedMicroBatchFlops(mm, mb);
        const double bucketed_flops = mm.microBatchFlops(mb);
        padding_flops = std::max(0.0, padded_flops - bucketed_flops);
    }

    processMicroBatch(mb, dataset, seeds.size(), stats, padding_bytes,
                      padding_flops);
    optimizerStep(stats);

    stats.num_micro_batches = 1;
    stats.peak_device_bytes = device_.allocator().peakBytes();
    return stats;
}

// ---------------------------------------------------------------------
// BuffaloTrainer (Algorithms 2 + 3)

BuffaloTrainer::BuffaloTrainer(const TrainerOptions &options,
                               device::Device &device)
    : TrainerBase(options, device)
{
}

IterationStats
BuffaloTrainer::trainIteration(const graph::Dataset &dataset,
                               const NodeList &seeds, util::Rng &rng)
{
    obs::Span iteration_span(obs::names::kSpanTrainIteration);
    util::PhaseTimer sampling_phases;
    auto sg = sampleBatch(dataset, seeds, rng, sampling_phases);

    core::SchedulerOptions sched_options = options_.scheduler;
    if (sched_options.mem_constraint == 0)
        sched_options.mem_constraint = device_.allocator().capacity();
    sched_options.reserved_bytes = static_bytes_;

    // Estimation error can make a scheduled group overflow during
    // execution; on OOM the iteration restarts with a tighter safety
    // factor (accumulated gradients are discarded first, so the
    // retried iteration is still exact).
    constexpr int kMaxAttempts = 4;
    for (int attempt = 0;; ++attempt) {
        IterationStats stats;
        stats.phases.merge(sampling_phases);
        device_.allocator().resetPeak();
        try {
            // Line 1 of Algorithm 2: the Buffalo Scheduler.
            core::BuffaloScheduler scheduler(
                model_->memoryModel(),
                dataset.spec().paper_avg_coefficient, sched_options);
            last_schedule_ = scheduler.schedule(sg);
            stats.phases.add(phaseName(Phase::Scheduling),
                             last_schedule_.schedule_seconds);

            // Lines 3-12: per bucket group, generate and train. The
            // allocator peak is reset per group so each trained group
            // yields one predicted-vs-actual memory record (the
            // estimator audit, DESIGN.md "Memory audit & bench
            // regression"); the iteration peak is the max over them.
            std::vector<double> prep_seconds, device_seconds;
            std::uint64_t iteration_peak = 0;
            std::size_t group_index = 0;
            for (const core::BucketGroup &group :
                 last_schedule_.groups) {
                util::StopWatch prep_watch;
                sampling::MicroBatch mb =
                    generator_.generateOne(sg, group, &stats.phases);
                prep_seconds.push_back(prep_watch.seconds());
                device_.allocator().resetPeak();
                device_seconds.push_back(processMicroBatch(
                    mb, dataset, seeds.size(), stats));

                obs::GroupMemRecord record;
                record.group_index = group_index++;
                record.buckets = group.buckets.size();
                record.outputs =
                    static_cast<std::size_t>(group.outputCount());
                record.grouping_ratio = group.mean_grouping_ratio;
                record.predicted_bytes =
                    group.est_bytes + static_bytes_;
                record.actual_bytes =
                    device_.allocator().peakBytes();
                iteration_peak =
                    std::max(iteration_peak, record.actual_bytes);
                obs::metrics()
                    .histogram(
                        obs::names::kHistSchedulerEstimateRelError)
                    .add(record.signedRelError());
                obs::memoryAudit().record(record);
                stats.group_audit.push_back(record);
            }
            optimizerStep(stats);

            // Pipelining extension: preparation of micro-batch k+1
            // can overlap device execution of micro-batch k.
            double overlapped = prep_seconds.empty()
                                    ? 0.0
                                    : prep_seconds.front();
            for (std::size_t i = 0; i + 1 < prep_seconds.size(); ++i)
                overlapped += std::max(prep_seconds[i + 1],
                                       device_seconds[i]);
            if (!device_seconds.empty())
                overlapped += device_seconds.back();
            double serial = 0.0;
            for (std::size_t i = 0; i < prep_seconds.size(); ++i)
                serial += prep_seconds[i] + device_seconds[i];
            stats.pipelined_seconds =
                stats.phases.total() - serial + overlapped;

            stats.num_micro_batches = last_schedule_.num_groups;
            // The optimizer step runs after the last group reset, so
            // fold the current segment's peak in too.
            stats.peak_device_bytes =
                std::max(iteration_peak,
                         device_.allocator().peakBytes());
            obs::metrics()
                .gauge(obs::names::kGaugeTrainPeakDeviceBytes)
                .setMax(static_cast<double>(stats.peak_device_bytes));
            return stats;
        } catch (const device::DeviceOom &) {
            obs::metrics().counter(obs::names::kCtrTrainOomRetries).add();
            obs::eventLog()
                .event(obs::names::kEvTrainOomRetry)
                .field("attempt", attempt + 1)
                .field("max_attempts", kMaxAttempts)
                .field("safety_factor",
                       sched_options.safety_factor)
                .field("giving_up", attempt + 1 >= kMaxAttempts);
            if (attempt + 1 >= kMaxAttempts)
                throw;
            model_->clearCache();
            if (options_.mode == ExecutionMode::Numeric)
                model_->module().zeroGrad();
            sched_options.safety_factor *= 0.7;
            BUFFALO_LOG_WARN("buffalo-trainer")
                << "micro-batch overflowed the device; rescheduling "
                   "with safety factor "
                << sched_options.safety_factor;
        }
    }
}

// ---------------------------------------------------------------------
// BettyTrainer

BettyTrainer::BettyTrainer(const TrainerOptions &options,
                           device::Device &device,
                           int num_micro_batches)
    : TrainerBase(options, device),
      num_micro_batches_(num_micro_batches)
{
    checkArgument(num_micro_batches_ >= 1,
                  "BettyTrainer: need >= 1 micro batch");
}

IterationStats
BettyTrainer::trainIteration(const graph::Dataset &dataset,
                             const NodeList &seeds, util::Rng &rng)
{
    IterationStats stats;
    device_.allocator().resetPeak();

    auto sg = sampleBatch(dataset, seeds, rng, stats.phases);

    auto parts = partitioner_.partition(sg, num_micro_batches_);
    stats.phases.add(phaseName(Phase::RegConstruction),
                     partitioner_.lastPhases().reg_construction_seconds);
    stats.phases.add(phaseName(Phase::MetisPartition),
                     partitioner_.lastPhases().metis_seconds);

    for (const NodeList &part : parts) {
        sampling::MicroBatch mb =
            generator_.generate(sg, part, &stats.phases);
        processMicroBatch(mb, dataset, seeds.size(), stats);
    }
    optimizerStep(stats);

    stats.num_micro_batches = static_cast<int>(parts.size());
    stats.peak_device_bytes = device_.allocator().peakBytes();
    return stats;
}

} // namespace buffalo::train
