/**
 * @file
 * The unified trainer reporting API (DESIGN.md, "Observability").
 *
 * Every trainer — WholeBatch, Buffalo, Betty, and the pipelined
 * Buffalo — returns one EpochReport per epoch from trainEpoch(), so
 * benches and tools aggregate a single shape regardless of which
 * pipeline produced it. Pipeline-only sections (stages, cache, the
 * overlap model) are zero-filled for serial trainers and `pipelined`
 * says which path ran.
 *
 * This header is deliberately light (no trainer machinery) so the
 * pipeline layer can share PipelineOptions without pulling in the
 * model stack.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "obs/audit.h"
#include "obs/critical_path.h"
#include "util/timer.h"

namespace buffalo::train {

/**
 * Which hot-set policy a feature cache pins with (DESIGN.md,
 * "Pipeline & feature cache"). Lives in this deliberately light
 * header so the train, pipeline, and serve layers can all name a
 * policy without pulling in the cache machinery; the implementations
 * are in pipeline/cache_policy.h.
 */
enum class CachePolicyKind
{
    /** No pinned hot set; pure LRU admission. */
    LruOnly,
    /** Pin the highest in-degree nodes (the BGL hub insight). */
    Degree,
    /**
     * Pin the nodes most frequently touched by a startup presample
     * pass that runs the real sampler (the FGNN insight: measured
     * frequency for this sampler + dataset beats static degree).
     */
    PresampleFrequency,
};

/**
 * Pipeline knobs, carried inside TrainerOptions. Consumed by the
 * pipeline::PipelineTrainer / Prefetcher; serial trainers ignore them.
 */
struct PipelineOptions
{
    /** Run the asynchronous prefetch pipeline at all (CLI --pipeline). */
    bool enabled = false;
    /** Batches prepared ahead of training (per-queue capacity). */
    int prefetch_depth = 2;
    /**
     * Host bytes prepared-but-unconsumed batches may pin (staged
     * features + block structures + sampled CSRs); 0 = unlimited.
     */
    std::uint64_t host_memory_budget = 0;
    /** Feature cache byte budget; 0 disables the cache. */
    std::uint64_t feature_cache_bytes = 0;
    /**
     * Cap on nodes the cache policy may pin permanently; 0 lets the
     * policy pin up to the cache capacity (LRU-only never pins).
     */
    std::size_t pinned_hot_nodes = 0;
    /** Hot-set selection policy (CLI --cache-policy). */
    CachePolicyKind cache_policy = CachePolicyKind::Degree;
    /** Micro-batches the presample pass runs (--presample-batches). */
    int presample_batches = 8;
};

/** Feature-cache section of an EpochReport (pipelined runs only). */
struct CacheReport
{
    /** Policy name ("lru" | "degree" | "presample"); empty = no cache. */
    std::string policy;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t pinned_nodes = 0;
    std::size_t resident_nodes = 0;
    std::uint64_t bytes_in_use = 0;
    std::uint64_t capacity_bytes = 0;

    double
    hitRate() const
    {
        const std::uint64_t total = hits + misses;
        return total == 0
                   ? 0.0
                   : static_cast<double>(hits) /
                         static_cast<double>(total);
    }
};

/** Prefetch-stage section of an EpochReport (pipelined runs only). */
struct StageReport
{
    double sample_busy_seconds = 0.0;
    double build_busy_seconds = 0.0;
    double feature_busy_seconds = 0.0;
    std::size_t max_sampled_queue = 0;
    std::size_t max_built_queue = 0;
    std::size_t max_ready_queue = 0;
    std::uint64_t peak_host_bytes = 0;
};

/** One epoch's aggregate result, common to every trainer. */
struct EpochReport
{
    /** Mean per-batch loss (valid in Numeric mode). */
    double mean_loss = 0.0;
    /** Top-1 training accuracy (Numeric mode). */
    double accuracy = 0.0;
    double loss_sum = 0.0;
    std::size_t correct = 0;
    std::size_t outputs = 0;
    int num_batches = 0;
    int num_micro_batches = 0;

    /**
     * Serial end-to-end seconds: host-measured phases + simulated
     * device time, summed over the epoch's iterations.
     */
    double epoch_seconds = 0.0;
    /** Per-phase breakdown summed across the epoch's iterations. */
    util::PhaseTimer phases;

    /** True when the prefetch pipeline produced this epoch. */
    bool pipelined = false;
    /**
     * Modeled epoch wall-clock with preparation overlapped behind
     * device execution (pipelined runs; 0 otherwise).
     */
    double pipelined_seconds = 0.0;
    /** The same costs summed serially (pipelined runs). */
    double serial_seconds = 0.0;
    /** Host-side preparation busy time across stages. */
    double prep_seconds = 0.0;
    /** Simulated device (transfer + kernel) time. */
    double device_seconds = 0.0;
    /** Real host wall-clock of the epoch loop. */
    double wall_seconds = 0.0;

    std::uint64_t transfer_bytes = 0;
    std::uint64_t transfer_saved_bytes = 0;
    std::uint64_t peak_device_bytes = 0;

    StageReport stages;
    CacheReport cache;
    /**
     * Predicted-vs-actual memory accounting over the epoch's trained
     * bucket groups (DESIGN.md, "Memory audit & bench regression").
     * Populated by trainers that schedule against the estimator
     * (Buffalo serial + pipelined); zero-group for the baselines.
     */
    obs::MemoryAuditSummary mem_audit;
    /**
     * Critical-path decomposition of the epoch's modeled pipeline
     * (DESIGN.md, "Critical-path attribution"): per-stage self time,
     * overlap efficiency, dominant stage, what-if bounds. Populated
     * by the pipelined trainer; empty (items == 0) for serial runs.
     */
    obs::CriticalPathReport cp;

    /** pipelined/serial; < 1 means the overlap hid preparation time. */
    double
    overlapRatio() const
    {
        return serial_seconds > 0.0
                   ? pipelined_seconds / serial_seconds
                   : 0.0;
    }

    /** The epoch cost to compare across trainers: the modeled
     *  pipelined time when pipelined, else the serial phase total. */
    double
    effectiveSeconds() const
    {
        return pipelined ? pipelined_seconds : epoch_seconds;
    }
};

/**
 * Callback invoked after each trained epoch (TrainerOptions::
 * epoch_observer): @p epoch is 0-based and counts every epoch the
 * trainer instance has run. Hook point for metrics sinks and progress
 * reporting; must not retain the reference past the call.
 */
using EpochObserver =
    std::function<void(int epoch, const EpochReport &)>;

} // namespace buffalo::train
