#include "graph/subgraph.h"

#include "graph/coo.h"
#include "util/errors.h"

namespace buffalo::graph {

NodeId
Subgraph::local(NodeId parent_id) const
{
    auto it = to_local.find(parent_id);
    checkArgument(it != to_local.end(),
                  "Subgraph::local: node not in subgraph");
    return it->second;
}

Subgraph
inducedSubgraph(const CsrGraph &parent, const NodeList &nodes)
{
    Subgraph sub;
    sub.originals = nodes;
    sub.to_local.reserve(nodes.size());
    for (NodeId i = 0; i < nodes.size(); ++i) {
        checkArgument(nodes[i] < parent.numNodes(),
                      "inducedSubgraph: node id out of range");
        const bool inserted =
            sub.to_local.emplace(nodes[i], i).second;
        checkArgument(inserted, "inducedSubgraph: duplicate node id");
    }

    CooBuilder builder(static_cast<NodeId>(nodes.size()));
    for (NodeId new_dst = 0; new_dst < nodes.size(); ++new_dst) {
        for (NodeId src : parent.neighbors(nodes[new_dst])) {
            auto it = sub.to_local.find(src);
            if (it != sub.to_local.end())
                builder.addEdge(it->second, new_dst);
        }
    }
    // Parent rows are already deduplicated; keep self-loop behaviour.
    sub.graph = builder.toCsr(/*dedup=*/false, /*drop_self_loops=*/false);
    return sub;
}

} // namespace buffalo::graph
