#include "graph/csr.h"

#include <algorithm>

#include "util/errors.h"

namespace buffalo::graph {

CsrGraph::CsrGraph() : offsets_{0} {}

CsrGraph::CsrGraph(std::vector<EdgeIndex> offsets,
                   std::vector<NodeId> targets)
    : offsets_(std::move(offsets)), targets_(std::move(targets))
{
    checkArgument(!offsets_.empty() && offsets_.front() == 0,
                  "CsrGraph: offsets must start at 0");
    checkArgument(offsets_.back() == targets_.size(),
                  "CsrGraph: last offset must equal number of targets");
    const NodeId n = numNodes();
    for (std::size_t i = 1; i < offsets_.size(); ++i) {
        checkArgument(offsets_[i - 1] <= offsets_[i],
                      "CsrGraph: offsets must be non-decreasing");
    }
    for (std::size_t row = 0; row + 1 < offsets_.size(); ++row) {
        for (EdgeIndex e = offsets_[row]; e < offsets_[row + 1]; ++e) {
            checkArgument(targets_[e] < n,
                          "CsrGraph: target id out of range");
            if (e > offsets_[row] && targets_[e - 1] > targets_[e])
                rows_sorted_ = false;
        }
    }
}

bool
CsrGraph::hasEdge(NodeId dst, NodeId src) const
{
    auto row = neighbors(dst);
    if (rows_sorted_)
        return std::binary_search(row.begin(), row.end(), src);
    return std::find(row.begin(), row.end(), src) != row.end();
}

CsrGraph
CsrGraph::reversed() const
{
    const NodeId n = numNodes();
    std::vector<EdgeIndex> rev_offsets(n + 1, 0);
    for (NodeId neighbor : targets_)
        ++rev_offsets[neighbor + 1];
    for (NodeId u = 0; u < n; ++u)
        rev_offsets[u + 1] += rev_offsets[u];

    std::vector<NodeId> rev_targets(targets_.size());
    std::vector<EdgeIndex> cursor(rev_offsets.begin(),
                                  rev_offsets.end() - 1);
    for (NodeId u = 0; u < n; ++u) {
        for (NodeId v : neighbors(u))
            rev_targets[cursor[v]++] = u;
    }
    return CsrGraph(std::move(rev_offsets), std::move(rev_targets));
}

std::vector<EdgeIndex>
CsrGraph::degreeVector() const
{
    const NodeId n = numNodes();
    std::vector<EdgeIndex> degrees(n);
    for (NodeId u = 0; u < n; ++u)
        degrees[u] = degree(u);
    return degrees;
}

EdgeIndex
CsrGraph::maxDegree() const
{
    EdgeIndex best = 0;
    const NodeId n = numNodes();
    for (NodeId u = 0; u < n; ++u)
        best = std::max(best, degree(u));
    return best;
}

NodeId
CsrGraph::countZeroDegreeNodes() const
{
    NodeId count = 0;
    const NodeId n = numNodes();
    for (NodeId u = 0; u < n; ++u)
        if (degree(u) == 0)
            ++count;
    return count;
}

std::uint64_t
CsrGraph::memoryBytes() const
{
    return offsets_.size() * sizeof(EdgeIndex) +
           targets_.size() * sizeof(NodeId);
}

} // namespace buffalo::graph
