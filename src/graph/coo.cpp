#include "graph/coo.h"

#include <algorithm>

#include "util/errors.h"

namespace buffalo::graph {

CooBuilder::CooBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {}

void
CooBuilder::addEdge(NodeId src, NodeId dst)
{
    checkArgument(src < num_nodes_ && dst < num_nodes_,
                  "CooBuilder::addEdge: node id out of range");
    edges_.push_back({src, dst});
}

void
CooBuilder::addUndirectedEdge(NodeId u, NodeId v)
{
    addEdge(u, v);
    addEdge(v, u);
}

void
CooBuilder::reserve(EdgeIndex count)
{
    edges_.reserve(count);
}

CsrGraph
CooBuilder::toCsr(bool dedup, bool drop_self_loops) const
{
    // Sort by (dst, src) so rows of the in-CSR come out sorted.
    std::vector<Edge> sorted = edges_;
    std::sort(sorted.begin(), sorted.end(),
              [](const Edge &a, const Edge &b) {
                  return a.dst != b.dst ? a.dst < b.dst : a.src < b.src;
              });

    std::vector<EdgeIndex> offsets(
        static_cast<std::size_t>(num_nodes_) + 1, 0);
    std::vector<NodeId> targets;
    targets.reserve(sorted.size());

    for (std::size_t i = 0; i < sorted.size(); ++i) {
        const Edge &e = sorted[i];
        if (drop_self_loops && e.src == e.dst)
            continue;
        if (dedup && i > 0 && sorted[i - 1].src == e.src &&
            sorted[i - 1].dst == e.dst) {
            continue;
        }
        targets.push_back(e.src);
        ++offsets[e.dst + 1];
    }
    for (std::size_t i = 1; i < offsets.size(); ++i)
        offsets[i] += offsets[i - 1];

    return CsrGraph(std::move(offsets), std::move(targets));
}

} // namespace buffalo::graph
