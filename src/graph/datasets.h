/**
 * @file
 * Simulated dataset registry.
 *
 * The paper evaluates on Cora, Pubmed, Reddit, OGBN-arxiv, OGBN-products
 * and OGBN-papers (Table II). Those datasets (and the disk/GPU needed to
 * hold them) are unavailable offline, so each entry here is a synthetic
 * generator parameterised to match the published *shape*: degree
 * distribution family (power law or not), average degree, clustering
 * coefficient, and relative scale. Node counts are scaled down (the scale
 * factor is recorded and printed by every bench); feature dimensions are
 * reduced proportionally so CPU-only numeric training stays tractable.
 *
 * Labels are structure-correlated (seeded label propagation) and features
 * are drawn around per-class centroids, so models genuinely converge —
 * which the loss-parity experiments (Table IV, Fig. 17) require.
 */
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"

namespace buffalo::graph {

/** Identifiers for the six simulated datasets of Table II. */
enum class DatasetId { Cora, Pubmed, Reddit, Arxiv, Products, Papers };

/** All dataset ids in Table II order. */
const std::vector<DatasetId> &allDatasetIds();

/** Static description of a dataset: paper stats + simulation parameters. */
struct DatasetSpec
{
    DatasetId id;
    std::string name;

    // Published characteristics (Table II).
    std::uint64_t paper_nodes;
    std::uint64_t paper_edges;
    double paper_avg_degree;
    double paper_avg_coefficient;
    bool paper_power_law;
    int paper_feature_dim;

    // Simulation parameters.
    NodeId sim_nodes;
    int sim_feature_dim;
    int num_classes;
    /** Fraction of nodes left with zero in-edges (papers-sim only; this
     *  reproduces the zero-in-edge nodes that break Betty, Fig. 11). */
    double isolated_fraction;
};

/** Spec for @p id. */
const DatasetSpec &datasetSpec(DatasetId id);

/** Spec lookup by name (case-sensitive); throws NotFound if unknown. */
const DatasetSpec &datasetSpecByName(const std::string &name);

/** A fully materialized simulated dataset. */
class Dataset
{
  public:
    /** The spec this dataset was generated from. */
    const DatasetSpec &spec() const { return spec_; }

    /** Display name, e.g. "ogbn-arxiv-sim". */
    const std::string &name() const { return spec_.name; }

    /** Undirected graph in in-CSR orientation. */
    const CsrGraph &graph() const { return graph_; }

    /** Per-node class labels in [0, numClasses()). */
    const std::vector<std::int32_t> &labels() const { return labels_; }

    /** Number of node classes. */
    int numClasses() const { return spec_.num_classes; }

    /** Input feature width. */
    int featureDim() const { return spec_.sim_feature_dim; }

    /** sim_nodes / paper_nodes. */
    double scaleFactor() const;

    /**
     * Writes the features of @p node into @p out (size featureDim()).
     * Deterministic in (dataset seed, node): features are a per-class
     * centroid plus hash noise, generated on demand so no dataset-sized
     * feature matrix needs to stay resident.
     */
    void fillFeatures(NodeId node, std::span<float> out) const;

    /** Seed nodes used as training targets (a deterministic subset). */
    const NodeList &trainNodes() const { return train_nodes_; }

    /** The seed the generator ran with. */
    std::uint64_t seed() const { return seed_; }

  private:
    friend Dataset loadDataset(DatasetId, std::uint64_t, double);
    friend Dataset makeDataset(std::string, CsrGraph,
                               std::vector<std::int32_t>, int, int,
                               double, std::uint64_t);
    friend Dataset loadDatasetBundle(std::istream &);

    DatasetSpec spec_;
    CsrGraph graph_;
    std::vector<std::int32_t> labels_;
    NodeList train_nodes_;
    std::uint64_t seed_ = 0;
};

/**
 * Generates the simulated dataset @p id deterministically from @p seed.
 * @p scale multiplies the spec's sim node count (tests pass < 1 for
 * speed; pass > 1 to stress schedulers).
 */
Dataset loadDataset(DatasetId id, std::uint64_t seed = 42,
                    double scale = 1.0);

/**
 * Wraps a user-provided graph + labels as a Dataset so it can be fed
 * to the trainers. Features are generated deterministically around
 * per-class centroids (same scheme as the simulated datasets); train
 * nodes default to a seeded 10% sample.
 *
 * @param avg_clustering_coefficient The graph's average clustering
 *        coefficient (Buffalo's Eq. 1 parameter); pass a measured
 *        value from graph::sampledClusteringCoefficient.
 */
Dataset makeDataset(std::string name, CsrGraph graph,
                    std::vector<std::int32_t> labels, int num_classes,
                    int feature_dim,
                    double avg_clustering_coefficient,
                    std::uint64_t seed = 42);

} // namespace buffalo::graph
