/**
 * @file
 * Graph statistics: average degree, clustering coefficient, and power-law
 * tail detection. These feed both Table II and Buffalo's redundancy-aware
 * memory estimator (the average clustering coefficient C of Eq. 1).
 */
#pragma once

#include "graph/csr.h"
#include "util/rng.h"

namespace buffalo::graph {

/** Mean row degree of the graph. */
double averageDegree(const CsrGraph &graph);

/**
 * Local clustering coefficient of @p node: the fraction of pairs of its
 * neighbors that are themselves connected. Treats the graph as
 * undirected (an edge in either direction counts). 0 for degree < 2.
 */
double localClusteringCoefficient(const CsrGraph &graph, NodeId node);

/**
 * Average clustering coefficient over all nodes (exact; O(sum d^2 log d)).
 * Suitable for graphs up to a few hundred thousand edges.
 */
double averageClusteringCoefficient(const CsrGraph &graph);

/**
 * Sampled estimate of the average clustering coefficient using
 * @p num_samples uniformly chosen nodes. This is what the paper calls
 * "offline graph analysis" — cheap even for billion-scale-shaped inputs.
 */
double sampledClusteringCoefficient(const CsrGraph &graph,
                                    std::size_t num_samples,
                                    util::Rng &rng);

/** Result of fitting a discrete power law to the degree tail. */
struct PowerLawFit
{
    /** MLE exponent alpha of p(d) ~ d^-alpha for d >= dmin. */
    double alpha = 0.0;
    /** Smallest degree included in the fit. */
    EdgeIndex dmin = 1;
    /** Number of nodes in the fitted tail. */
    std::size_t tail_size = 0;
    /** Heuristic verdict: long-tailed enough to bucket-explode. */
    bool is_power_law = false;
};

/**
 * Fits a discrete power law to the degree *tail* via the standard
 * continuous-approximation MLE, alpha = 1 + n / sum ln(d_i / (dmin - 1/2)).
 *
 * @param dmin Smallest degree included; 0 selects it automatically as
 *        1.5x the average degree, so the fit sees the tail rather than
 *        the bulk (community graphs concentrate mass near the mean).
 *
 * The is_power_law verdict requires alpha in (1.5, 5.0), a non-trivial
 * tail, and a max degree at least 8x the average — the regime where
 * degree-F buckets explode.
 */
PowerLawFit fitPowerLaw(const CsrGraph &graph, EdgeIndex dmin = 0);

} // namespace buffalo::graph
