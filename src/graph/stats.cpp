#include "graph/stats.h"

#include <algorithm>
#include <cmath>

namespace buffalo::graph {

double
averageDegree(const CsrGraph &graph)
{
    if (graph.numNodes() == 0)
        return 0.0;
    return static_cast<double>(graph.numEdges()) /
           static_cast<double>(graph.numNodes());
}

double
localClusteringCoefficient(const CsrGraph &graph, NodeId node)
{
    auto row = graph.neighbors(node);
    // Unique neighbors, excluding the node itself.
    std::vector<NodeId> nbrs(row.begin(), row.end());
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    nbrs.erase(std::remove(nbrs.begin(), nbrs.end(), node), nbrs.end());
    const std::size_t k = nbrs.size();
    if (k < 2)
        return 0.0;

    std::size_t links = 0;
    for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = i + 1; j < k; ++j) {
            if (graph.hasEdge(nbrs[i], nbrs[j]) ||
                graph.hasEdge(nbrs[j], nbrs[i])) {
                ++links;
            }
        }
    }
    return 2.0 * static_cast<double>(links) /
           (static_cast<double>(k) * static_cast<double>(k - 1));
}

double
averageClusteringCoefficient(const CsrGraph &graph)
{
    const NodeId n = graph.numNodes();
    if (n == 0)
        return 0.0;
    double sum = 0.0;
    for (NodeId u = 0; u < n; ++u)
        sum += localClusteringCoefficient(graph, u);
    return sum / static_cast<double>(n);
}

double
sampledClusteringCoefficient(const CsrGraph &graph,
                             std::size_t num_samples, util::Rng &rng)
{
    const NodeId n = graph.numNodes();
    if (n == 0)
        return 0.0;
    if (num_samples >= n)
        return averageClusteringCoefficient(graph);
    auto picks = rng.sampleWithoutReplacement(n, num_samples);
    double sum = 0.0;
    for (auto pick : picks)
        sum += localClusteringCoefficient(graph,
                                          static_cast<NodeId>(pick));
    return sum / static_cast<double>(num_samples);
}

PowerLawFit
fitPowerLaw(const CsrGraph &graph, EdgeIndex dmin)
{
    PowerLawFit fit;
    const double avg = averageDegree(graph);
    if (dmin == 0) {
        // Auto: fit the tail, not the bulk around the mean degree.
        dmin = static_cast<EdgeIndex>(std::ceil(1.5 * avg));
    }
    fit.dmin = std::max<EdgeIndex>(dmin, 2);

    const NodeId n = graph.numNodes();
    double log_sum = 0.0;
    std::size_t tail = 0;
    EdgeIndex max_degree = 0;
    for (NodeId u = 0; u < n; ++u) {
        const EdgeIndex d = graph.degree(u);
        max_degree = std::max(max_degree, d);
        if (d >= fit.dmin) {
            log_sum += std::log(static_cast<double>(d) /
                                (static_cast<double>(fit.dmin) - 0.5));
            ++tail;
        }
    }
    fit.tail_size = tail;
    const std::size_t min_tail =
        std::max<std::size_t>(10, n / 200);
    if (tail == 0 || log_sum <= 0.0)
        return fit;
    fit.alpha = 1.0 + static_cast<double>(tail) / log_sum;

    fit.is_power_law = fit.alpha > 1.5 && fit.alpha < 5.0 &&
                       tail >= min_tail && avg > 0.0 &&
                       static_cast<double>(max_degree) >= 8.0 * avg;
    return fit;
}

} // namespace buffalo::graph
