/**
 * @file
 * Coordinate-format edge-list builder that compiles into CsrGraph.
 */
#pragma once

#include "graph/csr.h"
#include "graph/types.h"

namespace buffalo::graph {

/** Mutable edge accumulator; finalize with toCsr(). */
class CooBuilder
{
  public:
    /** Creates a builder for a graph with @p num_nodes nodes. */
    explicit CooBuilder(NodeId num_nodes);

    /** Adds the directed edge src -> dst. Ids must be < numNodes(). */
    void addEdge(NodeId src, NodeId dst);

    /** Adds src -> dst and dst -> src. */
    void addUndirectedEdge(NodeId u, NodeId v);

    /** Number of edges added so far. */
    EdgeIndex numEdges() const { return edges_.size(); }

    /** Node count this builder was created with. */
    NodeId numNodes() const { return num_nodes_; }

    /** Reserves space for @p count edges. */
    void reserve(EdgeIndex count);

    /**
     * Compiles the accumulated edges into in-CSR form: row `dst` lists
     * each edge's `src`. Rows are sorted; duplicates removed if
     * @p dedup. Self-loops dropped if @p drop_self_loops.
     */
    CsrGraph toCsr(bool dedup = true, bool drop_self_loops = true) const;

  private:
    NodeId num_nodes_;
    std::vector<Edge> edges_;
};

} // namespace buffalo::graph
