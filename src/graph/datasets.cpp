#include "graph/datasets.h"

#include <algorithm>
#include <cmath>

#include "graph/coo.h"
#include "graph/generators.h"
#include "graph/stats.h"
#include "util/errors.h"
#include "util/logging.h"
#include "util/rng.h"

namespace buffalo::graph {

namespace {

const std::vector<DatasetSpec> &
specs()
{
    // Paper columns come from Table II; simulation parameters were chosen
    // so the generated graphs land near the published avg degree /
    // clustering coefficient / power-law verdicts (validated by
    // bench_table2_datasets and tests/graph/datasets_test).
    static const std::vector<DatasetSpec> table = {
        {DatasetId::Cora, "cora-sim",
         2'700, 10'000, 3.9, 0.24, false, 1433,
         /*sim_nodes=*/2'708, /*sim_feature_dim=*/128, /*classes=*/7,
         /*isolated=*/0.0},
        {DatasetId::Pubmed, "pubmed-sim",
         19'000, 88'000, 8.9, 0.06, false, 500,
         4'000, 96, 3, 0.0},
        {DatasetId::Reddit, "reddit-sim",
         200'000, 114'600'000, 492.0, 0.579, true, 602,
         8'000, 96, 41, 0.0},
        {DatasetId::Arxiv, "ogbn-arxiv-sim",
         160'000, 2'310'000, 13.7, 0.226, true, 128,
         16'000, 64, 40, 0.0},
        {DatasetId::Products, "ogbn-products-sim",
         2'450'000, 61'860'000, 50.5, 0.411, true, 100,
         24'000, 64, 47, 0.0},
        {DatasetId::Papers, "ogbn-papers-sim",
         111'100'000, 1'600'000'000, 29.1, 0.085, true, 128,
         60'000, 32, 172, 0.01},
    };
    return table;
}

/**
 * Generates the raw topology for one dataset at @p nodes nodes.
 * Generator family choices are documented per dataset in DESIGN.md.
 */
CsrGraph
generateTopology(DatasetId id, NodeId nodes, util::Rng &rng)
{
    switch (id) {
      case DatasetId::Cora:
        // Non-power-law citation core: small-world with moderate
        // clustering (paper coef 0.24, avg degree 3.9).
        return generateWattsStrogatz(nodes, 2, 0.35, rng);
      case DatasetId::Pubmed:
        // Non-power-law, low clustering (0.06): heavily rewired ring.
        return generateWattsStrogatz(nodes, 4, 0.75, rng);
      case DatasetId::Reddit:
        // Dense power-law community graph with very high clustering
        // (paper: avg deg 492 scaled to ~48, coef 0.579).
        return generateCommunityPowerLaw(nodes, 64, 0.60, 5, rng);
      case DatasetId::Arxiv:
        // Power-law citation graph, medium clustering (13.7 / 0.226).
        return generateCommunityPowerLaw(nodes, 24, 0.40, 3, rng);
      case DatasetId::Products:
        // Power-law co-purchase graph, high clustering (50.5 / 0.411).
        return generateCommunityPowerLaw(nodes, 80, 0.48, 6, rng);
      case DatasetId::Papers:
        // Billion-scale-shaped citation graph: preferential attachment
        // with sparse communities (29.1 / 0.085).
        return generateCommunityPowerLaw(nodes, 20, 0.16, 12, rng);
    }
    throw InvalidArgument("generateTopology: unknown dataset id");
}

/**
 * Appends @p isolated zero-degree nodes to @p graph. OGBN-papers contains
 * nodes with zero in-edges, which Betty cannot process (paper Fig. 11);
 * papers-sim reproduces them.
 */
CsrGraph
appendIsolatedNodes(const CsrGraph &graph, NodeId isolated)
{
    std::vector<EdgeIndex> offsets = graph.offsets();
    for (NodeId i = 0; i < isolated; ++i)
        offsets.push_back(offsets.back());
    std::vector<NodeId> targets = graph.targets();
    return CsrGraph(std::move(offsets), std::move(targets));
}

/** 64-bit mix for deterministic per-(seed, node, dim) noise. */
std::uint64_t
mix(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t x = a * 0x9E3779B97F4A7C15ULL + b;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

/**
 * Assigns structure-correlated labels: random seeding followed by a few
 * synchronous label-propagation rounds (majority over neighbors). This
 * yields homophilous labels like real citation/product graphs.
 */
std::vector<std::int32_t>
assignLabels(const CsrGraph &graph, int num_classes, util::Rng &rng)
{
    const NodeId n = graph.numNodes();
    std::vector<std::int32_t> labels(n);
    for (NodeId u = 0; u < n; ++u) {
        labels[u] =
            static_cast<std::int32_t>(rng.nextBounded(num_classes));
    }

    std::vector<std::int32_t> next(n);
    std::vector<std::uint32_t> votes(num_classes);
    for (int round = 0; round < 3; ++round) {
        for (NodeId u = 0; u < n; ++u) {
            auto nbrs = graph.neighbors(u);
            if (nbrs.empty()) {
                next[u] = labels[u];
                continue;
            }
            std::fill(votes.begin(), votes.end(), 0);
            for (NodeId v : nbrs)
                ++votes[labels[v]];
            // Own label gets a small incumbency bonus to damp flip-flop.
            votes[labels[u]] += 1;
            next[u] = static_cast<std::int32_t>(
                std::max_element(votes.begin(), votes.end()) -
                votes.begin());
        }
        labels.swap(next);
    }
    return labels;
}

} // namespace

const std::vector<DatasetId> &
allDatasetIds()
{
    static const std::vector<DatasetId> ids = {
        DatasetId::Cora,     DatasetId::Pubmed, DatasetId::Reddit,
        DatasetId::Arxiv,    DatasetId::Products,
        DatasetId::Papers,
    };
    return ids;
}

const DatasetSpec &
datasetSpec(DatasetId id)
{
    for (const auto &spec : specs())
        if (spec.id == id)
            return spec;
    throw NotFound("datasetSpec: unknown dataset id");
}

const DatasetSpec &
datasetSpecByName(const std::string &name)
{
    for (const auto &spec : specs())
        if (spec.name == name)
            return spec;
    throw NotFound("datasetSpecByName: no dataset named '" + name + "'");
}

double
Dataset::scaleFactor() const
{
    return static_cast<double>(graph_.numNodes()) /
           static_cast<double>(spec_.paper_nodes);
}

void
Dataset::fillFeatures(NodeId node, std::span<float> out) const
{
    checkArgument(node < graph_.numNodes(),
                  "Dataset::fillFeatures: node out of range");
    checkArgument(out.size() ==
                      static_cast<std::size_t>(spec_.sim_feature_dim),
                  "Dataset::fillFeatures: output span has wrong size");
    const std::int32_t label = labels_[node];
    for (std::size_t d = 0; d < out.size(); ++d) {
        // Class centroid component: deterministic in (seed, label, dim).
        const std::uint64_t ch = mix(seed_ ^ 0xC0FFEE,
                                     (static_cast<std::uint64_t>(label)
                                      << 32) | d);
        const float centroid =
            static_cast<float>(ch >> 40) / 16777216.0f - 0.5f;
        // Node noise component: deterministic in (seed, node, dim).
        const std::uint64_t nh =
            mix(seed_ ^ 0xBADF00D,
                (static_cast<std::uint64_t>(node) << 24) ^ d);
        const float noise =
            static_cast<float>(nh >> 40) / 16777216.0f - 0.5f;
        out[d] = centroid + 0.3f * noise;
    }
}

Dataset
loadDataset(DatasetId id, std::uint64_t seed, double scale)
{
    checkArgument(scale > 0.0, "loadDataset: scale must be positive");
    const DatasetSpec &spec = datasetSpec(id);

    Dataset dataset;
    dataset.spec_ = spec;
    dataset.seed_ = seed;

    util::Rng rng(seed ^ (static_cast<std::uint64_t>(id) << 48));
    const NodeId total = std::max<NodeId>(
        64, static_cast<NodeId>(spec.sim_nodes * scale));
    const NodeId isolated =
        static_cast<NodeId>(total * spec.isolated_fraction);
    const NodeId connected = total - isolated;

    CsrGraph graph = generateTopology(id, connected, rng);
    if (isolated > 0)
        graph = appendIsolatedNodes(graph, isolated);
    dataset.graph_ = std::move(graph);
    dataset.labels_ =
        assignLabels(dataset.graph_, spec.num_classes, rng);

    // Training seeds: a deterministic 10% sample (at least 64 nodes).
    const NodeId n = dataset.graph_.numNodes();
    const NodeId train_count =
        std::min<NodeId>(n, std::max<NodeId>(64, n / 10));
    auto picks = rng.sampleWithoutReplacement(n, train_count);
    dataset.train_nodes_.assign(picks.begin(), picks.end());
    std::sort(dataset.train_nodes_.begin(), dataset.train_nodes_.end());

    BUFFALO_LOG_INFO("datasets")
        << "loaded " << spec.name << ": " << n << " nodes, "
        << dataset.graph_.numEdges() << " edges (scale factor "
        << dataset.scaleFactor() << ")";
    return dataset;
}

Dataset
makeDataset(std::string name, CsrGraph graph,
            std::vector<std::int32_t> labels, int num_classes,
            int feature_dim, double avg_clustering_coefficient,
            std::uint64_t seed)
{
    checkArgument(labels.size() == graph.numNodes(),
                  "makeDataset: one label per node required");
    checkArgument(num_classes >= 2, "makeDataset: need >= 2 classes");
    checkArgument(feature_dim >= 1,
                  "makeDataset: need >= 1 feature dim");
    for (auto label : labels)
        checkArgument(label >= 0 && label < num_classes,
                      "makeDataset: label out of range");

    Dataset dataset;
    dataset.spec_.id = static_cast<DatasetId>(-1);
    dataset.spec_.name = std::move(name);
    dataset.spec_.paper_nodes = graph.numNodes();
    dataset.spec_.paper_edges = graph.numEdges();
    dataset.spec_.paper_avg_degree = averageDegree(graph);
    dataset.spec_.paper_avg_coefficient =
        avg_clustering_coefficient;
    dataset.spec_.paper_power_law = false;
    dataset.spec_.paper_feature_dim = feature_dim;
    dataset.spec_.sim_nodes = graph.numNodes();
    dataset.spec_.sim_feature_dim = feature_dim;
    dataset.spec_.num_classes = num_classes;
    dataset.spec_.isolated_fraction = 0.0;
    dataset.seed_ = seed;
    dataset.graph_ = std::move(graph);
    dataset.labels_ = std::move(labels);

    util::Rng rng(seed ^ 0xCAFEBABE);
    const NodeId n = dataset.graph_.numNodes();
    const NodeId train_count =
        std::min<NodeId>(n, std::max<NodeId>(64, n / 10));
    auto picks = rng.sampleWithoutReplacement(n, train_count);
    dataset.train_nodes_.assign(picks.begin(), picks.end());
    std::sort(dataset.train_nodes_.begin(),
              dataset.train_nodes_.end());
    return dataset;
}

} // namespace buffalo::graph
