/**
 * @file
 * Compressed Sparse Row graph — the core immutable graph container.
 *
 * The in-neighbor orientation matters for GNNs: message passing aggregates
 * over a node's *in*-neighbors, so most of the pipeline stores graphs in
 * in-CSR form (row u lists the sources of edges into u). reversed() flips
 * orientation when the out view is needed.
 */
#pragma once

#include <span>
#include <vector>

#include "graph/types.h"

namespace buffalo::graph {

/** Immutable CSR adjacency structure. */
class CsrGraph
{
  public:
    /** Constructs an empty graph with zero nodes. */
    CsrGraph();

    /**
     * Constructs from raw CSR arrays.
     *
     * @param offsets Row offsets; size numNodes()+1, non-decreasing,
     *                offsets.front()==0, offsets.back()==targets.size().
     * @param targets Column indices (neighbor ids), each < numNodes().
     */
    CsrGraph(std::vector<EdgeIndex> offsets, std::vector<NodeId> targets);

    /** Number of nodes. */
    NodeId numNodes() const
    {
        return static_cast<NodeId>(offsets_.size() - 1);
    }

    /** Number of (directed) edges. */
    EdgeIndex numEdges() const { return targets_.size(); }

    /** Degree of @p node (length of its CSR row). */
    EdgeIndex
    degree(NodeId node) const
    {
        return offsets_[node + 1] - offsets_[node];
    }

    /** Neighbors of @p node, as a contiguous span. */
    std::span<const NodeId>
    neighbors(NodeId node) const
    {
        return {targets_.data() + offsets_[node],
                targets_.data() + offsets_[node + 1]};
    }

    /** Raw row-offset array (size numNodes()+1). */
    const std::vector<EdgeIndex> &offsets() const { return offsets_; }

    /** Raw column-index array (size numEdges()). */
    const std::vector<NodeId> &targets() const { return targets_; }

    /** True if @p src appears in @p dst's row. O(log degree) if sorted. */
    bool hasEdge(NodeId dst, NodeId src) const;

    /** True if every row's neighbor list is sorted ascending. */
    bool rowsSorted() const { return rows_sorted_; }

    /** Returns the graph with all edges reversed. O(V+E). */
    CsrGraph reversed() const;

    /** Degree of every node (copy of row lengths). */
    std::vector<EdgeIndex> degreeVector() const;

    /** Maximum row degree; 0 for an empty graph. */
    EdgeIndex maxDegree() const;

    /** Number of nodes whose row is empty (zero in-edges). */
    NodeId countZeroDegreeNodes() const;

    /** Approximate heap bytes held by the CSR arrays. */
    std::uint64_t memoryBytes() const;

  private:
    std::vector<EdgeIndex> offsets_;
    std::vector<NodeId> targets_;
    bool rows_sorted_ = true;
};

} // namespace buffalo::graph
