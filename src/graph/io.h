/**
 * @file
 * Graph and dataset (de)serialization.
 *
 * Two formats:
 *  - *Edge-list text*: one "src dst" pair per line ('#' comments,
 *    blank lines ignored) — the format real datasets (SNAP, OGB
 *    exports) commonly ship in, so users can feed their own graphs to
 *    the trainers via makeDataset.
 *  - *Binary dataset bundle*: a single versioned file holding the CSR
 *    arrays, labels, and metadata of a Dataset, for fast reload of
 *    generated or imported datasets.
 */
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr.h"
#include "graph/datasets.h"

namespace buffalo::graph {

/**
 * Parses an edge-list text stream into an in-CSR graph.
 *
 * @param symmetrize Add the reverse of every edge (undirected input).
 * @param num_nodes Node count; 0 derives it as max id + 1.
 * @throws InvalidArgument on malformed lines or out-of-range ids.
 */
CsrGraph readEdgeList(std::istream &in, bool symmetrize = true,
                      NodeId num_nodes = 0);

/** readEdgeList from a file path; throws NotFound if unreadable. */
CsrGraph readEdgeListFile(const std::string &path,
                          bool symmetrize = true, NodeId num_nodes = 0);

/** Writes "src dst" lines for every directed CSR edge. */
void writeEdgeList(std::ostream &out, const CsrGraph &graph);

/** writeEdgeList to a file path; throws Error if unwritable. */
void writeEdgeListFile(const std::string &path, const CsrGraph &graph);

/**
 * Serializes a Dataset (graph + labels + metadata) to a versioned
 * binary stream. Features are regenerated from the stored seed on
 * load, so the bundle stays small.
 */
void saveDataset(std::ostream &out, const Dataset &dataset);

/** saveDataset to a file path. */
void saveDatasetFile(const std::string &path, const Dataset &dataset);

/** Reads a dataset bundle written by saveDataset. */
Dataset loadDatasetBundle(std::istream &in);

/** loadDatasetBundle from a file path; throws NotFound if missing. */
Dataset loadDatasetBundleFile(const std::string &path);

} // namespace buffalo::graph
