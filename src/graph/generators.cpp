#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "graph/coo.h"
#include "util/errors.h"

namespace buffalo::graph {

namespace {

/** Rounds up to the next power of two (>= 1). */
NodeId
nextPowerOfTwo(NodeId x)
{
    NodeId p = 1;
    while (p < x)
        p <<= 1;
    return p;
}

} // namespace

CsrGraph
generateBarabasiAlbert(NodeId num_nodes, NodeId edges_per_node,
                       util::Rng &rng)
{
    checkArgument(edges_per_node >= 1,
                  "generateBarabasiAlbert: need edges_per_node >= 1");
    checkArgument(num_nodes > edges_per_node,
                  "generateBarabasiAlbert: need num_nodes > edges_per_node");

    CooBuilder builder(num_nodes);
    // repeated-node list: node id appears once per incident edge end,
    // so sampling uniformly from it is degree-proportional sampling.
    std::vector<NodeId> ends;
    ends.reserve(static_cast<std::size_t>(num_nodes) * edges_per_node * 2);

    const NodeId seed_size = edges_per_node + 1;
    for (NodeId u = 0; u < seed_size; ++u) {
        for (NodeId v = u + 1; v < seed_size; ++v) {
            builder.addUndirectedEdge(u, v);
            ends.push_back(u);
            ends.push_back(v);
        }
    }

    std::unordered_set<NodeId> chosen;
    for (NodeId u = seed_size; u < num_nodes; ++u) {
        chosen.clear();
        while (chosen.size() < edges_per_node) {
            NodeId target = ends[rng.nextBounded(ends.size())];
            if (target != u)
                chosen.insert(target);
        }
        for (NodeId target : chosen) {
            builder.addUndirectedEdge(u, target);
            ends.push_back(u);
            ends.push_back(target);
        }
    }
    return builder.toCsr();
}

CsrGraph
generateErdosRenyi(NodeId num_nodes, double edge_probability,
                   util::Rng &rng)
{
    checkArgument(edge_probability >= 0.0 && edge_probability <= 1.0,
                  "generateErdosRenyi: probability must be in [0, 1]");
    CooBuilder builder(num_nodes);
    if (edge_probability <= 0.0 || num_nodes < 2)
        return builder.toCsr();

    // Geometric skipping over the upper triangle: O(expected edges).
    const double log_q = std::log(1.0 - edge_probability);
    const std::uint64_t total_pairs =
        static_cast<std::uint64_t>(num_nodes) * (num_nodes - 1) / 2;
    std::uint64_t index = 0;
    while (true) {
        const double r = std::max(rng.nextDouble(), 1e-300);
        if (edge_probability >= 1.0) {
            // Every pair present.
            if (index >= total_pairs)
                break;
        } else {
            const std::uint64_t skip = static_cast<std::uint64_t>(
                std::floor(std::log(r) / log_q));
            index += skip;
            if (index >= total_pairs)
                break;
        }
        // Decode the linear pair index into (u, v) with u < v.
        const double ui =
            (std::sqrt(8.0 * static_cast<double>(index) + 1.0) - 1.0) / 2.0;
        NodeId u = static_cast<NodeId>(ui);
        // Adjust for floating error.
        while (static_cast<std::uint64_t>(u + 1) * (u + 2) / 2 <= index)
            ++u;
        while (static_cast<std::uint64_t>(u) * (u + 1) / 2 > index)
            --u;
        const NodeId v = static_cast<NodeId>(
            index - static_cast<std::uint64_t>(u) * (u + 1) / 2);
        // Here u >= v by construction of the triangular indexing; map to
        // a pair with distinct endpoints u+1 > v.
        builder.addUndirectedEdge(u + 1, v);
        ++index;
    }
    return builder.toCsr();
}

CsrGraph
generateWattsStrogatz(NodeId num_nodes, NodeId neighbors_each_side,
                      double rewire_probability, util::Rng &rng)
{
    checkArgument(num_nodes > 2 * neighbors_each_side,
                  "generateWattsStrogatz: ring too small for k");
    CooBuilder builder(num_nodes);
    for (NodeId u = 0; u < num_nodes; ++u) {
        for (NodeId k = 1; k <= neighbors_each_side; ++k) {
            NodeId v = (u + k) % num_nodes;
            if (rng.nextBernoulli(rewire_probability)) {
                // Rewire to a uniform non-self target.
                NodeId w;
                do {
                    w = static_cast<NodeId>(rng.nextBounded(num_nodes));
                } while (w == u);
                v = w;
            }
            builder.addUndirectedEdge(u, v);
        }
    }
    return builder.toCsr();
}

CsrGraph
generateRmat(NodeId num_nodes, EdgeIndex num_edges, double a, double b,
             double c, util::Rng &rng)
{
    checkArgument(a > 0 && b >= 0 && c >= 0 && a + b + c < 1.0,
                  "generateRmat: quadrant probabilities must be valid");
    const NodeId n = nextPowerOfTwo(num_nodes);
    CooBuilder builder(n);
    builder.reserve(num_edges * 2);

    int levels = 0;
    while ((NodeId(1) << levels) < n)
        ++levels;

    for (EdgeIndex e = 0; e < num_edges; ++e) {
        NodeId src = 0, dst = 0;
        for (int level = 0; level < levels; ++level) {
            const double r = rng.nextDouble();
            src <<= 1;
            dst <<= 1;
            if (r < a) {
                // top-left quadrant: no bits set
            } else if (r < a + b) {
                dst |= 1;
            } else if (r < a + b + c) {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        if (src != dst)
            builder.addUndirectedEdge(src, dst);
    }
    return builder.toCsr();
}

CsrGraph
generateCommunityPowerLaw(NodeId num_nodes, NodeId community_size,
                          double intra_probability,
                          NodeId inter_edges_per_node, util::Rng &rng)
{
    checkArgument(community_size >= 2,
                  "generateCommunityPowerLaw: community_size >= 2");
    checkArgument(intra_probability >= 0.0 && intra_probability <= 1.0,
                  "generateCommunityPowerLaw: bad intra probability");
    checkArgument(num_nodes > community_size,
                  "generateCommunityPowerLaw: too few nodes");

    CooBuilder builder(num_nodes);

    // Dense intra-community edges (triangle factories).
    for (NodeId base = 0; base < num_nodes; base += community_size) {
        const NodeId hi =
            std::min<NodeId>(num_nodes, base + community_size);
        for (NodeId u = base; u < hi; ++u)
            for (NodeId v = u + 1; v < hi; ++v)
                if (rng.nextBernoulli(intra_probability))
                    builder.addUndirectedEdge(u, v);
    }

    // Preferential-attachment cross edges (heavy hub tail). The PA
    // pool holds only *cross-edge* endpoints so the rich-get-richer
    // loop compounds instead of being diluted by the uniform
    // intra-community degrees.
    std::vector<NodeId> cross_ends;
    std::unordered_set<NodeId> chosen;
    for (NodeId u = 0; u < num_nodes; ++u) {
        chosen.clear();
        for (NodeId k = 0; k < inter_edges_per_node; ++k) {
            NodeId target;
            int attempts = 0;
            do {
                target = cross_ends.empty()
                             ? static_cast<NodeId>(
                                   rng.nextBounded(num_nodes))
                             : cross_ends[rng.nextBounded(
                                   cross_ends.size())];
            } while ((target == u || chosen.count(target)) &&
                     ++attempts < 16);
            if (target == u || chosen.count(target))
                continue;
            chosen.insert(target);
            builder.addUndirectedEdge(u, target);
            cross_ends.push_back(u);
            cross_ends.push_back(target);
        }
    }
    return builder.toCsr();
}

CsrGraph
generatePowerLawCluster(NodeId num_nodes, NodeId edges_per_node,
                        double triad_probability, util::Rng &rng)
{
    checkArgument(edges_per_node >= 1,
                  "generatePowerLawCluster: need edges_per_node >= 1");
    checkArgument(num_nodes > edges_per_node,
                  "generatePowerLawCluster: num_nodes too small");
    checkArgument(triad_probability >= 0.0 && triad_probability <= 1.0,
                  "generatePowerLawCluster: probability must be in [0, 1]");

    CooBuilder builder(num_nodes);
    std::vector<NodeId> ends;
    // adjacency (small per-node lists) for triad formation lookups.
    std::vector<std::vector<NodeId>> adjacency(num_nodes);

    auto connect = [&](NodeId u, NodeId v) {
        builder.addUndirectedEdge(u, v);
        adjacency[u].push_back(v);
        adjacency[v].push_back(u);
        ends.push_back(u);
        ends.push_back(v);
    };

    const NodeId seed_size = edges_per_node + 1;
    for (NodeId u = 0; u < seed_size; ++u)
        for (NodeId v = u + 1; v < seed_size; ++v)
            connect(u, v);

    for (NodeId u = seed_size; u < num_nodes; ++u) {
        NodeId previous_target = 0;
        bool have_previous = false;
        std::unordered_set<NodeId> chosen;
        while (chosen.size() < edges_per_node) {
            NodeId target;
            if (have_previous && rng.nextBernoulli(triad_probability) &&
                !adjacency[previous_target].empty()) {
                // Triad formation: close a triangle with a neighbor of
                // the previous preferential-attachment target.
                const auto &nbrs = adjacency[previous_target];
                target = nbrs[rng.nextBounded(nbrs.size())];
            } else {
                target = ends[rng.nextBounded(ends.size())];
            }
            if (target == u || chosen.count(target))
                continue;
            chosen.insert(target);
            connect(u, target);
            previous_target = target;
            have_previous = true;
        }
    }
    return builder.toCsr();
}

} // namespace buffalo::graph
