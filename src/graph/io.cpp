#include "graph/io.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "graph/coo.h"
#include "util/errors.h"

namespace buffalo::graph {

namespace {

constexpr char kMagic[4] = {'B', 'U', 'F', 'D'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void
writePod(std::ostream &out, const T &value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
T
readPod(std::istream &in)
{
    T value{};
    in.read(reinterpret_cast<char *>(&value), sizeof(T));
    checkArgument(static_cast<bool>(in),
                  "dataset bundle: truncated stream");
    return value;
}

void
writeString(std::ostream &out, const std::string &value)
{
    writePod<std::uint64_t>(out, value.size());
    out.write(value.data(), static_cast<std::streamsize>(value.size()));
}

std::string
readString(std::istream &in)
{
    const auto size = readPod<std::uint64_t>(in);
    checkArgument(size < (1u << 20),
                  "dataset bundle: implausible string length");
    std::string value(size, '\0');
    in.read(value.data(), static_cast<std::streamsize>(size));
    checkArgument(static_cast<bool>(in),
                  "dataset bundle: truncated string");
    return value;
}

template <typename T>
void
writeVector(std::ostream &out, const std::vector<T> &values)
{
    writePod<std::uint64_t>(out, values.size());
    out.write(reinterpret_cast<const char *>(values.data()),
              static_cast<std::streamsize>(values.size() * sizeof(T)));
}

template <typename T>
std::vector<T>
readVector(std::istream &in)
{
    const auto size = readPod<std::uint64_t>(in);
    checkArgument(size < (1ull << 32),
                  "dataset bundle: implausible vector length");
    std::vector<T> values(size);
    in.read(reinterpret_cast<char *>(values.data()),
            static_cast<std::streamsize>(size * sizeof(T)));
    checkArgument(static_cast<bool>(in),
                  "dataset bundle: truncated vector");
    return values;
}

} // namespace

CsrGraph
readEdgeList(std::istream &in, bool symmetrize, NodeId num_nodes)
{
    std::vector<Edge> edges;
    NodeId max_id = 0;
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(in, line)) {
        ++line_number;
        const auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        std::istringstream fields(line);
        long long src = -1, dst = -1;
        fields >> src >> dst;
        checkArgument(src >= 0 && dst >= 0 && fields,
                      "readEdgeList: malformed line " +
                          std::to_string(line_number) + ": '" + line +
                          "'");
        max_id = std::max({max_id, static_cast<NodeId>(src),
                           static_cast<NodeId>(dst)});
        edges.push_back({static_cast<NodeId>(src),
                         static_cast<NodeId>(dst)});
    }
    const NodeId n =
        num_nodes > 0 ? num_nodes : (edges.empty() ? 0 : max_id + 1);
    checkArgument(num_nodes == 0 || max_id < num_nodes,
                  "readEdgeList: edge id exceeds num_nodes");

    CooBuilder builder(n);
    builder.reserve(edges.size() * (symmetrize ? 2 : 1));
    for (const Edge &edge : edges) {
        if (symmetrize)
            builder.addUndirectedEdge(edge.src, edge.dst);
        else
            builder.addEdge(edge.src, edge.dst);
    }
    return builder.toCsr();
}

CsrGraph
readEdgeListFile(const std::string &path, bool symmetrize,
                 NodeId num_nodes)
{
    std::ifstream in(path);
    if (!in)
        throw NotFound("readEdgeListFile: cannot open '" + path + "'");
    return readEdgeList(in, symmetrize, num_nodes);
}

void
writeEdgeList(std::ostream &out, const CsrGraph &graph)
{
    out << "# buffalo edge list: " << graph.numNodes() << " nodes, "
        << graph.numEdges() << " directed edges\n";
    for (NodeId dst = 0; dst < graph.numNodes(); ++dst)
        for (NodeId src : graph.neighbors(dst))
            out << src << ' ' << dst << '\n';
}

void
writeEdgeListFile(const std::string &path, const CsrGraph &graph)
{
    std::ofstream out(path);
    if (!out)
        throw Error("writeEdgeListFile: cannot open '" + path + "'");
    writeEdgeList(out, graph);
}

void
saveDataset(std::ostream &out, const Dataset &dataset)
{
    out.write(kMagic, sizeof(kMagic));
    writePod(out, kVersion);

    const DatasetSpec &spec = dataset.spec();
    writePod<std::int32_t>(out, static_cast<std::int32_t>(spec.id));
    writeString(out, spec.name);
    writePod(out, spec.paper_nodes);
    writePod(out, spec.paper_edges);
    writePod(out, spec.paper_avg_degree);
    writePod(out, spec.paper_avg_coefficient);
    writePod<std::uint8_t>(out, spec.paper_power_law ? 1 : 0);
    writePod<std::int32_t>(out, spec.paper_feature_dim);
    writePod(out, spec.sim_nodes);
    writePod<std::int32_t>(out, spec.sim_feature_dim);
    writePod<std::int32_t>(out, spec.num_classes);
    writePod(out, spec.isolated_fraction);
    writePod(out, dataset.seed());

    writeVector(out, dataset.graph().offsets());
    writeVector(out, dataset.graph().targets());
    writeVector(out, dataset.labels());
    writeVector(out, dataset.trainNodes());
    checkArgument(static_cast<bool>(out),
                  "saveDataset: stream write failed");
}

void
saveDatasetFile(const std::string &path, const Dataset &dataset)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw Error("saveDatasetFile: cannot open '" + path + "'");
    saveDataset(out, dataset);
}

Dataset
loadDatasetBundle(std::istream &in)
{
    char magic[4];
    in.read(magic, sizeof(magic));
    checkArgument(static_cast<bool>(in) &&
                      std::equal(magic, magic + 4, kMagic),
                  "dataset bundle: bad magic");
    const auto version = readPod<std::uint32_t>(in);
    checkArgument(version == kVersion,
                  "dataset bundle: unsupported version");

    DatasetSpec spec;
    spec.id = static_cast<DatasetId>(readPod<std::int32_t>(in));
    spec.name = readString(in);
    spec.paper_nodes = readPod<std::uint64_t>(in);
    spec.paper_edges = readPod<std::uint64_t>(in);
    spec.paper_avg_degree = readPod<double>(in);
    spec.paper_avg_coefficient = readPod<double>(in);
    spec.paper_power_law = readPod<std::uint8_t>(in) != 0;
    spec.paper_feature_dim = readPod<std::int32_t>(in);
    spec.sim_nodes = readPod<NodeId>(in);
    spec.sim_feature_dim = readPod<std::int32_t>(in);
    spec.num_classes = readPod<std::int32_t>(in);
    spec.isolated_fraction = readPod<double>(in);
    const auto seed = readPod<std::uint64_t>(in);

    auto offsets = readVector<EdgeIndex>(in);
    auto targets = readVector<NodeId>(in);
    auto labels = readVector<std::int32_t>(in);
    auto train_nodes = readVector<NodeId>(in);

    CsrGraph graph(std::move(offsets), std::move(targets));
    Dataset dataset =
        makeDataset(spec.name, std::move(graph), std::move(labels),
                    spec.num_classes, spec.sim_feature_dim,
                    spec.paper_avg_coefficient, seed);
    // Restore the exact spec and train split (makeDataset derives
    // fresh defaults for both).
    dataset.spec_ = spec;
    dataset.seed_ = seed;
    dataset.train_nodes_ = std::move(train_nodes);
    return dataset;
}

Dataset
loadDatasetBundleFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw NotFound("loadDatasetBundleFile: cannot open '" + path +
                       "'");
    return loadDatasetBundle(in);
}

} // namespace buffalo::graph
