/**
 * @file
 * Fundamental identifier types shared by the graph subsystem.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace buffalo::graph {

/** Node identifier. 32 bits covers every simulated dataset. */
using NodeId = std::uint32_t;

/** Edge count / CSR offset type. */
using EdgeIndex = std::uint64_t;

/** A directed edge src -> dst. */
struct Edge
{
    NodeId src;
    NodeId dst;

    bool
    operator==(const Edge &other) const
    {
        return src == other.src && dst == other.dst;
    }

    bool
    operator<(const Edge &other) const
    {
        return src != other.src ? src < other.src : dst < other.dst;
    }
};

/** A list of node identifiers. */
using NodeList = std::vector<NodeId>;

} // namespace buffalo::graph
