/**
 * @file
 * Induced-subgraph extraction with old<->new id mappings, used when a
 * sampled batch or a micro-batch is materialized as its own graph.
 */
#pragma once

#include <unordered_map>

#include "graph/csr.h"
#include "graph/types.h"

namespace buffalo::graph {

/** A subgraph plus the mapping between its ids and the parent's. */
struct Subgraph
{
    /** The induced graph, nodes renumbered 0..n-1. */
    CsrGraph graph;
    /** originals[new_id] == id of that node in the parent graph. */
    NodeList originals;
    /** parent id -> new id. */
    std::unordered_map<NodeId, NodeId> to_local;

    /** Convenience: local id for @p parent_id (must exist). */
    NodeId local(NodeId parent_id) const;
    /** Convenience: parent id for @p local_id. */
    NodeId parent(NodeId local_id) const { return originals[local_id]; }
};

/**
 * Extracts the subgraph induced by @p nodes: keeps every edge of
 * @p parent whose endpoints are both in @p nodes. Duplicate ids in
 * @p nodes are an error.
 */
Subgraph inducedSubgraph(const CsrGraph &parent, const NodeList &nodes);

} // namespace buffalo::graph
