/**
 * @file
 * Synthetic graph generators.
 *
 * These stand in for the paper's OGB datasets (see DESIGN.md): the
 * Barabási–Albert and RMAT models reproduce the long-tail degree
 * distributions that cause bucket explosion, while Watts–Strogatz offers
 * tunable clustering for calibrating the redundancy-aware estimator.
 */
#pragma once

#include "graph/csr.h"
#include "util/rng.h"

namespace buffalo::graph {

/**
 * Barabási–Albert preferential attachment.
 *
 * Starts from a clique of @p edges_per_node + 1 nodes; each new node
 * attaches to @p edges_per_node existing nodes chosen proportionally to
 * degree. Produces a power-law degree distribution (alpha ~ 3).
 * The result is undirected (symmetrized).
 */
CsrGraph generateBarabasiAlbert(NodeId num_nodes, NodeId edges_per_node,
                                util::Rng &rng);

/** Erdős–Rényi G(n, p); undirected, no self loops. */
CsrGraph generateErdosRenyi(NodeId num_nodes, double edge_probability,
                            util::Rng &rng);

/**
 * Watts–Strogatz small-world: ring lattice with @p neighbors_each_side
 * per side, each edge rewired with probability @p rewire_probability.
 * High clustering at low rewiring; undirected.
 */
CsrGraph generateWattsStrogatz(NodeId num_nodes,
                               NodeId neighbors_each_side,
                               double rewire_probability, util::Rng &rng);

/**
 * RMAT (recursive matrix) generator with the standard (a, b, c, d)
 * quadrant probabilities; num_nodes is rounded up to a power of two.
 * Heavy-tailed like real web/citation graphs; undirected after
 * symmetrization, duplicates removed.
 */
CsrGraph generateRmat(NodeId num_nodes, EdgeIndex num_edges, double a,
                      double b, double c, util::Rng &rng);

/**
 * Power-law graph with *high tunable clustering*: dense communities
 * plus preferential-attachment cross edges.
 *
 * Nodes are grouped into consecutive communities of
 * @p community_size; within a community each pair is connected with
 * probability @p intra_probability (dense triangles -> clustering of
 * roughly intra_probability). Each node additionally draws
 * @p inter_edges_per_node cross edges by preferential attachment,
 * producing the heavy hub tail. This is how co-purchase/social graphs
 * (OGBN-products, Reddit) combine avg clustering ~0.4-0.6 with
 * power-law degrees — a regime Holme–Kim cannot reach at high degree.
 */
CsrGraph generateCommunityPowerLaw(NodeId num_nodes,
                                   NodeId community_size,
                                   double intra_probability,
                                   NodeId inter_edges_per_node,
                                   util::Rng &rng);

/**
 * Power-law graph with *tunable clustering*: Holme–Kim style
 * preferential attachment where each attachment step is followed, with
 * probability @p triad_probability, by a triad-formation step that links
 * to a neighbor of the previous target. Raising triad_probability raises
 * the average clustering coefficient while preserving the power law.
 */
CsrGraph generatePowerLawCluster(NodeId num_nodes, NodeId edges_per_node,
                                 double triad_probability, util::Rng &rng);

} // namespace buffalo::graph
