/**
 * @file
 * CI validator for the observability exports (DESIGN.md,
 * "Observability").
 *
 * Checks that a --trace-out file is a Chrome trace-event array
 * (complete events: name/ph=="X"/ts/dur/pid/tid), that a
 * --metrics-json file has the counters/gauges/histograms sections
 * with well-formed entries, that a --run-log file is well-formed
 * JSONL (one {"ts_us","ev",...} object per line, timestamps
 * monotone), and that a --audit file follows the MemoryAudit schema
 * (optionally bounding the estimator's mean relative error with
 * --max-audit-error). Exits non-zero with a message on the first
 * violation, so tools/ci.sh can gate on it.
 */
#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/names.h"
#include "util/errors.h"
#include "util/flags.h"

namespace {

using buffalo::obs::JsonValue;

[[noreturn]] void
fail(const std::string &message)
{
    std::fprintf(stderr, "obs_validate: %s\n", message.c_str());
    std::exit(1);
}

std::vector<std::string>
splitCommas(const std::string &text)
{
    std::vector<std::string> out;
    std::stringstream stream(text);
    std::string part;
    while (std::getline(stream, part, ','))
        if (!part.empty())
            out.push_back(part);
    return out;
}

/**
 * Expands the `@core` / `@serve` / `@cache` / `@cp` shorthands to
 * the central expectation lists in obs/names.h, so ci.sh cannot
 * drift from the instrumented names. Plain comma-separated names
 * pass through unchanged. The two-array overload (spans) has no
 * cache or cp set — the feature cache and the critical-path
 * analyzer record no spans of their own — so `@cache`/`@cp` there
 * pass through and fail loudly instead of silently matching.
 */
template <std::size_t N, std::size_t M>
std::vector<std::string>
expandExpected(const std::string &csv, const char *const (&core)[N],
               const char *const (&serve)[M])
{
    std::vector<std::string> out;
    for (const std::string &item : splitCommas(csv)) {
        if (item == "@core")
            out.insert(out.end(), std::begin(core), std::end(core));
        else if (item == "@serve")
            out.insert(out.end(), std::begin(serve),
                       std::end(serve));
        else
            out.push_back(item);
    }
    return out;
}

template <std::size_t N, std::size_t M, std::size_t K,
          std::size_t L>
std::vector<std::string>
expandExpected(const std::string &csv, const char *const (&core)[N],
               const char *const (&serve)[M],
               const char *const (&cache)[K],
               const char *const (&cp)[L])
{
    std::vector<std::string> out;
    for (const std::string &item : splitCommas(csv)) {
        if (item == "@core")
            out.insert(out.end(), std::begin(core), std::end(core));
        else if (item == "@serve")
            out.insert(out.end(), std::begin(serve),
                       std::end(serve));
        else if (item == "@cache")
            out.insert(out.end(), std::begin(cache),
                       std::end(cache));
        else if (item == "@cp")
            out.insert(out.end(), std::begin(cp), std::end(cp));
        else
            out.push_back(item);
    }
    return out;
}

void
requireNumber(const JsonValue &object, const std::string &key,
              const std::string &context)
{
    if (!object.has(key) || !object.at(key).isNumber())
        fail(context + ": missing numeric field \"" + key + "\"");
}

/** Validates the Chrome trace-event schema; returns span names. */
std::set<std::string>
validateTrace(const std::string &path)
{
    const JsonValue doc =
        JsonValue::parse(buffalo::obs::readFileText(path));
    if (!doc.isArray())
        fail(path + ": trace document must be a JSON array");
    std::set<std::string> names;
    for (std::size_t i = 0; i < doc.size(); ++i) {
        const JsonValue &event = doc.at(i);
        const std::string context =
            path + ": event " + std::to_string(i);
        if (!event.isObject())
            fail(context + ": not an object");
        if (!event.has("name") || !event.at("name").isString())
            fail(context + ": missing string field \"name\"");
        if (!event.has("ph") || !event.at("ph").isString() ||
            event.at("ph").asString() != "X")
            fail(context + ": \"ph\" must be \"X\" (complete event)");
        requireNumber(event, "ts", context);
        requireNumber(event, "dur", context);
        requireNumber(event, "pid", context);
        requireNumber(event, "tid", context);
        if (event.at("dur").asNumber() < 0.0)
            fail(context + ": negative duration");
        if (i > 0 &&
            doc.at(i - 1).at("ts").asNumber() >
                event.at("ts").asNumber())
            fail(context + ": events not sorted by \"ts\"");
        names.insert(event.at("name").asString());
    }
    return names;
}

/** Validates the metrics dump schema; returns metric names. */
std::set<std::string>
validateMetrics(const std::string &path)
{
    const JsonValue doc =
        JsonValue::parse(buffalo::obs::readFileText(path));
    if (!doc.isObject())
        fail(path + ": metrics document must be a JSON object");
    for (const char *section : {"counters", "gauges", "histograms"})
        if (!doc.has(section) || !doc.at(section).isObject())
            fail(path + ": missing object section \"" +
                 std::string(section) + "\"");

    std::set<std::string> names;
    for (const std::string &name : doc.at("counters").keys()) {
        if (!doc.at("counters").at(name).isNumber())
            fail(path + ": counter \"" + name + "\" not a number");
        names.insert(name);
    }
    for (const std::string &name : doc.at("gauges").keys()) {
        if (!doc.at("gauges").at(name).isNumber())
            fail(path + ": gauge \"" + name + "\" not a number");
        names.insert(name);
    }
    for (const std::string &name : doc.at("histograms").keys()) {
        const JsonValue &h = doc.at("histograms").at(name);
        const std::string context =
            path + ": histogram \"" + name + "\"";
        if (!h.isObject())
            fail(context + ": not an object");
        for (const char *field :
             {"count", "min", "max", "mean", "stddev", "p50", "p95",
              "p99", "p999"})
            requireNumber(h, field, context);
        if (h.at("p50").asNumber() > h.at("p95").asNumber() ||
            h.at("p95").asNumber() > h.at("p99").asNumber() ||
            h.at("p99").asNumber() > h.at("p999").asNumber())
            fail(context + ": percentiles not monotone");
        if (h.at("stddev").asNumber() < 0.0)
            fail(context + ": negative stddev");
        names.insert(name);
    }
    // Ring-buffer overwrites mean the trace silently lost spans;
    // that's a sizing problem worth surfacing, but not an error.
    const JsonValue &gauges = doc.at("gauges");
    const char *dropped =
        buffalo::obs::names::kGaugeTracerDroppedSpans;
    if (gauges.has(dropped) &&
        gauges.at(dropped).asNumber() > 0.0) {
        std::fprintf(stderr,
                     "obs_validate: warning: %s = %.0f — tracer ring "
                     "buffers overwrote spans; consider a larger ring "
                     "capacity\n",
                     dropped, gauges.at(dropped).asNumber());
    }
    return names;
}

/** Validates a JSONL run log; returns the event types seen. */
std::set<std::string>
validateRunLog(const std::string &path)
{
    const std::string text = buffalo::obs::readFileText(path);
    std::set<std::string> events;
    std::stringstream stream(text);
    std::string line;
    std::size_t line_no = 0;
    double last_ts = -1.0;
    while (std::getline(stream, line)) {
        ++line_no;
        if (line.empty())
            continue;
        const std::string context =
            path + ": line " + std::to_string(line_no);
        JsonValue event;
        try {
            event = JsonValue::parse(line);
        } catch (const std::exception &error) {
            fail(context + ": " + error.what());
        }
        if (!event.isObject())
            fail(context + ": not a JSON object");
        requireNumber(event, "ts_us", context);
        if (!event.has("ev") || !event.at("ev").isString())
            fail(context + ": missing string field \"ev\"");
        const double ts = event.at("ts_us").asNumber();
        if (ts < last_ts)
            fail(context + ": timestamps not monotone");
        last_ts = ts;
        events.insert(event.at("ev").asString());
    }
    if (events.empty())
        fail(path + ": run log has no events");
    return events;
}

/** Validates a MemoryAudit JSON export; returns the worst epoch's
 *  mean absolute relative error. */
double
validateAudit(const std::string &path)
{
    const JsonValue doc =
        JsonValue::parse(buffalo::obs::readFileText(path));
    if (!doc.isObject() || !doc.has("epochs") ||
        !doc.at("epochs").isArray())
        fail(path + ": audit document must be an object with an "
                    "\"epochs\" array");
    if (doc.at("epochs").size() == 0)
        fail(path + ": audit has no epochs — was the audit enabled "
                    "and a Buffalo trainer used?");
    double worst = 0.0;
    for (std::size_t e = 0; e < doc.at("epochs").size(); ++e) {
        const JsonValue &epoch = doc.at("epochs").at(e);
        const std::string context =
            path + ": epoch " + std::to_string(e);
        for (const char *field :
             {"epoch", "groups", "predicted_bytes", "actual_bytes",
              "mean_abs_rel_error", "mean_signed_rel_error",
              "max_abs_rel_error"})
            requireNumber(epoch, field, context);
        if (!epoch.has("records") || !epoch.at("records").isArray())
            fail(context + ": missing \"records\" array");
        if (epoch.at("groups").asNumber() <= 0.0)
            fail(context + ": epoch with zero groups");
        worst = std::max(worst,
                         epoch.at("mean_abs_rel_error").asNumber());
    }
    return worst;
}

void
checkExpected(const std::set<std::string> &present,
              const std::vector<std::string> &expected,
              const std::string &what)
{
    for (const std::string &name : expected)
        if (present.find(name) == present.end())
            fail("expected " + what + " \"" + name + "\" not found");
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        buffalo::util::Flags flags(argc, argv);
        if (flags.getBool("help")) {
            std::printf(
                "usage: obs_validate [--trace FILE "
                "[--expect-spans a,b]]\n"
                "                    [--metrics FILE "
                "[--expect-metrics x,y]]\n"
                "                    [--run-log FILE "
                "[--expect-events e,f]]\n"
                "                    [--audit FILE "
                "[--max-audit-error X]]\n"
                "`@core` / `@serve` / `@cache` / `@cp` in an expect\n"
                "list expand to the central expectation sets in\n"
                "src/obs/names.h (`@cache` and `@cp` cover\n"
                "metrics/events only; neither records spans).\n");
            return 0;
        }
        flags.checkKnown({"help", "trace", "metrics", "expect-spans",
                          "expect-metrics", "run-log",
                          "expect-events", "audit",
                          "max-audit-error"});
        if (!flags.has("trace") && !flags.has("metrics") &&
            !flags.has("run-log") && !flags.has("audit"))
            fail("nothing to validate; pass --trace, --metrics, "
                 "--run-log, and/or --audit");

        if (flags.has("trace")) {
            const std::string path = flags.getString("trace");
            const std::set<std::string> spans = validateTrace(path);
            checkExpected(
                spans,
                expandExpected(flags.getString("expect-spans"),
                               buffalo::obs::names::kCoreSpans,
                               buffalo::obs::names::kServeSpans),
                "span");
            std::printf("obs_validate: %s ok (%zu span names)\n",
                        path.c_str(), spans.size());
        }
        if (flags.has("metrics")) {
            const std::string path = flags.getString("metrics");
            const std::set<std::string> metrics = validateMetrics(path);
            checkExpected(
                metrics,
                expandExpected(flags.getString("expect-metrics"),
                               buffalo::obs::names::kCoreMetrics,
                               buffalo::obs::names::kServeMetrics,
                               buffalo::obs::names::kCacheMetrics,
                               buffalo::obs::names::kCpMetrics),
                "metric");
            std::printf("obs_validate: %s ok (%zu metrics)\n",
                        path.c_str(), metrics.size());
        }
        if (flags.has("run-log")) {
            const std::string path = flags.getString("run-log");
            const std::set<std::string> events = validateRunLog(path);
            checkExpected(
                events,
                expandExpected(flags.getString("expect-events"),
                               buffalo::obs::names::kCoreEvents,
                               buffalo::obs::names::kServeEvents,
                               buffalo::obs::names::kCacheEvents,
                               buffalo::obs::names::kCpEvents),
                "event");
            std::printf("obs_validate: %s ok (%zu event types)\n",
                        path.c_str(), events.size());
        }
        if (flags.has("audit")) {
            const std::string path = flags.getString("audit");
            const double worst = validateAudit(path);
            const double max_error =
                flags.getDouble("max-audit-error", 0.0);
            if (max_error > 0.0 && worst > max_error)
                fail(path + ": mean |relative error| " +
                     std::to_string(worst) + " exceeds --max-audit-"
                     "error " + std::to_string(max_error));
            std::printf("obs_validate: %s ok (worst epoch mean |rel "
                        "err| %.1f%%)\n",
                        path.c_str(), worst * 100.0);
        }
    } catch (const std::exception &error) {
        fail(error.what());
    }
    return 0;
}
