/**
 * @file
 * CI validator for the observability exports (DESIGN.md,
 * "Observability").
 *
 * Checks that a --trace-out file is a Chrome trace-event array
 * (complete events: name/ph=="X"/ts/dur/pid/tid) and that a
 * --metrics-json file has the counters/gauges/histograms sections
 * with well-formed entries. Exits non-zero with a message on the
 * first violation, so tools/ci.sh can gate on it.
 */
#include <cstdio>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/names.h"
#include "util/errors.h"
#include "util/flags.h"

namespace {

using buffalo::obs::JsonValue;

[[noreturn]] void
fail(const std::string &message)
{
    std::fprintf(stderr, "obs_validate: %s\n", message.c_str());
    std::exit(1);
}

std::vector<std::string>
splitCommas(const std::string &text)
{
    std::vector<std::string> out;
    std::stringstream stream(text);
    std::string part;
    while (std::getline(stream, part, ','))
        if (!part.empty())
            out.push_back(part);
    return out;
}

/**
 * Expands the `@core` shorthand to the central expectation list in
 * obs/names.h, so ci.sh cannot drift from the instrumented names.
 * Plain comma-separated names pass through unchanged.
 */
template <std::size_t N>
std::vector<std::string>
expandExpected(const std::string &csv, const char *const (&core)[N])
{
    std::vector<std::string> out;
    for (const std::string &item : splitCommas(csv)) {
        if (item == "@core")
            out.insert(out.end(), std::begin(core), std::end(core));
        else
            out.push_back(item);
    }
    return out;
}

void
requireNumber(const JsonValue &object, const std::string &key,
              const std::string &context)
{
    if (!object.has(key) || !object.at(key).isNumber())
        fail(context + ": missing numeric field \"" + key + "\"");
}

/** Validates the Chrome trace-event schema; returns span names. */
std::set<std::string>
validateTrace(const std::string &path)
{
    const JsonValue doc =
        JsonValue::parse(buffalo::obs::readFileText(path));
    if (!doc.isArray())
        fail(path + ": trace document must be a JSON array");
    std::set<std::string> names;
    for (std::size_t i = 0; i < doc.size(); ++i) {
        const JsonValue &event = doc.at(i);
        const std::string context =
            path + ": event " + std::to_string(i);
        if (!event.isObject())
            fail(context + ": not an object");
        if (!event.has("name") || !event.at("name").isString())
            fail(context + ": missing string field \"name\"");
        if (!event.has("ph") || !event.at("ph").isString() ||
            event.at("ph").asString() != "X")
            fail(context + ": \"ph\" must be \"X\" (complete event)");
        requireNumber(event, "ts", context);
        requireNumber(event, "dur", context);
        requireNumber(event, "pid", context);
        requireNumber(event, "tid", context);
        if (event.at("dur").asNumber() < 0.0)
            fail(context + ": negative duration");
        if (i > 0 &&
            doc.at(i - 1).at("ts").asNumber() >
                event.at("ts").asNumber())
            fail(context + ": events not sorted by \"ts\"");
        names.insert(event.at("name").asString());
    }
    return names;
}

/** Validates the metrics dump schema; returns metric names. */
std::set<std::string>
validateMetrics(const std::string &path)
{
    const JsonValue doc =
        JsonValue::parse(buffalo::obs::readFileText(path));
    if (!doc.isObject())
        fail(path + ": metrics document must be a JSON object");
    for (const char *section : {"counters", "gauges", "histograms"})
        if (!doc.has(section) || !doc.at(section).isObject())
            fail(path + ": missing object section \"" +
                 std::string(section) + "\"");

    std::set<std::string> names;
    for (const std::string &name : doc.at("counters").keys()) {
        if (!doc.at("counters").at(name).isNumber())
            fail(path + ": counter \"" + name + "\" not a number");
        names.insert(name);
    }
    for (const std::string &name : doc.at("gauges").keys()) {
        if (!doc.at("gauges").at(name).isNumber())
            fail(path + ": gauge \"" + name + "\" not a number");
        names.insert(name);
    }
    for (const std::string &name : doc.at("histograms").keys()) {
        const JsonValue &h = doc.at("histograms").at(name);
        const std::string context =
            path + ": histogram \"" + name + "\"";
        if (!h.isObject())
            fail(context + ": not an object");
        for (const char *field :
             {"count", "min", "max", "mean", "p50", "p95", "p99"})
            requireNumber(h, field, context);
        if (h.at("p50").asNumber() > h.at("p95").asNumber() ||
            h.at("p95").asNumber() > h.at("p99").asNumber())
            fail(context + ": percentiles not monotone");
        names.insert(name);
    }
    return names;
}

void
checkExpected(const std::set<std::string> &present,
              const std::vector<std::string> &expected,
              const std::string &what)
{
    for (const std::string &name : expected)
        if (present.find(name) == present.end())
            fail("expected " + what + " \"" + name + "\" not found");
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        buffalo::util::Flags flags(argc, argv);
        if (flags.getBool("help")) {
            std::printf(
                "usage: obs_validate [--trace FILE "
                "[--expect-spans a,b]]\n"
                "                    [--metrics FILE "
                "[--expect-metrics x,y]]\n"
                "`@core` in an expect list expands to the central\n"
                "expectation set in src/obs/names.h.\n");
            return 0;
        }
        flags.checkKnown({"help", "trace", "metrics", "expect-spans",
                          "expect-metrics"});
        if (!flags.has("trace") && !flags.has("metrics"))
            fail("nothing to validate; pass --trace and/or --metrics");

        if (flags.has("trace")) {
            const std::string path = flags.getString("trace");
            const std::set<std::string> spans = validateTrace(path);
            checkExpected(spans,
                          expandExpected(flags.getString("expect-spans"),
                                         buffalo::obs::names::kCoreSpans),
                          "span");
            std::printf("obs_validate: %s ok (%zu span names)\n",
                        path.c_str(), spans.size());
        }
        if (flags.has("metrics")) {
            const std::string path = flags.getString("metrics");
            const std::set<std::string> metrics = validateMetrics(path);
            checkExpected(
                metrics,
                expandExpected(flags.getString("expect-metrics"),
                               buffalo::obs::names::kCoreMetrics),
                "metric");
            std::printf("obs_validate: %s ok (%zu metrics)\n",
                        path.c_str(), metrics.size());
        }
    } catch (const std::exception &error) {
        fail(error.what());
    }
    return 0;
}
