/**
 * @file
 * Rule framework for buffalo_lint: the Finding record, the per-file
 * context every rule receives, waiver lookup, per-directory rule
 * masks, and the machine-readable JSON report.
 *
 * Waivers. A finding is waived — reported in the JSON with
 * `"waived": true` but not counted against the exit code — when the
 * flagged line, or a comment-only line directly above it, carries
 *
 *   // buffalo-lint: allow(rule-a[,rule-b...]) <justification>
 *
 * The justification is mandatory by convention and archived in the
 * JSON report, so `ci.sh` can print (and reviewers can diff) the
 * waiver count: it may only go down.
 */
#pragma once

#include <cstddef>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.h"
#include "lint/symbols.h"

namespace buffalo_lint {

struct Finding
{
    std::string file;
    std::size_t line = 0;
    std::string rule;
    std::string severity = "error";
    std::string message;
    bool waived = false;
    std::string waiver_reason;
};

/**
 * Everything a rule may consult about the file under analysis. The
 * raw lines are kept verbatim (waivers live in comments, which the
 * token stream intentionally cannot see).
 */
struct FileContext
{
    std::string path;     // as reported in diagnostics
    std::string rel_path; // root-relative, '/'-separated; may be empty
    std::vector<std::string> raw_lines;
    TokenStream ts;
    FileSymbols symbols;
    /** EXCLUDES annotations harvested from directly included project
     * headers (name -> mutexes), merged over the file's own. */
    std::map<std::string, std::set<std::string>> include_excludes;

    bool
    isHeader() const
    {
        return path.size() >= 2 &&
               path.compare(path.size() - 2, 2, ".h") == 0;
    }

    /** True when rel_path starts with @p prefix (e.g. "src/tensor"). */
    bool
    under(const std::string &prefix) const
    {
        return rel_path.rfind(prefix, 0) == 0;
    }
};

namespace detail {

/** True if @p line carries an allow() marker naming @p rule. */
inline bool
lineAllows(const std::string &line, const std::string &rule)
{
    const std::string marker = "buffalo-lint: allow(";
    const std::size_t at = line.find(marker);
    if (at == std::string::npos)
        return false;
    const std::size_t open = at + marker.size() - 1;
    const std::size_t close = line.find(')', open);
    if (close == std::string::npos)
        return false;
    // Comma-separated rule list.
    std::size_t begin = open + 1;
    while (begin < close) {
        std::size_t end = line.find(',', begin);
        if (end == std::string::npos || end > close)
            end = close;
        std::size_t lo = begin, hi = end;
        while (lo < hi && (line[lo] == ' ' || line[lo] == '\t'))
            ++lo;
        while (hi > lo &&
               (line[hi - 1] == ' ' || line[hi - 1] == '\t'))
            --hi;
        if (line.compare(lo, hi - lo, rule) == 0)
            return true;
        begin = end + 1;
    }
    return false;
}

inline std::string
trimCopy(const std::string &s)
{
    const auto b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    const auto e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

/** The justification text following an allow(...) marker, if any. */
inline std::string
waiverReason(const std::string &line)
{
    const std::string marker = "buffalo-lint: allow(";
    const std::size_t at = line.find(marker);
    if (at == std::string::npos)
        return "";
    const std::size_t close = line.find(')', at);
    if (close == std::string::npos)
        return "";
    return trimCopy(line.substr(close + 1));
}

} // namespace detail

/**
 * Checks the 1-based @p line and any directly preceding comment-only
 * waiver lines for an allow(@p rule) marker. Returns the justification
 * through @p reason when waived.
 */
inline bool
isWaived(const FileContext &ctx, std::size_t line,
         const std::string &rule, std::string *reason)
{
    if (line == 0 || line > ctx.raw_lines.size())
        return false;
    if (detail::lineAllows(ctx.raw_lines[line - 1], rule)) {
        if (reason)
            *reason = detail::waiverReason(ctx.raw_lines[line - 1]);
        return true;
    }
    // Walk up over consecutive comment-only lines (a waiver comment
    // may wrap onto continuation lines).
    std::size_t up = line - 1;
    while (up >= 1) {
        const std::string t = detail::trimCopy(ctx.raw_lines[up - 1]);
        if (t.rfind("//", 0) != 0)
            break;
        if (detail::lineAllows(t, rule)) {
            if (reason)
                *reason = detail::waiverReason(t);
            return true;
        }
        --up;
    }
    return false;
}

/** Records a finding, resolving its waiver status from the source. */
inline void
addFinding(const FileContext &ctx, std::vector<Finding> *out,
           std::size_t line, const std::string &rule,
           const std::string &message,
           const std::string &severity = "error")
{
    Finding f;
    f.file = ctx.path;
    f.line = line;
    f.rule = rule;
    f.severity = severity;
    f.message = message;
    f.waived = isWaived(ctx, line, rule, &f.waiver_reason);
    out->push_back(std::move(f));
}

/**
 * Per-directory rule masks: which rules are switched off under each
 * top-level scan directory. Test sources get to violate the style
 * rules deliberately (fixtures, registry tests, raw-buffer tests) and
 * routinely spawn scoped joined threads, so the escape family would
 * be all waivers there.
 */
inline const std::map<std::string, std::set<std::string>> &
dirRuleMasks()
{
    static const std::map<std::string, std::set<std::string>> masks = {
        {"src", {}},
        {"tools", {}},
        {"bench", {}},
        {"tests",
         {"obs-name", "raw-alloc", "guarded-by", "escape-ref-capture",
          "escape-this-capture"}},
    };
    return masks;
}

/** True when @p rule is enabled for the file at @p rel_path. */
inline bool
ruleEnabledFor(const std::string &rel_path, const std::string &rule)
{
    if (rel_path.empty())
        return true; // explicit-file (fixture) mode: all rules
    const std::size_t slash = rel_path.find('/');
    const std::string top = slash == std::string::npos
                                ? rel_path
                                : rel_path.substr(0, slash);
    const auto it = dirRuleMasks().find(top);
    if (it == dirRuleMasks().end())
        return true;
    return it->second.count(rule) == 0;
}

/** JSON string escaping for the report writer. */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace buffalo_lint
