/**
 * @file
 * Per-file symbol pass for buffalo_lint: recognizes class bodies with
 * access sections, mutex and BUFFALO_GUARDED_BY members, function
 * definitions (with BUFFALO_REQUIRES / BUFFALO_EXCLUDES annotations),
 * lambda expressions (capture lists, parameters, and the sink they
 * escape into), and unordered-container variable declarations.
 *
 * Everything here is heuristic in the way a linter can afford to be:
 * it never needs to be a full parser, only precise enough that the
 * rules in rules.h fire on real code shapes and stay quiet on the
 * rest. Each recognizer documents the shapes it accepts.
 */
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.h"

namespace buffalo_lint {

/** One entry of a lambda capture list. */
struct Capture
{
    bool by_ref = false;   // & default or &name
    bool is_this = false;  // this (or *this, by value)
    bool is_default = false; // [&] or [=]
    std::string name;      // empty for defaults / this
};

/** How a lambda expression leaves its defining scope, if it does. */
enum class LambdaSink
{
    None,   // immediately invoked, passed to a blocking call, ...
    Call,   // argument of a function/constructor call
    Assign, // right-hand side of an assignment
};

struct Lambda
{
    std::size_t intro = 0;      // '[' token index
    std::size_t body_begin = 0; // '{' token index
    std::size_t body_end = 0;   // matching '}' token index
    std::vector<Capture> captures;
    std::vector<std::string> params;

    LambdaSink sink = LambdaSink::None;
    /** Last identifier of the callee chain (`submit`, `push`, ...). */
    std::string callee;
    /** First identifier of the callee chain (`pool_`, `std`, ...). */
    std::string receiver;
    /** For `Type name(lambda)` declarations, the last Type token. */
    std::string decl_type;
    /** For Assign sinks, the identifier being assigned to. */
    std::string assign_target;

    bool
    hasRefDefault() const
    {
        for (const Capture &c : captures)
            if (c.is_default && c.by_ref)
                return true;
        return false;
    }

    bool
    hasThis() const
    {
        for (const Capture &c : captures)
            if (c.is_this)
                return true;
        return false;
    }

    std::vector<std::string>
    refNames() const
    {
        std::vector<std::string> names;
        for (const Capture &c : captures)
            if (c.by_ref && !c.is_default && !c.name.empty())
                names.push_back(c.name);
        return names;
    }

    bool
    capturesByValue(const std::string &name) const
    {
        for (const Capture &c : captures)
            if (!c.by_ref && c.name == name)
                return true;
        return false;
    }
};

struct Function
{
    std::string name;
    std::string class_name; // enclosing class or out-of-class scope
    std::size_t name_tok = 0;
    std::size_t body_begin = 0; // '{' token index (kNpos: declaration)
    std::size_t body_end = 0;
    bool in_class = false;
    bool is_public = false;
    bool is_ctor_dtor = false;
    std::vector<std::string> excludes;      // BUFFALO_EXCLUDES args
    std::vector<std::string> requires_caps; // BUFFALO_REQUIRES args
};

struct ClassInfo
{
    std::string name;
    bool is_struct = false;
    std::size_t body_begin = 0; // '{' token index
    std::size_t body_end = 0;
    /** member name -> guarding mutex (last identifier of the arg). */
    std::map<std::string, std::string> guarded;
    std::vector<std::string> mutex_members;
    /** (token index, access) transitions, ascending. */
    std::vector<std::pair<std::size_t, bool>> public_at;

    bool
    isPublicAt(std::size_t tok) const
    {
        bool is_public = is_struct;
        for (const auto &[pos, pub] : public_at) {
            if (pos > tok)
                break;
            is_public = pub;
        }
        return is_public;
    }
};

struct FileSymbols
{
    std::vector<ClassInfo> classes;
    std::vector<Function> functions;
    std::vector<Lambda> lambdas;
    /** Variables/members declared as unordered_map / unordered_set. */
    std::set<std::string> unordered_vars;
    /** function name -> mutexes it is annotated EXCLUDES of. */
    std::map<std::string, std::set<std::string>> excludes_by_name;
};

namespace detail {

inline bool
isSkippableQualifier(const std::string &t)
{
    return t == "const" || t == "noexcept" || t == "override" ||
           t == "final" || t == "mutable" || t == "try" ||
           t == "volatile" || t == "&" || t == "&&";
}

inline bool
isRejectedCallee(const std::string &t)
{
    static const std::set<std::string> rejected = {
        "if",     "for",       "while",         "switch",
        "catch",  "return",    "sizeof",        "alignof",
        "alignas", "decltype", "static_assert", "assert",
        "constexpr", "defined", "new",          "delete",
    };
    return rejected.count(t) != 0;
}

/** Last identifier inside the token range (open, close). */
inline std::string
lastIdentIn(const TokenStream &ts, std::size_t open, std::size_t close)
{
    std::string last;
    for (std::size_t i = open + 1; i < close && i < ts.size(); ++i)
        if (ts.tokens[i].kind == TokKind::Ident)
            last = ts.tokens[i].text;
    return last;
}

/** All identifiers inside the token range (open, close). */
inline std::vector<std::string>
identsIn(const TokenStream &ts, std::size_t open, std::size_t close)
{
    std::vector<std::string> idents;
    for (std::size_t i = open + 1; i < close && i < ts.size(); ++i)
        if (ts.tokens[i].kind == TokKind::Ident)
            idents.push_back(ts.tokens[i].text);
    return idents;
}

/**
 * Skips a trailing-return-type chain backwards: from a type token,
 * returns the index before the introducing "->", or kNpos if the
 * tokens do not form a trailing return type.
 */
inline std::size_t
skipTrailingReturnBackwards(const TokenStream &ts, std::size_t j)
{
    std::size_t k = j;
    while (k != kNpos && k > 0) {
        const Token &t = ts.tokens[k];
        if (t.kind == TokKind::Ident || t.text == "::" ||
            t.text == "<" || t.text == ">" || t.text == "*" ||
            t.text == "&" || t.text == "," ||
            t.kind == TokKind::Number) {
            --k;
            continue;
        }
        if (t.text == "->")
            return k == 0 ? kNpos : k - 1;
        return kNpos;
    }
    return kNpos;
}

} // namespace detail

/**
 * Classifies the '{' at token @p i: if it opens a function body,
 * fills @p fn (everything but class/access context) and returns true.
 *
 * Accepted shape, walked backwards from the brace:
 *   name "(" params ")" [qualifiers] [BUFFALO_*(...)]* [-> type] "{"
 * plus constructor-initializer lists between the ")" and the "{".
 */
inline bool
classifyFunctionBrace(const TokenStream &ts, std::size_t i,
                      Function *fn)
{
    if (i == 0 || ts.match[i] == kNpos)
        return false;
    std::size_t j = i - 1;
    bool saw_init_list = false;

    for (int guard = 0; guard < 256 && j != kNpos && j > 0; ++guard) {
        const Token &t = ts.tokens[j];
        if (t.kind == TokKind::Ident &&
            detail::isSkippableQualifier(t.text)) {
            --j;
            continue;
        }
        if (t.text == "&" || t.text == "&&") {
            --j;
            continue;
        }
        if (t.text == ")") {
            const std::size_t open = ts.match[j];
            if (open == kNpos || open == 0)
                return false;
            const Token &before = ts.tokens[open - 1];
            if (before.kind == TokKind::Ident &&
                before.text.rfind("BUFFALO_", 0) == 0) {
                // Annotation macro: harvest and keep walking.
                const auto args = detail::identsIn(ts, open, j);
                if (before.text == "BUFFALO_EXCLUDES")
                    fn->excludes.insert(fn->excludes.end(),
                                        args.begin(), args.end());
                else if (before.text == "BUFFALO_REQUIRES")
                    fn->requires_caps.insert(fn->requires_caps.end(),
                                             args.begin(), args.end());
                if (open < 2)
                    return false;
                j = open - 2;
                continue;
            }
            if (before.kind == TokKind::Ident &&
                before.text == "noexcept") {
                if (open < 2)
                    return false;
                j = open - 2;
                continue;
            }
            // Candidate parameter list.
            if (before.kind != TokKind::Ident)
                return false;
            if (detail::isRejectedCallee(before.text))
                return false;
            // Constructor initializer list: items look like
            // `name(args)` or `name{...}` separated by commas, ending
            // at a single ':' that follows the real parameter ')'.
            std::size_t p = open - 2; // token before the name
            if (p != kNpos && ts.is(p, "~") && p > 0)
                --p;
            while (p != kNpos && p > 1 && ts.is(p, "::"))
                p -= 2; // Class:: qualifications
            if (p != kNpos && (ts.is(p, ":") || ts.is(p, ","))) {
                if (ts.is(p, ",") && !saw_init_list)
                    return false; // `f(g(), [..])` argument, not init
                saw_init_list = true;
                if (ts.is(p, ":")) {
                    // The ctor's own ')' precedes the ':'.
                    if (p == 0)
                        return false;
                    j = p - 1;
                    continue;
                }
                // Another initializer item precedes; keep walking.
                j = p;
                continue;
            }
            fn->name = before.text;
            fn->name_tok = open - 1;
            fn->body_begin = i;
            fn->body_end = ts.match[i];
            if (open >= 3 && ts.is(open - 2, "::") &&
                ts.isKind(open - 3, TokKind::Ident))
                fn->class_name = ts.tokens[open - 3].text;
            return true;
        }
        if (t.text == ",") {
            if (!saw_init_list)
                return false;
            --j;
            continue;
        }
        // Possible trailing return type.
        const std::size_t before_arrow =
            detail::skipTrailingReturnBackwards(ts, j);
        if (before_arrow != kNpos) {
            j = before_arrow;
            continue;
        }
        return false;
    }
    return false;
}

namespace detail {

inline void
findClasses(const TokenStream &ts, FileSymbols *sym)
{
    for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
        const Token &t = ts.tokens[i];
        if (t.kind != TokKind::Ident ||
            (t.text != "class" && t.text != "struct"))
            continue;
        if (i > 0 && ts.isIdent(i - 1, "enum"))
            continue;
        // Skip attribute-like macros between the keyword and the name
        // (e.g. `class BUFFALO_CAPABILITY("mutex") Mutex`).
        std::size_t j = i + 1;
        while (j + 1 < ts.size() &&
               ts.tokens[j].kind == TokKind::Ident &&
               ts.is(j + 1, "(") && ts.match[j + 1] != kNpos &&
               ts.tokens[j].text.rfind("BUFFALO_", 0) == 0)
            j = ts.match[j + 1] + 1;
        if (!ts.isKind(j, TokKind::Ident))
            continue;
        ClassInfo info;
        info.name = ts.tokens[j].text;
        info.is_struct = t.text == "struct";
        // Find the body '{' (skipping a base clause) or bail at ';'.
        std::size_t k = j + 1;
        while (k < ts.size() && !ts.is(k, "{") && !ts.is(k, ";") &&
               !ts.is(k, "(")) // `class Foo;` fwd / `struct tm (...)`
            ++k;
        if (k >= ts.size() || !ts.is(k, "{") || ts.match[k] == kNpos)
            continue;
        info.body_begin = k;
        info.body_end = ts.match[k];
        // Access sections (only at this class's own depth).
        for (std::size_t a = k + 1; a < info.body_end; ++a) {
            if (ts.brace_parent[a] != k)
                continue;
            if (!ts.isKind(a, TokKind::Ident) || !ts.is(a + 1, ":"))
                continue;
            const std::string &word = ts.tokens[a].text;
            if (word == "public")
                info.public_at.emplace_back(a, true);
            else if (word == "private" || word == "protected")
                info.public_at.emplace_back(a, false);
        }
        // Mutex members: `[mutable] [util::|std::] Mutex name ;`.
        for (std::size_t m = k + 1; m + 2 < info.body_end; ++m) {
            if (ts.brace_parent[m] != k)
                continue;
            const std::string &w = ts.tokens[m].text;
            if (ts.tokens[m].kind != TokKind::Ident ||
                (w != "Mutex" && w != "mutex" && w != "shared_mutex" &&
                 w != "recursive_mutex" && w != "timed_mutex"))
                continue;
            if (ts.isKind(m + 1, TokKind::Ident) && ts.is(m + 2, ";"))
                info.mutex_members.push_back(ts.tokens[m + 1].text);
        }
        sym->classes.push_back(std::move(info));
    }
    // Guarded members, attached to the innermost enclosing class.
    for (std::size_t i = 1; i + 1 < ts.size(); ++i) {
        const Token &t = ts.tokens[i];
        if (t.kind != TokKind::Ident ||
            (t.text != "BUFFALO_GUARDED_BY" &&
             t.text != "BUFFALO_PT_GUARDED_BY"))
            continue;
        if (!ts.is(i + 1, "(") || ts.match[i + 1] == kNpos)
            continue;
        if (!ts.isKind(i - 1, TokKind::Ident))
            continue;
        const std::string member = ts.tokens[i - 1].text;
        const std::string mutex =
            lastIdentIn(ts, i + 1, ts.match[i + 1]);
        ClassInfo *owner = nullptr;
        for (ClassInfo &c : sym->classes)
            if (c.body_begin < i && i < c.body_end &&
                (owner == nullptr ||
                 c.body_begin > owner->body_begin))
                owner = &c;
        if (owner != nullptr && !mutex.empty())
            owner->guarded[member] = mutex;
    }
}

inline void
findFunctions(const TokenStream &ts, FileSymbols *sym)
{
    for (std::size_t i = 0; i < ts.size(); ++i) {
        if (!ts.is(i, "{"))
            continue;
        Function fn;
        if (!classifyFunctionBrace(ts, i, &fn))
            continue;
        for (const ClassInfo &c : sym->classes) {
            if (c.body_begin < i && i < c.body_end) {
                fn.in_class = true;
                if (fn.class_name.empty())
                    fn.class_name = c.name;
                fn.is_public = c.isPublicAt(fn.name_tok);
                if (fn.name == c.name)
                    fn.is_ctor_dtor = true;
            }
        }
        if (fn.name_tok > 0 && ts.is(fn.name_tok - 1, "~"))
            fn.is_ctor_dtor = true;
        if (!fn.excludes.empty())
            sym->excludes_by_name[fn.name].insert(
                fn.excludes.begin(), fn.excludes.end());
        sym->functions.push_back(std::move(fn));
    }
    // Annotated declarations (no body), e.g.
    //   PrefetcherStats stats() const BUFFALO_EXCLUDES(stats_mutex_);
    for (std::size_t i = 1; i + 1 < ts.size(); ++i) {
        if (!ts.isIdent(i, "BUFFALO_EXCLUDES") || !ts.is(i + 1, "("))
            continue;
        const std::size_t close = ts.match[i + 1];
        if (close == kNpos)
            return;
        // Find the declared function's name: the identifier before
        // the parameter list that precedes the macro.
        std::size_t j = i - 1;
        while (j != kNpos && j > 0 &&
               (isSkippableQualifier(ts.tokens[j].text) ||
                ts.tokens[j].text == ")")) {
            if (ts.tokens[j].text == ")") {
                const std::size_t open = ts.match[j];
                if (open == kNpos || open == 0)
                    break;
                if (ts.isKind(open - 1, TokKind::Ident) &&
                    !isRejectedCallee(ts.tokens[open - 1].text)) {
                    const auto args = identsIn(ts, i + 1, close);
                    sym->excludes_by_name[ts.tokens[open - 1].text]
                        .insert(args.begin(), args.end());
                }
                break;
            }
            --j;
        }
    }
}

inline void
findUnorderedVars(const TokenStream &ts, FileSymbols *sym)
{
    for (std::size_t i = 0; i + 2 < ts.size(); ++i) {
        const Token &t = ts.tokens[i];
        if (t.kind != TokKind::Ident ||
            (t.text != "unordered_map" && t.text != "unordered_set" &&
             t.text != "unordered_multimap" &&
             t.text != "unordered_multiset"))
            continue;
        if (!ts.is(i + 1, "<"))
            continue;
        // Match the template argument list; ">>" closes two levels.
        int depth = 0;
        std::size_t j = i + 1;
        for (; j < ts.size(); ++j) {
            const std::string &p = ts.tokens[j].text;
            if (p == "<")
                ++depth;
            else if (p == ">")
                --depth;
            else if (p == ">>")
                depth -= 2;
            else if (p == ";" || p == "{")
                break; // not a closed template argument list
            if (depth <= 0)
                break;
        }
        if (j >= ts.size() || depth > 0)
            continue;
        std::size_t k = j + 1;
        while (ts.is(k, "&") || ts.is(k, "*"))
            ++k;
        if (ts.isKind(k, TokKind::Ident))
            sym->unordered_vars.insert(ts.tokens[k].text);
    }
}

/** Parses one capture-list entry spanning tokens [begin, end). */
inline Capture
parseCapture(const TokenStream &ts, std::size_t begin,
             std::size_t end)
{
    Capture cap;
    std::size_t i = begin;
    if (ts.is(i, "&")) {
        cap.by_ref = true;
        ++i;
    } else if (ts.is(i, "=")) {
        cap.is_default = true;
        return cap;
    } else if (ts.is(i, "*")) {
        ++i; // *this
    }
    if (i >= end) {
        cap.is_default = cap.by_ref; // bare '&'
        return cap;
    }
    if (ts.isIdent(i, "this")) {
        cap.is_this = true;
        return cap;
    }
    if (ts.isKind(i, TokKind::Ident))
        cap.name = ts.tokens[i].text;
    // `name = expr` init-captures keep by_ref from the leading '&'.
    return cap;
}

inline void
findLambdas(const TokenStream &ts, FileSymbols *sym)
{
    for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
        if (!ts.is(i, "[") || ts.match[i] == kNpos)
            continue;
        // Lambda introducer vs. subscript/array: a subscript follows
        // a value (identifier, ')', ']', string, number).
        if (i > 0) {
            const Token &prev = ts.tokens[i - 1];
            if (prev.kind == TokKind::Ident ||
                prev.kind == TokKind::Number ||
                prev.kind == TokKind::String || prev.text == ")" ||
                prev.text == "]")
                continue;
        }
        const std::size_t intro_end = ts.match[i];
        Lambda lam;
        lam.intro = i;
        // Capture list entries, split on top-level commas.
        std::size_t item = i + 1;
        for (std::size_t j = i + 1; j <= intro_end; ++j) {
            const bool at_end = j == intro_end;
            if (!at_end &&
                !(ts.is(j, ",") && ts.paren_parent[j] ==
                                       ts.paren_parent[i + 1]))
                continue;
            if (j > item)
                lam.captures.push_back(parseCapture(ts, item, j));
            item = j + 1;
        }
        // Parameters.
        std::size_t k = intro_end + 1;
        if (ts.is(k, "(") && ts.match[k] != kNpos) {
            const std::size_t close = ts.match[k];
            std::size_t seg_last = kNpos;
            for (std::size_t j = k + 1; j <= close; ++j) {
                if (ts.is(j, ",") || j == close) {
                    if (seg_last != kNpos)
                        lam.params.push_back(
                            ts.tokens[seg_last].text);
                    seg_last = kNpos;
                    continue;
                }
                if (ts.isKind(j, TokKind::Ident) &&
                    !ts.is(j + 1, "::") && !ts.is(j - 1, "::"))
                    seg_last = j;
                if (ts.is(j, "="))
                    // default argument: the name came before it
                    while (j < close && !ts.is(j + 1, ",") &&
                           j + 1 < close)
                        ++j;
            }
            k = close + 1;
        }
        // Skip qualifiers / trailing return up to the body.
        for (int guard = 0; guard < 64 && k < ts.size(); ++guard) {
            if (ts.is(k, "{"))
                break;
            if (ts.is(k, ";") || ts.is(k, ")") || ts.is(k, ","))
                break;
            if (ts.is(k, "(") || ts.is(k, "[")) {
                if (ts.match[k] == kNpos)
                    break;
                k = ts.match[k] + 1;
                continue;
            }
            ++k;
        }
        if (!ts.is(k, "{") || ts.match[k] == kNpos)
            continue;
        lam.body_begin = k;
        lam.body_end = ts.match[k];

        // Sink classification.
        if (i > 0) {
            const Token &prev = ts.tokens[i - 1];
            std::size_t call_open = kNpos;
            if (prev.text == "(")
                call_open = i - 1;
            else if (prev.text == ",")
                call_open = ts.paren_parent[i];
            else if (prev.text == "=" && i >= 2 &&
                     ts.isKind(i - 2, TokKind::Ident)) {
                lam.sink = LambdaSink::Assign;
                lam.assign_target = ts.tokens[i - 2].text;
            }
            if (call_open != kNpos && call_open > 0 &&
                ts.isKind(call_open - 1, TokKind::Ident)) {
                lam.sink = LambdaSink::Call;
                lam.callee = ts.tokens[call_open - 1].text;
                // Walk the receiver chain: a.b->c(...)
                std::size_t p = call_open - 1;
                while (p >= 2 &&
                       (ts.is(p - 1, ".") || ts.is(p - 1, "->") ||
                        ts.is(p - 1, "::")) &&
                       ts.isKind(p - 2, TokKind::Ident))
                    p -= 2;
                lam.receiver = ts.tokens[p].text;
                // `Type name(lambda)` declarations: note the type.
                if (p == call_open - 1 && call_open >= 2 &&
                    ts.isKind(call_open - 2, TokKind::Ident))
                    lam.decl_type = ts.tokens[call_open - 2].text;
            }
        }
        sym->lambdas.push_back(std::move(lam));
    }
}

} // namespace detail

/** Runs every recognizer over @p ts. */
inline FileSymbols
analyze(const TokenStream &ts)
{
    FileSymbols sym;
    detail::findClasses(ts, &sym);
    detail::findFunctions(ts, &sym);
    detail::findUnorderedVars(ts, &sym);
    detail::findLambdas(ts, &sym);
    return sym;
}

} // namespace buffalo_lint
