/**
 * @file
 * C++ lexer for buffalo_lint (DESIGN.md, "Static analysis & sanitizer
 * matrix"). Produces a comment- and whitespace-free token stream with
 * line numbers, bracket matching, and enclosing-scope indices, so the
 * rules in rules.h can walk structure instead of raw lines.
 *
 * The lexer is deliberately approximate where full C++ would demand a
 * preprocessor (macros are plain identifiers, template angle brackets
 * are not matched) but exact where the rules depend on it: comments
 * and string/char literals can never produce tokens, preprocessor
 * directives are folded into single Directive tokens (with
 * continuation lines), and raw strings are handled.
 */
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace buffalo_lint {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

enum class TokKind
{
    Ident,     // identifiers and keywords
    Number,    // numeric literals
    String,    // "..." including raw strings (text keeps the quotes)
    CharLit,   // '...'
    Punct,     // operators and punctuation, multi-char folded
    Directive, // one whole preprocessor directive, continuations joined
};

struct Token
{
    TokKind kind = TokKind::Punct;
    std::string text;
    std::size_t line = 0; // 1-based line of the token's first character
};

/**
 * The lexed file: tokens plus the structural indices every rule needs.
 * All index vectors are parallel to `tokens`.
 */
struct TokenStream
{
    std::vector<Token> tokens;
    /** Matching bracket: for ( { [ the closer, for ) } ] the opener. */
    std::vector<std::size_t> match;
    /** Index of the innermost enclosing '(' token, or kNpos. */
    std::vector<std::size_t> paren_parent;
    /** Index of the innermost enclosing '{' token, or kNpos. */
    std::vector<std::size_t> brace_parent;

    std::size_t size() const { return tokens.size(); }

    bool
    is(std::size_t i, const char *text) const
    {
        return i < tokens.size() && tokens[i].text == text;
    }

    bool
    isIdent(std::size_t i, const char *text) const
    {
        return i < tokens.size() && tokens[i].kind == TokKind::Ident &&
               tokens[i].text == text;
    }

    bool
    isKind(std::size_t i, TokKind kind) const
    {
        return i < tokens.size() && tokens[i].kind == kind;
    }
};

namespace detail {

inline bool
identStart(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           c == '_';
}

inline bool
identChar(char c)
{
    return identStart(c) || (c >= '0' && c <= '9');
}

// Multi-character punctuators, longest first within each bucket.
inline const std::vector<std::string> &
punct3()
{
    static const std::vector<std::string> p = {"<<=", ">>=", "...",
                                               "->*"};
    return p;
}

inline const std::vector<std::string> &
punct2()
{
    static const std::vector<std::string> p = {
        "::", "->", "++", "--", "+=", "-=", "*=", "/=", "%=", "==",
        "!=", "<=", ">=", "&&", "||", "<<", ">>", "&=", "|=", "^=",
        ".*"};
    return p;
}

} // namespace detail

/**
 * Lexes @p lines (one entry per physical source line, no trailing
 * newlines) into a TokenStream.
 */
inline TokenStream
lex(const std::vector<std::string> &lines)
{
    // Join once so multi-line constructs (block comments, raw strings,
    // continued directives) need no per-line state machine.
    std::string text;
    for (const std::string &line : lines) {
        text += line;
        text += '\n';
    }

    TokenStream ts;
    std::size_t line = 1;
    std::size_t i = 0;
    const std::size_t n = text.size();
    bool at_line_start = true;

    auto emit = [&](TokKind kind, std::string tok_text,
                    std::size_t tok_line) {
        ts.tokens.push_back({kind, std::move(tok_text), tok_line});
    };

    while (i < n) {
        const char c = text[i];
        if (c == '\n') {
            ++line;
            ++i;
            at_line_start = true;
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r' || c == '\f' ||
            c == '\v') {
            ++i;
            continue;
        }
        // Comments.
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
            while (i < n && text[i] != '\n')
                ++i;
            continue;
        }
        if (c == '/' && i + 1 < n && text[i + 1] == '*') {
            i += 2;
            while (i + 1 < n &&
                   !(text[i] == '*' && text[i + 1] == '/')) {
                if (text[i] == '\n')
                    ++line;
                ++i;
            }
            i = i + 2 <= n ? i + 2 : n;
            continue;
        }
        // Preprocessor directive: '#' first on its logical line; fold
        // backslash continuations into one Directive token.
        if (c == '#' && at_line_start) {
            const std::size_t start_line = line;
            std::string directive;
            while (i < n) {
                if (text[i] == '\n') {
                    if (!directive.empty() &&
                        directive.back() == '\\') {
                        directive.pop_back();
                        directive += ' ';
                        ++line;
                        ++i;
                        continue;
                    }
                    break;
                }
                // Comments never contribute to the directive text.
                if (text[i] == '/' && i + 1 < n &&
                    (text[i + 1] == '/' || text[i + 1] == '*'))
                    break;
                directive += text[i];
                ++i;
            }
            emit(TokKind::Directive, directive, start_line);
            at_line_start = false;
            continue;
        }
        at_line_start = false;
        // String literals (including raw strings via the Ident path
        // below, which checks for R"...").
        if (c == '"') {
            const std::size_t start_line = line;
            std::string lit = "\"";
            ++i;
            while (i < n && text[i] != '"') {
                if (text[i] == '\\' && i + 1 < n) {
                    lit += text[i];
                    lit += text[i + 1];
                    i += 2;
                    continue;
                }
                if (text[i] == '\n') {
                    ++line; // unterminated; be forgiving
                    break;
                }
                lit += text[i];
                ++i;
            }
            if (i < n && text[i] == '"')
                ++i;
            lit += '"';
            emit(TokKind::String, lit, start_line);
            continue;
        }
        if (c == '\'') {
            const std::size_t start_line = line;
            std::string lit = "'";
            ++i;
            while (i < n && text[i] != '\'') {
                if (text[i] == '\\' && i + 1 < n) {
                    lit += text[i];
                    lit += text[i + 1];
                    i += 2;
                    continue;
                }
                if (text[i] == '\n')
                    break;
                lit += text[i];
                ++i;
            }
            if (i < n && text[i] == '\'')
                ++i;
            lit += '\'';
            emit(TokKind::CharLit, lit, start_line);
            continue;
        }
        if (detail::identStart(c)) {
            const std::size_t start = i;
            while (i < n && detail::identChar(text[i]))
                ++i;
            std::string ident = text.substr(start, i - start);
            // Raw string literal: R"delim( ... )delim"
            if (i < n && text[i] == '"' &&
                (ident == "R" || ident == "u8R" || ident == "uR" ||
                 ident == "UR" || ident == "LR")) {
                const std::size_t start_line = line;
                ++i; // past the opening quote
                std::string delim;
                while (i < n && text[i] != '(')
                    delim += text[i++];
                const std::string closer = ")" + delim + "\"";
                const std::size_t body = i < n ? i + 1 : n;
                const std::size_t end = text.find(closer, body);
                const std::size_t stop =
                    end == std::string::npos ? n : end + closer.size();
                for (std::size_t k = body; k < stop && k < n; ++k)
                    if (text[k] == '\n')
                        ++line;
                i = stop;
                emit(TokKind::String, "\"<raw>\"", start_line);
                continue;
            }
            emit(TokKind::Ident, std::move(ident), line);
            continue;
        }
        if (c >= '0' && c <= '9') {
            const std::size_t start = i;
            while (i < n) {
                const char d = text[i];
                if (detail::identChar(d) || d == '.' || d == '\'') {
                    // Exponent signs belong to the number.
                    if ((d == 'e' || d == 'E' || d == 'p' ||
                         d == 'P') &&
                        i + 1 < n &&
                        (text[i + 1] == '+' || text[i + 1] == '-'))
                        ++i;
                    ++i;
                    continue;
                }
                break;
            }
            emit(TokKind::Number, text.substr(start, i - start), line);
            continue;
        }
        // Punctuators, longest match first.
        bool matched = false;
        if (i + 2 < n) {
            const std::string three = text.substr(i, 3);
            for (const std::string &p : detail::punct3())
                if (p == three) {
                    emit(TokKind::Punct, three, line);
                    i += 3;
                    matched = true;
                    break;
                }
        }
        if (!matched && i + 1 < n) {
            const std::string two = text.substr(i, 2);
            for (const std::string &p : detail::punct2())
                if (p == two) {
                    emit(TokKind::Punct, two, line);
                    i += 2;
                    matched = true;
                    break;
                }
        }
        if (!matched) {
            emit(TokKind::Punct, std::string(1, c), line);
            ++i;
        }
    }

    // Bracket matching and enclosing-scope indices.
    const std::size_t count = ts.tokens.size();
    ts.match.assign(count, kNpos);
    ts.paren_parent.assign(count, kNpos);
    ts.brace_parent.assign(count, kNpos);
    std::vector<std::size_t> parens, braces, squares;
    for (std::size_t t = 0; t < count; ++t) {
        ts.paren_parent[t] = parens.empty() ? kNpos : parens.back();
        ts.brace_parent[t] = braces.empty() ? kNpos : braces.back();
        const std::string &p = ts.tokens[t].text;
        if (ts.tokens[t].kind != TokKind::Punct)
            continue;
        if (p == "(") {
            parens.push_back(t);
        } else if (p == ")") {
            if (!parens.empty()) {
                ts.match[t] = parens.back();
                ts.match[parens.back()] = t;
                parens.pop_back();
            }
        } else if (p == "{") {
            braces.push_back(t);
        } else if (p == "}") {
            if (!braces.empty()) {
                ts.match[t] = braces.back();
                ts.match[braces.back()] = t;
                braces.pop_back();
            }
        } else if (p == "[") {
            squares.push_back(t);
        } else if (p == "]") {
            if (!squares.empty()) {
                ts.match[t] = squares.back();
                ts.match[squares.back()] = t;
                squares.pop_back();
            }
        }
    }
    return ts;
}

} // namespace buffalo_lint
