/**
 * @file
 * Project linter enforcing Buffalo's concurrency, determinism, and
 * observability invariants at the source level (DESIGN.md, "Static
 * analysis & sanitizer matrix").
 *
 * Unlike its regex-based predecessor, the linter is a multi-pass
 * static-analysis engine: a comment/string-stripping C++ lexer
 * (lint/lexer.h) produces a token stream with bracket matching and
 * scope indices, a per-file symbol pass (lint/symbols.h) recognizes
 * classes, mutex/guarded members, functions with thread-safety
 * annotations, and lambdas with their capture lists and escape sinks,
 * and each rule (this file) walks tokens and symbols instead of raw
 * lines.
 *
 * Rule catalog (see DESIGN.md for the rationale per rule):
 *
 *   style family
 *     guarded-by       members declared after a mutex member must be
 *                      BUFFALO_GUARDED_BY-annotated (headers opting
 *                      into util/thread_annotations.h)
 *     obs-name         span/metric call sites use src/obs/names.h
 *                      constants, never raw string literals
 *     raw-alloc        no naked new[]/malloc/calloc/realloc/free
 *     header-hygiene   #pragma once; no "../" includes
 *     ci-names         tools/ci.sh --expect-* names exist in names.h
 *
 *   determinism family
 *     det-unordered-iter  iteration over unordered containers in the
 *                         numeric hot paths (src/tensor, src/nn,
 *                         src/sampling)
 *     det-rand            rand/srand/random_device and time-/now-
 *                         seeded engines outside util::Rng
 *     det-parallel-accum  +=/-= on captured-by-reference state inside
 *                         parallelFor/parallelRows lambda bodies
 *     det-ptr-key         ordered/unordered containers keyed by raw
 *                         pointer value
 *
 *   lock-discipline family
 *     lock-cv-wait        condition-variable waits outside a
 *                         predicate loop
 *     lock-thread-detach  detach() on threads
 *     lock-excludes-held  calling a BUFFALO_EXCLUDES(m) function while
 *                         a MutexLock on m is in scope
 *     lock-guarded-public public inline methods touching a
 *                         BUFFALO_GUARDED_BY member without a lock or
 *                         BUFFALO_REQUIRES
 *
 *   capture-escape family
 *     escape-ref-capture  lambdas capturing locals by reference that
 *                         escape into ThreadPool::submit, queue
 *                         pushes, std::thread, or member storage
 *     escape-this-capture same, for `this` captures
 *
 * Scan scope in --root mode is src/, tools/, bench/, and tests/, with
 * per-directory rule masks (lint/rules.h) so test fixtures can
 * violate style rules deliberately.
 *
 * Usage:
 *   buffalo_lint [--root DIR] [--json] [--json-out FILE]
 *   buffalo_lint FILE...          lint exactly these files (fixture
 *                                 mode; every rule active, ci-names
 *                                 skipped)
 *
 * Exit 0 when no non-waived finding, 1 otherwise, 2 on usage or I/O
 * errors. --json writes the machine-readable report (rule, file:line,
 * severity, waiver status, waiver count) to stdout; --json-out FILE
 * writes the same report to FILE while keeping human diagnostics on
 * stdout. ci.sh archives the report and gates on the exit code.
 */
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lexer.h"
#include "lint/rules.h"
#include "lint/symbols.h"

namespace {

namespace fs = std::filesystem;
using buffalo_lint::addFinding;
using buffalo_lint::Capture;
using buffalo_lint::ClassInfo;
using buffalo_lint::FileContext;
using buffalo_lint::FileSymbols;
using buffalo_lint::Finding;
using buffalo_lint::Function;
using buffalo_lint::jsonEscape;
using buffalo_lint::kNpos;
using buffalo_lint::Lambda;
using buffalo_lint::LambdaSink;
using buffalo_lint::ruleEnabledFor;
using buffalo_lint::TokenStream;
using buffalo_lint::TokKind;

[[noreturn]] void
fatal(const std::string &message)
{
    std::fprintf(stderr, "buffalo_lint: %s\n", message.c_str());
    std::exit(2);
}

std::vector<std::string>
readLines(const fs::path &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot read " + path.string());
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

// --- style: guarded-by -----------------------------------------------

bool
optsIntoAnnotations(const FileContext &ctx)
{
    for (const std::string &line : ctx.raw_lines)
        if (line.find("util/thread_annotations.h") !=
            std::string::npos)
            return true;
    return false;
}

bool
isMutexTypeIdent(const std::string &t)
{
    return t == "Mutex" || t == "mutex" || t == "shared_mutex" ||
           t == "recursive_mutex" || t == "timed_mutex";
}

bool
isExemptMemberIdent(const std::string &t)
{
    return t == "condition_variable" || t == "atomic" ||
           t == "thread" || t == "jthread" || isMutexTypeIdent(t);
}

void
lintGuardedBy(const FileContext &ctx, std::vector<Finding> *out)
{
    const TokenStream &ts = ctx.ts;
    for (const ClassInfo &cls : ctx.symbols.classes) {
        bool after_mutex = false;
        std::size_t stmt_begin = cls.body_begin + 1;
        for (std::size_t i = cls.body_begin + 1; i < cls.body_end;
             ++i) {
            if (ts.brace_parent[i] != cls.body_begin)
                continue;
            const std::string &t = ts.tokens[i].text;
            if (t == "}") { // end of a nested body: not a member decl
                stmt_begin = i + 1;
                continue;
            }
            if (t != ";")
                continue;
            // Statement [stmt_begin, i). Skip access-specifier
            // prefixes, then classify.
            std::size_t b = stmt_begin;
            stmt_begin = i + 1;
            while (b < i && ts.isKind(b, TokKind::Ident) &&
                   (ts.tokens[b].text == "public" ||
                    ts.tokens[b].text == "private" ||
                    ts.tokens[b].text == "protected") &&
                   ts.is(b + 1, ":"))
                b += 2;
            if (b >= i)
                continue;
            bool has_annotation = false, has_paren = false,
                 has_brace = false, has_exempt = false,
                 has_mutex_type = false;
            for (std::size_t j = b; j < i; ++j) {
                const std::string &w = ts.tokens[j].text;
                if (w == "BUFFALO_GUARDED_BY" ||
                    w == "BUFFALO_PT_GUARDED_BY")
                    has_annotation = true;
                else if (w == "(")
                    has_paren = true;
                else if (w == "{")
                    has_brace = true;
                if (ts.tokens[j].kind == TokKind::Ident) {
                    if (isExemptMemberIdent(w))
                        has_exempt = true;
                    if (isMutexTypeIdent(w))
                        has_mutex_type = true;
                }
            }
            if (has_mutex_type && !has_paren) {
                after_mutex = true;
                continue;
            }
            if (!after_mutex || has_annotation || has_paren ||
                has_brace || has_exempt)
                continue;
            const std::string &first = ts.tokens[b].text;
            if (first == "static" || first == "constexpr" ||
                first == "const" || first == "using" ||
                first == "typedef" || first == "friend" ||
                first == "template" || first == "enum")
                continue;
            // Member name: the identifier before '=' (initializer) or
            // before the ';'.
            std::size_t name_tok = kNpos;
            for (std::size_t j = b; j < i; ++j) {
                if (ts.is(j, "="))
                    break;
                if (ts.isKind(j, TokKind::Ident))
                    name_tok = j;
            }
            if (name_tok == kNpos)
                continue;
            const std::string &name = ts.tokens[name_tok].text;
            if (name.empty() || name.back() != '_')
                continue;
            addFinding(ctx, out, ts.tokens[name_tok].line,
                       "guarded-by",
                       "member '" + name +
                           "' is declared after a mutex but carries "
                           "no BUFFALO_GUARDED_BY annotation");
        }
    }
}

// --- style: obs-name -------------------------------------------------

void
lintObsNames(const FileContext &ctx, std::vector<Finding> *out)
{
    const TokenStream &ts = ctx.ts;
    for (std::size_t i = 1; i + 2 < ts.size(); ++i) {
        if (!ts.isKind(i, TokKind::Ident))
            continue;
        const std::string &t = ts.tokens[i].text;
        const bool obs_call =
            (t == "counter" || t == "gauge" || t == "histogram" ||
             t == "record" || t == "event") &&
            (ts.is(i - 1, ".") || ts.is(i - 1, "->")) &&
            ts.is(i + 1, "(") &&
            ts.isKind(i + 2, TokKind::String);
        bool span_call = false;
        if (!obs_call && t == "Span") {
            // `Span("...")`, `Span{"..."}`, or `Span name("...")`.
            std::size_t open = i + 1;
            if (ts.isKind(open, TokKind::Ident))
                ++open;
            span_call = (ts.is(open, "(") || ts.is(open, "{")) &&
                        ts.isKind(open + 1, TokKind::String);
        }
        if (!obs_call && !span_call)
            continue;
        addFinding(ctx, out, ts.tokens[i].line, "obs-name",
                   std::string(obs_call ? "metric" : "span") +
                       " name passed as a raw string literal; use a "
                       "constant from src/obs/names.h");
    }
}

// --- style: raw-alloc ------------------------------------------------

void
lintRawAlloc(const FileContext &ctx, std::vector<Finding> *out)
{
    const TokenStream &ts = ctx.ts;
    for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
        if (!ts.isKind(i, TokKind::Ident))
            continue;
        const std::string &t = ts.tokens[i].text;
        if (t == "new") {
            // `new Type[...]` with only type tokens between.
            std::size_t j = i + 1;
            while (j < ts.size() &&
                   (ts.isKind(j, TokKind::Ident) ||
                    ts.is(j, "::") || ts.is(j, "<") ||
                    ts.is(j, ">") || ts.is(j, ",") ||
                    ts.is(j, "*") || ts.is(j, "&")))
                ++j;
            if (ts.is(j, "[") && j > i + 1)
                addFinding(ctx, out, ts.tokens[i].line, "raw-alloc",
                           "naked array new[]; own memory through "
                           "RAII containers (std::vector, "
                           "tensor::Tensor, ...)");
            continue;
        }
        if ((t == "malloc" || t == "calloc" || t == "realloc" ||
             t == "free") &&
            ts.is(i + 1, "(") &&
            (i == 0 ||
             (!ts.is(i - 1, ".") && !ts.is(i - 1, "->"))))
            addFinding(ctx, out, ts.tokens[i].line, "raw-alloc",
                       "naked " + t +
                           "(); own memory through RAII containers "
                           "(std::vector, tensor::Tensor, ...)");
    }
}

// --- style: header-hygiene -------------------------------------------

void
lintHeaderHygiene(const FileContext &ctx, std::vector<Finding> *out)
{
    bool has_pragma_once = false;
    for (const auto &tok : ctx.ts.tokens) {
        if (tok.kind != TokKind::Directive)
            continue;
        if (tok.text.find("pragma") != std::string::npos &&
            tok.text.find("once") != std::string::npos)
            has_pragma_once = true;
        if (tok.text.find("include") != std::string::npos &&
            tok.text.find("\"../") != std::string::npos)
            addFinding(ctx, out, tok.line, "header-hygiene",
                       "relative-up include; include project headers "
                       "by their src/-rooted path");
    }
    if (!has_pragma_once)
        addFinding(ctx, out, 1, "header-hygiene",
                   "missing #pragma once");
}

// --- style: ci-names -------------------------------------------------

std::set<std::string>
collectRegisteredNames(const fs::path &names_header)
{
    const std::vector<std::string> lines = readLines(names_header);
    std::set<std::string> names;
    const std::regex literal("\"([a-z0-9_.]+)\"");
    for (const std::string &line : lines) {
        for (std::sregex_iterator it(line.begin(), line.end(),
                                     literal),
             end;
             it != end; ++it)
            names.insert((*it)[1].str());
    }
    return names;
}

void
lintCiNames(const fs::path &ci_script,
            const std::set<std::string> &registered,
            std::vector<Finding> *out)
{
    const std::vector<std::string> lines = readLines(ci_script);
    const std::regex expect(
        R"(--expect-(spans|metrics|events)\s+"?([^"\s\\]+))");
    for (std::size_t i = 0; i < lines.size(); ++i) {
        for (std::sregex_iterator it(lines[i].begin(),
                                     lines[i].end(), expect),
             end;
             it != end; ++it) {
            std::stringstream list((*it)[2].str());
            std::string name;
            while (std::getline(list, name, ',')) {
                if (name.empty() || name[0] == '@' ||
                    name.find('$') != std::string::npos)
                    continue;
                if (registered.count(name) == 0) {
                    Finding f;
                    f.file = ci_script.string();
                    f.line = i + 1;
                    f.rule = "ci-names";
                    f.message = "expected name \"" + name +
                                "\" is not registered in "
                                "src/obs/names.h";
                    out->push_back(std::move(f));
                }
            }
        }
    }
}

// --- determinism: det-unordered-iter ---------------------------------

bool
inHotPath(const FileContext &ctx)
{
    if (ctx.rel_path.empty())
        return true; // fixture mode
    return ctx.under("src/tensor") || ctx.under("src/nn") ||
           ctx.under("src/sampling");
}

void
lintUnorderedIter(const FileContext &ctx, std::vector<Finding> *out)
{
    if (!inHotPath(ctx))
        return;
    const TokenStream &ts = ctx.ts;
    const auto &vars = ctx.symbols.unordered_vars;
    if (vars.empty())
        return;
    for (std::size_t i = 0; i + 2 < ts.size(); ++i) {
        // Range-for over an unordered container.
        if (ts.isIdent(i, "for") && ts.is(i + 1, "(") &&
            ts.match[i + 1] != kNpos) {
            const std::size_t open = i + 1, close = ts.match[i + 1];
            std::size_t colon = kNpos;
            for (std::size_t j = open + 1; j < close; ++j)
                if (ts.is(j, ":") && ts.paren_parent[j] == open) {
                    colon = j;
                    break;
                }
            if (colon == kNpos)
                continue;
            for (std::size_t j = colon + 1; j < close; ++j) {
                if (ts.isKind(j, TokKind::Ident) &&
                    vars.count(ts.tokens[j].text) != 0) {
                    addFinding(
                        ctx, out, ts.tokens[j].line,
                        "det-unordered-iter",
                        "iteration over unordered container '" +
                            ts.tokens[j].text +
                            "' in a numeric hot path — bucket order "
                            "is unspecified and can feed "
                            "order-sensitive writes or accumulation; "
                            "iterate a sorted view instead");
                    break;
                }
            }
            continue;
        }
        // Explicit iterator loop: var.begin().
        if (ts.isKind(i, TokKind::Ident) &&
            vars.count(ts.tokens[i].text) != 0 &&
            (ts.is(i + 1, ".") || ts.is(i + 1, "->")) &&
            (ts.isIdent(i + 2, "begin") ||
             ts.isIdent(i + 2, "cbegin")) &&
            ts.is(i + 3, "("))
            addFinding(ctx, out, ts.tokens[i].line,
                       "det-unordered-iter",
                       "iterator walk over unordered container '" +
                           ts.tokens[i].text +
                           "' in a numeric hot path — bucket order "
                           "is unspecified; iterate a sorted view "
                           "instead");
    }
}

// --- determinism: det-rand -------------------------------------------

bool
isRngImplementation(const FileContext &ctx)
{
    const std::string &p = ctx.path;
    for (const char *suffix : {"util/rng.h", "util/rng.cpp"}) {
        const std::string s = suffix;
        if (p.size() >= s.size() &&
            p.compare(p.size() - s.size(), s.size(), s) == 0)
            return true;
    }
    return false;
}

void
lintRand(const FileContext &ctx, std::vector<Finding> *out)
{
    if (isRngImplementation(ctx))
        return;
    const TokenStream &ts = ctx.ts;
    static const std::set<std::string> engines = {
        "mt19937",     "mt19937_64",  "default_random_engine",
        "minstd_rand", "minstd_rand0", "ranlux24",
        "ranlux48",    "knuth_b",     "seed",
        "Rng"};
    for (std::size_t i = 0; i < ts.size(); ++i) {
        if (!ts.isKind(i, TokKind::Ident))
            continue;
        const std::string &t = ts.tokens[i].text;
        const bool member_access =
            i > 0 && (ts.is(i - 1, ".") || ts.is(i - 1, "->"));
        if ((t == "rand" || t == "srand") && ts.is(i + 1, "(") &&
            !member_access) {
            addFinding(ctx, out, ts.tokens[i].line, "det-rand",
                       t + "() draws from hidden global state; all "
                           "randomness flows through util::Rng so "
                           "runs are reproducible from one seed");
            continue;
        }
        if (t == "random_device" && !member_access) {
            addFinding(ctx, out, ts.tokens[i].line, "det-rand",
                       "std::random_device is nondeterministic by "
                       "design; derive streams from util::Rng and "
                       "the experiment seed");
            continue;
        }
        if (t == "time" && !member_access && ts.is(i + 1, "(") &&
            ts.match[i + 1] == i + 3 &&
            (ts.is(i + 2, "0") || ts.isIdent(i + 2, "NULL") ||
             ts.isIdent(i + 2, "nullptr"))) {
            addFinding(ctx, out, ts.tokens[i].line, "det-rand",
                       "wall-clock seeding (time(NULL)) makes runs "
                       "unreproducible; seed from the experiment "
                       "seed via util::Rng");
            continue;
        }
        if (engines.count(t) != 0 && ts.is(i + 1, "(") &&
            ts.match[i + 1] != kNpos) {
            for (std::size_t j = i + 2; j < ts.match[i + 1]; ++j) {
                if (ts.isIdent(j, "now") && ts.is(j + 1, "(")) {
                    addFinding(
                        ctx, out, ts.tokens[i].line, "det-rand",
                        "random engine seeded from a clock "
                        "(...::now()); seed from the experiment "
                        "seed via util::Rng");
                    break;
                }
            }
        }
    }
}

// --- determinism: det-parallel-accum ---------------------------------

/**
 * True when @p name is declared inside the lambda body before token
 * @p before (heuristic: an occurrence whose previous token reads like
 * a type: identifier, '>', '*', or '&' following an identifier).
 */
bool
declaredInBody(const TokenStream &ts, const Lambda &lam,
               const std::string &name, std::size_t before)
{
    for (std::size_t j = lam.body_begin + 1;
         j < before && j < lam.body_end; ++j) {
        if (!ts.isKind(j, TokKind::Ident) ||
            ts.tokens[j].text != name || j == 0)
            continue;
        const auto &prev = ts.tokens[j - 1];
        if (prev.kind == TokKind::Ident &&
            prev.text != "return" && prev.text != "else")
            return true;
        if (prev.text == ">" || prev.text == "*" || prev.text == "&")
            return true;
    }
    return false;
}

void
lintParallelAccum(const FileContext &ctx, std::vector<Finding> *out)
{
    const TokenStream &ts = ctx.ts;
    for (const Lambda &lam : ctx.symbols.lambdas) {
        if (lam.sink != LambdaSink::Call ||
            (lam.callee != "parallelFor" &&
             lam.callee != "parallelRows"))
            continue;
        const bool ref_default = lam.hasRefDefault();
        const auto ref_names = lam.refNames();
        if (!ref_default && ref_names.empty())
            continue;
        for (std::size_t k = lam.body_begin + 1; k < lam.body_end;
             ++k) {
            if (!ts.is(k, "+=") && !ts.is(k, "-="))
                continue;
            if (k == 0 || !ts.isKind(k - 1, TokKind::Ident))
                continue; // subscripted LHS: owner-partitioned
            // Walk the member chain back to its base identifier; a
            // subscript anywhere in the chain means the write is
            // indexed (owner-partitioned), so skip it.
            std::size_t base = k - 1;
            bool subscripted = false;
            while (base >= 2 &&
                   (ts.is(base - 1, ".") || ts.is(base - 1, "->"))) {
                if (ts.is(base - 2, "]")) {
                    subscripted = true;
                    break;
                }
                if (!ts.isKind(base - 2, TokKind::Ident))
                    break;
                base -= 2;
            }
            if (subscripted)
                continue;
            const std::string &name = ts.tokens[base].text;
            if (name == "this")
                continue;
            if (std::find(lam.params.begin(), lam.params.end(),
                          name) != lam.params.end())
                continue;
            if (lam.capturesByValue(name))
                continue;
            const bool by_ref =
                std::find(ref_names.begin(), ref_names.end(),
                          name) != ref_names.end() ||
                (ref_default &&
                 !declaredInBody(ts, lam, name, base));
            if (!by_ref)
                continue;
            addFinding(ctx, out, ts.tokens[k].line,
                       "det-parallel-accum",
                       "accumulation '" + ts.tokens[k].text +
                           "' on '" + name +
                           "' captured by reference inside a " +
                           lam.callee +
                           " body — a data race whose result depends "
                           "on the schedule; give each task an owned "
                           "output partition or reduce serially");
        }
    }
}

// --- determinism: det-ptr-key ----------------------------------------

void
lintPtrKey(const FileContext &ctx, std::vector<Finding> *out)
{
    const TokenStream &ts = ctx.ts;
    static const std::set<std::string> keyed = {
        "map", "set", "multimap", "multiset",
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    for (std::size_t i = 0; i + 2 < ts.size(); ++i) {
        if (!ts.isKind(i, TokKind::Ident) ||
            keyed.count(ts.tokens[i].text) == 0 ||
            !ts.is(i + 1, "<"))
            continue;
        int depth = 1;
        for (std::size_t j = i + 2; j < ts.size(); ++j) {
            const std::string &p = ts.tokens[j].text;
            if (p == "<")
                ++depth;
            else if (p == ">")
                --depth;
            else if (p == ">>")
                depth -= 2;
            else if (p == ";" || p == "{" || p == ")")
                break;
            if (depth <= 0)
                break;
            if (p == "," && depth == 1)
                break; // end of the key argument
            if (p == "*" && ts.isKind(j - 1, TokKind::Ident)) {
                addFinding(
                    ctx, out, ts.tokens[i].line, "det-ptr-key",
                    "container keyed by raw pointer value — "
                    "allocation addresses differ run to run, so "
                    "iteration/lookup order is nondeterministic; "
                    "key by a stable id instead");
                break;
            }
        }
    }
}

// --- lock-discipline: lock-cv-wait -----------------------------------

/** True when the wait's first argument looks like a lock handle. */
bool
argLooksLikeLock(const TokenStream &ts, std::size_t open,
                 std::size_t close)
{
    for (std::size_t j = open + 1; j < close; ++j) {
        if (ts.is(j, ",") && ts.paren_parent[j] == open)
            break; // only the first argument
        if (!ts.isKind(j, TokKind::Ident))
            continue;
        const std::string &t = ts.tokens[j].text;
        if (t.find("lock") != std::string::npos ||
            t.find("Lock") != std::string::npos ||
            t.find("mutex") != std::string::npos ||
            t == "native" || t == "lk" || t == "guard")
            return true;
    }
    return false;
}

bool
braceOpensLoop(const TokenStream &ts, std::size_t brace)
{
    if (brace == 0 || brace == kNpos)
        return false;
    if (ts.isIdent(brace - 1, "do"))
        return true;
    if (ts.is(brace - 1, ")")) {
        const std::size_t open = ts.match[brace - 1];
        if (open != kNpos && open > 0 &&
            (ts.isIdent(open - 1, "while") ||
             ts.isIdent(open - 1, "for")))
            return true;
    }
    return false;
}

void
lintCvWait(const FileContext &ctx, std::vector<Finding> *out)
{
    const TokenStream &ts = ctx.ts;
    for (std::size_t i = 2; i + 1 < ts.size(); ++i) {
        if (!ts.isKind(i, TokKind::Ident))
            continue;
        const std::string &t = ts.tokens[i].text;
        if (t != "wait" && t != "wait_for" && t != "wait_until")
            continue;
        if (!ts.is(i - 1, ".") && !ts.is(i - 1, "->"))
            continue;
        if (!ts.is(i + 1, "(") || ts.match[i + 1] == kNpos ||
            ts.match[i + 1] == i + 2)
            continue; // no arguments: ThreadPool::wait, future::wait
        if (!argLooksLikeLock(ts, i + 1, ts.match[i + 1]))
            continue; // not a condition-variable wait on a lock
        // Receiver chain start (`state->done.wait(...)` -> `state`).
        std::size_t base = i;
        while (base >= 2 &&
               (ts.is(base - 1, ".") || ts.is(base - 1, "->")) &&
               ts.isKind(base - 2, TokKind::Ident))
            base -= 2;
        // Single-statement loop body: `while (cond) cv.wait(...);`
        bool in_loop = false;
        if (base > 0 && ts.is(base - 1, ")")) {
            const std::size_t open = ts.match[base - 1];
            if (open != kNpos && open > 0 &&
                (ts.isIdent(open - 1, "while") ||
                 ts.isIdent(open - 1, "for")))
                in_loop = true;
        }
        // Otherwise: any enclosing loop block within this function
        // (stop at function or lambda boundaries).
        std::size_t b = ts.brace_parent[i];
        while (!in_loop && b != kNpos) {
            if (braceOpensLoop(ts, b)) {
                in_loop = true;
                break;
            }
            Function probe;
            if (buffalo_lint::classifyFunctionBrace(ts, b, &probe))
                break; // function body reached without a loop
            bool lambda_body = false;
            for (const Lambda &lam : ctx.symbols.lambdas)
                if (lam.body_begin == b)
                    lambda_body = true;
            if (lambda_body)
                break;
            b = ts.brace_parent[b];
        }
        if (in_loop)
            continue;
        addFinding(ctx, out, ts.tokens[i].line, "lock-cv-wait",
                   "condition-variable " + t +
                       " outside a predicate loop — spurious wakeups "
                       "and missed notifies require `while (!pred) "
                       "cv.wait(lock);`");
    }
}

// --- lock-discipline: lock-thread-detach -----------------------------

void
lintThreadDetach(const FileContext &ctx, std::vector<Finding> *out)
{
    const TokenStream &ts = ctx.ts;
    for (std::size_t i = 1; i + 1 < ts.size(); ++i) {
        if (ts.isIdent(i, "detach") &&
            (ts.is(i - 1, ".") || ts.is(i - 1, "->")) &&
            ts.is(i + 1, "("))
            addFinding(ctx, out, ts.tokens[i].line,
                       "lock-thread-detach",
                       "detach() abandons the thread — no join point "
                       "means shutdown races and leaked work; keep "
                       "the handle and join it");
    }
}

// --- lock-discipline: lock-excludes-held -----------------------------

void
lintExcludesHeld(const FileContext &ctx, std::vector<Finding> *out)
{
    const TokenStream &ts = ctx.ts;
    // Merge the file's own EXCLUDES annotations with those harvested
    // from directly included project headers.
    std::map<std::string, std::set<std::string>> excludes =
        ctx.include_excludes;
    for (const auto &[name, mutexes] :
         ctx.symbols.excludes_by_name)
        excludes[name].insert(mutexes.begin(), mutexes.end());
    if (excludes.empty())
        return;

    for (const Function &fn : ctx.symbols.functions) {
        if (fn.body_begin == kNpos || fn.body_end == kNpos)
            continue;
        for (std::size_t m = fn.body_begin + 1; m < fn.body_end;
             ++m) {
            if (!ts.isIdent(m, "MutexLock"))
                continue;
            if (!ts.isKind(m + 1, TokKind::Ident) ||
                !ts.is(m + 2, "(") || ts.match[m + 2] == kNpos)
                continue;
            const std::string mutex = buffalo_lint::detail::
                lastIdentIn(ts, m + 2, ts.match[m + 2]);
            if (mutex.empty())
                continue;
            // The lock is held until the end of its enclosing block.
            const std::size_t block = ts.brace_parent[m];
            const std::size_t scope_end =
                block == kNpos ? fn.body_end : ts.match[block];
            for (std::size_t j = ts.match[m + 2] + 1;
                 j < scope_end && j < ts.size(); ++j) {
                if (!ts.isKind(j, TokKind::Ident) ||
                    !ts.is(j + 1, "("))
                    continue;
                // Qualified calls bind to another object's method
                // (and its mutex); only unqualified / this-> calls
                // can self-deadlock on our own mutex.
                if (j > 0 &&
                    (ts.is(j - 1, ".") || ts.is(j - 1, "->")) &&
                    !(j >= 2 && ts.isIdent(j - 2, "this")))
                    continue;
                const auto it = excludes.find(ts.tokens[j].text);
                if (it == excludes.end() ||
                    it->second.count(mutex) == 0)
                    continue;
                addFinding(
                    ctx, out, ts.tokens[j].line,
                    "lock-excludes-held",
                    "call to '" + ts.tokens[j].text +
                        "()' (annotated BUFFALO_EXCLUDES(" + mutex +
                        ")) while a MutexLock on '" + mutex +
                        "' is in scope — self-deadlock");
            }
        }
    }
}

// --- lock-discipline: lock-guarded-public ----------------------------

void
lintGuardedPublic(const FileContext &ctx, std::vector<Finding> *out)
{
    const TokenStream &ts = ctx.ts;
    static const std::set<std::string> lockers = {
        "MutexLock", "lock_guard", "unique_lock", "scoped_lock",
        "shared_lock"};
    for (const ClassInfo &cls : ctx.symbols.classes) {
        if (cls.guarded.empty())
            continue;
        for (const Function &fn : ctx.symbols.functions) {
            if (!fn.in_class || fn.class_name != cls.name ||
                !fn.is_public || fn.is_ctor_dtor ||
                fn.body_begin <= cls.body_begin ||
                fn.body_end >= cls.body_end)
                continue;
            for (const auto &[member, mutex] : cls.guarded) {
                if (std::find(fn.requires_caps.begin(),
                              fn.requires_caps.end(),
                              mutex) != fn.requires_caps.end())
                    continue;
                for (std::size_t t = fn.body_begin + 1;
                     t < fn.body_end; ++t) {
                    if (!ts.isKind(t, TokKind::Ident) ||
                        ts.tokens[t].text != member)
                        continue;
                    // Accesses through another object need that
                    // object's lock; out of per-file scope.
                    if (ts.is(t - 1, ".") || ts.is(t - 1, "->"))
                        continue;
                    // A lock on the guarding mutex taken earlier in
                    // the body covers this access.
                    bool locked = false;
                    for (std::size_t q = fn.body_begin + 1;
                         q < t && !locked; ++q) {
                        if (!ts.isKind(q, TokKind::Ident) ||
                            lockers.count(ts.tokens[q].text) == 0)
                            continue;
                        for (std::size_t r = q + 1;
                             r < q + 12 && r < ts.size(); ++r) {
                            if (ts.is(r, "(")) {
                                if (ts.match[r] != kNpos) {
                                    const std::string locked_mutex =
                                        buffalo_lint::detail::
                                            lastIdentIn(
                                                ts, r,
                                                ts.match[r]);
                                    locked =
                                        locked_mutex == mutex;
                                }
                                break;
                            }
                        }
                    }
                    if (locked)
                        break;
                    addFinding(
                        ctx, out, ts.tokens[t].line,
                        "lock-guarded-public",
                        "public method '" + fn.name +
                            "' touches '" + member +
                            "' (BUFFALO_GUARDED_BY(" + mutex +
                            ")) without holding the mutex or a "
                            "BUFFALO_REQUIRES annotation");
                    break; // one finding per (method, member)
                }
            }
        }
    }
}

// --- capture-escape --------------------------------------------------

/** True when @p lam escapes its defining scope. */
bool
isEscapeSink(const Lambda &lam)
{
    if (lam.sink == LambdaSink::Assign)
        return !lam.assign_target.empty() &&
               lam.assign_target.back() == '_';
    if (lam.sink != LambdaSink::Call)
        return false;
    static const std::set<std::string> async_callees = {
        "submit", "enqueue", "post", "dispatch", "push",
        "emplace_back", "push_back", "async"};
    if (async_callees.count(lam.callee) != 0)
        return true;
    // std::thread t([..]{...});  /  std::thread([..]{...})
    return lam.callee == "thread" || lam.decl_type == "thread" ||
           lam.decl_type == "jthread";
}

void
lintEscapeCaptures(const FileContext &ctx, std::vector<Finding> *out)
{
    const TokenStream &ts = ctx.ts;
    for (const Lambda &lam : ctx.symbols.lambdas) {
        if (!isEscapeSink(lam))
            continue;
        const std::string sink_desc =
            lam.sink == LambdaSink::Assign
                ? "member '" + lam.assign_target + "'"
                : "'" + (lam.receiver.empty()
                             ? lam.callee
                             : lam.receiver + "..." + lam.callee) +
                      "(...)'";
        const std::size_t line = ts.tokens[lam.intro].line;
        if (ruleEnabledFor(ctx.rel_path, "escape-ref-capture")) {
            std::string names;
            for (const std::string &n : lam.refNames())
                names += (names.empty() ? "" : ", ") + n;
            if (lam.hasRefDefault())
                names = names.empty() ? "[&] default"
                                      : names + " and [&] default";
            if (!names.empty())
                addFinding(
                    ctx, out, line, "escape-ref-capture",
                    "lambda capturing by reference (" + names +
                        ") escapes into " + sink_desc +
                        " — the referents must outlive the task; "
                        "move/copy the state in, or waive with a "
                        "lifetime argument");
        }
        if (ruleEnabledFor(ctx.rel_path, "escape-this-capture") &&
            lam.hasThis())
            addFinding(ctx, out, line, "escape-this-capture",
                       "lambda capturing 'this' escapes into " +
                           sink_desc +
                           " — the object must outlive the task "
                           "(join in the destructor before members "
                           "are torn down), or waive with the "
                           "lifetime argument");
    }
}

// --- driver ----------------------------------------------------------

struct Options
{
    fs::path root;
    bool root_set = false;
    bool json_stdout = false;
    fs::path json_out;
    std::vector<fs::path> explicit_files;
};

/** EXCLUDES annotations from directly included project headers. */
std::map<std::string, std::set<std::string>>
harvestIncludeExcludes(const FileContext &ctx, const fs::path &root)
{
    std::map<std::string, std::set<std::string>> merged;
    if (root.empty())
        return merged;
    static std::map<std::string,
                    std::map<std::string, std::set<std::string>>>
        cache;
    for (const auto &tok : ctx.ts.tokens) {
        if (tok.kind != TokKind::Directive ||
            tok.text.find("include") == std::string::npos)
            continue;
        const std::size_t q1 = tok.text.find('"');
        if (q1 == std::string::npos)
            continue;
        const std::size_t q2 = tok.text.find('"', q1 + 1);
        if (q2 == std::string::npos)
            continue;
        const std::string inc = tok.text.substr(q1 + 1, q2 - q1 - 1);
        fs::path resolved = root / "src" / inc;
        if (!fs::exists(resolved))
            resolved = root / "tools" / inc;
        if (!fs::exists(resolved))
            continue;
        const std::string key = resolved.string();
        auto it = cache.find(key);
        if (it == cache.end()) {
            const TokenStream ts = buffalo_lint::lex(
                readLines(resolved));
            const FileSymbols sym = buffalo_lint::analyze(ts);
            it = cache.emplace(key, sym.excludes_by_name).first;
        }
        for (const auto &[name, mutexes] : it->second)
            merged[name].insert(mutexes.begin(), mutexes.end());
    }
    return merged;
}

void
lintFile(const fs::path &path, const std::string &rel_path,
         const fs::path &root, std::vector<Finding> *out)
{
    FileContext ctx;
    ctx.path = path.string();
    ctx.rel_path = rel_path;
    ctx.raw_lines = readLines(path);
    ctx.ts = buffalo_lint::lex(ctx.raw_lines);
    ctx.symbols = buffalo_lint::analyze(ctx.ts);
    ctx.include_excludes = harvestIncludeExcludes(ctx, root);

    const bool is_names_header =
        path.filename() == "names.h" &&
        path.parent_path().filename() == "obs";

    auto enabled = [&](const char *rule) {
        return ruleEnabledFor(rel_path, rule);
    };

    if (ctx.isHeader() && enabled("guarded-by") &&
        optsIntoAnnotations(ctx) &&
        path.filename() != "thread_annotations.h")
        lintGuardedBy(ctx, out);
    if (!is_names_header && enabled("obs-name"))
        lintObsNames(ctx, out);
    if (enabled("raw-alloc"))
        lintRawAlloc(ctx, out);
    if (ctx.isHeader() && enabled("header-hygiene"))
        lintHeaderHygiene(ctx, out);

    if (enabled("det-unordered-iter"))
        lintUnorderedIter(ctx, out);
    if (enabled("det-rand"))
        lintRand(ctx, out);
    if (enabled("det-parallel-accum"))
        lintParallelAccum(ctx, out);
    if (enabled("det-ptr-key"))
        lintPtrKey(ctx, out);

    if (enabled("lock-cv-wait"))
        lintCvWait(ctx, out);
    if (enabled("lock-thread-detach"))
        lintThreadDetach(ctx, out);
    if (enabled("lock-excludes-held"))
        lintExcludesHeld(ctx, out);
    if (enabled("lock-guarded-public"))
        lintGuardedPublic(ctx, out);

    if (enabled("escape-ref-capture") ||
        enabled("escape-this-capture"))
        lintEscapeCaptures(ctx, out);
}

/** The scan scope in --root mode. */
std::vector<std::pair<fs::path, std::string>>
collectSources(const fs::path &root)
{
    std::vector<std::pair<fs::path, std::string>> files;
    for (const char *dir : {"src", "tools", "bench", "tests"}) {
        const fs::path base = root / dir;
        if (!fs::is_directory(base))
            continue;
        for (const auto &entry :
             fs::recursive_directory_iterator(base)) {
            if (!entry.is_regular_file())
                continue;
            const fs::path &p = entry.path();
            if (p.extension() != ".h" && p.extension() != ".cpp")
                continue;
            files.emplace_back(
                p, fs::relative(p, root).generic_string());
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

std::string
findingsToJson(const std::vector<Finding> &findings,
               std::size_t files_scanned)
{
    std::size_t waived = 0;
    for (const Finding &f : findings)
        waived += f.waived ? 1 : 0;
    std::ostringstream out;
    out << "{\n";
    out << "  \"version\": 2,\n";
    out << "  \"files_scanned\": " << files_scanned << ",\n";
    out << "  \"counts\": {\"total\": " << findings.size()
        << ", \"active\": " << findings.size() - waived
        << ", \"waived\": " << waived << "},\n";
    out << "  \"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        out << (i == 0 ? "\n" : ",\n");
        out << "    {\"rule\": \"" << jsonEscape(f.rule)
            << "\", \"file\": \"" << jsonEscape(f.file)
            << "\", \"line\": " << f.line << ", \"severity\": \""
            << jsonEscape(f.severity) << "\", \"waived\": "
            << (f.waived ? "true" : "false");
        if (f.waived)
            out << ", \"waiver_reason\": \""
                << jsonEscape(f.waiver_reason) << "\"";
        out << ", \"message\": \"" << jsonEscape(f.message)
            << "\"}";
    }
    out << (findings.empty() ? "]\n" : "\n  ]\n");
    out << "}\n";
    return out.str();
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help") {
            std::printf(
                "usage: buffalo_lint [--root DIR] [--json] "
                "[--json-out FILE] [FILE...]\n"
                "Lints DIR/{src,tools,bench,tests} plus "
                "DIR/tools/ci.sh, or exactly FILE... when given.\n"
                "--json prints the machine-readable report to "
                "stdout; --json-out FILE writes it to FILE.\n");
            return 0;
        }
        if (arg == "--root") {
            if (++i >= argc)
                fatal("--root needs a directory");
            opts.root = argv[i];
            opts.root_set = true;
        } else if (arg == "--json") {
            opts.json_stdout = true;
        } else if (arg == "--json-out") {
            if (++i >= argc)
                fatal("--json-out needs a file path");
            opts.json_out = argv[i];
        } else {
            opts.explicit_files.emplace_back(arg);
        }
    }

    std::vector<Finding> findings;
    std::size_t files_scanned = 0;

    if (!opts.explicit_files.empty()) {
        for (const fs::path &file : opts.explicit_files) {
            if (!fs::exists(file))
                fatal("no such file: " + file.string());
            lintFile(file, "", opts.root_set ? opts.root : fs::path(),
                     &findings);
            ++files_scanned;
        }
    } else {
        if (!opts.root_set)
            opts.root = ".";
        const fs::path src = opts.root / "src";
        if (!fs::is_directory(src))
            fatal("no src/ directory under " + opts.root.string() +
                  " (pass --root or explicit files)");
        for (const auto &[file, rel] : collectSources(opts.root)) {
            lintFile(file, rel, opts.root, &findings);
            ++files_scanned;
        }
        const fs::path names = src / "obs" / "names.h";
        const fs::path ci = opts.root / "tools" / "ci.sh";
        if (fs::exists(names) && fs::exists(ci))
            lintCiNames(ci, collectRegisteredNames(names),
                        &findings);
    }

    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.file, a.line, a.rule) <
                         std::tie(b.file, b.line, b.rule);
              });

    std::size_t active = 0, waived = 0;
    for (const Finding &f : findings)
        (f.waived ? waived : active) += 1;

    const std::string json = findingsToJson(findings, files_scanned);
    if (!opts.json_out.empty()) {
        std::ofstream out(opts.json_out);
        if (!out)
            fatal("cannot write " + opts.json_out.string());
        out << json;
    }
    if (opts.json_stdout) {
        std::fputs(json.c_str(), stdout);
    } else {
        for (const Finding &f : findings) {
            if (f.waived)
                continue;
            std::printf("%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                        f.rule.c_str(), f.message.c_str());
        }
        if (active > 0)
            std::printf("buffalo_lint: %zu violation%s (%zu "
                        "waived)\n",
                        active, active == 1 ? "" : "s", waived);
        else
            std::printf("buffalo_lint: clean (%zu waived)\n",
                        waived);
    }
    return active > 0 ? 1 : 0;
}
